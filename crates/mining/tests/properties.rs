//! Property-based tests for the mining substrate.

use bp_mining::{ArrivalProcess, MiningPool, PoolCensus, StratumServer};
use bp_topology::Asn;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn share_vec() -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(0.01f64..1.0, 1..12)
}

proptest! {
    /// Mean block interval scales inversely with the aggregate share.
    #[test]
    fn interval_scales_with_share(shares in share_vec()) {
        let total: f64 = shares.iter().sum();
        let entities: Vec<(String, f64)> = shares
            .iter()
            .enumerate()
            .map(|(i, &s)| (format!("p{i}"), s))
            .collect();
        let p = ArrivalProcess::new(entities, 600.0);
        prop_assert!((p.total_share() - total).abs() < 1e-9);
        prop_assert!((p.mean_interval_secs() - 600.0 / total).abs() < 1e-6);
    }

    /// Splitting an arrival process conserves total share, whatever the
    /// predicate.
    #[test]
    fn split_conserves_share(shares in share_vec(), mask in any::<u32>()) {
        let entities: Vec<(String, f64)> = shares
            .iter()
            .enumerate()
            .map(|(i, &s)| (format!("p{i}"), s))
            .collect();
        let p = ArrivalProcess::new(entities, 600.0);
        let (kept, removed) = p.split(|name| {
            let idx: u32 = name[1..].parse().unwrap();
            mask & (1 << (idx % 32)) != 0
        });
        let kept_share = kept.as_ref().map(|k| k.total_share()).unwrap_or(0.0);
        let removed_share = removed.as_ref().map(|r| r.total_share()).unwrap_or(0.0);
        prop_assert!((kept_share + removed_share - p.total_share()).abs() < 1e-9);
    }

    /// Sampled finders follow the share weights (coarsely) and intervals
    /// are positive.
    #[test]
    fn samples_are_sane(seed in any::<u64>()) {
        let p = ArrivalProcess::new(
            vec![("big".into(), 0.9), ("small".into(), 0.1)],
            600.0,
        );
        let mut rng = StdRng::seed_from_u64(seed);
        let mut big = 0;
        for _ in 0..200 {
            let (dt, who) = p.next_block(&mut rng);
            prop_assert!(dt >= 0.0);
            if who == 0 {
                big += 1;
            }
        }
        // 0.9 weight: binomial(200, 0.9) essentially never drops below 150.
        prop_assert!(big > 150, "big pool found only {big}/200");
    }

    /// isolated_share is monotone in the hijacked set and bounded by the
    /// total.
    #[test]
    fn isolation_is_monotone(subset in proptest::collection::vec(any::<bool>(), 10)) {
        let census = PoolCensus::paper_table_iv();
        let all_ases: Vec<Asn> = census
            .hash_share_by_as()
            .keys()
            .copied()
            .collect();
        let chosen: Vec<Asn> = all_ases
            .iter()
            .zip(subset.iter().cycle())
            .filter(|(_, &take)| take)
            .map(|(a, _)| *a)
            .collect();
        let partial = census.isolated_share(&chosen);
        let full = census.isolated_share(&all_ases);
        prop_assert!(partial <= full + 1e-12);
        prop_assert!((full - census.total_share()).abs() < 1e-9);
        // Adding an AS never decreases the isolated share.
        if let Some(extra) = all_ases.iter().find(|a| !chosen.contains(a)) {
            let mut more = chosen.clone();
            more.push(*extra);
            prop_assert!(census.isolated_share(&more) + 1e-12 >= partial);
        }
    }

    /// Pool construction validates weights for arbitrary splits.
    #[test]
    fn stratum_weights_validated(w in 0.01f64..0.99) {
        let pool = MiningPool::new(
            "x",
            0.5,
            vec![
                StratumServer { asn: Asn(1), weight: w },
                StratumServer { asn: Asn(2), weight: 1.0 - w },
            ],
        );
        prop_assert_eq!(pool.stratum.len(), 2);
    }
}
