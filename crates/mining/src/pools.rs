//! Mining pools and stratum servers (paper Table IV).
//!
//! Pools coordinate miners through the Stratum protocol; each pool
//! publishes stratum server addresses, and "if the link to the stratum
//! server is compromised, the mining pool gets disconnected and its
//! aggregate hash rate decreases" (§V-A). The paper traced the top-5
//! pools' stratum servers to their hosting ASes and found 65.7 % of the
//! hash rate behind three organizations, with AliBaba seeing ≥ 60 %.

use bp_topology::{Asn, Country, Registry};
use std::collections::HashMap;

/// A stratum server endpoint: which AS hosts it and what share of the
/// pool's hash rate reports to it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StratumServer {
    /// Hosting AS.
    pub asn: Asn,
    /// Fraction of the pool's hash rate served here (sums to 1 per pool).
    pub weight: f64,
}

/// A mining pool.
#[derive(Debug, Clone, PartialEq)]
pub struct MiningPool {
    /// Pool name as in Table IV.
    pub name: String,
    /// Fraction of the global hash rate.
    pub hash_share: f64,
    /// Stratum servers, with intra-pool weights.
    pub stratum: Vec<StratumServer>,
}

impl MiningPool {
    /// Creates a pool.
    ///
    /// # Panics
    ///
    /// Panics if `hash_share` is outside `[0, 1]`, `stratum` is empty, or
    /// the stratum weights do not sum to 1 (±1e-9).
    pub fn new(name: impl Into<String>, hash_share: f64, stratum: Vec<StratumServer>) -> Self {
        assert!(
            (0.0..=1.0).contains(&hash_share),
            "hash share must lie in [0, 1]"
        );
        assert!(
            !stratum.is_empty(),
            "a pool needs at least one stratum server"
        );
        let total: f64 = stratum.iter().map(|s| s.weight).sum();
        assert!(
            (total - 1.0).abs() < 1e-9,
            "stratum weights must sum to 1, got {total}"
        );
        Self {
            name: name.into(),
            hash_share,
            stratum,
        }
    }
}

/// The pool census: every pool plus the long tail.
///
/// # Examples
///
/// ```
/// use bp_mining::PoolCensus;
/// use bp_topology::Asn;
///
/// let census = PoolCensus::paper_table_iv();
/// // Hijacking the single AS behind most stratum servers already
/// // isolates more than half of the hash rate.
/// assert!(census.isolated_share(&[Asn(45102)]) > 0.5);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct PoolCensus {
    pools: Vec<MiningPool>,
}

impl PoolCensus {
    /// The Table IV census: top-5 pools with their measured hash shares
    /// and stratum AS placements, plus "12 others" (34.3 % combined)
    /// modelled as twelve small pools hosted outside the Alibaba sphere.
    pub fn paper_table_iv() -> Self {
        let half = |a: Asn, b: Asn| {
            vec![
                StratumServer {
                    asn: a,
                    weight: 0.5,
                },
                StratumServer {
                    asn: b,
                    weight: 0.5,
                },
            ]
        };
        let single = |a: Asn| {
            vec![StratumServer {
                asn: a,
                weight: 1.0,
            }]
        };
        let mut pools = vec![
            MiningPool::new("BTC.com", 0.25, half(Asn(37963), Asn(45102))),
            MiningPool::new("Antpool", 0.124, single(Asn(45102))),
            MiningPool::new("ViaBTC", 0.117, single(Asn(45102))),
            MiningPool::new("BTC.TOP", 0.103, single(Asn(45102))),
            MiningPool::new("F2Pool", 0.063, half(Asn(45102), Asn(58563))),
        ];
        // The remaining 34.3 % over 12 minor pools, hosted on the large
        // Western hosting ASes from Table II (round-robin).
        let hosts = [
            Asn(24940),
            Asn(16276),
            Asn(16509),
            Asn(14061),
            Asn(7922),
            Asn(4134),
        ];
        let minor_share = 0.343 / 12.0;
        for i in 0..12 {
            pools.push(MiningPool::new(
                format!("minor-{}", i + 1),
                minor_share,
                single(hosts[i % hosts.len()]),
            ));
        }
        Self { pools }
    }

    /// Builds a census from explicit pools.
    ///
    /// # Panics
    ///
    /// Panics if `pools` is empty.
    pub fn from_pools(pools: Vec<MiningPool>) -> Self {
        assert!(!pools.is_empty(), "census requires pools");
        Self { pools }
    }

    /// All pools, largest first.
    pub fn pools(&self) -> &[MiningPool] {
        &self.pools
    }

    /// Number of pools (17 in the paper census).
    pub fn len(&self) -> usize {
        self.pools.len()
    }

    /// Whether the census has no pools.
    pub fn is_empty(&self) -> bool {
        self.pools.is_empty()
    }

    /// The `k` largest pools by hash share.
    pub fn top(&self, k: usize) -> Vec<&MiningPool> {
        let mut sorted: Vec<&MiningPool> = self.pools.iter().collect();
        sorted.sort_by(|a, b| {
            b.hash_share
                .partial_cmp(&a.hash_share)
                .expect("finite shares")
        });
        sorted.truncate(k);
        sorted
    }

    /// Total hash share (≈1.0 for a complete census).
    pub fn total_share(&self) -> f64 {
        self.pools.iter().map(|p| p.hash_share).sum()
    }

    /// Hash share visible to each AS, via the stratum servers it hosts —
    /// the quantity an AS-level hijacker isolates.
    pub fn hash_share_by_as(&self) -> HashMap<Asn, f64> {
        let mut shares: HashMap<Asn, f64> = HashMap::new();
        for pool in &self.pools {
            for server in &pool.stratum {
                *shares.entry(server.asn).or_default() += pool.hash_share * server.weight;
            }
        }
        shares
    }

    /// Hash share per organization, resolved through the registry.
    pub fn hash_share_by_org(&self, registry: &Registry) -> HashMap<String, f64> {
        let mut shares: HashMap<String, f64> = HashMap::new();
        for (asn, share) in self.hash_share_by_as() {
            let name = registry
                .org_of(asn)
                .map(|org| registry.org_name(org).to_string())
                .unwrap_or_else(|| format!("{asn}"));
            *shares.entry(name).or_default() += share;
        }
        shares
    }

    /// Hash share per country — the paper's nation-state observation that
    /// "60 % of the mining traffic goes through China".
    pub fn hash_share_by_country(&self, registry: &Registry) -> HashMap<Country, f64> {
        let mut shares: HashMap<Country, f64> = HashMap::new();
        for (asn, share) in self.hash_share_by_as() {
            let country = registry.country_of(asn).unwrap_or(Country::Other);
            *shares.entry(country).or_default() += share;
        }
        shares
    }

    /// Hash share isolated by hijacking the given ASes (the pools whose
    /// stratum servers sit behind them lose the corresponding weight).
    pub fn isolated_share(&self, hijacked: &[Asn]) -> f64 {
        self.pools
            .iter()
            .map(|pool| {
                let lost: f64 = pool
                    .stratum
                    .iter()
                    .filter(|s| hijacked.contains(&s.asn))
                    .map(|s| s.weight)
                    .sum();
                pool.hash_share * lost
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bp_topology::{Snapshot, SnapshotConfig};

    #[test]
    fn census_totals_one() {
        let c = PoolCensus::paper_table_iv();
        assert_eq!(c.len(), 17);
        assert!((c.total_share() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn top5_matches_table_iv() {
        let c = PoolCensus::paper_table_iv();
        let top = c.top(5);
        assert_eq!(top[0].name, "BTC.com");
        assert!((top[0].hash_share - 0.25).abs() < 1e-12);
        assert_eq!(top[4].name, "F2Pool");
        let top5: f64 = top.iter().map(|p| p.hash_share).sum();
        assert!((top5 - 0.657).abs() < 1e-9, "top-5 share {top5}");
    }

    #[test]
    fn three_ases_carry_657_percent() {
        let c = PoolCensus::paper_table_iv();
        let shares = c.hash_share_by_as();
        let alibaba_sphere: f64 = [Asn(45102), Asn(37963), Asn(58563)]
            .iter()
            .map(|a| shares.get(a).copied().unwrap_or(0.0))
            .sum();
        assert!(
            (alibaba_sphere - 0.657).abs() < 1e-9,
            "3-AS share {alibaba_sphere}"
        );
        // AS45102 alone sees > 50 %.
        assert!(shares[&Asn(45102)] > 0.50);
    }

    #[test]
    fn china_sees_most_mining_traffic() {
        let snap = Snapshot::generate(SnapshotConfig::test_small());
        let c = PoolCensus::paper_table_iv();
        let by_country = c.hash_share_by_country(&snap.registry);
        let china = by_country.get(&Country::China).copied().unwrap_or(0.0);
        assert!(china >= 0.60, "China hash share {china}");
    }

    #[test]
    fn alibaba_orgs_combined_see_over_60_percent() {
        let snap = Snapshot::generate(SnapshotConfig::test_small());
        let c = PoolCensus::paper_table_iv();
        let by_org = c.hash_share_by_org(&snap.registry);
        let combined = by_org.get("AliBaba (China)").copied().unwrap_or(0.0)
            + by_org.get("Hangzhou Alibaba").copied().unwrap_or(0.0);
        assert!(combined > 0.60, "AliBaba combined {combined}");
    }

    #[test]
    fn isolating_three_ases_cuts_over_60_percent() {
        let c = PoolCensus::paper_table_iv();
        let isolated = c.isolated_share(&[Asn(45102), Asn(37963), Asn(58563)]);
        assert!(isolated > 0.60, "isolated {isolated}");
        // Hijacking nothing isolates nothing.
        assert_eq!(c.isolated_share(&[]), 0.0);
    }

    #[test]
    #[should_panic(expected = "sum to 1")]
    fn stratum_weights_validated() {
        let _ = MiningPool::new(
            "bad",
            0.1,
            vec![StratumServer {
                asn: Asn(1),
                weight: 0.4,
            }],
        );
    }
}
