//! Mining substrate: pool census, stratum placement, and the block-arrival
//! process.
//!
//! Reproduces the paper's Table IV analysis — the top-5 mining pools hold
//! 65.7 % of the hash rate and their stratum servers sit behind just three
//! ASes — and provides the exponential block-arrival machinery the
//! temporal-attack simulations run on.
//!
//! # Examples
//!
//! ```
//! use bp_mining::{ArrivalProcess, PoolCensus};
//!
//! let census = PoolCensus::paper_table_iv();
//! let arrivals = ArrivalProcess::from_census(&census);
//! assert!((arrivals.mean_interval_secs() - 600.0).abs() < 1e-6);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arrival;
pub mod pools;

pub use arrival::ArrivalProcess;
pub use pools::{MiningPool, PoolCensus, StratumServer};
