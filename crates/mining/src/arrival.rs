//! The block-arrival process.
//!
//! Block discovery is memoryless: with total network hash rate normalised
//! to 1 and a 600 s target interval, the time to the next block is
//! exponential with mean 600 s, and the finder is chosen proportionally to
//! hash share. When hash power is partitioned (the paper's temporal attack
//! gives the adversary ≈30 %), each partition finds blocks at a rate
//! proportional to its share — the attacker's chain grows at mean
//! `600 / 0.30` seconds per block, the honest remainder at `600 / 0.70`.

use crate::pools::PoolCensus;
use bp_analysis::dist::{Exponential, WeightedIndex};
use rand::Rng;

/// A block-arrival sampler over a set of mining entities.
#[derive(Debug, Clone)]
pub struct ArrivalProcess {
    /// Names of the mining entities (parallel to `weights`).
    names: Vec<String>,
    weights: Vec<f64>,
    sampler: WeightedIndex,
    /// Total hash share of the entities, as a fraction of the global rate.
    total_share: f64,
    /// Target seconds per block at full (global) hash rate.
    block_interval_secs: f64,
}

impl ArrivalProcess {
    /// Builds a process from explicit `(name, hash share)` entities.
    ///
    /// # Panics
    ///
    /// Panics if `entities` is empty, any share is negative/non-finite,
    /// all shares are zero, or `block_interval_secs` is not positive.
    pub fn new(entities: Vec<(String, f64)>, block_interval_secs: f64) -> Self {
        assert!(!entities.is_empty(), "arrival process needs entities");
        assert!(
            block_interval_secs.is_finite() && block_interval_secs > 0.0,
            "block interval must be positive"
        );
        let (names, weights): (Vec<String>, Vec<f64>) = entities.into_iter().unzip();
        let sampler = WeightedIndex::new(&weights);
        let total_share = weights.iter().sum();
        Self {
            names,
            weights,
            sampler,
            total_share,
            block_interval_secs,
        }
    }

    /// Builds a process over a pool census with Bitcoin's 600 s target.
    pub fn from_census(census: &PoolCensus) -> Self {
        Self::new(
            census
                .pools()
                .iter()
                .map(|p| (p.name.clone(), p.hash_share))
                .collect(),
            600.0,
        )
    }

    /// The aggregate hash share of this process's entities.
    pub fn total_share(&self) -> f64 {
        self.total_share
    }

    /// Mean seconds between blocks found by *this* set of entities: the
    /// global interval divided by their combined share.
    pub fn mean_interval_secs(&self) -> f64 {
        self.block_interval_secs / self.total_share
    }

    /// Entity names.
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// Hash-share weight of entity `idx`.
    pub fn weight(&self, idx: usize) -> f64 {
        self.weights[idx]
    }

    /// Samples `(seconds until next block, index of the finding entity)`.
    pub fn next_block<R: Rng + ?Sized>(&self, rng: &mut R) -> (f64, usize) {
        let exp = Exponential::with_mean(self.mean_interval_secs());
        (exp.sample(rng), self.sampler.sample(rng))
    }

    /// Returns a copy with every entity's share multiplied by `factor` —
    /// models part of the hash rate being diverted or destroyed.
    ///
    /// # Panics
    ///
    /// Panics unless `factor` is finite and strictly positive.
    pub fn scaled(&self, factor: f64) -> ArrivalProcess {
        assert!(
            factor.is_finite() && factor > 0.0,
            "hash scale factor must be positive"
        );
        ArrivalProcess::new(
            self.names
                .iter()
                .zip(&self.weights)
                .map(|(n, w)| (n.clone(), w * factor))
                .collect(),
            self.block_interval_secs,
        )
    }

    /// Splits the process into `(kept, removed)` by an entity predicate —
    /// used to model partitions: hijacking the AliBaba ASes removes the
    /// pools hosted there from the honest side.
    ///
    /// Either side may be empty; empty sides return `None`.
    pub fn split<F: Fn(&str) -> bool>(
        &self,
        keep: F,
    ) -> (Option<ArrivalProcess>, Option<ArrivalProcess>) {
        let mut kept = Vec::new();
        let mut removed = Vec::new();
        for (name, w) in self.names.iter().zip(&self.weights) {
            if keep(name) {
                kept.push((name.clone(), *w));
            } else {
                removed.push((name.clone(), *w));
            }
        }
        let build = |v: Vec<(String, f64)>| {
            if v.is_empty() || v.iter().all(|(_, w)| *w == 0.0) {
                None
            } else {
                Some(ArrivalProcess::new(v, self.block_interval_secs))
            }
        };
        (build(kept), build(removed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn full_census_means_600s() {
        let p = ArrivalProcess::from_census(&PoolCensus::paper_table_iv());
        assert!((p.total_share() - 1.0).abs() < 1e-9);
        assert!((p.mean_interval_secs() - 600.0).abs() < 1e-6);
    }

    #[test]
    fn attacker_with_30_percent_mines_3x_slower() {
        let p = ArrivalProcess::new(vec![("attacker".into(), 0.30)], 600.0);
        assert!((p.mean_interval_secs() - 2000.0).abs() < 1e-9);
    }

    #[test]
    fn sampled_intervals_converge_to_mean() {
        let p = ArrivalProcess::new(vec![("a".into(), 0.6), ("b".into(), 0.4)], 600.0);
        let mut rng = StdRng::seed_from_u64(11);
        let n = 20_000;
        let mut total = 0.0;
        let mut finds = [0usize; 2];
        for _ in 0..n {
            let (dt, who) = p.next_block(&mut rng);
            total += dt;
            finds[who] += 1;
        }
        let mean = total / n as f64;
        assert!((mean - 600.0).abs() < 15.0, "mean interval {mean}");
        let ratio = finds[0] as f64 / finds[1] as f64;
        assert!((ratio - 1.5).abs() < 0.15, "finder ratio {ratio}");
    }

    #[test]
    fn split_partitions_hash_rate() {
        let census = PoolCensus::paper_table_iv();
        let p = ArrivalProcess::from_census(&census);
        // Partition off the AliBaba-hosted pools (top 4 + half of F2Pool's
        // weight lives there, but split() works at pool granularity).
        let alibaba_pools = ["BTC.com", "Antpool", "ViaBTC", "BTC.TOP"];
        let (honest, isolated) = p.split(|name| !alibaba_pools.contains(&name));
        let honest = honest.unwrap();
        let isolated = isolated.unwrap();
        assert!((isolated.total_share() - 0.594).abs() < 1e-9);
        assert!((honest.total_share() + isolated.total_share() - 1.0).abs() < 1e-9);
        // The isolated majority mines faster than the honest remainder.
        assert!(isolated.mean_interval_secs() < honest.mean_interval_secs());
    }

    #[test]
    fn split_all_one_side_returns_none() {
        let p = ArrivalProcess::new(vec![("x".into(), 1.0)], 600.0);
        let (kept, removed) = p.split(|_| true);
        assert!(kept.is_some());
        assert!(removed.is_none());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_interval_rejected() {
        let _ = ArrivalProcess::new(vec![("x".into(), 1.0)], 0.0);
    }
}
