//! Property-based tests for the BGP substrate: valley-free routing
//! invariants and hijack capture-set properties across random topologies.

use bp_bgp::{origin_hijack, origin_hijack_with_defense, AsGraph, RouteClass, RouteMap};
use bp_topology::Asn;
use proptest::prelude::*;
use std::collections::HashSet;

/// Builds a random two-tier topology: `cores` fully-meshed tier-1 peers,
/// `leaves` customers each homed to 1–2 cores (choices driven by the
/// input bytes, so proptest can shrink).
fn build_topology(cores: usize, homes: &[u8]) -> (AsGraph, Vec<Asn>, Vec<Asn>) {
    let mut g = AsGraph::new();
    let core_asns: Vec<Asn> = (0..cores as u32).map(|i| Asn(1000 + i)).collect();
    for (i, a) in core_asns.iter().enumerate() {
        for b in core_asns.iter().skip(i + 1) {
            g.add_peering(*a, *b);
        }
    }
    let mut leaf_asns = Vec::new();
    for (i, &h) in homes.iter().enumerate() {
        let leaf = Asn(2000 + i as u32);
        leaf_asns.push(leaf);
        g.add_transit(core_asns[h as usize % cores], leaf);
        if h % 3 == 0 {
            g.add_transit(core_asns[(h as usize / 3 + 1) % cores], leaf);
        }
    }
    (g, core_asns, leaf_asns)
}

proptest! {
    /// Every AS in a connected topology gets a route; path lengths are
    /// bounded by the tier count; the origin's route is Origin-class.
    #[test]
    fn routes_cover_connected_topologies(
        cores in 2usize..6,
        homes in proptest::collection::vec(any::<u8>(), 1..30),
        origin_pick in any::<prop::sample::Index>(),
    ) {
        let (g, core_asns, leaf_asns) = build_topology(cores, &homes);
        let all: Vec<Asn> = core_asns.iter().chain(leaf_asns.iter()).copied().collect();
        let origin = all[origin_pick.index(all.len())];
        let map = RouteMap::compute(&g, origin);
        prop_assert_eq!(map.reach(), g.len(), "unreached ASes from {}", origin);
        prop_assert_eq!(map.route(origin).unwrap().class, RouteClass::Origin);
        for asn in &all {
            let r = map.route(*asn).unwrap();
            // Leaf → core → peer core → leaf is the longest possible
            // valley-free path in this two-tier world.
            prop_assert!(r.path_len <= 4, "{asn} path {}", r.path_len);
        }
    }

    /// Valley-free discipline: a leaf (stub AS with no customers) never
    /// carries a Customer-class route for someone else's prefix.
    #[test]
    fn stubs_never_transit(
        cores in 2usize..5,
        homes in proptest::collection::vec(any::<u8>(), 2..25),
    ) {
        let (g, _, leaf_asns) = build_topology(cores, &homes);
        let origin = leaf_asns[0];
        let map = RouteMap::compute(&g, origin);
        for leaf in leaf_asns.iter().skip(1) {
            let r = map.route(*leaf).unwrap();
            prop_assert_ne!(
                r.class,
                RouteClass::Customer,
                "stub {} claims a customer route",
                leaf
            );
        }
    }

    /// Hijack capture sets: attacker captures itself, never the victim;
    /// defense monotonically shrinks the capture set.
    #[test]
    fn capture_sets_well_formed(
        cores in 2usize..5,
        homes in proptest::collection::vec(any::<u8>(), 4..30),
        picks in any::<(prop::sample::Index, prop::sample::Index)>(),
    ) {
        let (g, _, leaf_asns) = build_topology(cores, &homes);
        let victim = leaf_asns[picks.0.index(leaf_asns.len())];
        let attacker = leaf_asns[picks.1.index(leaf_asns.len())];
        prop_assume!(victim != attacker);

        let result = origin_hijack(&g, victim, attacker);
        prop_assert!(result.captured_ases.contains(&attacker));
        prop_assert!(!result.captured_ases.contains(&victim));
        prop_assert!((0.0..=1.0).contains(&result.captured_fraction));

        // Full-capture-set defense leaves only the attacker itself.
        let defenders: HashSet<Asn> = result
            .captured_ases
            .iter()
            .copied()
            .filter(|a| *a != attacker)
            .collect();
        let defended = origin_hijack_with_defense(&g, victim, attacker, &defenders);
        prop_assert!(
            defended.captured_ases.len() <= result.captured_ases.len(),
            "defense grew the capture set"
        );
        for d in &defenders {
            prop_assert!(!defended.captured_ases.contains(d));
        }
    }
}
