//! The AS-level relationship graph.
//!
//! BGP route selection and export depend on the commercial relationship of
//! each link (Gao–Rexford model): an AS exports routes learned from a
//! *customer* to everyone, but routes learned from a *peer* or *provider*
//! only to its customers. The paper's spatial attack rides on exactly this
//! machinery ("the malicious AS announces prefixes that belong to the
//! victim AS", §V-A), so the substrate models it faithfully.

use bp_topology::{Asn, Registry};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

/// The relationship a neighbor has *to this AS*.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Relationship {
    /// The neighbor buys transit from us.
    Customer,
    /// Settlement-free peer.
    Peer,
    /// We buy transit from the neighbor.
    Provider,
}

impl Relationship {
    /// The same edge, seen from the other side.
    pub fn inverse(self) -> Relationship {
        match self {
            Relationship::Customer => Relationship::Provider,
            Relationship::Peer => Relationship::Peer,
            Relationship::Provider => Relationship::Customer,
        }
    }
}

/// An AS-level topology annotated with business relationships.
#[derive(Debug, Clone, Default)]
pub struct AsGraph {
    /// `neighbors[a]` = list of `(neighbor, relationship-of-neighbor-to-a)`.
    neighbors: HashMap<Asn, Vec<(Asn, Relationship)>>,
}

impl AsGraph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds an edge where `provider` sells transit to `customer`.
    ///
    /// Duplicate edges are ignored.
    pub fn add_transit(&mut self, provider: Asn, customer: Asn) {
        self.add_edge(customer, provider, Relationship::Provider);
    }

    /// Adds a settlement-free peering edge.
    pub fn add_peering(&mut self, a: Asn, b: Asn) {
        self.add_edge(a, b, Relationship::Peer);
    }

    fn add_edge(&mut self, from: Asn, to: Asn, rel: Relationship) {
        if from == to {
            return;
        }
        let fwd = self.neighbors.entry(from).or_default();
        if fwd.iter().any(|(n, _)| *n == to) {
            return;
        }
        fwd.push((to, rel));
        self.neighbors
            .entry(to)
            .or_default()
            .push((from, rel.inverse()));
    }

    /// Neighbors of `asn` with their relationship to it.
    pub fn neighbors(&self, asn: Asn) -> &[(Asn, Relationship)] {
        self.neighbors.get(&asn).map(Vec::as_slice).unwrap_or(&[])
    }

    /// All ASes present in the graph.
    pub fn ases(&self) -> impl Iterator<Item = Asn> + '_ {
        self.neighbors.keys().copied()
    }

    /// Number of ASes.
    pub fn len(&self) -> usize {
        self.neighbors.len()
    }

    /// Whether the graph has no ASes.
    pub fn is_empty(&self) -> bool {
        self.neighbors.is_empty()
    }

    /// Providers of `asn`.
    pub fn providers(&self, asn: Asn) -> Vec<Asn> {
        self.related(asn, Relationship::Provider)
    }

    /// Customers of `asn`.
    pub fn customers(&self, asn: Asn) -> Vec<Asn> {
        self.related(asn, Relationship::Customer)
    }

    /// Peers of `asn`.
    pub fn peers(&self, asn: Asn) -> Vec<Asn> {
        self.related(asn, Relationship::Peer)
    }

    fn related(&self, asn: Asn, rel: Relationship) -> Vec<Asn> {
        self.neighbors(asn)
            .iter()
            .filter(|(_, r)| *r == rel)
            .map(|(n, _)| *n)
            .collect()
    }

    /// Builds a synthetic Internet-like hierarchy over all ASes in a
    /// registry:
    ///
    /// * a fully-meshed clique of tier-1 backbones (private ASNs);
    /// * every registry AS multi-homes to 2–3 tier-1s (big hosting
    ///   providers really are richly connected);
    /// * tail ASes additionally buy transit from one of the large anchor
    ///   ASes, plus sparse peering edges.
    ///
    /// The result is connected and valley-free-routable from everywhere.
    pub fn synthetic(registry: &Registry, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut g = AsGraph::new();

        let tier1: Vec<Asn> = (0..8).map(|i| Asn(65_000 + i)).collect();
        for (i, a) in tier1.iter().enumerate() {
            for b in tier1.iter().skip(i + 1) {
                g.add_peering(*a, *b);
            }
        }

        let all: Vec<Asn> = registry.ases().map(|r| r.asn).collect();
        // The ten largest registered ASes act as regional transit too.
        let regionals: Vec<Asn> = all.iter().take(10).copied().collect();
        for (idx, asn) in all.iter().enumerate() {
            let homes = 2 + (rng.random::<u32>() % 2) as usize;
            let mut chosen = std::collections::BTreeSet::new();
            while chosen.len() < homes {
                chosen.insert(tier1[rng.random_range(0..tier1.len())]);
            }
            for t in chosen {
                g.add_transit(t, *asn);
            }
            // Tail ASes also buy regional transit.
            if idx >= 10 && rng.random::<f64>() < 0.5 {
                let r = regionals[rng.random_range(0..regionals.len())];
                g.add_transit(r, *asn);
            }
            // Sparse peering among consecutive registrations.
            if idx > 0 && rng.random::<f64>() < 0.15 {
                g.add_peering(*asn, all[rng.random_range(0..idx)]);
            }
        }
        g
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bp_topology::{Snapshot, SnapshotConfig};

    #[test]
    fn edges_are_symmetric_with_inverse_relationship() {
        let mut g = AsGraph::new();
        g.add_transit(Asn(1), Asn(2)); // 1 provides to 2
        assert_eq!(g.providers(Asn(2)), vec![Asn(1)]);
        assert_eq!(g.customers(Asn(1)), vec![Asn(2)]);
        g.add_peering(Asn(2), Asn(3));
        assert_eq!(g.peers(Asn(2)), vec![Asn(3)]);
        assert_eq!(g.peers(Asn(3)), vec![Asn(2)]);
    }

    #[test]
    fn duplicate_and_self_edges_ignored() {
        let mut g = AsGraph::new();
        g.add_transit(Asn(1), Asn(2));
        g.add_transit(Asn(1), Asn(2));
        g.add_peering(Asn(1), Asn(1));
        assert_eq!(g.neighbors(Asn(1)).len(), 1);
        assert_eq!(g.neighbors(Asn(2)).len(), 1);
    }

    #[test]
    fn relationship_inverse_round_trips() {
        for rel in [
            Relationship::Customer,
            Relationship::Peer,
            Relationship::Provider,
        ] {
            assert_eq!(rel.inverse().inverse(), rel);
        }
    }

    #[test]
    fn synthetic_graph_covers_registry_and_is_connected() {
        let snap = Snapshot::generate(SnapshotConfig::test_small());
        let g = AsGraph::synthetic(&snap.registry, 7);
        // Every registered AS is present with at least one provider.
        for rec in snap.registry.ases() {
            assert!(
                !g.providers(rec.asn).is_empty(),
                "{} has no providers",
                rec.asn
            );
        }
        // Connectivity via undirected BFS.
        let start = snap.registry.ases().next().unwrap().asn;
        let mut seen = std::collections::HashSet::new();
        let mut queue = std::collections::VecDeque::from([start]);
        seen.insert(start);
        while let Some(a) = queue.pop_front() {
            for (n, _) in g.neighbors(a) {
                if seen.insert(*n) {
                    queue.push_back(*n);
                }
            }
        }
        assert_eq!(seen.len(), g.len(), "graph is disconnected");
    }

    #[test]
    fn synthetic_graph_is_deterministic() {
        let snap = Snapshot::generate(SnapshotConfig::test_small());
        let a = AsGraph::synthetic(&snap.registry, 7);
        let b = AsGraph::synthetic(&snap.registry, 7);
        let count_edges =
            |g: &AsGraph| -> usize { g.ases().map(|asn| g.neighbors(asn).len()).sum() };
        assert_eq!(count_edges(&a), count_edges(&b));
        assert_eq!(a.providers(Asn(24940)), b.providers(Asn(24940)));
    }
}
