//! The BGP hijack engine.
//!
//! Two attack flavours from the paper (§V-A):
//!
//! * **More-specific prefix hijack** — the attacker announces a longer
//!   prefix than the victim's; longest-prefix-match means *every* AS
//!   forwards the covered traffic to the attacker, so each hijacked
//!   prefix cleanly isolates all Bitcoin nodes inside it. Figure 4 counts
//!   how many such announcements are needed per victim AS.
//! * **Same-length origin hijack** — the attacker announces the victim's
//!   exact prefix; the Internet splits according to BGP preference, and
//!   only part of it (the *capture set*) routes to the attacker.
//!
//! The engine also produces the paper's cost/advantage accounting: "taking
//! the number of isolated nodes as an advantage and the number of prefixes
//! to be hijacked as an effort".

use crate::graph::AsGraph;
use crate::routing::RouteMap;
use bp_topology::{Asn, NodeId, Snapshot};

/// Result of hijacking a set of prefixes inside one victim AS.
#[derive(Debug, Clone, PartialEq)]
pub struct HijackOutcome {
    /// The victim AS.
    pub victim: Asn,
    /// Number of prefixes announced (the attacker's effort).
    pub prefixes_hijacked: usize,
    /// Nodes whose traffic the attacker now intercepts (the advantage).
    pub isolated_nodes: Vec<NodeId>,
    /// Fraction of the victim AS's nodes isolated.
    pub fraction_of_as: f64,
}

impl HijackOutcome {
    /// The paper's cost/advantage ratio: prefixes per isolated node
    /// (lower = more efficient attack). `f64::INFINITY` when nothing was
    /// isolated.
    pub fn cost_per_node(&self) -> f64 {
        if self.isolated_nodes.is_empty() {
            f64::INFINITY
        } else {
            self.prefixes_hijacked as f64 / self.isolated_nodes.len() as f64
        }
    }
}

/// Plans and evaluates more-specific prefix hijacks against a snapshot.
#[derive(Debug, Clone)]
pub struct HijackEngine<'a> {
    snapshot: &'a Snapshot,
}

impl<'a> HijackEngine<'a> {
    /// Creates an engine over a snapshot.
    pub fn new(snapshot: &'a Snapshot) -> Self {
        Self { snapshot }
    }

    /// The cumulative isolation curve of Figure 4: element `k-1` is the
    /// fraction of the AS's nodes isolated after hijacking its `k` most
    /// populated prefixes.
    ///
    /// Nodes without a covering IPv4 prefix (IPv6 carve-outs) cannot be
    /// isolated this way and cap the curve below 1.0, mirroring the
    /// paper's observation that a handful of nodes per AS resist prefix
    /// hijacks.
    pub fn isolation_curve(&self, victim: Asn) -> Vec<f64> {
        let total = self.snapshot.nodes_in_as(victim).len();
        if total == 0 {
            return Vec::new();
        }
        let counts = self.snapshot.prefix_node_counts(victim);
        let mut acc = 0usize;
        counts
            .iter()
            .map(|c| {
                acc += c;
                acc as f64 / total as f64
            })
            .collect()
    }

    /// Minimum number of prefixes to isolate at least `fraction` of the
    /// victim's nodes, or `None` if the curve never reaches it.
    pub fn prefixes_for_fraction(&self, victim: Asn, fraction: f64) -> Option<usize> {
        self.isolation_curve(victim)
            .iter()
            .position(|f| *f + 1e-12 >= fraction)
            .map(|i| i + 1)
    }

    /// Executes a greedy hijack of the victim's `k` most populated
    /// prefixes and reports the outcome.
    pub fn hijack_top_prefixes(&self, victim: Asn, k: usize) -> HijackOutcome {
        // Rank prefixes by node population.
        let record = self.snapshot.registry.as_record(victim);
        let prefix_count = record.map(|r| r.prefixes.len()).unwrap_or(0);
        let mut per_prefix: Vec<(u32, Vec<NodeId>)> = (0..prefix_count as u32)
            .map(|pi| (pi, Vec::new()))
            .collect();
        let members = self.snapshot.nodes_in_as(victim);
        for id in &members {
            let n = self.snapshot.node(*id);
            if let Some(pi) = n.prefix_idx {
                per_prefix[pi as usize].1.push(*id);
            }
        }
        per_prefix.sort_by_key(|(_, nodes)| std::cmp::Reverse(nodes.len()));

        let k = k.min(per_prefix.len());
        let isolated: Vec<NodeId> = per_prefix
            .iter()
            .take(k)
            .flat_map(|(_, nodes)| nodes.iter().copied())
            .collect();
        let fraction = if members.is_empty() {
            0.0
        } else {
            isolated.len() as f64 / members.len() as f64
        };
        HijackOutcome {
            victim,
            prefixes_hijacked: k,
            isolated_nodes: isolated,
            fraction_of_as: fraction,
        }
    }

    /// Hijacks entire ASes (every active prefix) — the coarse attack the
    /// paper uses for hash-power isolation ("if an attacker hijacks 3
    /// ASes, he can isolate more than 60 % of the Bitcoin hash power").
    pub fn hijack_ases(&self, victims: &[Asn]) -> Vec<NodeId> {
        victims
            .iter()
            .flat_map(|asn| self.snapshot.nodes_in_as(*asn))
            .collect()
    }
}

/// One AS's prebuilt hijack plan: its member count and per-prefix node
/// lists, largest population first.
#[derive(Debug, Clone)]
struct RankedAs {
    /// All member nodes in ascending id order, including ones without a
    /// covering IPv4 prefix.
    members: Vec<NodeId>,
    /// Per-prefix node lists, ranked descending by population. The rank
    /// is a stable sort over the registry's prefix order, exactly like
    /// [`HijackEngine::hijack_top_prefixes`], so outcomes match the
    /// engine byte for byte.
    prefixes: Vec<Vec<NodeId>>,
}

/// A prebuilt, owned hijack-planning index over a whole snapshot.
///
/// [`HijackEngine`] re-ranks the victim's prefixes on every call — fine
/// for a batch pipeline that evaluates each AS once, wasteful for a
/// long-running query engine that answers thousands of overlapping
/// what-if queries. This index performs the ranking once for every AS
/// (one pass over the node table) and answers each query with a map
/// lookup plus an `O(k)` scan. It owns its data (no borrow of the
/// snapshot), so a server can keep it alongside the snapshot without
/// self-referential lifetimes.
///
/// Every result is bit-identical to the corresponding [`HijackEngine`]
/// call on the same snapshot.
#[derive(Debug, Clone, Default)]
pub struct HijackIndex {
    per_as: std::collections::BTreeMap<u32, RankedAs>,
}

impl HijackIndex {
    /// Builds the index: one pass over the registry and one over the
    /// node table.
    pub fn new(snapshot: &Snapshot) -> Self {
        let mut per_as: std::collections::BTreeMap<u32, RankedAs> = snapshot
            .registry
            .ases()
            .map(|record| {
                (
                    record.asn.0,
                    RankedAs {
                        members: Vec::new(),
                        prefixes: vec![Vec::new(); record.prefixes.len()],
                    },
                )
            })
            .collect();
        for i in 0..snapshot.node_count() as u32 {
            let n = snapshot.node(NodeId(i));
            let ranked = per_as.entry(n.asn.0).or_insert_with(|| RankedAs {
                members: Vec::new(),
                prefixes: Vec::new(),
            });
            ranked.members.push(n.id);
            if let Some(pi) = n.prefix_idx {
                ranked.prefixes[pi as usize].push(n.id);
            }
        }
        for ranked in per_as.values_mut() {
            // Stable sort: ties keep registry prefix order, matching the
            // engine's per-call ranking.
            ranked
                .prefixes
                .sort_by_key(|nodes| std::cmp::Reverse(nodes.len()));
        }
        Self { per_as }
    }

    /// ASes that host at least one node, ascending by number — the
    /// query universe a load generator draws targets from.
    pub fn populated_ases(&self) -> Vec<Asn> {
        self.per_as
            .iter()
            .filter(|(_, r)| !r.members.is_empty())
            .map(|(a, _)| Asn(*a))
            .collect()
    }

    /// Nodes hosted by `victim` (0 for an unknown AS).
    pub fn members(&self, victim: Asn) -> usize {
        self.per_as.get(&victim.0).map_or(0, |r| r.members.len())
    }

    /// The Figure 4 isolation curve — see
    /// [`HijackEngine::isolation_curve`].
    pub fn isolation_curve(&self, victim: Asn) -> Vec<f64> {
        let Some(ranked) = self.per_as.get(&victim.0) else {
            return Vec::new();
        };
        if ranked.members.is_empty() {
            return Vec::new();
        }
        let total = ranked.members.len() as f64;
        let mut acc = 0usize;
        ranked
            .prefixes
            .iter()
            .map(|nodes| {
                acc += nodes.len();
                acc as f64 / total
            })
            .collect()
    }

    /// Minimum prefixes to isolate at least `fraction` of the victim —
    /// see [`HijackEngine::prefixes_for_fraction`].
    pub fn prefixes_for_fraction(&self, victim: Asn, fraction: f64) -> Option<usize> {
        self.isolation_curve(victim)
            .iter()
            .position(|f| *f + 1e-12 >= fraction)
            .map(|i| i + 1)
    }

    /// Greedy hijack of the victim's `k` most populated prefixes — see
    /// [`HijackEngine::hijack_top_prefixes`].
    pub fn hijack_top_prefixes(&self, victim: Asn, k: usize) -> HijackOutcome {
        let Some(ranked) = self.per_as.get(&victim.0) else {
            return HijackOutcome {
                victim,
                prefixes_hijacked: 0,
                isolated_nodes: Vec::new(),
                fraction_of_as: 0.0,
            };
        };
        let k = k.min(ranked.prefixes.len());
        let isolated: Vec<NodeId> = ranked
            .prefixes
            .iter()
            .take(k)
            .flat_map(|nodes| nodes.iter().copied())
            .collect();
        let fraction = if ranked.members.is_empty() {
            0.0
        } else {
            isolated.len() as f64 / ranked.members.len() as f64
        };
        HijackOutcome {
            victim,
            prefixes_hijacked: k,
            isolated_nodes: isolated,
            fraction_of_as: fraction,
        }
    }

    /// Hijacks entire ASes — see [`HijackEngine::hijack_ases`]. Nodes
    /// come out in ascending id order per AS, like the engine's.
    pub fn hijack_ases(&self, victims: &[Asn]) -> Vec<NodeId> {
        victims
            .iter()
            .filter_map(|asn| self.per_as.get(&asn.0))
            .flat_map(|ranked| ranked.members.iter().copied())
            .collect()
    }
}

/// Result of a same-length origin hijack computed over the routing graph.
#[derive(Debug, Clone, PartialEq)]
pub struct OriginHijack {
    /// ASes that route the contested prefix to the attacker.
    pub captured_ases: Vec<Asn>,
    /// Fraction of all ASes captured.
    pub captured_fraction: f64,
}

/// Computes which ASes a same-length origin hijack captures, given the
/// relationship graph. The victim keeps ASes that prefer its announcement;
/// the attacker takes the rest.
pub fn origin_hijack(graph: &AsGraph, victim: Asn, attacker: Asn) -> OriginHijack {
    origin_hijack_with_defense(graph, victim, attacker, &std::collections::HashSet::new())
}

/// Like [`origin_hijack`], but ASes in `defenders` deploy bogus-route
/// purging (Zhang et al., paper §VI): they reject the hijacker's
/// announcement and never re-export it, shielding themselves and every AS
/// whose only path to the attacker ran through them.
pub fn origin_hijack_with_defense(
    graph: &AsGraph,
    victim: Asn,
    attacker: Asn,
    defenders: &std::collections::HashSet<Asn>,
) -> OriginHijack {
    let victim_routes = RouteMap::compute(graph, victim);
    let attacker_routes = RouteMap::compute_with_blocked(graph, attacker, defenders);
    let captured = victim_routes.captured_by(&attacker_routes);
    let total = graph.len().max(1);
    OriginHijack {
        captured_fraction: captured.len() as f64 / total as f64,
        captured_ases: captured,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bp_topology::{Snapshot, SnapshotConfig};

    fn snap() -> Snapshot {
        Snapshot::generate(SnapshotConfig::test_small())
    }

    #[test]
    fn isolation_curve_is_monotone_and_bounded() {
        let s = snap();
        let engine = HijackEngine::new(&s);
        let curve = engine.isolation_curve(Asn(24940));
        assert!(!curve.is_empty());
        for pair in curve.windows(2) {
            assert!(pair[0] <= pair[1] + 1e-12);
        }
        assert!(*curve.last().unwrap() <= 1.0);
        // Hetzner is concentrated: most nodes fall quickly.
        assert!(curve[14.min(curve.len() - 1)] > 0.6);
    }

    #[test]
    fn amazon_needs_many_more_prefixes_than_hetzner() {
        let s = snap();
        let engine = HijackEngine::new(&s);
        let hetzner = engine.prefixes_for_fraction(Asn(24940), 0.8).unwrap();
        let amazon = engine.prefixes_for_fraction(Asn(16509), 0.8).unwrap();
        assert!(amazon > hetzner * 3, "amazon {amazon} vs hetzner {hetzner}");
    }

    #[test]
    fn hijack_outcome_accounting() {
        let s = snap();
        let engine = HijackEngine::new(&s);
        let outcome = engine.hijack_top_prefixes(Asn(24940), 15);
        assert_eq!(outcome.prefixes_hijacked, 15);
        assert!(outcome.fraction_of_as > 0.5);
        assert!(outcome.cost_per_node() < 1.0);
        // All isolated nodes really live in the victim AS.
        for id in &outcome.isolated_nodes {
            assert_eq!(s.node(*id).asn, Asn(24940));
        }
    }

    #[test]
    fn hijack_zero_prefixes_isolates_nothing() {
        let s = snap();
        let engine = HijackEngine::new(&s);
        let outcome = engine.hijack_top_prefixes(Asn(24940), 0);
        assert!(outcome.isolated_nodes.is_empty());
        assert_eq!(outcome.cost_per_node(), f64::INFINITY);
    }

    #[test]
    fn unknown_as_yields_empty_curve() {
        let s = snap();
        let engine = HijackEngine::new(&s);
        assert!(engine.isolation_curve(Asn(424242)).is_empty());
        assert_eq!(engine.prefixes_for_fraction(Asn(424242), 0.5), None);
    }

    #[test]
    fn hijacking_whole_ases_collects_their_nodes() {
        let s = snap();
        let engine = HijackEngine::new(&s);
        let nodes = engine.hijack_ases(&[Asn(37963), Asn(45102)]);
        let expected = s.nodes_in_as(Asn(37963)).len() + s.nodes_in_as(Asn(45102)).len();
        assert_eq!(nodes.len(), expected);
    }

    #[test]
    fn index_matches_engine_everywhere() {
        let s = snap();
        let engine = HijackEngine::new(&s);
        let index = HijackIndex::new(&s);
        for asn in index.populated_ases() {
            assert_eq!(
                index.isolation_curve(asn),
                engine.isolation_curve(asn),
                "curve diverges for {asn:?}"
            );
            for k in [0, 1, 5, 50, 10_000] {
                assert_eq!(
                    index.hijack_top_prefixes(asn, k),
                    engine.hijack_top_prefixes(asn, k),
                    "outcome diverges for {asn:?} k={k}"
                );
            }
            for f in [0.3, 0.8, 1.0] {
                assert_eq!(
                    index.prefixes_for_fraction(asn, f),
                    engine.prefixes_for_fraction(asn, f)
                );
            }
            assert_eq!(index.members(asn), s.nodes_in_as(asn).len());
        }
        // Unknown AS: empty everywhere, like the engine.
        assert!(index.isolation_curve(Asn(424242)).is_empty());
        assert_eq!(index.prefixes_for_fraction(Asn(424242), 0.5), None);
        let empty = index.hijack_top_prefixes(Asn(424242), 3);
        assert!(empty.isolated_nodes.is_empty());
        assert_eq!(empty.prefixes_hijacked, 0);
        // Whole-AS hijacks include prefix-less nodes, like the engine.
        let victims = [Asn(37963), Asn(45102)];
        assert_eq!(index.hijack_ases(&victims), engine.hijack_ases(&victims));
    }

    #[test]
    fn route_purging_shrinks_the_capture_set() {
        let s = snap();
        let g = AsGraph::synthetic(&s.registry, 3);
        let undefended = origin_hijack(&g, Asn(24940), Asn(16509));
        // The biggest transit ASes deploy purging.
        let defenders: std::collections::HashSet<Asn> = (0..8).map(|i| Asn(65_000 + i)).collect();
        let defended = origin_hijack_with_defense(&g, Asn(24940), Asn(16509), &defenders);
        assert!(
            defended.captured_fraction < undefended.captured_fraction,
            "defense did not help: {} vs {}",
            defended.captured_fraction,
            undefended.captured_fraction
        );
        // Defenders themselves are never captured.
        for d in &defenders {
            assert!(!defended.captured_ases.contains(d));
        }
    }

    #[test]
    fn origin_hijack_captures_part_of_internet() {
        let s = snap();
        let g = AsGraph::synthetic(&s.registry, 3);
        let result = origin_hijack(&g, Asn(24940), Asn(16509));
        assert!(result.captured_fraction > 0.0);
        assert!(result.captured_fraction < 1.0);
        // The attacker itself is in its own capture set.
        assert!(result.captured_ases.contains(&Asn(16509)));
    }
}
