//! BGP substrate: AS relationship graph, valley-free routing, and the
//! prefix-hijack engine behind the paper's spatial partitioning attack.
//!
//! The paper validates spatial partitioning by grouping each AS's Bitcoin
//! nodes under its announced BGP prefixes and counting how many prefix
//! hijacks isolate a given fraction of nodes (Figure 4). This crate
//! implements that analysis plus a routing-level model of same-length
//! origin hijacks over a synthetic Gao–Rexford AS hierarchy.
//!
//! # Examples
//!
//! ```
//! use bp_bgp::HijackEngine;
//! use bp_topology::{Asn, Snapshot, SnapshotConfig};
//!
//! let snap = Snapshot::generate(SnapshotConfig::test_small());
//! let engine = HijackEngine::new(&snap);
//! let outcome = engine.hijack_top_prefixes(Asn(24940), 15);
//! assert!(outcome.fraction_of_as > 0.5); // Hetzner falls fast
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod graph;
pub mod hijack;
pub mod routing;

pub use graph::{AsGraph, Relationship};
pub use hijack::{
    origin_hijack, origin_hijack_with_defense, HijackEngine, HijackIndex, HijackOutcome,
    OriginHijack,
};
pub use routing::{Route, RouteClass, RouteMap};
