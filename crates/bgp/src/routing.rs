//! Valley-free (Gao–Rexford) route computation.
//!
//! Routes propagate from an origin AS outward under the standard export
//! policy: a route learned from a **customer** is exported to everyone; a
//! route learned from a **peer** or **provider** is exported only to
//! customers. Each AS prefers customer routes over peer routes over
//! provider routes, then shorter AS paths.
//!
//! The computation is the classic three-stage BFS:
//!
//! 1. *customer routes* — walk provider edges up from the origin;
//! 2. *peer routes* — one peer hop off any customer route;
//! 3. *provider routes* — walk customer edges down from anything reached.
//!
//! This gives, for every AS, the route class and AS-path length it would
//! use toward the origin — enough to decide, when a hijacker announces the
//! same prefix, which ASes follow the attacker and which stay with the
//! victim.

use crate::graph::{AsGraph, Relationship};
use bp_topology::Asn;
use std::collections::{HashMap, VecDeque};

/// The class of a route, in decreasing order of preference.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum RouteClass {
    /// Learned from a customer (revenue-generating, most preferred).
    Customer,
    /// Learned from a peer.
    Peer,
    /// Learned from a provider (costs money, least preferred).
    Provider,
    /// The AS originates the prefix itself.
    Origin,
}

/// One AS's best route to an origin.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Route {
    /// Preference class (origin beats everything).
    pub class: RouteClass,
    /// AS-path length in hops (0 for the origin itself).
    pub path_len: u32,
}

impl Route {
    /// BGP-style preference: origin first, then customer > peer >
    /// provider, then shorter path. Returns `true` when `self` is
    /// preferred over `other`.
    pub fn prefer_over(&self, other: &Route) -> bool {
        let rank = |r: &Route| -> (u8, u32) {
            let class_rank = match r.class {
                RouteClass::Origin => 0,
                RouteClass::Customer => 1,
                RouteClass::Peer => 2,
                RouteClass::Provider => 3,
            };
            (class_rank, r.path_len)
        };
        rank(self) < rank(other)
    }
}

/// Per-AS best routes toward one origin's announcement.
#[derive(Debug, Clone)]
pub struct RouteMap {
    origin: Asn,
    routes: HashMap<Asn, Route>,
}

impl RouteMap {
    /// Computes valley-free routes from every AS toward `origin`.
    pub fn compute(graph: &AsGraph, origin: Asn) -> Self {
        Self::compute_with_blocked(graph, origin, &std::collections::HashSet::new())
    }

    /// Computes routes while `blocked` ASes refuse the announcement
    /// entirely — the "bogus route purging" defense of Zhang et al.
    /// (paper §VI): a defending AS drops the hijacker's announcement and
    /// therefore never propagates it to its own neighbours.
    pub fn compute_with_blocked(
        graph: &AsGraph,
        origin: Asn,
        blocked: &std::collections::HashSet<Asn>,
    ) -> Self {
        let mut routes: HashMap<Asn, Route> = HashMap::new();
        routes.insert(
            origin,
            Route {
                class: RouteClass::Origin,
                path_len: 0,
            },
        );

        // Stage 1: customer routes — BFS up provider edges. An AS gets a
        // customer route if one of its customers has a customer route (or
        // is the origin).
        let mut queue = VecDeque::from([origin]);
        while let Some(a) = queue.pop_front() {
            let a_len = routes[&a].path_len;
            for (n, rel) in graph.neighbors(a) {
                // `n` sees `a` as a customer when rel-of-n-to-a is
                // Provider (n provides to a).
                if *rel == Relationship::Provider && !routes.contains_key(n) && !blocked.contains(n)
                {
                    routes.insert(
                        *n,
                        Route {
                            class: RouteClass::Customer,
                            path_len: a_len + 1,
                        },
                    );
                    queue.push_back(*n);
                }
            }
        }

        // Stage 2: peer routes — one peer hop off any stage-1/origin route.
        let stage1: Vec<(Asn, u32)> = routes.iter().map(|(a, r)| (*a, r.path_len)).collect();
        for (a, len) in stage1 {
            for (n, rel) in graph.neighbors(a) {
                if *rel == Relationship::Peer && !routes.contains_key(n) && !blocked.contains(n) {
                    routes.insert(
                        *n,
                        Route {
                            class: RouteClass::Peer,
                            path_len: len + 1,
                        },
                    );
                }
            }
        }

        // Stage 3: provider routes — BFS down customer edges from anything
        // routed so far, preferring shorter paths (plain BFS order works
        // because every newly labelled AS has path_len ≥ its parent).
        let mut queue: VecDeque<Asn> = {
            let mut seeds: Vec<(Asn, u32)> = routes.iter().map(|(a, r)| (*a, r.path_len)).collect();
            seeds.sort_by_key(|(_, l)| *l);
            seeds.into_iter().map(|(a, _)| a).collect()
        };
        while let Some(a) = queue.pop_front() {
            let a_len = routes[&a].path_len;
            for (n, rel) in graph.neighbors(a) {
                // `n` sees `a` as a provider when rel-of-n-to-a is
                // Customer (n is a's customer).
                if *rel == Relationship::Customer && !routes.contains_key(n) && !blocked.contains(n)
                {
                    routes.insert(
                        *n,
                        Route {
                            class: RouteClass::Provider,
                            path_len: a_len + 1,
                        },
                    );
                    queue.push_back(*n);
                }
            }
        }

        Self { origin, routes }
    }

    /// The origin this map routes toward.
    pub fn origin(&self) -> Asn {
        self.origin
    }

    /// The route `asn` uses, or `None` if the announcement never reaches
    /// it (disconnected graph).
    pub fn route(&self, asn: Asn) -> Option<Route> {
        self.routes.get(&asn).copied()
    }

    /// Number of ASes that can reach the origin.
    pub fn reach(&self) -> usize {
        self.routes.len()
    }

    /// Given a competing announcement of the *same prefix* by `other`,
    /// returns the set of ASes that prefer the other origin — i.e. the
    /// portion of the Internet a same-length hijack captures.
    pub fn captured_by(&self, other: &RouteMap) -> Vec<Asn> {
        let mut captured = Vec::new();
        for (asn, other_route) in &other.routes {
            if *asn == self.origin {
                continue;
            }
            match self.routes.get(asn) {
                None => captured.push(*asn),
                Some(own_route) => {
                    if other_route.prefer_over(own_route) {
                        captured.push(*asn);
                    }
                }
            }
        }
        captured
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A small valley-free testbed:
    ///
    /// ```text
    ///        T1 ──── T2          (tier-1 peers)
    ///       /  \       \
    ///      A    B       C        (mid tier, customers of tier-1)
    ///     /      \       \
    ///    X        Y       Z      (stubs)
    /// ```
    fn testbed() -> AsGraph {
        let mut g = AsGraph::new();
        let (t1, t2) = (Asn(101), Asn(102));
        let (a, b, c) = (Asn(1), Asn(2), Asn(3));
        let (x, y, z) = (Asn(11), Asn(12), Asn(13));
        g.add_peering(t1, t2);
        g.add_transit(t1, a);
        g.add_transit(t1, b);
        g.add_transit(t2, c);
        g.add_transit(a, x);
        g.add_transit(b, y);
        g.add_transit(c, z);
        g
    }

    #[test]
    fn origin_routes_to_itself() {
        let g = testbed();
        let m = RouteMap::compute(&g, Asn(11));
        assert_eq!(
            m.route(Asn(11)),
            Some(Route {
                class: RouteClass::Origin,
                path_len: 0
            })
        );
    }

    #[test]
    fn providers_get_customer_routes() {
        let g = testbed();
        let m = RouteMap::compute(&g, Asn(11)); // origin = X
        let a = m.route(Asn(1)).unwrap();
        assert_eq!(a.class, RouteClass::Customer);
        assert_eq!(a.path_len, 1);
        let t1 = m.route(Asn(101)).unwrap();
        assert_eq!(t1.class, RouteClass::Customer);
        assert_eq!(t1.path_len, 2);
    }

    #[test]
    fn peers_get_peer_routes_and_their_customers_provider_routes() {
        let g = testbed();
        let m = RouteMap::compute(&g, Asn(11)); // origin = X under T1
        let t2 = m.route(Asn(102)).unwrap();
        assert_eq!(t2.class, RouteClass::Peer);
        assert_eq!(t2.path_len, 3);
        // Z sits under T2 → provider route through the peer link.
        let z = m.route(Asn(13)).unwrap();
        assert_eq!(z.class, RouteClass::Provider);
        assert_eq!(z.path_len, 5);
        // Y sits under B under T1 → provider route, no peer hop.
        let y = m.route(Asn(12)).unwrap();
        assert_eq!(y.class, RouteClass::Provider);
        assert_eq!(y.path_len, 4);
    }

    #[test]
    fn announcement_reaches_whole_connected_graph() {
        let g = testbed();
        let m = RouteMap::compute(&g, Asn(12));
        assert_eq!(m.reach(), 8);
    }

    #[test]
    fn same_prefix_hijack_splits_the_internet() {
        let g = testbed();
        // Victim X (under A/T1) vs attacker Z (under C/T2).
        let victim = RouteMap::compute(&g, Asn(11));
        let attacker = RouteMap::compute(&g, Asn(13));
        let captured = victim.captured_by(&attacker);
        // C prefers its customer Z; T2 prefers its customer Z.
        assert!(captured.contains(&Asn(3)));
        assert!(captured.contains(&Asn(102)));
        // A still prefers its own customer X.
        assert!(!captured.contains(&Asn(1)));
        // The attacker "captures" itself trivially.
        assert!(captured.contains(&Asn(13)));
    }

    #[test]
    fn route_preference_ordering() {
        let customer = Route {
            class: RouteClass::Customer,
            path_len: 9,
        };
        let peer = Route {
            class: RouteClass::Peer,
            path_len: 1,
        };
        let provider_short = Route {
            class: RouteClass::Provider,
            path_len: 1,
        };
        let provider_long = Route {
            class: RouteClass::Provider,
            path_len: 4,
        };
        // Class dominates length.
        assert!(customer.prefer_over(&peer));
        assert!(peer.prefer_over(&provider_short));
        // Length breaks ties within a class.
        assert!(provider_short.prefer_over(&provider_long));
    }
}
