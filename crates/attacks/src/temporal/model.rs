//! The analytic temporal-attack model (paper §V-B, Eqs. 1–5, Table VI).
//!
//! Bitcoin's diffusion spreading gives the attacker's connection time to a
//! node an exponential distribution `F(t) = 1 − e^{−λt}` (Eq. 1). To
//! isolate `m` nodes under a total timing budget `T`, the probability of
//! success with a timing assignment `(t_1 … t_m)`, `Σ t_i ≤ T`, is bounded
//! via the Cauchy (AM–GM) inequality by
//!
//! ```text
//! ρ(T) ≤ (1 − e^{−λT/m})^m                          (Eq. 4)
//! ```
//!
//! and, union-bounding over the (T choose m) timing assignments,
//!
//! ```text
//! p ≤ b(m, T) = C(T, m) · (1 − e^{−λT/m})^m         (Eq. 5)
//! ```
//!
//! `b` is monotonically increasing in `T`, so for a target success
//! probability `p` the minimum feasible `T` follows by binary bisection —
//! exactly how the paper fills Table VI.

/// `ln Γ(x)` via the Stirling series with the `1/(12x)` correction —
/// sub-1e-8 relative error for `x ≥ 10`, which the binomial helper
/// guarantees by shifting small arguments up with the recurrence
/// `Γ(x+1) = x·Γ(x)`.
fn ln_gamma(mut x: f64) -> f64 {
    assert!(x > 0.0, "ln_gamma requires positive argument");
    let mut shift = 0.0;
    while x < 10.0 {
        shift -= x.ln();
        x += 1.0;
    }
    let ln2pi = (2.0 * std::f64::consts::PI).ln();
    shift + (x - 0.5) * x.ln() - x + 0.5 * ln2pi + 1.0 / (12.0 * x) - 1.0 / (360.0 * x.powi(3))
}

/// `ln C(n, k)` — natural log of the binomial coefficient.
///
/// # Panics
///
/// Panics if `k > n`.
pub fn ln_binomial(n: u64, k: u64) -> f64 {
    assert!(k <= n, "binomial requires k <= n");
    if k == 0 || k == n {
        return 0.0;
    }
    ln_gamma(n as f64 + 1.0) - ln_gamma(k as f64 + 1.0) - ln_gamma((n - k) as f64 + 1.0)
}

/// Parameters of the analytic model.
///
/// # Examples
///
/// Reproducing the paper's worked example (λ = 0.8, m = 500 → 589 s):
///
/// ```
/// use bp_attacks::temporal::model::TemporalModel;
///
/// let model = TemporalModel::new(0.8);
/// let t = model.min_time_to_isolate(500, 0.8, 100_000).unwrap();
/// assert_eq!(t, 589);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TemporalModel {
    /// Exponential connection-delay rate λ (per second).
    pub lambda: f64,
}

impl TemporalModel {
    /// Creates a model with rate `lambda`.
    ///
    /// # Panics
    ///
    /// Panics unless `lambda` is finite and positive.
    pub fn new(lambda: f64) -> Self {
        assert!(
            lambda.is_finite() && lambda > 0.0,
            "lambda must be finite and positive"
        );
        Self { lambda }
    }

    /// The exact isolation probability of Eq. 2 for a concrete timing
    /// assignment: `ρ(T) = Π_i (1 − e^{−λ t_i})`.
    ///
    /// # Panics
    ///
    /// Panics if the assignment is empty or contains a negative or
    /// non-finite time.
    pub fn isolation_probability(&self, assignment_secs: &[f64]) -> f64 {
        assert!(!assignment_secs.is_empty(), "assignment must be non-empty");
        assert!(
            assignment_secs.iter().all(|t| t.is_finite() && *t >= 0.0),
            "times must be finite and non-negative"
        );
        assignment_secs
            .iter()
            .map(|&t| 1.0 - (-self.lambda * t).exp())
            .product()
    }

    /// The Cauchy (AM–GM) bound of Eq. 4 for a total budget `T` split
    /// over `m` nodes: `(1 − e^{−λT/m})^m`. Every concrete assignment
    /// with `Σ t_i ≤ T` satisfies
    /// [`isolation_probability`](Self::isolation_probability) ≤ this.
    pub fn cauchy_bound(&self, m: u64, t_secs: f64) -> f64 {
        assert!(m > 0, "must target at least one node");
        assert!(
            t_secs.is_finite() && t_secs >= 0.0,
            "budget must be finite and non-negative"
        );
        (1.0 - (-self.lambda * t_secs / m as f64).exp()).powi(m as i32)
    }

    /// `ln b(m, T)` of Eq. 5. Returns `-inf` when `T < m` (no valid
    /// timing assignment gives every node at least one second).
    pub fn ln_isolation_bound(&self, m: u64, t_secs: u64) -> f64 {
        assert!(m > 0, "must target at least one node");
        if t_secs < m {
            return f64::NEG_INFINITY;
        }
        let per_node = self.lambda * t_secs as f64 / m as f64;
        // ln(1 − e^{−x}), stable for small and large x.
        let ln_term = (-(-per_node).exp()).ln_1p();
        ln_binomial(t_secs, m) + m as f64 * ln_term
    }

    /// `b(m, T)` of Eq. 5, clamped to `[0, 1]` (the raw union bound can
    /// exceed 1, where it is vacuous).
    pub fn isolation_bound(&self, m: u64, t_secs: u64) -> f64 {
        self.ln_isolation_bound(m, t_secs).exp().min(1.0)
    }

    /// The minimum timing constraint `T` (seconds) such that the Eq. 5
    /// bound reaches the target success probability `p` — a Table VI
    /// cell. Solved by binary bisection on the monotone `b(m, ·)`.
    ///
    /// Returns `None` if even `max_t_secs` cannot reach the bound.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < p < 1` and `m > 0`.
    pub fn min_time_to_isolate(&self, m: u64, p: f64, max_t_secs: u64) -> Option<u64> {
        self.min_time_to_isolate_counted(m, p, max_t_secs).0
    }

    /// [`min_time_to_isolate`](Self::min_time_to_isolate) plus the number
    /// of bisection steps it took — the cost driver behind a Table VI
    /// sweep, exposed for the observability layer.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < p < 1` and `m > 0`.
    pub fn min_time_to_isolate_counted(
        &self,
        m: u64,
        p: f64,
        max_t_secs: u64,
    ) -> (Option<u64>, u64) {
        assert!(p > 0.0 && p < 1.0, "p must lie strictly in (0, 1)");
        assert!(m > 0, "must target at least one node");
        let target = p.ln();
        if self.ln_isolation_bound(m, max_t_secs) < target {
            return (None, 0);
        }
        let mut steps = 0u64;
        let (mut lo, mut hi) = (m, max_t_secs);
        while lo < hi {
            steps += 1;
            let mid = lo + (hi - lo) / 2;
            if self.ln_isolation_bound(m, mid) >= target {
                hi = mid;
            } else {
                lo = mid + 1;
            }
        }
        (Some(lo), steps)
    }

    /// Generates the full Table VI grid: rows are λ values (this model's
    /// λ is ignored), columns are target node counts.
    pub fn table_vi(lambdas: &[f64], node_counts: &[u64], p: f64) -> Vec<(f64, Vec<Option<u64>>)> {
        Self::table_vi_metered(lambdas, node_counts, p, None)
    }

    /// [`table_vi`](Self::table_vi), recording `temporal.model.cells` and
    /// `temporal.model.bisection_steps` into `reg` when given. The table
    /// itself is identical with or without a registry.
    pub fn table_vi_metered(
        lambdas: &[f64],
        node_counts: &[u64],
        p: f64,
        reg: Option<&bp_obs::Registry>,
    ) -> Vec<(f64, Vec<Option<u64>>)> {
        Self::table_vi_instrumented(lambdas, node_counts, p, reg, None)
    }

    /// [`table_vi_metered`](Self::table_vi_metered), additionally emitting
    /// one `model_bisect` trace record per sweep cell into `tracer` when
    /// given (time = cell ordinal, node = λ row index, `a` = target node
    /// count, `b` = bisection steps). The table itself is identical with
    /// or without instrumentation.
    pub fn table_vi_instrumented(
        lambdas: &[f64],
        node_counts: &[u64],
        p: f64,
        reg: Option<&bp_obs::Registry>,
        tracer: Option<&mut bp_obs::Tracer>,
    ) -> Vec<(f64, Vec<Option<u64>>)> {
        Self::table_vi_offset_instrumented(lambdas, node_counts, p, reg, tracer, 0)
    }

    /// [`table_vi_instrumented`](Self::table_vi_instrumented) for a slice
    /// of the λ grid starting at `row_offset`: trace cell ordinals and
    /// row indices are numbered as if the full grid were swept serially,
    /// so per-row calls concatenated in λ order reproduce the exact
    /// serial record stream. This is the decomposition hook the
    /// `bp-bench` task DAG uses to fan Table VI out one task per λ.
    pub fn table_vi_offset_instrumented(
        lambdas: &[f64],
        node_counts: &[u64],
        p: f64,
        reg: Option<&bp_obs::Registry>,
        mut tracer: Option<&mut bp_obs::Tracer>,
        row_offset: usize,
    ) -> Vec<(f64, Vec<Option<u64>>)> {
        let mut cells = (row_offset * node_counts.len()) as u64;
        let mut bisection_steps = 0u64;
        let table = lambdas
            .iter()
            .enumerate()
            .map(|(row, &lambda)| {
                let row = row + row_offset;
                let model = TemporalModel::new(lambda);
                let row_values = node_counts
                    .iter()
                    .map(|&m| {
                        let (t, steps) = model.min_time_to_isolate_counted(m, p, 1_000_000);
                        if let Some(tr) = tracer.as_deref_mut() {
                            tr.record(bp_obs::TraceKind::ModelBisect, cells, row as u32, m, steps);
                        }
                        cells += 1;
                        bisection_steps += steps;
                        t
                    })
                    .collect();
                (lambda, row_values)
            })
            .collect();
        if let Some(reg) = reg {
            reg.add(
                "temporal.model.cells",
                (lambdas.len() * node_counts.len()) as u64,
            );
            reg.add("temporal.model.bisection_steps", bisection_steps);
        }
        table
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ln_gamma_matches_factorials() {
        // ln(5!) = ln 120
        assert!((ln_gamma(6.0) - 120.0f64.ln()).abs() < 1e-8);
        // ln(1) = 0
        assert!(ln_gamma(1.0).abs() < 1e-8);
        assert!(ln_gamma(2.0).abs() < 1e-8);
    }

    #[test]
    fn ln_binomial_small_cases() {
        assert!((ln_binomial(5, 2) - 10.0f64.ln()).abs() < 1e-8);
        assert_eq!(ln_binomial(7, 0), 0.0);
        assert_eq!(ln_binomial(7, 7), 0.0);
        assert!((ln_binomial(10, 5) - 252.0f64.ln()).abs() < 1e-7);
    }

    #[test]
    fn bound_is_monotone_in_t() {
        let model = TemporalModel::new(0.8);
        let mut prev = f64::NEG_INFINITY;
        for t in (500..3000).step_by(100) {
            let b = model.ln_isolation_bound(500, t);
            assert!(b >= prev, "bound decreased at T={t}");
            prev = b;
        }
    }

    #[test]
    fn paper_cell_lambda_08_m_500() {
        // Table VI: λ=0.8, m=500 → T = 589 s.
        let model = TemporalModel::new(0.8);
        let t = model.min_time_to_isolate(500, 0.8, 100_000).unwrap();
        assert!(
            (585..=595).contains(&t),
            "λ=0.8, m=500 gave T={t}, paper says 589"
        );
    }

    #[test]
    fn paper_cell_lambda_04_m_100() {
        // Table VI: λ=0.4, m=100 → T = 142 s.
        let model = TemporalModel::new(0.4);
        let t = model.min_time_to_isolate(100, 0.8, 100_000).unwrap();
        assert!(
            (138..=146).contains(&t),
            "λ=0.4, m=100 gave T={t}, paper says 142"
        );
    }

    #[test]
    fn table_vi_shape_holds() {
        // T increases with m (more nodes take longer) and decreases with
        // λ (faster connections help the attacker).
        let lambdas = [0.4, 0.6, 0.9];
        let ms = [100u64, 500, 1000];
        let table = TemporalModel::table_vi(&lambdas, &ms, 0.8);
        for (_, row) in &table {
            let vals: Vec<u64> = row.iter().map(|v| v.unwrap()).collect();
            assert!(vals[0] < vals[1] && vals[1] < vals[2]);
        }
        for col in 0..ms.len() {
            let t_fast = table[2].1[col].unwrap(); // λ=0.9
            let t_slow = table[0].1[col].unwrap(); // λ=0.4
            assert!(t_fast <= t_slow, "column {col}: λ ordering violated");
        }
    }

    #[test]
    fn infeasible_budget_returns_none() {
        let model = TemporalModel::new(0.4);
        // Cannot reach the bound with T barely above m.
        assert_eq!(model.min_time_to_isolate(1000, 0.8, 1001), None);
    }

    #[test]
    fn bound_vacuous_below_m_seconds() {
        let model = TemporalModel::new(0.8);
        assert_eq!(model.ln_isolation_bound(100, 50), f64::NEG_INFINITY);
        assert_eq!(model.isolation_bound(100, 50), 0.0);
    }
}
