//! The executed temporal attack on the event-driven network simulation
//! (paper §V-B, Figure 5).
//!
//! The attacker (a mining pool with ≈30 % of the hash rate): identifies
//! nodes that lag the main chain, connects to them directly, eclipses
//! their honest connections, and feeds them a counterfeit chain mined at
//! its own (slower) rate. "Once a portion of the network is isolated, it
//! can be sustained with successive forks, since the isolated nodes
//! naturally assume that block delays are due to network issues."
//!
//! The same driver optionally runs with the **BlockAware** countermeasure
//! (§VI) enabled: each victim compares its tip's timestamp `t_l` against
//! the current time `t_c` and, when `t_c − t_l` exceeds the threshold
//! (600 s), queries a node outside the attacker's control for the latest
//! block — escaping the partition.

use bp_chain::BlockId;
use bp_net::Simulation;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Temporal-attack parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TemporalAttackConfig {
    /// Attacker's hash share (paper: 0.30).
    pub attacker_hash: f64,
    /// Minimum lag (blocks) for a node to be targeted.
    pub target_min_lag: u64,
    /// Maximum number of victims the attacker connects to.
    pub max_targets: usize,
    /// Attack duration in seconds.
    pub duration_secs: u64,
    /// Whether the attacker eclipses victims (drops their honest links).
    pub eclipse_victims: bool,
    /// BlockAware staleness threshold in seconds; `None` disables the
    /// countermeasure.
    pub blockaware_threshold_secs: Option<u64>,
    /// RNG seed for the attacker's mining process.
    pub seed: u64,
}

impl TemporalAttackConfig {
    /// The paper's scenario: 30 % hash, eclipse on, no countermeasure.
    pub fn paper() -> Self {
        Self {
            attacker_hash: 0.30,
            target_min_lag: 1,
            max_targets: 500,
            duration_secs: 4 * 600,
            eclipse_victims: true,
            blockaware_threshold_secs: None,
            seed: 31,
        }
    }
}

impl Default for TemporalAttackConfig {
    fn default() -> Self {
        Self::paper()
    }
}

/// Outcome of a temporal attack run.
#[derive(Debug, Clone, PartialEq)]
pub struct TemporalAttackReport {
    /// Victim sim-node indices targeted.
    pub victims: Vec<u32>,
    /// Per-minute `(sim seconds, victims on the counterfeit chain)`.
    pub capture_timeline: Vec<(u64, usize)>,
    /// Peak simultaneous captures.
    pub captured_peak: usize,
    /// Captures at attack end.
    pub captured_final: usize,
    /// Counterfeit blocks the attacker mined.
    pub counterfeit_blocks: u64,
    /// Victims that escaped via BlockAware resyncs (0 when disabled).
    pub blockaware_escapes: u64,
    /// Seconds after attack end until fewer than 1 % of victims remained
    /// on the counterfeit chain (`None` if they never recovered within
    /// the post-attack observation window).
    pub recovery_secs: Option<u64>,
}

impl TemporalAttackReport {
    /// Peak captured fraction of the targeted set.
    pub fn peak_fraction(&self) -> f64 {
        if self.victims.is_empty() {
            0.0
        } else {
            self.captured_peak as f64 / self.victims.len() as f64
        }
    }
}

/// Runs the temporal attack against a live simulation.
///
/// The simulation should have been running long enough that lags exist
/// (several block intervals).
pub fn run_temporal_attack(
    sim: &mut Simulation,
    config: TemporalAttackConfig,
) -> TemporalAttackReport {
    let mut rng = StdRng::seed_from_u64(config.seed);

    // 1. Target selection: the lagging nodes a crawler would reveal.
    //    Pool gateways are excluded — the temporal adversary is itself a
    //    mining pool targeting ordinary full nodes (§III); eclipsing a
    //    competitor's stratum infrastructure is the *spatial* attack.
    let lags = sim.lags();
    let mut victims: Vec<u32> = lags
        .iter()
        .enumerate()
        .filter(|(i, &lag)| {
            lag >= config.target_min_lag && !sim.is_zombie(*i as u32) && !sim.is_gateway(*i as u32)
        })
        .map(|(i, _)| i as u32)
        .take(config.max_targets)
        .collect();
    victims.sort_unstable();

    if victims.is_empty() {
        return TemporalAttackReport {
            victims,
            capture_timeline: Vec::new(),
            captured_peak: 0,
            captured_final: 0,
            counterfeit_blocks: 0,
            blockaware_escapes: 0,
            recovery_secs: None,
        };
    }

    // 2. Eclipse: victims only hear the attacker (and each other).
    if config.eclipse_victims {
        let victim_set: std::collections::HashSet<u32> = victims.iter().copied().collect();
        sim.set_partition(move |i| u32::from(victim_set.contains(&i)));
    }

    // 3. The counterfeit chain forks from the current network tip's
    //    lineage so victims accept it as a longer chain.
    let honest_peers: Vec<u32> = (0..sim.node_count() as u32)
        .filter(|i| !victims.contains(i))
        .collect();
    // Fork from the most advanced honest tip the attacker can observe —
    // a lagging fork parent would never out-height the victims.
    let best_honest = honest_peers
        .iter()
        .copied()
        .max_by_key(|&i| sim.height_of(i))
        .expect("at least one honest peer");
    let fork_parent: BlockId = sim.tip_of(best_honest);
    let mut attacker_tip = fork_parent;
    let mut counterfeit_blocks = 0u64;
    let mut blockaware_escapes = 0u64;

    let mean_interval = 600.0 / config.attacker_hash;
    // The attacker arrives with one withheld (pre-mined) block — the
    // standard block-withholding assumption, also used by the paper's
    // grid simulation — so the first counterfeit push lands immediately
    // rather than one full mining interval into the attack.
    let mut next_block_in = 30.0;

    let mut timeline = Vec::new();
    let mut peak = 0usize;
    let start = sim.now().as_secs();
    let mut elapsed = 0u64;

    while elapsed < config.duration_secs {
        let step = 60u64.min(config.duration_secs - elapsed);
        sim.run_for_secs(step);
        elapsed += step;

        // Attacker mining clock.
        next_block_in -= step as f64;
        while next_block_in <= 0.0 {
            attacker_tip = sim.mine_counterfeit(attacker_tip);
            counterfeit_blocks += 1;
            for &v in &victims {
                sim.push_chain(v, attacker_tip);
            }
            next_block_in += sample_exp(&mut rng, mean_interval);
        }

        // BlockAware: victims whose tip is stale "connect to other
        // nodes, and query them for the latest block" (§VI) — several
        // peers per alarm, so one stale helper does not mask the alarm.
        if let Some(threshold) = config.blockaware_threshold_secs {
            let now = sim.now().as_secs();
            for &v in &victims {
                if now.saturating_sub(sim.tip_found_secs(v)) > threshold {
                    let best_helper = (0..3)
                        .map(|_| honest_peers[rng.random_range(0..honest_peers.len())])
                        .max_by_key(|&h| sim.height_of(h))
                        .expect("three samples");
                    sim.push_chain(v, sim.tip_of(best_helper));
                    blockaware_escapes += 1;
                }
            }
        }

        sim.run_for_secs(1); // let the pushes land
        let captured = victims
            .iter()
            .filter(|&&v| sim.follows_counterfeit(v))
            .count();
        peak = peak.max(captured);
        timeline.push((sim.now().as_secs() - start, captured));
    }

    let captured_final = victims
        .iter()
        .filter(|&&v| sim.follows_counterfeit(v))
        .count();

    // 4. Attack ends: release the eclipse and watch recovery.
    if config.eclipse_victims {
        sim.clear_partition();
    }
    let recovery_start = sim.now().as_secs();
    let mut recovery_secs = None;
    for _ in 0..120 {
        sim.run_for_secs(60);
        let still = victims
            .iter()
            .filter(|&&v| sim.follows_counterfeit(v))
            .count();
        if (still as f64) < 0.01 * victims.len() as f64 {
            recovery_secs = Some(sim.now().as_secs() - recovery_start);
            break;
        }
    }

    TemporalAttackReport {
        victims,
        capture_timeline: timeline,
        captured_peak: peak,
        captured_final,
        counterfeit_blocks,
        blockaware_escapes,
        recovery_secs,
    }
}

fn sample_exp(rng: &mut StdRng, mean: f64) -> f64 {
    let u: f64 = rng.random();
    -(1.0 - u).ln() * mean
}

#[cfg(test)]
mod tests {
    use super::*;
    use bp_mining::PoolCensus;
    use bp_net::NetConfig;
    use bp_topology::{Snapshot, SnapshotConfig};

    fn lagging_sim() -> Simulation {
        let snap = Snapshot::generate(SnapshotConfig {
            scale: 0.03,
            tail_as_count: 40,
            version_tail: 10,
            up_fraction: 1.0,
            ..SnapshotConfig::paper()
        });
        // Slow diffusion + loss so real lag exists for the attacker.
        let config = NetConfig {
            seed: 3,
            diffusion_mean_ms: 45_000.0,
            failure_rate: 0.15,
            zombie_fraction: 0.05,
            ..NetConfig::paper()
        };
        let mut sim = Simulation::new(&snap, &PoolCensus::paper_table_iv(), config);
        sim.run_for_secs(6 * 600);
        sim
    }

    #[test]
    fn attack_captures_lagging_nodes() {
        let mut sim = lagging_sim();
        let report = run_temporal_attack(
            &mut sim,
            TemporalAttackConfig {
                duration_secs: 3 * 600,
                max_targets: 100,
                ..TemporalAttackConfig::paper()
            },
        );
        assert!(!report.victims.is_empty(), "no victims found");
        assert!(report.counterfeit_blocks > 0, "attacker mined nothing");
        assert!(
            report.peak_fraction() > 0.5,
            "peak capture only {}",
            report.peak_fraction()
        );
    }

    #[test]
    fn network_recovers_after_attack() {
        let mut sim = lagging_sim();
        let report = run_temporal_attack(
            &mut sim,
            TemporalAttackConfig {
                duration_secs: 2 * 600,
                max_targets: 60,
                ..TemporalAttackConfig::paper()
            },
        );
        assert!(
            report.recovery_secs.is_some(),
            "victims never rejoined the honest chain"
        );
    }

    #[test]
    fn blockaware_reduces_capture() {
        let base_cfg = TemporalAttackConfig {
            duration_secs: 3 * 600,
            max_targets: 80,
            seed: 5,
            ..TemporalAttackConfig::paper()
        };
        let mut sim_a = lagging_sim();
        let unprotected = run_temporal_attack(&mut sim_a, base_cfg);

        let mut sim_b = lagging_sim();
        let protected = run_temporal_attack(
            &mut sim_b,
            TemporalAttackConfig {
                blockaware_threshold_secs: Some(600),
                ..base_cfg
            },
        );
        assert!(protected.blockaware_escapes > 0, "BlockAware never fired");
        // Compare the capture *area* (victim-minutes on the counterfeit
        // chain): with resyncs firing, the protected run must not hold
        // victims longer than the unprotected one.
        let area = |r: &super::TemporalAttackReport| -> usize {
            r.capture_timeline.iter().map(|(_, c)| c).sum()
        };
        assert!(
            area(&protected) <= area(&unprotected),
            "BlockAware did not reduce capture area ({} vs {})",
            area(&protected),
            area(&unprotected)
        );
    }

    #[test]
    fn no_lag_means_no_victims() {
        let snap = Snapshot::generate(SnapshotConfig {
            scale: 0.02,
            tail_as_count: 40,
            version_tail: 10,
            up_fraction: 1.0,
            ..SnapshotConfig::paper()
        });
        let mut sim = Simulation::new(&snap, &PoolCensus::paper_table_iv(), NetConfig::fast_test());
        sim.run_for_secs(1800);
        sim.run_for_secs(120);
        let report = run_temporal_attack(
            &mut sim,
            TemporalAttackConfig {
                target_min_lag: 3,
                duration_secs: 600,
                ..TemporalAttackConfig::paper()
            },
        );
        assert!(report.victims.is_empty());
        assert_eq!(report.captured_peak, 0);
    }
}
