//! Temporal partitioning (paper §V-B): the analytic isolation model
//! (Table VI), the empirical vulnerable-node optimizer (Table V), the
//! grid fork simulator (Figure 7) and the executed attack on the
//! event-driven network simulation.

pub mod attack;
pub mod grid;
pub mod model;
pub mod optimizer;

pub use attack::{run_temporal_attack, TemporalAttackConfig, TemporalAttackReport};
pub use grid::{span_ratio_delay, GridConfig, GridSim, GridSnapshot};
pub use model::TemporalModel;
pub use optimizer::{table_v, TableVRow, PAPER_TIMING_CONSTRAINTS};
