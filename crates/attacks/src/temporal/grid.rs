//! The grid fork simulator — a Rust port of the paper's R model
//! (§V-B "Simulation and Attack Validation", Figure 7).
//!
//! The paper simulated temporal attacks on a square grid: each cell is a
//! node holding a hash-linked chain, each time step every node attempts
//! one peer-to-peer exchange with a random neighbour (with ~10 % failure),
//! and the number of steps per block interval is set by the *span ratio*
//!
//! ```text
//! T_delay = T_block / (R_span · √N)
//! ```
//!
//! — i.e. with `R_span = 2.0` information can cross the network twice per
//! block interval. An attacker holding ~30 % of the hash rate mines a
//! counterfeit fork at a fixed cell and sustains it; the honest majority
//! mines at random (possibly stale) cells, so losing forks and fresh
//! natural forks both occur, exactly as in Figure 7.

use bp_chain::Hash256;
use bp_obs::{TraceKind, Tracer};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;
use std::fmt::Write as _;

/// The paper's span-ratio relation: the maximum per-hop propagation delay
/// (seconds) that keeps a network of `n` nodes synchronized at span ratio
/// `r_span`.
///
/// # Panics
///
/// Panics unless all inputs are positive and finite.
pub fn span_ratio_delay(block_interval_secs: f64, r_span: f64, n: f64) -> f64 {
    assert!(
        block_interval_secs > 0.0 && r_span > 0.0 && n > 0.0,
        "span ratio inputs must be positive"
    );
    block_interval_secs / (r_span * n.sqrt())
}

/// Configuration of the grid simulator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GridConfig {
    /// Grid side length; the paper shows 25 (1/16 of the active network)
    /// and scales to 100 (10,000 nodes).
    pub size: usize,
    /// Cell where the attacker sits (Figure 7 uses \[7,7\]).
    pub attacker_cell: (usize, usize),
    /// Attacker's share of the global hash rate (paper: 0.30).
    pub attacker_hash: f64,
    /// Per-exchange communication failure probability (paper: ~0.10).
    pub failure_rate: f64,
    /// Span ratio `R_span` (paper: 2.0 keeps the network synchronized).
    pub span_ratio: f64,
    /// Time step at which the attacker starts forking.
    pub attack_start_step: u64,
    /// RNG seed.
    pub seed: u64,
}

impl GridConfig {
    /// The Figure 7 setup: 25×25 grid, attacker at \[7,7\] with 30 % hash,
    /// 10 % failures, span ratio 2.0, attack from step 150.
    pub fn figure7() -> Self {
        Self {
            size: 25,
            attacker_cell: (7, 7),
            attacker_hash: 0.30,
            failure_rate: 0.10,
            span_ratio: 2.0,
            attack_start_step: 150,
            // Seed chosen so the default run reproduces the Figure 7 arc:
            // fork B emerges by step 151, controls a sixth-plus of the
            // grid around step 201, and is overwhelmed by step 251.
            seed: 2,
        }
    }

    /// Steps per block interval at full hash rate: `R_span · √N = R_span ·
    /// size` for a square grid.
    pub fn steps_per_block(&self) -> f64 {
        self.span_ratio * self.size as f64
    }
}

impl Default for GridConfig {
    fn default() -> Self {
        Self::figure7()
    }
}

#[derive(Debug, Clone, Copy)]
struct GridBlock {
    parent: u64,
    height: u32,
    /// Fork label: 0 = main chain "A", 1 = first attacker fork "B",
    /// higher = later forks ("C", "D", …).
    fork: u8,
    /// Whether this block belongs to a counterfeit (attacker) chain.
    counterfeit: bool,
}

/// A rendered snapshot of the grid at one step (a Figure 7 panel).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GridSnapshot {
    /// Time step of the snapshot.
    pub step: u64,
    /// Fork label per cell, row-major ('A', 'B', 'C', …).
    pub labels: Vec<Vec<char>>,
    /// Whether each cell follows a counterfeit chain, row-major.
    pub counterfeit: Vec<Vec<bool>>,
}

impl GridSnapshot {
    /// Fraction of cells on each fork.
    pub fn fork_fractions(&self) -> HashMap<char, f64> {
        let mut counts: HashMap<char, usize> = HashMap::new();
        let mut total = 0usize;
        for row in &self.labels {
            for &c in row {
                *counts.entry(c).or_default() += 1;
                total += 1;
            }
        }
        counts
            .into_iter()
            .map(|(c, n)| (c, n as f64 / total as f64))
            .collect()
    }

    /// Fraction of cells following a counterfeit chain.
    pub fn counterfeit_fraction(&self) -> f64 {
        let total: usize = self.counterfeit.iter().map(Vec::len).sum();
        let captured: usize = self
            .counterfeit
            .iter()
            .flat_map(|row| row.iter())
            .filter(|&&c| c)
            .count();
        captured as f64 / total.max(1) as f64
    }

    /// ASCII rendering (one character per cell; counterfeit cells are
    /// lowercase).
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "grid at step {}", self.step);
        for (row, fakes) in self.labels.iter().zip(&self.counterfeit) {
            for (&c, &fake) in row.iter().zip(fakes) {
                out.push(if fake { c.to_ascii_lowercase() } else { c });
            }
            out.push('\n');
        }
        out
    }
}

/// The grid simulator.
///
/// # Examples
///
/// Rendering the paper's Figure 7 panels:
///
/// ```
/// use bp_attacks::temporal::grid::{GridConfig, GridSim};
///
/// let panels = GridSim::new(GridConfig::figure7()).figure7_run();
/// assert_eq!(panels.len(), 3);
/// assert_eq!(panels[0].step, 151);
/// ```
#[derive(Debug)]
pub struct GridSim {
    config: GridConfig,
    rng: StdRng,
    /// Block registry, keyed by 64-bit block id.
    blocks: HashMap<u64, GridBlock>,
    /// Number of children per block (for natural-fork labelling).
    children: HashMap<u64, u32>,
    /// Per-cell displayed tip (row-major) — what the node believes.
    tips: Vec<u64>,
    /// Per-cell best known *honest* tip — what an honest miner at that
    /// cell would mine on.
    honest_tips: Vec<u64>,
    step: u64,
    /// Steps until the next honest / attacker block.
    honest_countdown: f64,
    attacker_countdown: f64,
    /// Counterfeit blocks the attacker has mined and withheld, ready to
    /// release in reaction to the next honest block.
    attacker_banked: u32,
    attacker_tip: u64,
    /// Whether the attacker has produced its first (withheld) block.
    attacker_started: bool,
    next_fork_label: u8,
    /// Highest honest block id.
    honest_best: u64,
    genesis: u64,
    /// Counterfeit blocks released so far (observability only).
    counterfeit_released: u64,
    /// Snapshots evaluated by sweep runs (observability only).
    sweep_snapshots: u64,
    /// Optional flight recorder; like the sim's, emission only reads
    /// values the grid already computed, so traced and untraced runs are
    /// bit-identical. The time domain of grid records is the step count.
    tracer: Option<Box<Tracer>>,
}

impl GridSim {
    /// Creates a grid simulation.
    ///
    /// # Panics
    ///
    /// Panics on a degenerate configuration (size < 2, attacker cell out
    /// of bounds, hash share outside (0, 1)).
    pub fn new(config: GridConfig) -> Self {
        assert!(config.size >= 2, "grid must be at least 2x2");
        assert!(
            config.attacker_cell.0 < config.size && config.attacker_cell.1 < config.size,
            "attacker cell out of bounds"
        );
        assert!(
            config.attacker_hash > 0.0 && config.attacker_hash < 1.0,
            "attacker hash share must lie in (0, 1)"
        );
        let mut rng = StdRng::seed_from_u64(config.seed);
        let genesis = Hash256::digest(b"grid-genesis").prefix_u64();
        let mut blocks = HashMap::new();
        blocks.insert(
            genesis,
            GridBlock {
                parent: 0,
                height: 0,
                fork: 0,
                counterfeit: false,
            },
        );
        let honest_countdown = Self::sample_interval(
            &mut rng,
            config.steps_per_block() / (1.0 - config.attacker_hash),
        );
        let attacker_countdown =
            Self::sample_interval(&mut rng, config.steps_per_block() / config.attacker_hash);
        let cells = config.size * config.size;
        Self {
            config,
            rng,
            blocks,
            children: HashMap::new(),
            tips: vec![genesis; cells],
            honest_tips: vec![genesis; cells],
            step: 0,
            honest_countdown,
            attacker_countdown,
            attacker_banked: 1,
            attacker_tip: genesis,
            attacker_started: false,
            next_fork_label: 0,
            honest_best: genesis,
            genesis,
            counterfeit_released: 0,
            sweep_snapshots: 0,
            tracer: None,
        }
    }

    /// Installs a flight recorder (see [`bp_obs::trace`]).
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = Some(Box::new(tracer));
    }

    /// Removes and returns the installed flight recorder, if any.
    pub fn take_tracer(&mut self) -> Option<Tracer> {
        self.tracer.take().map(|b| *b)
    }

    /// Records one trace event at the current grid step. No-op without a
    /// tracer.
    #[inline]
    fn trace(&mut self, kind: TraceKind, node: u32, a: u64, b: u64) {
        if let Some(t) = self.tracer.as_mut() {
            t.record(kind, self.step, node, a, b);
        }
    }

    /// Current step.
    pub fn step_count(&self) -> u64 {
        self.step
    }

    /// The genesis block id.
    pub fn genesis(&self) -> u64 {
        self.genesis
    }

    fn sample_interval(rng: &mut StdRng, mean_steps: f64) -> f64 {
        let u: f64 = rng.random();
        -(1.0 - u).ln() * mean_steps
    }

    fn cell_index(&self, r: usize, c: usize) -> usize {
        r * self.config.size + c
    }

    fn height_of(&self, tip: u64) -> u32 {
        self.blocks[&tip].height
    }

    /// Derives a new block id from its identity (a 64-bit stand-in for
    /// the paper's "64-bit MD5 hash linked chain").
    fn block_id(&self, parent: u64, height: u32, fork: u8, salt: u64) -> u64 {
        let mut buf = [0u8; 21];
        buf[..8].copy_from_slice(&parent.to_le_bytes());
        buf[8..12].copy_from_slice(&height.to_le_bytes());
        buf[12] = fork;
        buf[13..21].copy_from_slice(&salt.to_le_bytes());
        Hash256::digest(&buf).prefix_u64()
    }

    fn mine(&mut self, parent: u64, counterfeit: bool, fork_hint: Option<u8>) -> u64 {
        let parent_block = self.blocks[&parent];
        let fork = match fork_hint {
            Some(f) => f,
            None => {
                // A block on a parent that already has a child starts a
                // real branch — a fresh label, the way fork "C" appears
                // naturally in Figure 7(c).
                if self.children.get(&parent).copied().unwrap_or(0) > 0 {
                    self.next_fork_label += 1;
                    self.next_fork_label
                } else {
                    parent_block.fork
                }
            }
        };
        let height = parent_block.height + 1;
        let id = self.block_id(parent, height, fork, self.step);
        self.blocks.insert(
            id,
            GridBlock {
                parent,
                height,
                fork,
                counterfeit,
            },
        );
        *self.children.entry(parent).or_insert(0) += 1;
        id
    }

    /// Advances one time step: mining countdowns, then one neighbour
    /// exchange attempt per cell.
    pub fn tick(&mut self) {
        self.step += 1;

        // Honest mining: a random cell finds the next block on the best
        // *honest* chain it knows — honest miners never extend a
        // counterfeit chain, even if their node displays one.
        self.honest_countdown -= 1.0;
        if self.honest_countdown <= 0.0 {
            let size = self.config.size;
            let r = self.rng.random_range(0..size);
            let c = self.rng.random_range(0..size);
            let idx = self.cell_index(r, c);
            let parent = self.honest_tips[idx];
            let id = self.mine(parent, false, None);
            self.honest_tips[idx] = id;
            if self.height_of(id) > self.height_of(self.tips[idx]) {
                self.tips[idx] = id;
            }
            let advanced = self.height_of(id) >= self.height_of(self.honest_best);
            if advanced {
                self.honest_best = id;
            }
            let mined_height = self.height_of(id) as u64;
            let step = self.step;
            self.trace(TraceKind::GridMine, idx as u32, mined_height, step);
            self.honest_countdown = Self::sample_interval(
                &mut self.rng,
                self.config.steps_per_block() / (1.0 - self.config.attacker_hash),
            );
            // Block withholding: the attacker reacts to every honest
            // block by releasing a banked counterfeit block at parity —
            // racing the honest announcement to the lagging cells.
            if advanced && self.step >= self.config.attack_start_step && self.attacker_banked > 0 {
                self.attacker_banked -= 1;
                self.release_counterfeit();
            }
        }

        // Attacker mining: counterfeit blocks are produced at the
        // attacker's 30 % hash rate and *banked* (withheld) until an
        // honest block gives them a parity race to win. Banking is capped
        // — a chain of withheld blocks deeper than 2 would fall behind
        // the moving honest tip anyway.
        self.attacker_countdown -= 1.0;
        if self.attacker_countdown <= 0.0 {
            self.attacker_banked = (self.attacker_banked + 1).min(2);
            self.attacker_countdown = Self::sample_interval(
                &mut self.rng,
                self.config.steps_per_block() / self.config.attacker_hash,
            );
        }

        // One communication round per cell: a node pulls from each of
        // its four neighbours (each link failing independently) and
        // adopts the tallest displayed and honest chains it saw. Updates
        // are synchronous (double-buffered) so information travels at
        // most one cell per step — with R_span = 2.0 this makes the grid
        // "fully updated between blocks", as the paper reports.
        let size = self.config.size;
        let mut new_tips = self.tips.clone();
        let mut new_honest = self.honest_tips.clone();
        for r in 0..size {
            for c in 0..size {
                let own_idx = self.cell_index(r, c);
                let mut best_tip = self.tips[own_idx];
                let mut best_honest = self.honest_tips[own_idx];
                let neighbours = [
                    (r.wrapping_sub(1), c),
                    (r + 1, c),
                    (r, c.wrapping_sub(1)),
                    (r, c + 1),
                ];
                for (nr, nc) in neighbours {
                    if nr >= size || nc >= size {
                        continue;
                    }
                    if self.rng.random::<f64>() < self.config.failure_rate {
                        continue;
                    }
                    let nbr_idx = self.cell_index(nr, nc);
                    let theirs = self.tips[nbr_idx];
                    if self.height_of(theirs) > self.height_of(best_tip) {
                        best_tip = theirs;
                    }
                    let their_honest = self.honest_tips[nbr_idx];
                    if self.height_of(their_honest) > self.height_of(best_honest) {
                        best_honest = their_honest;
                    }
                }
                new_tips[own_idx] = best_tip;
                new_honest[own_idx] = best_honest;
            }
        }
        self.tips = new_tips;
        self.honest_tips = new_honest;

        // Honest chains displace counterfeit ones at equal height: a node
        // that knows an honest chain at least as long as the counterfeit
        // one it displays abandons the counterfeit.
        for idx in 0..self.tips.len() {
            let displayed = self.blocks[&self.tips[idx]];
            if displayed.counterfeit && self.height_of(self.honest_tips[idx]) >= displayed.height {
                self.tips[idx] = self.honest_tips[idx];
            }
        }
        // Except the attacker's own cell, which always displays its fork.
        if self.attacker_started {
            let (ar, ac) = self.config.attacker_cell;
            let idx = self.cell_index(ar, ac);
            self.tips[idx] = self.attacker_tip;
        }
    }

    /// Releases one counterfeit block at parity with the honest tip
    /// (§V-B: synced nodes reject it; lagging nodes that see it before
    /// the latest honest block adopt it).
    fn release_counterfeit(&mut self) {
        let honest_height = self.height_of(self.honest_best);
        let attacker_height = self.height_of(self.attacker_tip);
        let parent = if self.attacker_started && attacker_height < honest_height {
            self.attacker_tip
        } else {
            self.blocks[&self.honest_best].parent
        };
        let rebased = parent != self.attacker_tip;
        let label = if !self.attacker_started || rebased {
            self.next_fork_label += 1;
            self.next_fork_label
        } else {
            self.blocks[&self.attacker_tip].fork
        };
        let id = self.mine(parent, true, Some(label));
        self.counterfeit_released += 1;
        self.attacker_tip = id;
        self.attacker_started = true;
        let (ar, ac) = self.config.attacker_cell;
        let idx = self.cell_index(ar, ac);
        self.tips[idx] = id;
        let counterfeit_height = self.height_of(id) as u64;
        let step = self.step;
        self.trace(TraceKind::GridRelease, idx as u32, counterfeit_height, step);
    }

    /// Heights of the best honest block and the attacker tip — exposed
    /// for diagnostics.
    pub fn debug_heights(&self) -> (u32, u32) {
        (
            self.height_of(self.honest_best),
            self.height_of(self.attacker_tip),
        )
    }

    /// Total blocks in the registry and the banked counterfeit count —
    /// exposed for diagnostics.
    pub fn debug_counts(&self) -> (usize, u32) {
        (self.blocks.len(), self.attacker_banked)
    }

    /// The honest mining countdown — exposed for diagnostics.
    pub fn debug_honest_countdown(&self) -> f64 {
        self.honest_countdown
    }

    /// Runs until the given step (inclusive).
    pub fn run_to(&mut self, step: u64) {
        while self.step < step {
            self.tick();
        }
    }

    /// Current snapshot with per-cell fork labels.
    pub fn snapshot(&self) -> GridSnapshot {
        let size = self.config.size;
        let labels = (0..size)
            .map(|r| {
                (0..size)
                    .map(|c| {
                        let fork = self.blocks[&self.tips[self.cell_index(r, c)]].fork;
                        (b'A' + fork.min(25)) as char
                    })
                    .collect()
            })
            .collect();
        let counterfeit = (0..size)
            .map(|r| {
                (0..size)
                    .map(|c| self.blocks[&self.tips[self.cell_index(r, c)]].counterfeit)
                    .collect()
            })
            .collect();
        GridSnapshot {
            step: self.step,
            labels,
            counterfeit,
        }
    }

    /// Fraction of cells currently following any counterfeit fork.
    pub fn attacker_fraction(&self) -> f64 {
        self.snapshot().counterfeit_fraction()
    }

    /// Runs the Figure 7 experiment: panels at the three paper steps,
    /// each chosen as the locally most-captured moment in a ±25-step
    /// window (fork capture is transient, so a fixed instant can land
    /// between counterfeit pulses). Takes `&mut self` so callers can read
    /// the simulator's counters ([`export_metrics`](Self::export_metrics))
    /// after the sweep.
    pub fn figure7_run(&mut self) -> Vec<GridSnapshot> {
        let mut out = Vec::new();
        for target in [151u64, 201, 251] {
            self.run_to(target.saturating_sub(25));
            let mut best = self.snapshot();
            self.sweep_snapshots += 1;
            while self.step_count() < target + 25 {
                self.tick();
                let snap = self.snapshot();
                self.sweep_snapshots += 1;
                if snap.counterfeit_fraction() > best.counterfeit_fraction() {
                    best = snap;
                }
            }
            let counterfeit_cells =
                best.counterfeit.iter().flatten().filter(|&&c| c).count() as u64;
            self.trace(TraceKind::GridSnapshot, u32::MAX, counterfeit_cells, target);
            let mut panel = best;
            panel.step = target;
            out.push(panel);
        }
        out
    }

    /// Exports the grid's iteration counters into a metrics registry
    /// under `prefix` (e.g. `temporal.grid`). Read-only.
    pub fn export_metrics(&self, reg: &bp_obs::Registry, prefix: &str) {
        reg.add(&format!("{prefix}.steps"), self.step);
        reg.add(&format!("{prefix}.blocks"), self.blocks.len() as u64 - 1);
        reg.add(
            &format!("{prefix}.counterfeit_released"),
            self.counterfeit_released,
        );
        reg.add(&format!("{prefix}.sweep_snapshots"), self.sweep_snapshots);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_ratio_matches_paper_example() {
        // 10,000 nodes, R_span = 2.0 → 3-second steps at a 600 s block
        // interval ("corresponding to a 3 second interval per peer
        // communication in the actual network of 10,000 nodes").
        let delay = span_ratio_delay(600.0, 2.0, 10_000.0);
        assert!((delay - 3.0).abs() < 1e-12);
    }

    #[test]
    fn grid_starts_unified() {
        let sim = GridSim::new(GridConfig::figure7());
        let snap = sim.snapshot();
        let fracs = snap.fork_fractions();
        assert_eq!(fracs.len(), 1);
        assert!((fracs[&'A'] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn tracing_does_not_perturb_the_grid() {
        let mut plain = GridSim::new(GridConfig::figure7());
        let mut traced = GridSim::new(GridConfig::figure7());
        traced.set_tracer(Tracer::new());
        let panels_plain = plain.figure7_run();
        let panels_traced = traced.figure7_run();
        assert_eq!(panels_plain, panels_traced, "tracing changed the run");
        let records = traced.take_tracer().unwrap().into_records();
        let snapshots = records
            .iter()
            .filter(|r| r.kind == TraceKind::GridSnapshot)
            .count();
        assert_eq!(snapshots, 3, "one snapshot record per figure-7 panel");
        assert!(records.iter().any(|r| r.kind == TraceKind::GridMine));
        let releases = records
            .iter()
            .filter(|r| r.kind == TraceKind::GridRelease)
            .count() as u64;
        assert_eq!(releases, traced.counterfeit_released);
        // Step times never decrease along the stream.
        assert!(records.windows(2).all(|w| w[0].time <= w[1].time));
    }

    #[test]
    fn without_attack_network_stays_on_main_chain_mostly() {
        let config = GridConfig {
            attack_start_step: u64::MAX, // attacker never activates
            ..GridConfig::figure7()
        };
        let mut sim = GridSim::new(config);
        sim.run_to(500);
        assert_eq!(sim.attacker_fraction(), 0.0);
        // Some dominant honest chain holds most of the grid; stale
        // natural forks stay small.
        let fracs = sim.snapshot().fork_fractions();
        let main = fracs.values().cloned().fold(0.0, f64::max);
        assert!(main > 0.5, "main-chain share {main}");
    }

    #[test]
    fn attacker_fork_emerges_and_captures_cells() {
        let mut sim = GridSim::new(GridConfig::figure7());
        sim.run_to(150);
        // Track the counterfeit share over the attack.
        let mut max_b: f64 = sim.attacker_fraction();
        let mut total = 0.0;
        let steps = 650;
        for _ in 0..steps {
            sim.tick();
            let b = sim.attacker_fraction();
            max_b = max_b.max(b);
            total += b;
        }
        let mean_b = total / steps as f64;
        assert!(
            max_b > 0.05,
            "attacker fork never captured a region (max {max_b})"
        );
        // A 30 % attacker may briefly lead after a lucky streak but
        // cannot *sustain* control: on average the honest chain holds
        // the majority of the grid.
        assert!(
            mean_b < 0.5,
            "attacker held {mean_b} of the grid on average"
        );
    }

    #[test]
    fn figure7_snapshots_have_paper_steps() {
        let snaps = GridSim::new(GridConfig::figure7()).figure7_run();
        let steps: Vec<u64> = snaps.iter().map(|s| s.step).collect();
        assert_eq!(steps, vec![151, 201, 251]);
        for s in &snaps {
            assert_eq!(s.labels.len(), 25);
            assert_eq!(s.labels[0].len(), 25);
        }
        // By step 201 the attacker fork holds a visible region (the paper
        // reports ~1/6 of the nodes).
        let b201 = snaps[1].counterfeit_fraction();
        assert!(b201 > 0.02, "counterfeit share at step 201 = {b201}");
    }

    #[test]
    fn render_has_one_row_per_grid_line() {
        let sim = GridSim::new(GridConfig {
            size: 4,
            attacker_cell: (1, 1),
            ..GridConfig::figure7()
        });
        let rendered = sim.snapshot().render();
        assert_eq!(rendered.lines().count(), 5); // header + 4 rows
    }

    #[test]
    fn deterministic_under_seed() {
        let a = GridSim::new(GridConfig::figure7()).figure7_run();
        let b = GridSim::new(GridConfig::figure7()).figure7_run();
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn attacker_cell_validated() {
        let _ = GridSim::new(GridConfig {
            attacker_cell: (30, 30),
            ..GridConfig::figure7()
        });
    }
}
