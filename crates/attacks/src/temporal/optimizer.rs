//! The empirical vulnerable-node optimizer (paper Table V).
//!
//! Runs the paper's optimization — *maximum number of nodes lagging at
//! least `b` blocks for at least `T` minutes* — over a crawled lag matrix
//! for a grid of timing constraints.

use bp_crawler::{LagMatrix, VulnerabilityWindow};

/// One row of Table V: a timing constraint and the resulting maxima for
/// the ≥1 / ≥2 / ≥5-blocks-behind criteria.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TableVRow {
    /// Timing constraint in minutes.
    pub t_minutes: u64,
    /// Maximum vulnerable nodes at least 1 block behind.
    pub ge1: Option<VulnerabilityWindow>,
    /// … at least 2 blocks behind.
    pub ge2: Option<VulnerabilityWindow>,
    /// … at least 5 blocks behind.
    pub ge5: Option<VulnerabilityWindow>,
}

/// The timing constraints the paper reports (minutes).
pub const PAPER_TIMING_CONSTRAINTS: [u64; 9] = [5, 10, 15, 20, 25, 30, 40, 70, 200];

/// Computes Table V from a lag matrix sampled every
/// `sample_period_secs`.
///
/// Constraints shorter than one sample period or longer than the crawl
/// produce `None` entries.
///
/// # Panics
///
/// Panics if `sample_period_secs` is zero.
pub fn table_v(matrix: &LagMatrix, sample_period_secs: u64, t_minutes: &[u64]) -> Vec<TableVRow> {
    assert!(sample_period_secs > 0, "sample period must be positive");
    t_minutes
        .iter()
        .map(|&minutes| {
            let window = ((minutes * 60) / sample_period_secs).max(1) as usize;
            TableVRow {
                t_minutes: minutes,
                ge1: matrix.max_vulnerable(window, 1),
                ge2: matrix.max_vulnerable(window, 2),
                ge5: matrix.max_vulnerable(window, 5),
            }
        })
        .collect()
}

/// Invariant checks shared by tests and benches: counts decrease (weakly)
/// as the constraint grows and as the lag threshold grows.
pub fn rows_are_consistent(rows: &[TableVRow]) -> bool {
    let count = |w: &Option<VulnerabilityWindow>| w.map(|v| v.max_nodes).unwrap_or(0);
    for pair in rows.windows(2) {
        if pair[0].t_minutes < pair[1].t_minutes
            && (count(&pair[1].ge1) > count(&pair[0].ge1)
                || count(&pair[1].ge2) > count(&pair[0].ge2)
                || count(&pair[1].ge5) > count(&pair[0].ge5))
        {
            return false;
        }
    }
    rows.iter()
        .all(|r| count(&r.ge2) <= count(&r.ge1) && count(&r.ge5) <= count(&r.ge2))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A matrix engineered so every Table V monotonicity shows up:
    /// 20 nodes; half lag 1 block for a long stretch, a quarter lag 2,
    /// a few lag 5+.
    fn matrix() -> LagMatrix {
        let mut m = LagMatrix::new(20);
        for t in 0..120 {
            let row: Vec<u64> = (0..20)
                .map(|n| match n {
                    0..=9 => u64::from(t % 30 != 0), // 1 behind, brief resyncs
                    10..=14 => 2,
                    15..=16 => 6,
                    _ => 0,
                })
                .collect();
            m.push_row(&row);
        }
        m
    }

    #[test]
    fn table_v_rows_follow_paper_shape() {
        let m = matrix();
        let rows = table_v(&m, 60, &[5, 10, 15, 40]);
        assert_eq!(rows.len(), 4);
        assert!(rows_are_consistent(&rows));
        // Short constraint captures the flappers; long one only the
        // persistent laggards.
        let ge1_short = rows[0].ge1.unwrap().max_nodes;
        let ge1_long = rows[3].ge1.unwrap().max_nodes;
        assert!(ge1_short > ge1_long);
        assert_eq!(rows[0].ge5.unwrap().max_nodes, 2);
    }

    #[test]
    fn constraints_beyond_crawl_yield_none() {
        let m = matrix();
        let rows = table_v(&m, 60, &[500]);
        assert!(rows[0].ge1.is_none());
    }

    #[test]
    fn paper_constraint_grid_is_sorted() {
        for pair in PAPER_TIMING_CONSTRAINTS.windows(2) {
            assert!(pair[0] < pair[1]);
        }
    }

    #[test]
    fn consistency_detector_catches_violations() {
        let good = vec![
            TableVRow {
                t_minutes: 5,
                ge1: Some(VulnerabilityWindow {
                    max_nodes: 10,
                    fraction: 0.5,
                    at_sample: 0,
                }),
                ge2: Some(VulnerabilityWindow {
                    max_nodes: 5,
                    fraction: 0.25,
                    at_sample: 0,
                }),
                ge5: None,
            },
            TableVRow {
                t_minutes: 10,
                ge1: Some(VulnerabilityWindow {
                    max_nodes: 20, // violates monotonicity in T
                    fraction: 1.0,
                    at_sample: 0,
                }),
                ge2: None,
                ge5: None,
            },
        ];
        assert!(!rows_are_consistent(&good));
    }
}
