//! Countermeasures (paper §VI).
//!
//! * **BlockAware** — a node-local staleness detector: if the timestamp of
//!   the node's latest block `t_l` trails the current time `t_c` by more
//!   than the 600 s block interval, the node knows it is behind and
//!   queries other nodes for the latest block. The temporal-attack driver
//!   supports running with BlockAware enabled; this module adds the
//!   detector itself and a threshold sweep.
//! * **Stratum diversification** — pools spreading stratum servers over
//!   many ASes raise the spatial attacker's cost: more ASes must be
//!   hijacked to isolate the same hash power.

use bp_mining::{MiningPool, PoolCensus, StratumServer};
use bp_topology::Asn;

/// The paper's BlockAware threshold: one expected block interval (600 s).
/// `bp-detect` recasts the predicate as a network-wide detector and uses
/// this threshold as its default and as the latency budget every detector
/// is scored against.
pub const BLOCKAWARE_THRESHOLD_SECS: u64 = 600;

/// The BlockAware staleness predicate: `t_c − t_l > threshold`.
///
/// # Examples
///
/// ```
/// use bp_attacks::countermeasures::blockaware_stale;
///
/// assert!(!blockaware_stale(1000, 500, 600));
/// assert!(blockaware_stale(1200, 500, 600));
/// ```
pub fn blockaware_stale(t_current: u64, t_latest_block: u64, threshold_secs: u64) -> bool {
    t_current.saturating_sub(t_latest_block) > threshold_secs
}

/// Expected detection delay (seconds) and false-alarm rate of BlockAware
/// for a given threshold, under exponential 600 s block arrivals.
///
/// * Detection delay: a partitioned node alarms `threshold` seconds after
///   its last block.
/// * False-alarm probability per block interval: chance an honest gap
///   exceeds the threshold, `P(X > threshold) = e^{-threshold/600}`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BlockAwareTradeoff {
    /// Configured threshold.
    pub threshold_secs: u64,
    /// Seconds from isolation to alarm.
    pub detection_delay_secs: u64,
    /// Probability an honest inter-block gap triggers a false alarm.
    pub false_alarm_rate: f64,
}

/// One cell of the BlockAware threshold sweep. Each threshold is an
/// independent closed-form evaluation, so the artifact pipeline can fan
/// the sweep out as one task per threshold and merge rows in threshold
/// order — [`blockaware_tradeoff`] is the serial reference built from
/// the same cells.
///
/// # Panics
///
/// Panics if `block_interval_secs` is not positive.
pub fn blockaware_tradeoff_one(
    threshold_secs: u64,
    block_interval_secs: f64,
) -> BlockAwareTradeoff {
    assert!(block_interval_secs > 0.0, "block interval must be positive");
    BlockAwareTradeoff {
        threshold_secs,
        detection_delay_secs: threshold_secs,
        false_alarm_rate: (-(threshold_secs as f64) / block_interval_secs).exp(),
    }
}

/// Sweeps BlockAware thresholds — the ablation behind choosing 600 s.
pub fn blockaware_tradeoff(
    thresholds: &[u64],
    block_interval_secs: f64,
) -> Vec<BlockAwareTradeoff> {
    thresholds
        .iter()
        .map(|&t| blockaware_tradeoff_one(t, block_interval_secs))
        .collect()
}

/// Rebuilds a pool census with every pool's stratum servers spread evenly
/// over `hosts` (at most `spread` of them) — the paper's "mining pools
/// should spread stratum servers across various ASes".
///
/// # Panics
///
/// Panics if `spread` is zero or `hosts` is empty.
pub fn diversify_stratum(census: &PoolCensus, hosts: &[Asn], spread: usize) -> PoolCensus {
    assert!(spread > 0, "spread must be positive");
    assert!(!hosts.is_empty(), "need host ASes");
    let pools: Vec<MiningPool> = census
        .pools()
        .iter()
        .enumerate()
        .map(|(i, pool)| {
            let k = spread.min(hosts.len());
            let weight = 1.0 / k as f64;
            let stratum: Vec<StratumServer> = (0..k)
                .map(|j| StratumServer {
                    // Offset per pool so pools do not all share the same
                    // first AS.
                    asn: hosts[(i + j) % hosts.len()],
                    weight,
                })
                .collect();
            // Fix the last weight for exact normalisation.
            let mut stratum = stratum;
            let sum: f64 = stratum.iter().map(|s| s.weight).sum();
            if let Some(last) = stratum.last_mut() {
                last.weight += 1.0 - sum;
            }
            MiningPool::new(pool.name.clone(), pool.hash_share, stratum)
        })
        .collect();
    PoolCensus::from_pools(pools)
}

/// Greedy attacker cost: the minimum number of ASes to hijack to isolate
/// at least `target_share` of the hash rate.
pub fn ases_to_isolate_hash(census: &PoolCensus, target_share: f64) -> usize {
    let mut shares: Vec<(Asn, f64)> = census.hash_share_by_as().into_iter().collect();
    shares.sort_by(|a, b| {
        b.1.partial_cmp(&a.1)
            .expect("finite shares")
            .then(a.0.cmp(&b.0))
    });
    let mut hijacked: Vec<Asn> = Vec::new();
    for (asn, _) in shares {
        if census.isolated_share(&hijacked) >= target_share {
            break;
        }
        hijacked.push(asn);
    }
    hijacked.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stale_predicate_boundary() {
        assert!(!blockaware_stale(600, 0, 600));
        assert!(blockaware_stale(601, 0, 600));
        assert!(!blockaware_stale(0, 600, 600)); // clock behind block time
    }

    #[test]
    fn tradeoff_sweep_shapes() {
        let sweep = blockaware_tradeoff(&[300, 600, 1200, 2400], 600.0);
        // Longer thresholds: slower detection, fewer false alarms.
        for pair in sweep.windows(2) {
            assert!(pair[0].detection_delay_secs < pair[1].detection_delay_secs);
            assert!(pair[0].false_alarm_rate > pair[1].false_alarm_rate);
        }
        // At exactly one block interval the false alarm rate is 1/e.
        assert!((sweep[1].false_alarm_rate - (-1.0f64).exp()).abs() < 1e-12);
    }

    #[test]
    fn diversification_raises_attacker_cost() {
        let census = PoolCensus::paper_table_iv();
        let before = ases_to_isolate_hash(&census, 0.5);
        // Spread every pool over 8 hosting ASes.
        let hosts: Vec<Asn> = [
            24940u32, 16276, 37963, 16509, 14061, 7922, 4134, 51167, 45102, 58563,
        ]
        .into_iter()
        .map(Asn)
        .collect();
        let diversified = diversify_stratum(&census, &hosts, 8);
        let after = ases_to_isolate_hash(&diversified, 0.5);
        assert!(
            after > before,
            "diversification did not raise cost: {before} -> {after}"
        );
        // Hash shares are preserved.
        assert!((diversified.total_share() - census.total_share()).abs() < 1e-9);
    }

    #[test]
    fn concentrated_census_is_cheap_to_attack() {
        let census = PoolCensus::paper_table_iv();
        // AS45102 alone sees >50 %, so one AS suffices.
        assert_eq!(ases_to_isolate_hash(&census, 0.5), 1);
        assert_eq!(ases_to_isolate_hash(&census, 0.0), 0);
    }

    #[test]
    fn tradeoff_cells_match_the_sweep() {
        // The per-threshold cell is the decomposition unit the task DAG
        // fans out; it must agree with the serial sweep bit for bit.
        let thresholds = [150u64, 300, 600, 1200];
        let sweep = blockaware_tradeoff(&thresholds, 600.0);
        for (i, &t) in thresholds.iter().enumerate() {
            assert_eq!(sweep[i], blockaware_tradeoff_one(t, 600.0));
        }
    }

    #[test]
    #[should_panic(expected = "spread must be positive")]
    fn zero_spread_rejected() {
        let census = PoolCensus::paper_table_iv();
        let _ = diversify_stratum(&census, &[Asn(1)], 0);
    }
}
