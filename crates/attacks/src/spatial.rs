//! Spatial partitioning (paper §V-A).
//!
//! Three layers, matching the paper's analysis:
//!
//! 1. **Centralization measurement** — how few ASes/organizations host a
//!    given share of nodes (Figure 3, Table III vs. the 2017 baseline of
//!    Apostolaki et al., the "classical attack").
//! 2. **Prefix-level hijack planning** — via [`bp_bgp::HijackEngine`]
//!    (Figure 4).
//! 3. **Executed eclipse** — imposing the hijack as a partition on the
//!    live network simulation and measuring divergence, including
//!    hash-power isolation (Table IV implications).

use bp_analysis::centralization::{centralization_change, smallest_cover};
use bp_bgp::HijackIndex;
use bp_mining::PoolCensus;
use bp_net::Simulation;
use bp_topology::{Asn, Country, Snapshot};
use std::collections::HashSet;

/// The 2017 baseline from Apostolaki et al. (the paper's Table III
/// comparison): 13 ASes hosted 30 % of nodes, 50 ASes hosted 50 %.
pub const BASELINE_2017_ASES_30: usize = 13;
/// See [`BASELINE_2017_ASES_30`].
pub const BASELINE_2017_ASES_50: usize = 50;

/// Centralization measurement of a snapshot (Figure 3 / Table III).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CentralizationReport {
    /// ASes hosting 30 % of nodes (paper 2018: 8).
    pub ases_30: usize,
    /// ASes hosting 50 % of nodes (paper 2018: 24).
    pub ases_50: usize,
    /// Organizations hosting 30 % (paper: 8).
    pub orgs_30: usize,
    /// Organizations hosting 50 % (paper: 13–21).
    pub orgs_50: usize,
    /// Table III change metric vs. the 2017 AS baseline, for the 30 %
    /// cover.
    pub change_30_pct: f64,
    /// … for the 50 % cover (paper: 52 %).
    pub change_50_pct: f64,
}

/// Measures centralization of a snapshot and compares against the 2017
/// classical-attack baseline.
///
/// # Examples
///
/// ```
/// use bp_attacks::spatial::centralization;
/// use bp_topology::{Snapshot, SnapshotConfig};
///
/// let snapshot = Snapshot::generate(SnapshotConfig::test_small());
/// let report = centralization(&snapshot);
/// assert!(report.ases_30 <= report.ases_50);
/// assert!(report.change_50_pct > 0.0); // centralized vs 2017
/// ```
pub fn centralization(snapshot: &Snapshot) -> CentralizationReport {
    let as_weights = snapshot.as_weights();
    let org_weights = snapshot.org_weights();
    let ases_30 = smallest_cover(&as_weights, 0.30);
    let ases_50 = smallest_cover(&as_weights, 0.50);
    CentralizationReport {
        ases_30,
        ases_50,
        orgs_30: smallest_cover(&org_weights, 0.30),
        orgs_50: smallest_cover(&org_weights, 0.50),
        change_30_pct: centralization_change(BASELINE_2017_ASES_30, ases_30),
        change_50_pct: centralization_change(BASELINE_2017_ASES_50, ases_50),
    }
}

/// The classical (Apostolaki) attack baseline: hijack whole ASes in
/// descending size order. Returns `(ases hijacked, fraction of nodes
/// isolated)` pairs — coarser and costlier than the paper's prefix-level
/// refinement.
pub fn classical_attack_curve(snapshot: &Snapshot, max_ases: usize) -> Vec<(usize, f64)> {
    let per_as = snapshot.nodes_per_as();
    let total: usize = per_as.iter().map(|(_, n)| n).sum();
    let mut acc = 0usize;
    per_as
        .iter()
        .take(max_ases)
        .enumerate()
        .map(|(i, (_, n))| {
            acc += n;
            (i + 1, acc as f64 / total as f64)
        })
        .collect()
}

/// Prebuilt spatial-attack context: the per-AS hijack ranking is derived
/// from the snapshot exactly once and then borrowed by every query, so a
/// long-running caller (the `bp-serve` query engine, sweeps over many
/// victims) pays the ranking cost once instead of per call.
///
/// Every method is bit-identical to the corresponding free function,
/// which now delegates here after building a throwaway context.
#[derive(Debug)]
pub struct SpatialContext<'a> {
    snapshot: &'a Snapshot,
    census: &'a PoolCensus,
    hijacks: HijackIndex,
}

impl<'a> SpatialContext<'a> {
    /// Builds the context, ranking every AS's prefixes up front.
    pub fn new(snapshot: &'a Snapshot, census: &'a PoolCensus) -> Self {
        Self {
            snapshot,
            census,
            hijacks: HijackIndex::new(snapshot),
        }
    }

    /// The underlying snapshot.
    pub fn snapshot(&self) -> &Snapshot {
        self.snapshot
    }

    /// The underlying pool census.
    pub fn census(&self) -> &PoolCensus {
        self.census
    }

    /// The prebuilt per-AS hijack ranking.
    pub fn hijacks(&self) -> &HijackIndex {
        &self.hijacks
    }

    /// See [`isolate_hash_power`].
    pub fn isolate_hash_power(&self, ases: &[Asn]) -> f64 {
        self.census.isolated_share(ases)
    }

    /// See [`eclipse_as`]: hijacks the top `prefixes` of `victim` and
    /// imposes the cut on `sim` for `duration_secs`.
    pub fn eclipse_as(
        &self,
        sim: &mut Simulation,
        victim: Asn,
        prefixes: usize,
        duration_secs: u64,
    ) -> EclipseReport {
        let outcome = self.hijacks.hijack_top_prefixes(victim, prefixes);
        let captured: HashSet<_> = outcome.isolated_nodes.iter().copied().collect();

        // Map topology ids to sim indices.
        let victim_sims: HashSet<u32> = (0..sim.node_count() as u32)
            .filter(|&i| captured.contains(&sim.topology_id(i)))
            .collect();
        let isolated = victim_sims.len();

        // Sorted so the workload below is independent of HashSet
        // iteration order — eclipse reports must be deterministic.
        let mut victim_list: Vec<u32> = victim_sims.iter().copied().collect();
        victim_list.sort_unstable();
        let assign = move |i: u32| u32::from(victim_sims.contains(&i));
        sim.set_partition(assign);

        // A background transaction workload: users on both sides keep
        // spending — including double-spend pairs straddling the cut, the
        // scenario the paper's implications describe.
        let reversals_before = sim.node_reversals_total();
        let steps = (duration_secs / 600).max(1);
        for step in 0..steps {
            if let Some(&victim_node) = victim_list.get(step as usize % victim_list.len().max(1)) {
                let group = 1_000 + step;
                // One honest spend confirmed inside the eclipse…
                let _ = sim.submit_tx(victim_node, group);
                // …and its conflicting double on the outside.
                let outside = (0..sim.node_count() as u32)
                    .find(|i| !victim_list.contains(i))
                    .unwrap_or(0);
                let _ = sim.submit_tx(outside, group);
            }
            sim.run_for_secs(600);
        }

        // Victim-side lag: max over isolated nodes of blocks behind.
        let lags = sim.lags();
        let victim_lag_blocks = (0..sim.node_count() as u32)
            .filter(|&i| captured.contains(&sim.topology_id(i)))
            .map(|i| lags[i as usize])
            .max()
            .unwrap_or(0);

        sim.clear_partition();
        // Let the heal-time reorg play out so reversals are observed.
        sim.run_for_secs(2 * 600);
        let reversed_tx_events = sim.node_reversals_total() - reversals_before;

        EclipseReport {
            victim,
            prefixes_hijacked: outcome.prefixes_hijacked,
            isolated,
            network_fraction: isolated as f64 / sim.node_count().max(1) as f64,
            victim_lag_blocks,
            isolated_hash_share: self.census.isolated_share(&[victim]),
            reversed_tx_events,
        }
    }

    /// See [`eclipse_cascade`]: degradation of the un-hijacked remainder
    /// of `victim` after its top `prefixes` are taken.
    pub fn eclipse_cascade(&self, sim: &Simulation, victim: Asn, prefixes: usize) -> CascadeReport {
        cascade_impl(&self.hijacks, sim, self.snapshot, victim, prefixes)
    }
}

fn cascade_impl(
    hijacks: &HijackIndex,
    sim: &Simulation,
    snapshot: &Snapshot,
    victim: Asn,
    prefixes: usize,
) -> CascadeReport {
    let outcome = hijacks.hijack_top_prefixes(victim, prefixes);
    let hijacked_topo: HashSet<_> = outcome.isolated_nodes.iter().copied().collect();

    // Map to sim indices.
    let hijacked_sim: HashSet<u32> = (0..sim.node_count() as u32)
        .filter(|&i| hijacked_topo.contains(&sim.topology_id(i)))
        .collect();
    let remainder_sim: Vec<u32> = (0..sim.node_count() as u32)
        .filter(|&i| !hijacked_sim.contains(&i) && snapshot.node(sim.topology_id(i)).asn == victim)
        .collect();

    let mut degraded = 0usize;
    let mut fully_eclipsed = 0usize;
    let mut loss_sum = 0.0;
    for &node in &remainder_sim {
        let peers = sim.peers_of(node);
        if peers.is_empty() {
            continue;
        }
        let lost = peers.iter().filter(|p| hijacked_sim.contains(p)).count();
        let frac = lost as f64 / peers.len() as f64;
        loss_sum += frac;
        if frac >= 0.5 {
            degraded += 1;
        }
        if lost == peers.len() {
            fully_eclipsed += 1;
        }
    }

    CascadeReport {
        directly_isolated: hijacked_sim.len(),
        remainder: remainder_sim.len(),
        degraded,
        fully_eclipsed,
        mean_peer_loss: if remainder_sim.is_empty() {
            0.0
        } else {
            loss_sum / remainder_sim.len() as f64
        },
    }
}

/// Result of an executed AS eclipse on the live simulation.
#[derive(Debug, Clone, PartialEq)]
pub struct EclipseReport {
    /// The victim AS.
    pub victim: Asn,
    /// Prefixes hijacked.
    pub prefixes_hijacked: usize,
    /// Sim nodes isolated.
    pub isolated: usize,
    /// Fraction of the whole network isolated.
    pub network_fraction: f64,
    /// Blocks the isolated side fell behind during the eclipse.
    pub victim_lag_blocks: u64,
    /// Hash share isolated along with the AS (its stratum servers).
    pub isolated_hash_share: f64,
    /// Node-level transaction reversals caused by the eclipse (victims
    /// whose confirmed transactions vanished in the heal-time reorg) —
    /// the paper's double-spend implication.
    pub reversed_tx_events: u64,
}

/// Hijacks the top `prefixes` of `victim` and imposes the cut on the
/// simulation for `duration_secs`, measuring the divergence.
///
/// Builds a throwaway [`SpatialContext`]; callers issuing many queries
/// against one snapshot should build the context once instead.
pub fn eclipse_as(
    sim: &mut Simulation,
    snapshot: &Snapshot,
    census: &PoolCensus,
    victim: Asn,
    prefixes: usize,
    duration_secs: u64,
) -> EclipseReport {
    SpatialContext::new(snapshot, census).eclipse_as(sim, victim, prefixes, duration_secs)
}

/// Table IV implication: hash power isolated by hijacking a set of ASes.
///
/// # Examples
///
/// ```
/// use bp_attacks::spatial::isolate_hash_power;
/// use bp_mining::PoolCensus;
/// use bp_topology::Asn;
///
/// let census = PoolCensus::paper_table_iv();
/// let alibaba_sphere = [Asn(45102), Asn(37963), Asn(58563)];
/// assert!(isolate_hash_power(&census, &alibaba_sphere) > 0.60);
/// ```
pub fn isolate_hash_power(census: &PoolCensus, ases: &[Asn]) -> f64 {
    census.isolated_share(ases)
}

/// Result of a nation-state partition (paper §III: "a nation-state can
/// partition the network by blocking the flow of traffic through its
/// ASes and organizations … If China, for example, decides to ban
/// Bitcoin, it will have a significant impact").
#[derive(Debug, Clone, PartialEq)]
pub struct NationStateReport {
    /// The banning jurisdiction.
    pub country: Country,
    /// ASes whose traffic is cut.
    pub ases_cut: usize,
    /// Nodes inside the jurisdiction (cut off).
    pub nodes_cut: usize,
    /// Fraction of the whole network cut.
    pub node_fraction: f64,
    /// Hash rate whose stratum servers sit inside the jurisdiction.
    pub hash_share_cut: f64,
    /// Blocks mined by the *outside* world during the ban window.
    pub outside_blocks: u64,
    /// Maximum lag the inside nodes accumulated during the ban.
    pub inside_max_lag: u64,
}

/// Executes a national ban: every AS registered in `country` is
/// partitioned off for `duration_secs` and both sides are measured.
pub fn nation_state_ban(
    sim: &mut Simulation,
    snapshot: &Snapshot,
    census: &PoolCensus,
    country: Country,
    duration_secs: u64,
) -> NationStateReport {
    let ases = snapshot.registry.ases_in(country);
    let as_set: HashSet<Asn> = ases.iter().copied().collect();
    let inside: HashSet<u32> = (0..sim.node_count() as u32)
        .filter(|&i| as_set.contains(&snapshot.node(sim.topology_id(i)).asn))
        .collect();
    let nodes_cut = inside.len();
    let hash_share_cut = census.isolated_share(&ases);

    let blocks_before = sim.stats().blocks_mined;
    let inside_clone = inside.clone();
    sim.set_partition(move |i| u32::from(inside_clone.contains(&i)));
    sim.run_for_secs(duration_secs);

    let lags = sim.lags();
    let inside_max_lag = inside.iter().map(|&i| lags[i as usize]).max().unwrap_or(0);
    sim.clear_partition();

    NationStateReport {
        country,
        ases_cut: ases.len(),
        nodes_cut,
        node_fraction: nodes_cut as f64 / sim.node_count().max(1) as f64,
        hash_share_cut,
        outside_blocks: sim.stats().blocks_mined - blocks_before,
        inside_max_lag,
    }
}

/// The eclipse cascade of §V-A: "the attacker does not have to isolate
/// all nodes by hijacking all BGP prefixes in an AS. Isolating a major
/// subset of nodes can eclipse the entire AS."
///
/// After hijacking the victim AS's top `prefixes`, this measures how the
/// *remaining* (un-hijacked) nodes of that AS are degraded: a node whose
/// peers are mostly inside the hijacked set has effectively lost its
/// connectivity even though its own prefix was never announced.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CascadeReport {
    /// Nodes directly isolated by the prefix hijacks.
    pub directly_isolated: usize,
    /// Remaining victim-AS nodes (not directly hijacked).
    pub remainder: usize,
    /// Remainder nodes that lost at least half their peers.
    pub degraded: usize,
    /// Remainder nodes that lost *all* their peers — fully eclipsed
    /// without their prefix being touched.
    pub fully_eclipsed: usize,
    /// Mean fraction of peers lost across the remainder.
    pub mean_peer_loss: f64,
}

/// Computes the eclipse cascade for a prefix hijack of `victim`.
///
/// Builds a throwaway [`SpatialContext`]; callers issuing many queries
/// against one snapshot should build the context once instead.
pub fn eclipse_cascade(
    sim: &Simulation,
    snapshot: &Snapshot,
    victim: Asn,
    prefixes: usize,
) -> CascadeReport {
    cascade_impl(&HijackIndex::new(snapshot), sim, snapshot, victim, prefixes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bp_net::NetConfig;
    use bp_topology::SnapshotConfig;

    fn snap() -> Snapshot {
        Snapshot::generate(SnapshotConfig::test_small())
    }

    #[test]
    fn centralization_matches_paper_shape() {
        let report = centralization(&snap());
        assert!(report.ases_30 <= report.ases_50);
        assert!(report.orgs_30 <= report.ases_30 + 2);
        // The network centralized vs 2017 — positive change, ~50 % for
        // the 50 % cover (paper: 52 %).
        assert!(report.change_50_pct > 20.0, "{report:?}");
        assert!(report.change_30_pct > 0.0, "{report:?}");
    }

    #[test]
    fn classical_curve_is_monotone() {
        let curve = classical_attack_curve(&snap(), 30);
        assert_eq!(curve.len(), 30);
        for pair in curve.windows(2) {
            assert!(pair[0].1 <= pair[1].1);
        }
        // Top-10 ASes hold well over 30 % (Table II).
        assert!(curve[9].1 > 0.3);
    }

    #[test]
    fn three_alibaba_ases_isolate_majority_hash() {
        let census = PoolCensus::paper_table_iv();
        let share = isolate_hash_power(&census, &[Asn(45102), Asn(37963), Asn(58563)]);
        assert!(share > 0.60, "isolated {share}");
    }

    #[test]
    fn china_ban_cuts_majority_hash_power() {
        let snapshot = Snapshot::generate(SnapshotConfig {
            scale: 0.05,
            tail_as_count: 60,
            version_tail: 10,
            up_fraction: 1.0,
            ..SnapshotConfig::paper()
        });
        let census = PoolCensus::paper_table_iv();
        let mut sim = Simulation::new(&snapshot, &census, NetConfig::fast_test());
        sim.run_for_secs(1200);
        let report = nation_state_ban(&mut sim, &snapshot, &census, Country::China, 4 * 600);
        // Paper: "60% of the mining traffic goes through China".
        assert!(report.hash_share_cut >= 0.60, "{report:?}");
        assert!(report.nodes_cut > 0);
        assert!(
            report.node_fraction < 0.5,
            "China hosts a minority of nodes"
        );
        // The outside world keeps mining, leaving the inside behind.
        assert!(report.outside_blocks > 0);
        assert!(report.inside_max_lag >= 1, "{report:?}");
    }

    #[test]
    fn cascade_grows_with_hijacked_prefixes() {
        let snapshot = Snapshot::generate(SnapshotConfig {
            scale: 0.1,
            tail_as_count: 80,
            version_tail: 10,
            up_fraction: 1.0,
            ..SnapshotConfig::paper()
        });
        let census = PoolCensus::paper_table_iv();
        let sim = Simulation::new(&snapshot, &census, NetConfig::fast_test());
        let small = eclipse_cascade(&sim, &snapshot, Asn(24940), 5);
        let large = eclipse_cascade(&sim, &snapshot, Asn(24940), 30);
        assert!(large.directly_isolated > small.directly_isolated);
        // Peers are chosen uniformly across the network, so intra-AS peer
        // loss is small but must be consistent and bounded.
        assert!((0.0..=1.0).contains(&small.mean_peer_loss));
        assert!(small.degraded <= small.remainder);
        assert!(large.fully_eclipsed <= large.degraded || large.degraded == 0);
    }

    #[test]
    fn context_matches_free_functions() {
        let snapshot = Snapshot::generate(SnapshotConfig {
            scale: 0.05,
            tail_as_count: 60,
            version_tail: 10,
            up_fraction: 1.0,
            ..SnapshotConfig::paper()
        });
        let census = PoolCensus::paper_table_iv();
        let ctx = SpatialContext::new(&snapshot, &census);

        let ases = [Asn(45102), Asn(37963)];
        assert_eq!(
            ctx.isolate_hash_power(&ases).to_bits(),
            isolate_hash_power(&census, &ases).to_bits()
        );

        let sim = Simulation::new(&snapshot, &census, NetConfig::fast_test());
        assert_eq!(
            ctx.eclipse_cascade(&sim, Asn(24940), 10),
            eclipse_cascade(&sim, &snapshot, Asn(24940), 10)
        );

        // eclipse_as mutates the sim, so compare two identically-built
        // runs: one through the context, one through the free function.
        let mut sim_a = Simulation::new(&snapshot, &census, NetConfig::fast_test());
        sim_a.run_for_secs(1200);
        let mut sim_b = Simulation::new(&snapshot, &census, NetConfig::fast_test());
        sim_b.run_for_secs(1200);
        assert_eq!(
            ctx.eclipse_as(&mut sim_a, Asn(24940), 20, 2 * 600),
            eclipse_as(&mut sim_b, &snapshot, &census, Asn(24940), 20, 2 * 600)
        );
    }

    #[test]
    fn eclipse_isolates_and_lags_the_victim_as() {
        let snapshot = Snapshot::generate(SnapshotConfig {
            scale: 0.05,
            tail_as_count: 60,
            version_tail: 10,
            up_fraction: 1.0,
            ..SnapshotConfig::paper()
        });
        let census = PoolCensus::paper_table_iv();
        let mut sim = Simulation::new(&snapshot, &census, NetConfig::fast_test());
        sim.run_for_secs(1200);
        let report = eclipse_as(&mut sim, &snapshot, &census, Asn(24940), 51, 6 * 600);
        assert!(report.isolated > 10, "only {} isolated", report.isolated);
        assert!(report.network_fraction > 0.03);
        // Hetzner hosts no stratum servers of the top-5 pools but does
        // host a minor pool in our census.
        assert!(report.isolated_hash_share > 0.0);
        // The cut-off AS missed blocks mined outside.
        assert!(
            report.victim_lag_blocks >= 1,
            "victim never fell behind: {report:?}"
        );
    }
}
