//! The 51 % attack enabled by spatial partitioning (paper §V-A,
//! Implications): "By isolating a majority of the network's hash power,
//! the attacker can launch the 51% attack on Bitcoin which will grant him
//! a permanent control over the blockchain."
//!
//! The scenario: the attacker hijacks the ASes hosting a majority of the
//! stratum servers (the AliBaba sphere of Table IV holds 65.7 %). The
//! isolated pools keep mining — for the attacker. The honest remainder
//! mines at its reduced rate; the attacker's chain outgrows it and every
//! reveal causes a reorg the honest side cannot prevent.

use bp_chain::{BlockId, Hash256};
use bp_mining::PoolCensus;
use bp_net::Simulation;
use bp_topology::Asn;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters of the majority-hash attack.
#[derive(Debug, Clone, PartialEq)]
pub struct FiftyOneConfig {
    /// ASes the attacker hijacks to capture their stratum traffic
    /// (default: the AliBaba sphere).
    pub hijacked_ases: Vec<Asn>,
    /// How long the attacker mines privately before revealing, seconds.
    pub withhold_secs: u64,
    /// Total scenario duration, seconds.
    pub duration_secs: u64,
    /// RNG seed for the attacker's mining process.
    pub seed: u64,
}

impl FiftyOneConfig {
    /// The Table IV scenario: hijack the 3 AliBaba-sphere ASes (65.7 % of
    /// hash), withhold for 3 block intervals, run for 10.
    pub fn paper() -> Self {
        Self {
            hijacked_ases: vec![Asn(45102), Asn(37963), Asn(58563)],
            withhold_secs: 3 * 600,
            duration_secs: 10 * 600,
            seed: 51,
        }
    }
}

impl Default for FiftyOneConfig {
    fn default() -> Self {
        Self::paper()
    }
}

/// Outcome of the majority-hash attack.
#[derive(Debug, Clone, PartialEq)]
pub struct FiftyOneReport {
    /// Hash share the hijack diverted to the attacker.
    pub captured_hash: f64,
    /// Blocks the attacker mined privately + publicly.
    pub attacker_blocks: u64,
    /// Honest blocks mined over the same period.
    pub honest_blocks: u64,
    /// Fraction of nodes whose active chain includes the attacker's
    /// revealed blocks at the end.
    pub network_captured: f64,
    /// Depth of the reorg the first reveal caused (0 if the reveal never
    /// overtook the honest chain).
    pub reveal_reorg_depth: u64,
}

/// Runs the 51 % scenario against a live simulation.
///
/// The victim pools' hash is modelled as mining for the attacker: the
/// attacker's private chain advances at `captured_hash` of the global
/// rate while the honest side is slowed to the remaining share.
pub fn run_fifty_one(
    sim: &mut Simulation,
    census: &PoolCensus,
    config: FiftyOneConfig,
) -> FiftyOneReport {
    let captured_hash = census.isolated_share(&config.hijacked_ases);
    let mut rng = StdRng::seed_from_u64(config.seed);
    // The captured pools now mine for the attacker: the honest side keeps
    // only the remainder.
    let honest_share = (1.0 - captured_hash).max(0.01);
    sim.scale_hash_rate(honest_share);

    let fork_parent: BlockId = {
        // The attacker forks from the best tip it can see.
        let best = (0..sim.node_count() as u32)
            .max_by_key(|&i| sim.height_of(i))
            .expect("non-empty network");
        sim.tip_of(best)
    };
    let honest_before = sim.stats().blocks_mined;

    let mean_interval = 600.0 / captured_hash.max(f64::MIN_POSITIVE);
    let mut attacker_tip = fork_parent;
    let mut attacker_blocks = 0u64;
    let mut next_block_in = sample_exp(&mut rng, mean_interval);
    let mut revealed = false;
    let mut reveal_reorg_depth = 0u64;

    let mut elapsed = 0u64;
    while elapsed < config.duration_secs {
        let step = 60u64.min(config.duration_secs - elapsed);
        sim.run_for_secs(step);
        elapsed += step;

        next_block_in -= step as f64;
        while next_block_in <= 0.0 {
            attacker_tip = sim.mine_counterfeit(attacker_tip);
            attacker_blocks += 1;
            next_block_in += sample_exp(&mut rng, mean_interval);
        }

        // Reveal: broadcast the private chain to everyone once the
        // withholding period ends (and on every extension after that).
        if elapsed >= config.withhold_secs && attacker_blocks > 0 {
            if !revealed {
                revealed = true;
                let attacker_height = sim
                    .index()
                    .get(&attacker_tip)
                    .map(|m| m.height.0)
                    .unwrap_or(0);
                reveal_reorg_depth = sim
                    .network_best()
                    .0
                    .saturating_sub(height_of_fork_point(sim, fork_parent));
                if attacker_height <= sim.network_best().0 {
                    reveal_reorg_depth = 0;
                }
            }
            for node in 0..sim.node_count() as u32 {
                sim.push_chain(node, attacker_tip);
            }
            sim.run_for_secs(1);
        }
    }

    // Restore the full honest rate for whatever runs after the scenario.
    sim.scale_hash_rate(1.0 / honest_share);
    let honest_blocks = sim.stats().blocks_mined - honest_before - attacker_blocks;
    // A node is captured when the attacker's revealed chain is part of
    // its active chain — after a successful 51 % rewrite honest miners
    // extend the attacker's blocks, so checking the tip flag alone would
    // under-count ("permanent control over the blockchain").
    let captured = if attacker_blocks == 0 {
        // The attacker never mined: attacker_tip is still the honest fork
        // parent, which is trivially everyone's ancestor.
        0
    } else {
        (0..sim.node_count() as u32)
            .filter(|&i| {
                sim.index().is_ancestor(&attacker_tip, &sim.tip_of(i))
                    || sim.tip_of(i) == attacker_tip
            })
            .count()
    };

    FiftyOneReport {
        captured_hash,
        attacker_blocks,
        honest_blocks,
        network_captured: captured as f64 / sim.node_count().max(1) as f64,
        reveal_reorg_depth,
    }
}

fn height_of_fork_point(sim: &Simulation, fork_parent: BlockId) -> u64 {
    if fork_parent == Hash256::ZERO {
        return 0;
    }
    sim.index()
        .get(&fork_parent)
        .map(|m| m.height.0)
        .unwrap_or(0)
}

fn sample_exp(rng: &mut StdRng, mean: f64) -> f64 {
    let u: f64 = rng.random();
    -(1.0 - u).ln() * mean
}

#[cfg(test)]
mod tests {
    use super::*;
    use bp_net::NetConfig;
    use bp_topology::{Snapshot, SnapshotConfig};

    fn sim() -> Simulation {
        let snap = Snapshot::generate(SnapshotConfig {
            scale: 0.03,
            tail_as_count: 40,
            version_tail: 10,
            up_fraction: 1.0,
            ..SnapshotConfig::paper()
        });
        let mut s = Simulation::new(&snap, &PoolCensus::paper_table_iv(), NetConfig::fast_test());
        s.run_for_secs(2 * 600);
        s
    }

    #[test]
    fn majority_hash_takes_over_the_network() {
        let mut s = sim();
        let census = PoolCensus::paper_table_iv();
        let report = run_fifty_one(&mut s, &census, FiftyOneConfig::paper());
        assert!(report.captured_hash > 0.60);
        assert!(report.attacker_blocks > 0);
        // With ~66% of the hash rate the attacker's chain dominates.
        assert!(
            report.network_captured > 0.8,
            "attacker only captured {:.2}",
            report.network_captured
        );
    }

    #[test]
    fn minority_hash_fails_to_take_over() {
        let mut s = sim();
        let census = PoolCensus::paper_table_iv();
        // Only Chinanet Hubei: ~3.2% of hash.
        let report = run_fifty_one(
            &mut s,
            &census,
            FiftyOneConfig {
                hijacked_ases: vec![Asn(58563)],
                ..FiftyOneConfig::paper()
            },
        );
        assert!(report.captured_hash < 0.1);
        assert!(
            report.network_captured < 0.2,
            "minority attacker captured {:.2}",
            report.network_captured
        );
        // The honest majority out-mines the attacker.
        assert!(report.honest_blocks > report.attacker_blocks);
    }
}
