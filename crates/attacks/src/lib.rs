//! The paper's contribution: spatial, temporal, spatio-temporal and
//! logical partitioning attacks on Bitcoin, plus the proposed
//! countermeasures.
//!
//! Everything here runs against the substrates in the sibling crates:
//! the calibrated topology snapshot (`bp-topology`), the BGP hijack
//! engine (`bp-bgp`), the pool census (`bp-mining`), the event-driven
//! network simulation (`bp-net`) and the measurement crawler
//! (`bp-crawler`).
//!
//! | Paper artifact | Entry point |
//! |---|---|
//! | Table III, Figure 3 | [`spatial::centralization`], [`spatial::classical_attack_curve`] |
//! | Figure 4 | [`bp_bgp::HijackEngine`] + [`spatial::eclipse_as`] |
//! | Table IV implications | [`spatial::isolate_hash_power`] |
//! | Table V | [`temporal::table_v`] |
//! | Table VI | [`temporal::TemporalModel`] |
//! | Figure 7 | [`temporal::GridSim`] |
//! | Figure 5 scenario | [`temporal::run_temporal_attack`] |
//! | Table VII, Figure 8 | [`spatiotemporal::plan`], [`spatiotemporal::execute`] |
//! | Table VIII, §V-D | [`logical`] |
//! | §VI countermeasures | [`countermeasures`] |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod countermeasures;
pub mod fifty_one;
pub mod logical;
pub mod spatial;
pub mod spatiotemporal;
pub mod temporal;

pub use fifty_one::{run_fifty_one, FiftyOneConfig, FiftyOneReport};
pub use spatial::{centralization, classical_attack_curve, eclipse_as, CentralizationReport};
pub use spatiotemporal::{execute as execute_spatiotemporal, plan as plan_spatiotemporal};
pub use temporal::{run_temporal_attack, GridSim, TemporalAttackConfig, TemporalModel};
