//! Logical partitioning (paper §V-D, Table VIII).
//!
//! Bitcoin's peer "democracy" runs 288 client variants; only ≈36 % of
//! nodes run the newest Bitcoin Core. The paper mapped client versions to
//! the National Vulnerability Database and found 36 reported CVEs —
//! CVE-2018-17144 (a remote DoS via duplicate inputs) "can be found in
//! all client versions, which puts the entire network at risk". This
//! module embeds the named CVEs with real metadata, fills the census to
//! the paper's count of 36 with synthetic entries (flagged as such), and
//! measures what exploiting one does to the network.

use bp_net::Simulation;
use bp_topology::{Snapshot, VersionCensus};
use std::collections::HashSet;

/// Which versions a vulnerability affects.
#[derive(Debug, Clone, PartialEq)]
pub enum Affects {
    /// Every Bitcoin Core derivative (e.g. CVE-2018-17144).
    AllCore,
    /// Core derivatives released before a day index.
    CoreBefore(u32),
    /// Non-Core (independent) clients only.
    NonCore,
    /// A fraction of the census sampled deterministically by index —
    /// used for the synthetic filler entries.
    EveryNth(u32),
}

/// One vulnerability record.
#[derive(Debug, Clone, PartialEq)]
pub struct Vulnerability {
    /// CVE identifier.
    pub id: String,
    /// CVSS base severity.
    pub cvss: f64,
    /// Short description.
    pub description: String,
    /// Affected versions.
    pub affects: Affects,
    /// `false` for the real, named CVEs from the paper; `true` for the
    /// synthetic filler that pads the census to the paper's count of 36.
    pub synthetic: bool,
}

/// The vulnerability census (NVD stand-in).
#[derive(Debug, Clone, PartialEq)]
pub struct NvdCensus {
    entries: Vec<Vulnerability>,
}

impl NvdCensus {
    /// The census the paper describes: the four named CVEs plus
    /// synthetic filler up to 36 records.
    pub fn paper() -> Self {
        let mut entries = vec![
            Vulnerability {
                id: "CVE-2018-17144".into(),
                cvss: 7.5,
                description: "remote denial of service via duplicate inputs".into(),
                affects: Affects::AllCore,
                synthetic: false,
            },
            Vulnerability {
                id: "CVE-2017-9230".into(),
                cvss: 7.5,
                description: "proof-of-work difficulty bypass claim".into(),
                affects: Affects::AllCore,
                synthetic: false,
            },
            Vulnerability {
                id: "CVE-2013-5700".into(),
                cvss: 5.0,
                description: "remote crash via bloom filter on prefilled data".into(),
                // Fixed long before the census window: affects only
                // ancient releases.
                affects: Affects::CoreBefore(1700),
                synthetic: false,
            },
            Vulnerability {
                id: "CVE-2013-4627".into(),
                cvss: 5.0,
                description: "memory exhaustion via tx message stuffing".into(),
                affects: Affects::CoreBefore(1700),
                synthetic: false,
            },
        ];
        for i in 0..32u32 {
            entries.push(Vulnerability {
                id: format!("SYN-{:04}", i + 1),
                cvss: 3.0 + (i % 5) as f64,
                description: "synthetic filler vulnerability (census padding)".into(),
                affects: Affects::EveryNth(7 + i % 11),
                synthetic: true,
            });
        }
        Self { entries }
    }

    /// All records.
    pub fn entries(&self) -> &[Vulnerability] {
        &self.entries
    }

    /// Number of records (36 for the paper census).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the census is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Looks up a CVE by id.
    pub fn get(&self, id: &str) -> Option<&Vulnerability> {
        self.entries.iter().find(|v| v.id == id)
    }
}

/// Whether `vuln` affects the census version at `version_idx`.
pub fn version_affected(census: &VersionCensus, version_idx: u32, vuln: &Vulnerability) -> bool {
    let Some(version) = census.get(version_idx) else {
        return false;
    };
    match &vuln.affects {
        Affects::AllCore => version.is_core,
        Affects::CoreBefore(day) => version.is_core && version.release_day < *day,
        Affects::NonCore => !version.is_core,
        Affects::EveryNth(n) => version_idx.is_multiple_of(*n),
    }
}

/// The share of nodes running versions affected by `vuln` — weighting by
/// census share, independent of any snapshot.
pub fn affected_share(census: &VersionCensus, vuln: &Vulnerability) -> f64 {
    let share: f64 = census
        .versions()
        .iter()
        .enumerate()
        .filter(|(i, _)| version_affected(census, *i as u32, vuln))
        .map(|(_, v)| v.share)
        .sum();
    // Clamp floating-point residue (e.g. -1e-17 from share normalisation)
    // so zero-exposure CVEs render as 0.00 %, not -0.00 %.
    share.max(0.0)
}

/// Result of exploiting a vulnerability against the live network.
#[derive(Debug, Clone, PartialEq)]
pub struct LogicalAttackReport {
    /// The exploited CVE.
    pub cve: String,
    /// Sim nodes crashed (running an affected version).
    pub crashed: usize,
    /// Fraction of the network crashed.
    pub crashed_fraction: f64,
    /// Mean lag of the surviving nodes after the attack window.
    pub survivor_mean_lag: f64,
}

/// Exploits `vuln` on the simulation: every node running an affected
/// version crashes (is partitioned off as dead) for `duration_secs`, and
/// the survivors' consensus health is measured.
pub fn exploit(
    sim: &mut Simulation,
    snapshot: &Snapshot,
    vuln: &Vulnerability,
    duration_secs: u64,
) -> LogicalAttackReport {
    let census = &snapshot.versions;
    let crashed: HashSet<u32> = (0..sim.node_count() as u32)
        .filter(|&i| {
            let profile = snapshot.node(sim.topology_id(i));
            version_affected(census, profile.version_idx, vuln)
        })
        .collect();
    let crashed_count = crashed.len();

    let crashed_clone = crashed.clone();
    sim.set_partition(move |i| if crashed_clone.contains(&i) { 9 } else { 0 });
    sim.run_for_secs(duration_secs);

    let lags = sim.lags();
    let survivors: Vec<u64> = (0..sim.node_count() as u32)
        .filter(|i| !crashed.contains(i))
        .map(|i| lags[i as usize])
        .collect();
    let survivor_mean_lag = if survivors.is_empty() {
        0.0
    } else {
        survivors.iter().sum::<u64>() as f64 / survivors.len() as f64
    };

    sim.clear_partition();

    LogicalAttackReport {
        cve: vuln.id.clone(),
        crashed: crashed_count,
        crashed_fraction: crashed_count as f64 / sim.node_count().max(1) as f64,
        survivor_mean_lag,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bp_mining::PoolCensus;
    use bp_net::NetConfig;
    use bp_topology::SnapshotConfig;

    #[test]
    fn census_has_36_records_with_named_cves() {
        let nvd = NvdCensus::paper();
        assert_eq!(nvd.len(), 36);
        for id in [
            "CVE-2018-17144",
            "CVE-2017-9230",
            "CVE-2013-5700",
            "CVE-2013-4627",
        ] {
            let v = nvd.get(id).unwrap_or_else(|| panic!("{id} missing"));
            assert!(!v.synthetic);
        }
        assert_eq!(nvd.entries().iter().filter(|v| v.synthetic).count(), 32);
    }

    #[test]
    fn duplicate_inputs_cve_hits_most_of_the_network() {
        let census = VersionCensus::paper_table_viii();
        let nvd = NvdCensus::paper();
        let share = affected_share(&census, nvd.get("CVE-2018-17144").unwrap());
        // All Core derivatives: the Table VIII top-5 alone are 75.5 %.
        assert!(share > 0.70, "affected share {share}");
    }

    #[test]
    fn ancient_cve_affects_almost_nobody() {
        let census = VersionCensus::paper_table_viii();
        let nvd = NvdCensus::paper();
        let share = affected_share(&census, nvd.get("CVE-2013-5700").unwrap());
        assert!(share < 0.05, "affected share {share}");
    }

    #[test]
    fn version_affected_dispatches_predicates() {
        let census = VersionCensus::paper_table_viii();
        let all_core = Vulnerability {
            id: "x".into(),
            cvss: 5.0,
            description: String::new(),
            affects: Affects::AllCore,
            synthetic: true,
        };
        // Index 0 is Bitcoin Core v0.16.0.
        assert!(version_affected(&census, 0, &all_core));
        let non_core = Vulnerability {
            affects: Affects::NonCore,
            ..all_core.clone()
        };
        assert!(!version_affected(&census, 0, &non_core));
        // Out-of-range indices are unaffected.
        assert!(!version_affected(&census, 9999, &all_core));
    }

    #[test]
    fn exploiting_the_universal_dos_cripples_the_network() {
        let snap = Snapshot::generate(SnapshotConfig {
            scale: 0.03,
            tail_as_count: 40,
            version_tail: 20,
            up_fraction: 1.0,
            ..SnapshotConfig::paper()
        });
        let mut sim = Simulation::new(&snap, &PoolCensus::paper_table_iv(), NetConfig::fast_test());
        sim.run_for_secs(1200);
        let nvd = NvdCensus::paper();
        let report = exploit(&mut sim, &snap, nvd.get("CVE-2018-17144").unwrap(), 2 * 600);
        assert!(
            report.crashed_fraction > 0.5,
            "crashed only {}",
            report.crashed_fraction
        );
        assert_eq!(report.cve, "CVE-2018-17144");
    }
}
