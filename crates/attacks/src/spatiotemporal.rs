//! Spatio-temporal partitioning (paper §V-C).
//!
//! The combined attack keys on a moment when the synced population is
//! small: the attacker hijacks the few ASes hosting most *synced* nodes
//! (spatial arm — synced nodes would reject counterfeit blocks anyway)
//! and feeds counterfeit chains to the lagging remainder (temporal arm).
//! "The key aspect of spatio-temporal attack is that it is adjustable to
//! the capabilities of an attacker."

use crate::temporal::attack::{run_temporal_attack, TemporalAttackConfig};
use bp_analysis::timeseries::best_window;
use bp_crawler::{CrawlResult, LagClass};
use bp_mining::PoolCensus;
use bp_net::Simulation;
use bp_topology::{Asn, Snapshot};
use std::collections::HashSet;

/// A planned spatio-temporal attack derived from crawl data.
#[derive(Debug, Clone, PartialEq)]
pub struct SpatioTemporalPlan {
    /// Crawl sample index with the fewest synced nodes — the paper's
    /// "ideal attack opportunity".
    pub attack_sample: usize,
    /// Synced nodes at that instant.
    pub synced_count: usize,
    /// Nodes ≥1 block behind at that instant (temporal targets).
    pub behind_count: usize,
    /// Width of the sustained weak window around the attack sample, in
    /// samples ("the width of nodes that are behind show the attack time
    /// window", §V-C). Zero when the weak spot is a single-sample blip.
    pub window_samples: usize,
    /// Top ASes hosting synced nodes, with their average synced presence
    /// (Table VII).
    pub spatial_targets: Vec<(Asn, f64)>,
    /// Fraction of synced nodes covered by the spatial targets.
    pub spatial_coverage: f64,
}

/// Plans the attack from a crawl: finds the weakest instant and the
/// Table VII target ASes.
///
/// # Panics
///
/// Panics if the crawl is empty or `k` is zero.
pub fn plan(crawl: &CrawlResult, k: usize) -> SpatioTemporalPlan {
    assert!(k > 0, "need at least one spatial target");
    assert!(!crawl.series.is_empty(), "cannot plan from an empty crawl");

    // Prefer a *sustained* weak window (smoothed, width × depth scored)
    // over a single-sample minimum; fall back to the raw minimum when
    // the series never dips below its own median.
    let synced_series: Vec<f64> = crawl
        .series
        .samples()
        .iter()
        .map(|s| s.count(LagClass::Synced) as f64)
        .collect();
    let mean_synced_level = synced_series.iter().sum::<f64>() / synced_series.len() as f64;
    let window = best_window(&synced_series, 0.8 * mean_synced_level, 1);
    let (attack_sample, window_samples) = match &window {
        Some(t) => (t.min_at, t.len),
        None => (
            synced_series
                .iter()
                .enumerate()
                .min_by(|a, b| a.1.partial_cmp(b.1).expect("finite counts"))
                .map(|(i, _)| i)
                .expect("non-empty series"),
            0,
        ),
    };
    let weakest = &crawl.series.samples()[attack_sample];
    let synced_count = weakest.count(LagClass::Synced);
    let behind_count = weakest.total() - synced_count;

    let spatial_targets = crawl.top_synced_ases(k);
    let covered: f64 = spatial_targets.iter().map(|(_, avg)| avg).sum();
    let mean_synced: f64 = crawl
        .series
        .samples()
        .iter()
        .map(|s| s.count(LagClass::Synced) as f64)
        .sum::<f64>()
        / crawl.series.len() as f64;

    SpatioTemporalPlan {
        attack_sample,
        synced_count,
        behind_count,
        window_samples,
        spatial_coverage: if mean_synced > 0.0 {
            (covered / mean_synced).min(1.0)
        } else {
            0.0
        },
        spatial_targets,
    }
}

/// Outcome of an executed spatio-temporal attack.
#[derive(Debug, Clone, PartialEq)]
pub struct CombinedReport {
    /// Nodes isolated by the spatial arm (hijacked ASes).
    pub spatially_isolated: usize,
    /// Victims captured by the temporal arm at its peak.
    pub temporally_captured: usize,
    /// Total fraction of the network disrupted at peak.
    pub disrupted_fraction: f64,
    /// The temporal arm's detail report.
    pub temporal: crate::temporal::attack::TemporalAttackReport,
}

/// Executes the combined attack on a live simulation: partitions the
/// nodes of `spatial_targets` away from the network, then runs the
/// temporal attack against the lagging remainder.
pub fn execute(
    sim: &mut Simulation,
    snapshot: &Snapshot,
    _census: &PoolCensus,
    spatial_targets: &[Asn],
    temporal: TemporalAttackConfig,
) -> CombinedReport {
    let target_set: HashSet<Asn> = spatial_targets.iter().copied().collect();
    let spatial_victims: HashSet<u32> = (0..sim.node_count() as u32)
        .filter(|&i| target_set.contains(&snapshot.node(sim.topology_id(i)).asn))
        .collect();
    let spatially_isolated = spatial_victims.len();

    // Spatial arm: cut the hijacked ASes off (group 2). The temporal arm
    // will overlay its own eclipse of its victims — run it without
    // eclipse here and keep the spatial groups instead, to avoid the two
    // partitions overwriting each other.
    let victims_clone = spatial_victims.clone();
    sim.set_partition(move |i| if victims_clone.contains(&i) { 2 } else { 0 });

    let temporal_report = run_temporal_attack(
        sim,
        TemporalAttackConfig {
            eclipse_victims: false,
            ..temporal
        },
    );

    sim.clear_partition();
    let temporally_captured = temporal_report.captured_peak;
    let disrupted = spatially_isolated + temporally_captured;

    CombinedReport {
        spatially_isolated,
        temporally_captured,
        disrupted_fraction: disrupted as f64 / sim.node_count().max(1) as f64,
        temporal: temporal_report,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bp_crawler::Crawler;
    use bp_net::NetConfig;
    use bp_topology::SnapshotConfig;

    fn setup() -> (Snapshot, Simulation) {
        let snap = Snapshot::generate(SnapshotConfig {
            scale: 0.04,
            tail_as_count: 50,
            version_tail: 10,
            up_fraction: 1.0,
            ..SnapshotConfig::paper()
        });
        let config = NetConfig {
            seed: 9,
            diffusion_mean_ms: 40_000.0,
            failure_rate: 0.12,
            zombie_fraction: 0.05,
            ..NetConfig::paper()
        };
        let sim = Simulation::new(&snap, &PoolCensus::paper_table_iv(), config);
        (snap, sim)
    }

    #[test]
    fn plan_finds_weakest_moment_and_targets() {
        let (snap, mut sim) = setup();
        let crawl = Crawler::new(60).crawl(&mut sim, &snap, 3600);
        let plan = plan(&crawl, 5);
        assert_eq!(plan.spatial_targets.len(), 5);
        assert!(plan.attack_sample < crawl.series.len());
        assert!(plan.behind_count > 0, "{plan:?}");
        assert!(plan.spatial_coverage > 0.1, "{plan:?}");
        // Top synced hosts should be big anchors (Table VII names
        // AS4134, AS24940, AS16276, AS16509, AS14061).
        let anchors = [24940u32, 16276, 37963, 16509, 14061, 7922, 4134];
        assert!(anchors.contains(&plan.spatial_targets[0].0 .0));
    }

    #[test]
    fn combined_attack_disrupts_more_than_either_arm() {
        let (snap, mut sim) = setup();
        let census = PoolCensus::paper_table_iv();
        sim.run_for_secs(4 * 600);
        let report = execute(
            &mut sim,
            &snap,
            &census,
            &[Asn(24940), Asn(4134)],
            TemporalAttackConfig {
                duration_secs: 2 * 600,
                max_targets: 100,
                ..TemporalAttackConfig::paper()
            },
        );
        assert!(report.spatially_isolated > 0);
        assert!(
            report.disrupted_fraction > report.spatially_isolated as f64 / sim.node_count() as f64
        );
    }

    #[test]
    #[should_panic(expected = "empty crawl")]
    fn planning_needs_data() {
        let (snap, mut sim) = setup();
        let crawl = Crawler::new(600).crawl(&mut sim, &snap, 0);
        let _ = plan(&crawl, 3);
    }
}
