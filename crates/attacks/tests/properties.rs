//! Property-based tests for the attack analyses: analytic-model
//! monotonicity, optimizer consistency and hijack-curve invariants.

use bp_attacks::countermeasures::{blockaware_stale, blockaware_tradeoff_one, diversify_stratum};
use bp_attacks::temporal::model::{ln_binomial, TemporalModel};
use bp_attacks::temporal::optimizer::{rows_are_consistent, table_v};
use bp_bgp::HijackEngine;
use bp_crawler::LagMatrix;
use bp_mining::PoolCensus;
use bp_topology::{Asn, Snapshot, SnapshotConfig};
use proptest::prelude::*;

proptest! {
    /// Pascal's rule: C(n, k) = C(n−1, k−1) + C(n−1, k), in log space.
    #[test]
    fn binomial_satisfies_pascal(n in 2u64..300, k_seed in any::<prop::sample::Index>()) {
        let k = 1 + k_seed.index((n - 1) as usize) as u64;
        let lhs = ln_binomial(n, k);
        let a = ln_binomial(n - 1, k - 1);
        let b = ln_binomial(n - 1, k);
        // ln(e^a + e^b) via log-sum-exp.
        let m = a.max(b);
        let rhs = m + ((a - m).exp() + (b - m).exp()).ln();
        prop_assert!((lhs - rhs).abs() < 1e-6, "n={n} k={k}: {lhs} vs {rhs}");
    }

    /// Symmetry: C(n, k) = C(n, n−k).
    #[test]
    fn binomial_symmetry(n in 1u64..500, k_seed in any::<prop::sample::Index>()) {
        let k = k_seed.index((n + 1) as usize) as u64;
        prop_assert!((ln_binomial(n, k) - ln_binomial(n, n - k)).abs() < 1e-7);
    }

    /// Eq. 4 really bounds Eq. 2: for any concrete timing assignment the
    /// exact isolation probability never exceeds the Cauchy bound at the
    /// assignment's total budget (equality iff all times are equal).
    #[test]
    fn cauchy_bound_dominates_exact_probability(
        lambda in 0.1f64..2.0,
        times in proptest::collection::vec(0.1f64..500.0, 1..20),
    ) {
        let model = TemporalModel::new(lambda);
        let exact = model.isolation_probability(&times);
        let total: f64 = times.iter().sum();
        let bound = model.cauchy_bound(times.len() as u64, total);
        prop_assert!(exact <= bound + 1e-12, "exact {exact} > bound {bound}");
        // Equality at the symmetric point.
        let equal = vec![total / times.len() as f64; times.len()];
        let sym = model.isolation_probability(&equal);
        prop_assert!((sym - bound).abs() < 1e-9);
    }

    /// The Eq. 5 bound is monotone in T, and the bisection result is a
    /// true threshold: feasible at T, infeasible at T−1.
    #[test]
    fn min_time_is_a_threshold(
        lambda in 0.2f64..1.5,
        m in 10u64..800,
    ) {
        let model = TemporalModel::new(lambda);
        if let Some(t) = model.min_time_to_isolate(m, 0.8, 200_000) {
            let target = 0.8f64.ln();
            prop_assert!(model.ln_isolation_bound(m, t) >= target);
            if t > m {
                prop_assert!(model.ln_isolation_bound(m, t - 1) < target);
            }
        }
    }

    /// Table VI monotonicity: T grows with m and shrinks with λ.
    #[test]
    fn table6_monotonicity(
        lambda_lo in 0.3f64..0.6,
        bump in 0.05f64..0.5,
        m in 50u64..600,
        dm in 10u64..300,
    ) {
        let slow = TemporalModel::new(lambda_lo);
        let fast = TemporalModel::new(lambda_lo + bump);
        let cap = 500_000;
        let t_slow = slow.min_time_to_isolate(m, 0.8, cap).unwrap();
        let t_fast = fast.min_time_to_isolate(m, 0.8, cap).unwrap();
        prop_assert!(t_fast <= t_slow, "λ up should not raise T");
        let t_more = slow.min_time_to_isolate(m + dm, 0.8, cap).unwrap();
        prop_assert!(t_more >= t_slow, "more targets should not lower T");
    }

    /// The BlockAware predicate is monotone in clock skew and threshold.
    #[test]
    fn blockaware_predicate_monotone(
        tl in 0u64..10_000,
        dt in 0u64..10_000,
        threshold in 1u64..5_000,
    ) {
        let tc = tl + dt;
        let stale = blockaware_stale(tc, tl, threshold);
        prop_assert_eq!(stale, dt > threshold);
        if stale {
            // Raising the clock further keeps it stale.
            prop_assert!(blockaware_stale(tc + 1, tl, threshold));
        }
    }

    /// BlockAware tradeoff is monotone in the threshold for a fixed
    /// arrival rate λ: a longer threshold never detects faster and never
    /// raises the false-alarm rate (`e^{-λt}` is decreasing in t).
    #[test]
    fn blockaware_tradeoff_monotone_in_threshold(
        lambda in 0.05f64..5.0,
        threshold in 0u64..100_000,
        bump in 1u64..100_000,
    ) {
        let interval = 1.0 / lambda;
        let lo = blockaware_tradeoff_one(threshold, interval);
        let hi = blockaware_tradeoff_one(threshold + bump, interval);
        prop_assert!(lo.detection_delay_secs < hi.detection_delay_secs);
        prop_assert!(
            hi.false_alarm_rate <= lo.false_alarm_rate,
            "false alarms rose with threshold: {} -> {}",
            lo.false_alarm_rate,
            hi.false_alarm_rate
        );
        prop_assert!((0.0..=1.0).contains(&lo.false_alarm_rate));
        prop_assert!((0.0..=1.0).contains(&hi.false_alarm_rate));
    }

    /// Table V outputs are internally consistent for arbitrary matrices.
    #[test]
    fn table_v_consistent_on_random_matrices(
        rows in proptest::collection::vec(
            proptest::collection::vec(0u64..12, 8),
            10..40,
        ),
    ) {
        let mut matrix = LagMatrix::new(8);
        for row in &rows {
            matrix.push_row(row);
        }
        let table = table_v(&matrix, 60, &[1, 2, 5, 10, 20]);
        prop_assert!(rows_are_consistent(&table));
    }

    /// Stratum diversification conserves total hash share for any spread.
    #[test]
    fn diversification_conserves_hash(spread in 1usize..10) {
        let census = PoolCensus::paper_table_iv();
        let hosts: Vec<Asn> = (1..=10u32).map(|i| Asn(i * 100)).collect();
        let diversified = diversify_stratum(&census, &hosts, spread);
        prop_assert!((diversified.total_share() - census.total_share()).abs() < 1e-9);
        prop_assert_eq!(diversified.len(), census.len());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Hijack curves are monotone and the prefix threshold is exact, for
    /// every anchor AS and arbitrary seeds.
    #[test]
    fn hijack_curves_well_formed(seed in 0u64..300) {
        let snapshot = Snapshot::generate(SnapshotConfig {
            seed,
            scale: 0.05,
            tail_as_count: 60,
            version_tail: 10,
            ..SnapshotConfig::paper()
        });
        let engine = HijackEngine::new(&snapshot);
        for asn in [24940u32, 16276, 37963, 16509, 14061] {
            let curve = engine.isolation_curve(Asn(asn));
            prop_assert!(!curve.is_empty());
            for pair in curve.windows(2) {
                prop_assert!(pair[0] <= pair[1] + 1e-12);
            }
            let last = *curve.last().unwrap();
            prop_assert!(last <= 1.0 + 1e-12);
            // Threshold consistency.
            if let Some(k) = engine.prefixes_for_fraction(Asn(asn), 0.5) {
                prop_assert!(curve[k - 1] + 1e-12 >= 0.5);
                if k > 1 {
                    prop_assert!(curve[k - 2] < 0.5 + 1e-12);
                }
            }
            // Hijacking k prefixes isolates exactly the curve's fraction.
            let outcome = engine.hijack_top_prefixes(Asn(asn), 10);
            prop_assert!((outcome.fraction_of_as - curve[9.min(curve.len() - 1)]).abs() < 1e-9);
        }
    }
}
