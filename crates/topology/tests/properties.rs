//! Property-based tests for the topology substrate: prefixes, the
//! registry and the snapshot generator.

use bp_topology::ids::{Ipv4Prefix, NodeAddr};
use bp_topology::{Snapshot, SnapshotConfig, VersionCensus, TOR_ASN};
use proptest::prelude::*;

proptest! {
    /// CIDR display/parse round-trips for arbitrary prefixes.
    #[test]
    fn prefix_display_parse_round_trip(addr in any::<u32>(), len in 0u8..=32) {
        let p = Ipv4Prefix::new(addr, len);
        let parsed: Ipv4Prefix = p.to_string().parse().unwrap();
        prop_assert_eq!(parsed, p);
    }

    /// The network address is always inside its own prefix, and `covers`
    /// is reflexive and antisymmetric for different lengths.
    #[test]
    fn prefix_contains_own_network(addr in any::<u32>(), len in 0u8..=32) {
        let p = Ipv4Prefix::new(addr, len);
        prop_assert!(p.contains(p.network()));
        prop_assert!(p.covers(&p));
        if len < 32 {
            let sub = Ipv4Prefix::new(addr, len + 1);
            prop_assert!(p.covers(&sub));
            // A strictly longer prefix can never cover a shorter one.
            prop_assert!(!sub.covers(&p));
        }
    }

    /// Every host address generated from a prefix lies inside it.
    #[test]
    fn prefix_hosts_stay_inside(addr in any::<u32>(), len in 1u8..=32, i in any::<u64>()) {
        let p = Ipv4Prefix::new(addr, len);
        prop_assert!(p.contains(p.host(i)));
    }

    /// A version census of any tail size has shares that sum to one and
    /// are sorted descending.
    #[test]
    fn version_census_normalised(tail in 1usize..400) {
        let c = VersionCensus::with_tail(tail);
        let total: f64 = c.versions().iter().map(|v| v.share).sum();
        prop_assert!((total - 1.0).abs() < 1e-9);
        for pair in c.versions().windows(2) {
            prop_assert!(pair[0].share >= pair[1].share - 1e-12);
        }
        prop_assert_eq!(c.len(), tail + 5);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Snapshot structural invariants hold across seeds: every node's
    /// org matches its AS's org, Tor nodes sit in the pseudo-AS, and
    /// IPv4 nodes live inside their assigned prefix.
    #[test]
    fn snapshot_structurally_consistent(seed in 0u64..1000) {
        let config = SnapshotConfig {
            seed,
            scale: 0.03,
            tail_as_count: 50,
            version_tail: 12,
            ..SnapshotConfig::paper()
        };
        let s = Snapshot::generate(config);
        for node in &s.nodes {
            // Org consistency.
            let rec = s.registry.as_record(node.asn).expect("registered AS");
            prop_assert_eq!(rec.org, node.org);
            // Index bounds.
            prop_assert!((0.0..=1.0).contains(&node.latency_index));
            prop_assert!((0.0..=1.0).contains(&node.uptime_index));
            prop_assert!(node.link_speed_mbps > 0.0);
            prop_assert!((node.version_idx as usize) < s.versions.len());
            match node.addr {
                NodeAddr::V4(addr) => {
                    let pi = node.prefix_idx.expect("IPv4 node has a prefix") as usize;
                    prop_assert!(rec.prefixes[pi].contains(addr));
                }
                NodeAddr::V6(_) => prop_assert!(node.prefix_idx.is_none()),
                NodeAddr::Onion(_) => {
                    prop_assert_eq!(node.asn, TOR_ASN);
                }
            }
        }
        // Per-AS counts from the index methods agree with a direct scan.
        let direct = s
            .nodes
            .iter()
            .filter(|n| n.asn == TOR_ASN)
            .count();
        prop_assert_eq!(s.nodes_in_as(TOR_ASN).len(), direct);
    }

    /// Population scale is linear: doubling the scale roughly doubles the
    /// node count, and the AS ranking's head is stable.
    #[test]
    fn snapshot_scales_linearly(seed in 0u64..50) {
        let small = Snapshot::generate(SnapshotConfig {
            seed,
            scale: 0.04,
            tail_as_count: 50,
            version_tail: 12,
            ..SnapshotConfig::paper()
        });
        let large = Snapshot::generate(SnapshotConfig {
            seed,
            scale: 0.08,
            tail_as_count: 50,
            version_tail: 12,
            ..SnapshotConfig::paper()
        });
        let ratio = large.node_count() as f64 / small.node_count() as f64;
        prop_assert!((ratio - 2.0).abs() < 0.05, "ratio {ratio}");
        // Hetzner leads at any scale.
        prop_assert_eq!(small.nodes_per_as()[0].0, large.nodes_per_as()[0].0);
    }
}
