//! Deterministic re-runs of inputs proptest once shrank to (see
//! `properties.proptest-regressions`), kept as plain tests so they run
//! even when the property suite is skipped.

use bp_topology::VersionCensus;

/// `version_census_normalised` once failed at `tail = 1`: with no
/// minor variants to spread the remainder over, shares did not sum to
/// one. The remainder is now absorbed into the last variant.
#[test]
fn version_census_tail_of_one_is_normalised() {
    let c = VersionCensus::with_tail(1);
    let total: f64 = c.versions().iter().map(|v| v.share).sum();
    assert!((total - 1.0).abs() < 1e-9, "total share {total}");
    for pair in c.versions().windows(2) {
        assert!(pair[0].share >= pair[1].share - 1e-12);
    }
    assert_eq!(c.len(), 6);
}
