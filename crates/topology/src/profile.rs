//! Per-node profiles.
//!
//! Table I of the paper characterises full nodes by connectivity family,
//! link speed, latency index and uptime index; the Bitnodes crawl also
//! records each node's software version and whether it is currently up.
//! A [`NodeProfile`] carries all of that static/slow-moving state; the
//! dynamic chain view lives in the network simulator.

use crate::ids::{Asn, ConnType, NodeAddr, NodeId, OrgId};

/// Named population scales for snapshot generation and the `repro`
/// harness. `Quick` and `Paper` are spellings of the continuous
/// `--scale` factor the CLI already accepts; `Huge` is the
/// million-node stress profile behind `repro --scale huge`, sized so
/// the paper's spatial claims can be probed at internet scale rather
/// than snapshot scale.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScaleProfile {
    /// 5 % of the paper population (~680 nodes): CI and benches.
    Quick,
    /// The paper's 13,635-node February 28, 2018 snapshot.
    Paper,
    /// Exactly 1,000,000 nodes, every node up. Built with the
    /// partial-Fisher–Yates samplers — the legacy rejection samplers
    /// degenerate into coupon collection at this population.
    Huge,
}

impl ScaleProfile {
    /// The linear factor this profile applies to the paper's 13,635
    /// nodes. `Huge`'s factor is calibrated so the rounded total is
    /// exactly one million.
    pub fn factor(self) -> f64 {
        match self {
            Self::Quick => 0.05,
            Self::Paper => 1.0,
            Self::Huge => 73.3407,
        }
    }

    /// Total nodes the profile generates (before the up-fraction cut;
    /// `Huge` keeps every node up).
    pub fn nodes(self) -> usize {
        match self {
            Self::Quick => 682,
            Self::Paper => 13_635,
            Self::Huge => 1_000_000,
        }
    }

    /// Documented peak-RSS budget, in MiB, for a full day of gossip at
    /// this scale. The huge-scale CI smoke job enforces its budget
    /// against the measured `VmHWM`; the smaller profiles' budgets are
    /// generous ceilings for regression tracking.
    pub fn memory_budget_mb(self) -> u64 {
        match self {
            Self::Quick => 256,
            Self::Paper => 2048,
            Self::Huge => 6144,
        }
    }

    /// Parses a named `--scale` spelling. Numeric scales are handled by
    /// the caller; only profile names resolve here.
    pub fn from_flag(raw: &str) -> Option<Self> {
        match raw {
            "quick" => Some(Self::Quick),
            "paper" => Some(Self::Paper),
            "huge" => Some(Self::Huge),
            _ => None,
        }
    }
}

/// Static profile of one full node, as a crawler would record it.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeProfile {
    /// Dense node index.
    pub id: NodeId,
    /// Network address (IPv4 / IPv6 / onion).
    pub addr: NodeAddr,
    /// Hosting AS (Tor nodes are grouped under a pseudo-AS, as the paper
    /// does: "We group TOR nodes and treat them as a single AS").
    pub asn: Asn,
    /// Owning organization of the hosting AS.
    pub org: OrgId,
    /// Index of the announced BGP prefix within the AS's prefix list that
    /// covers this node's address (`None` for non-IPv4 nodes).
    pub prefix_idx: Option<u32>,
    /// Link speed in Mbps (Table I: IPv4 μ = 25.04, Tor μ = 432.67).
    pub link_speed_mbps: f64,
    /// Latency index in `[0, 1]` — higher is *worse* response latency as
    /// Bitnodes scores it (IPv4 μ = 0.70, Tor μ = 0.24).
    pub latency_index: f64,
    /// Uptime index in `[0, 1]` — fraction of time reachable.
    pub uptime_index: f64,
    /// Whether the node was up at snapshot time (83.47 % in the paper).
    pub is_up: bool,
    /// Index into the software version census (Table VIII).
    pub version_idx: u32,
}

impl NodeProfile {
    /// The connectivity family.
    pub fn conn_type(&self) -> ConnType {
        self.addr.conn_type()
    }

    /// A propagation-quality score in `(0, 1]` combining latency and
    /// uptime: well-connected, reliable nodes relay faster. Used by the
    /// network simulator to derive per-edge delay multipliers.
    pub fn relay_quality(&self) -> f64 {
        let latency_quality = 1.0 - self.latency_index * 0.8;
        let uptime_quality = 0.2 + self.uptime_index * 0.8;
        (latency_quality * uptime_quality).clamp(0.05, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile(latency: f64, uptime: f64) -> NodeProfile {
        NodeProfile {
            id: NodeId(0),
            addr: NodeAddr::V4(0x0A000001),
            asn: Asn(24940),
            org: OrgId(0),
            prefix_idx: Some(0),
            link_speed_mbps: 25.0,
            latency_index: latency,
            uptime_index: uptime,
            is_up: true,
            version_idx: 0,
        }
    }

    #[test]
    fn relay_quality_orders_nodes_sensibly() {
        let fast = profile(0.1, 0.9);
        let slow = profile(0.9, 0.3);
        assert!(fast.relay_quality() > slow.relay_quality());
    }

    #[test]
    fn relay_quality_bounded() {
        for lat in [0.0, 0.5, 1.0] {
            for up in [0.0, 0.5, 1.0] {
                let q = profile(lat, up).relay_quality();
                assert!((0.05..=1.0).contains(&q), "quality {q} out of range");
            }
        }
    }

    #[test]
    fn conn_type_follows_addr() {
        let p = profile(0.5, 0.5);
        assert_eq!(p.conn_type(), ConnType::IPv4);
    }

    #[test]
    fn scale_profiles_round_trip_and_round_to_their_populations() {
        for p in [ScaleProfile::Quick, ScaleProfile::Paper, ScaleProfile::Huge] {
            assert_eq!((13_635.0 * p.factor()).round() as usize, p.nodes());
            assert!(p.memory_budget_mb() > 0);
        }
        assert_eq!(ScaleProfile::from_flag("huge"), Some(ScaleProfile::Huge));
        assert_eq!(ScaleProfile::from_flag("0.5"), None);
        assert_eq!(ScaleProfile::from_flag("HUGE"), None);
    }
}
