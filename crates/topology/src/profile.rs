//! Per-node profiles.
//!
//! Table I of the paper characterises full nodes by connectivity family,
//! link speed, latency index and uptime index; the Bitnodes crawl also
//! records each node's software version and whether it is currently up.
//! A [`NodeProfile`] carries all of that static/slow-moving state; the
//! dynamic chain view lives in the network simulator.

use crate::ids::{Asn, ConnType, NodeAddr, NodeId, OrgId};

/// Static profile of one full node, as a crawler would record it.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeProfile {
    /// Dense node index.
    pub id: NodeId,
    /// Network address (IPv4 / IPv6 / onion).
    pub addr: NodeAddr,
    /// Hosting AS (Tor nodes are grouped under a pseudo-AS, as the paper
    /// does: "We group TOR nodes and treat them as a single AS").
    pub asn: Asn,
    /// Owning organization of the hosting AS.
    pub org: OrgId,
    /// Index of the announced BGP prefix within the AS's prefix list that
    /// covers this node's address (`None` for non-IPv4 nodes).
    pub prefix_idx: Option<u32>,
    /// Link speed in Mbps (Table I: IPv4 μ = 25.04, Tor μ = 432.67).
    pub link_speed_mbps: f64,
    /// Latency index in `[0, 1]` — higher is *worse* response latency as
    /// Bitnodes scores it (IPv4 μ = 0.70, Tor μ = 0.24).
    pub latency_index: f64,
    /// Uptime index in `[0, 1]` — fraction of time reachable.
    pub uptime_index: f64,
    /// Whether the node was up at snapshot time (83.47 % in the paper).
    pub is_up: bool,
    /// Index into the software version census (Table VIII).
    pub version_idx: u32,
}

impl NodeProfile {
    /// The connectivity family.
    pub fn conn_type(&self) -> ConnType {
        self.addr.conn_type()
    }

    /// A propagation-quality score in `(0, 1]` combining latency and
    /// uptime: well-connected, reliable nodes relay faster. Used by the
    /// network simulator to derive per-edge delay multipliers.
    pub fn relay_quality(&self) -> f64 {
        let latency_quality = 1.0 - self.latency_index * 0.8;
        let uptime_quality = 0.2 + self.uptime_index * 0.8;
        (latency_quality * uptime_quality).clamp(0.05, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile(latency: f64, uptime: f64) -> NodeProfile {
        NodeProfile {
            id: NodeId(0),
            addr: NodeAddr::V4(0x0A000001),
            asn: Asn(24940),
            org: OrgId(0),
            prefix_idx: Some(0),
            link_speed_mbps: 25.0,
            latency_index: latency,
            uptime_index: uptime,
            is_up: true,
            version_idx: 0,
        }
    }

    #[test]
    fn relay_quality_orders_nodes_sensibly() {
        let fast = profile(0.1, 0.9);
        let slow = profile(0.9, 0.3);
        assert!(fast.relay_quality() > slow.relay_quality());
    }

    #[test]
    fn relay_quality_bounded() {
        for lat in [0.0, 0.5, 1.0] {
            for up in [0.0, 0.5, 1.0] {
                let q = profile(lat, up).relay_quality();
                assert!((0.05..=1.0).contains(&q), "quality {q} out of range");
            }
        }
    }

    #[test]
    fn conn_type_follows_addr() {
        let p = profile(0.5, 0.5);
        assert_eq!(p.conn_type(), ConnType::IPv4);
    }
}
