//! The software-version census (paper Table VIII and §V-D).
//!
//! The paper observed **288** distinct Bitcoin client variants among full
//! nodes: Bitcoin Core 0.16.0 at 36.28 %, 0.15.1 at 27.52 %, a named tail
//! (including the Falcon relay client run by 10 nodes) and hundreds of
//! small variants. Logical partitioning exploits exactly this diversity.

/// One software variant in the census.
#[derive(Debug, Clone, PartialEq)]
pub struct SoftwareVersion {
    /// Display name, e.g. `"Bitcoin Core v0.16.0"`.
    pub name: String,
    /// Release day, in days since 2009-01-09 (Bitcoin Core's first
    /// release, which the paper uses as the protocol's birth date).
    pub release_day: u32,
    /// Fraction of full nodes running this version.
    pub share: f64,
    /// Whether the variant derives from Bitcoin Core (as opposed to an
    /// independent implementation such as Falcon).
    pub is_core: bool,
}

/// The full version census.
#[derive(Debug, Clone, PartialEq)]
pub struct VersionCensus {
    versions: Vec<SoftwareVersion>,
    /// Snapshot day (days since 2009-01-09) used for release-lag maths.
    collection_day: u32,
}

/// Days between 2009-01-09 and a `(year, month, day)` date — a simple
/// proleptic-Gregorian day count; exact for the range the census covers.
fn day_index(year: u32, month: u32, day: u32) -> u32 {
    fn days_from_civil(y: i64, m: i64, d: i64) -> i64 {
        // Howard Hinnant's civil-from-days inverse.
        let y = if m <= 2 { y - 1 } else { y };
        let era = if y >= 0 { y } else { y - 399 } / 400;
        let yoe = y - era * 400;
        let mp = (m + 9) % 12;
        let doy = (153 * mp + 2) / 5 + d - 1;
        let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
        era * 146_097 + doe - 719_468
    }
    let epoch = days_from_civil(2009, 1, 9);
    (days_from_civil(year as i64, month as i64, day as i64) - epoch) as u32
}

impl VersionCensus {
    /// The census calibrated to Table VIII: the top-5 versions carry the
    /// paper's exact shares and release dates; the remaining share is
    /// spread over `tail_count` minor variants (including Falcon) with a
    /// harmonically decaying profile, giving 288 variants by default.
    pub fn paper_table_viii() -> Self {
        Self::with_tail(283)
    }

    /// Like [`VersionCensus::paper_table_viii`] but with a custom tail
    /// size (useful for scaled-down tests).
    ///
    /// # Panics
    ///
    /// Panics if `tail_count` is zero.
    pub fn with_tail(tail_count: usize) -> Self {
        assert!(tail_count > 0, "census requires a non-empty tail");
        // (name, (y, m, d), share) from Table VIII.
        let top: [(&str, (u32, u32, u32), f64); 5] = [
            ("Bitcoin Core v0.16.0", (2018, 2, 26), 0.3628),
            ("Bitcoin Core v0.15.1", (2017, 11, 11), 0.2752),
            ("Bitcoin Core v0.15.0.1", (2017, 9, 19), 0.0501),
            ("Bitcoin Core v0.14.2", (2017, 6, 17), 0.0467),
            ("Bitcoin Core v0.15.0", (2017, 4, 22), 0.0205),
        ];
        let mut versions: Vec<SoftwareVersion> = top
            .iter()
            .map(|(name, (y, m, d), share)| SoftwareVersion {
                name: (*name).to_string(),
                release_day: day_index(*y, *m, *d),
                share: *share,
                is_core: true,
            })
            .collect();

        // Falcon: the custom relay client the paper calls out, run by 10
        // of the 13,635 nodes.
        let falcon_share = 10.0 / 13_635.0;
        versions.push(SoftwareVersion {
            name: "Falcon".to_string(),
            release_day: day_index(2016, 6, 1),
            share: falcon_share,
            is_core: false,
        });
        let tail_share: f64 = 1.0 - versions.iter().map(|v| v.share).sum::<f64>();
        let rest = tail_count.saturating_sub(1);
        // Harmonic decay with a rank offset so that even the largest tail
        // variant stays below the Table VIII #5 share (2.05 %).
        const OFFSET: f64 = 8.0;
        let harmonic: f64 = (1..=rest.max(1)).map(|k| 1.0 / (k as f64 + OFFSET)).sum();
        for k in 1..=rest {
            let share = tail_share * (1.0 / (k as f64 + OFFSET)) / harmonic;
            let (name, is_core) = if k % 3 == 0 {
                (
                    format!("Bitcoin Core v0.{}.{} (patched)", 9 + k % 7, k % 5),
                    true,
                )
            } else {
                (format!("variant-{k}"), false)
            };
            versions.push(SoftwareVersion {
                name,
                // Tail variants all predate the 0.16.0 release.
                release_day: day_index(2016, 1, 1) + (k as u32 * 7) % 700,
                share,
                is_core,
            });
        }
        // Absorb any undistributed remainder (including the rest == 0
        // edge case) into the last variant, so shares sum to exactly 1.
        let assigned: f64 = versions.iter().map(|v| v.share).sum();
        if let Some(last) = versions.last_mut() {
            last.share += 1.0 - assigned;
        }
        versions.sort_by(|a, b| b.share.partial_cmp(&a.share).expect("finite shares"));
        Self {
            versions,
            collection_day: day_index(2018, 4, 26),
        }
    }

    /// Number of distinct variants (288 for the paper census).
    pub fn len(&self) -> usize {
        self.versions.len()
    }

    /// Whether the census is empty (never true for constructed censuses).
    pub fn is_empty(&self) -> bool {
        self.versions.is_empty()
    }

    /// All versions, most popular first.
    pub fn versions(&self) -> &[SoftwareVersion] {
        &self.versions
    }

    /// The version at census index `idx`.
    pub fn get(&self, idx: u32) -> Option<&SoftwareVersion> {
        self.versions.get(idx as usize)
    }

    /// The `k` most popular versions.
    pub fn top(&self, k: usize) -> &[SoftwareVersion] {
        &self.versions[..k.min(self.versions.len())]
    }

    /// Days between a version's release and the census collection date —
    /// the "Lag" column of Table VIII.
    pub fn release_lag_days(&self, v: &SoftwareVersion) -> u32 {
        self.collection_day.saturating_sub(v.release_day)
    }

    /// Per-version share weights, for sampling node version assignments.
    pub fn share_weights(&self) -> Vec<f64> {
        self.versions.iter().map(|v| v.share).collect()
    }

    /// Fraction of nodes running the newest Core release — the paper
    /// laments this is only ≈36 %.
    pub fn latest_core_share(&self) -> f64 {
        self.versions
            .iter()
            .filter(|v| v.is_core)
            .max_by_key(|v| v.release_day)
            .map(|v| v.share)
            .unwrap_or(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_census_has_288_variants() {
        let c = VersionCensus::paper_table_viii();
        assert_eq!(c.len(), 288);
    }

    #[test]
    fn shares_sum_to_one() {
        let c = VersionCensus::paper_table_viii();
        let total: f64 = c.versions().iter().map(|v| v.share).sum();
        assert!((total - 1.0).abs() < 1e-9, "total share {total}");
    }

    #[test]
    fn top5_matches_table_viii() {
        let c = VersionCensus::paper_table_viii();
        let top = c.top(5);
        assert_eq!(top[0].name, "Bitcoin Core v0.16.0");
        assert!((top[0].share - 0.3628).abs() < 1e-12);
        assert_eq!(top[1].name, "Bitcoin Core v0.15.1");
        assert!((top[4].share - 0.0205).abs() < 1e-12);
        // Shares are descending.
        for pair in top.windows(2) {
            assert!(pair[0].share >= pair[1].share);
        }
    }

    #[test]
    fn release_lags_match_table_viii_order() {
        let c = VersionCensus::paper_table_viii();
        let lags: Vec<u32> = c.top(5).iter().map(|v| c.release_lag_days(v)).collect();
        // Table VIII reports 59, 166, 219, 313 days for the first four;
        // exact values depend on the collection date, so check ordering
        // and the headline value.
        assert_eq!(lags[0], 59);
        assert_eq!(lags[1], 166);
        assert_eq!(lags[2], 219);
        assert_eq!(lags[3], 313);
        for pair in lags.windows(2) {
            assert!(pair[0] < pair[1]);
        }
    }

    #[test]
    fn falcon_is_in_the_tail() {
        let c = VersionCensus::paper_table_viii();
        let falcon = c
            .versions()
            .iter()
            .find(|v| v.name == "Falcon")
            .expect("Falcon variant present");
        assert!(!falcon.is_core);
        assert!(falcon.share < 0.01);
    }

    #[test]
    fn latest_core_share_is_v0160() {
        let c = VersionCensus::paper_table_viii();
        assert!((c.latest_core_share() - 0.3628).abs() < 1e-12);
    }

    #[test]
    fn day_index_known_intervals() {
        // 2018-02-26 → 2018-04-26 is 59 days.
        assert_eq!(day_index(2018, 4, 26) - day_index(2018, 2, 26), 59);
        // Epoch day is zero.
        assert_eq!(day_index(2009, 1, 9), 0);
        // One year later (2009 not a leap year before March).
        assert_eq!(day_index(2010, 1, 9), 365);
    }

    #[test]
    fn share_weights_align_with_versions() {
        let c = VersionCensus::with_tail(10);
        assert_eq!(c.share_weights().len(), c.len());
        assert_eq!(c.len(), 15);
    }
}
