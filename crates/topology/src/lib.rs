//! Internet-topology substrate: ASes, organizations, BGP prefixes, node
//! profiles, and the calibrated synthetic snapshot generator.
//!
//! The paper's spatial analysis (§IV–§V-A) is driven by *where* Bitcoin
//! full nodes live: which AS announces the covering BGP prefix, which
//! organization owns that AS, and which country the traffic transits.
//! This crate models that hierarchy and generates network snapshots whose
//! marginals are calibrated to the paper's February 28, 2018 measurement
//! (see [`dataset`] for the full calibration list).
//!
//! # Examples
//!
//! ```
//! use bp_topology::{Snapshot, SnapshotConfig};
//!
//! let snap = Snapshot::generate(SnapshotConfig::test_small());
//! let (top_as, count) = snap.nodes_per_as()[0];
//! assert_eq!(top_as, bp_topology::ids::Asn(24940)); // Hetzner
//! assert!(count > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dataset;
pub mod ids;
pub mod profile;
pub mod registry;
pub mod versions;

pub use dataset::{Snapshot, SnapshotConfig, TOR_ASN};
pub use ids::{Asn, ConnType, Country, Ipv4Prefix, NodeAddr, NodeId, OrgId};
pub use profile::{NodeProfile, ScaleProfile};
pub use registry::{AsRecord, OrgRecord, Registry};
pub use versions::{SoftwareVersion, VersionCensus};
