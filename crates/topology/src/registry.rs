//! The AS / organization registry.
//!
//! Table II of the paper shows that Bitcoin is *more* centralized at the
//! organization level than at the AS level because several organizations
//! control more than one AS (Amazon routes 5.54 % of traffic but its single
//! largest AS, AS16509, intercepts only 4.47 %). The registry models that
//! two-level ownership explicitly.

use crate::ids::{Asn, Country, Ipv4Prefix, OrgId};
use std::collections::HashMap;

/// A registered autonomous system.
#[derive(Debug, Clone, PartialEq)]
pub struct AsRecord {
    /// The AS number.
    pub asn: Asn,
    /// Owning organization.
    pub org: OrgId,
    /// Jurisdiction (for the nation-state threat model).
    pub country: Country,
    /// BGP prefixes announced by this AS. Figure 4 keys on these counts
    /// (AS24940 announces 51 prefixes, AS16509 announces 2,969).
    pub prefixes: Vec<Ipv4Prefix>,
}

/// A registered organization (ISP / hosting provider).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OrgRecord {
    /// The organization id.
    pub id: OrgId,
    /// Human-readable name as in Table II (e.g. "Hetzner Online GmbH").
    pub name: String,
    /// ASes controlled by this organization.
    pub ases: Vec<Asn>,
}

/// The two-level (organization → AS → prefix) registry.
#[derive(Debug, Clone, Default)]
pub struct Registry {
    ases: HashMap<Asn, AsRecord>,
    orgs: HashMap<OrgId, OrgRecord>,
    /// Insertion order, for deterministic iteration.
    as_order: Vec<Asn>,
    org_order: Vec<OrgId>,
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers an organization by name, returning its id. Registering
    /// the same name twice returns the existing id.
    pub fn register_org(&mut self, name: &str) -> OrgId {
        if let Some(existing) = self.org_order.iter().find(|id| self.orgs[id].name == name) {
            return *existing;
        }
        let id = OrgId(self.org_order.len() as u32);
        self.orgs.insert(
            id,
            OrgRecord {
                id,
                name: name.to_string(),
                ases: Vec::new(),
            },
        );
        self.org_order.push(id);
        id
    }

    /// Registers an AS under an organization.
    ///
    /// # Panics
    ///
    /// Panics if the ASN is already registered or the organization does not
    /// exist.
    pub fn register_as(
        &mut self,
        asn: Asn,
        org: OrgId,
        country: Country,
        prefixes: Vec<Ipv4Prefix>,
    ) {
        assert!(!self.ases.contains_key(&asn), "{asn} is already registered");
        let org_rec = self.orgs.get_mut(&org).expect("organization must exist");
        org_rec.ases.push(asn);
        self.ases.insert(
            asn,
            AsRecord {
                asn,
                org,
                country,
                prefixes,
            },
        );
        self.as_order.push(asn);
    }

    /// Looks up an AS.
    pub fn as_record(&self, asn: Asn) -> Option<&AsRecord> {
        self.ases.get(&asn)
    }

    /// Looks up an organization.
    pub fn org_record(&self, org: OrgId) -> Option<&OrgRecord> {
        self.orgs.get(&org)
    }

    /// Organization name, or `"?"` if unknown.
    pub fn org_name(&self, org: OrgId) -> &str {
        self.orgs.get(&org).map(|o| o.name.as_str()).unwrap_or("?")
    }

    /// The organization owning an AS.
    pub fn org_of(&self, asn: Asn) -> Option<OrgId> {
        self.ases.get(&asn).map(|a| a.org)
    }

    /// The country of an AS.
    pub fn country_of(&self, asn: Asn) -> Option<Country> {
        self.ases.get(&asn).map(|a| a.country)
    }

    /// All ASes in registration order.
    pub fn ases(&self) -> impl Iterator<Item = &AsRecord> {
        self.as_order.iter().map(|asn| &self.ases[asn])
    }

    /// All organizations in registration order.
    pub fn orgs(&self) -> impl Iterator<Item = &OrgRecord> {
        self.org_order.iter().map(|id| &self.orgs[id])
    }

    /// Number of registered ASes.
    pub fn as_count(&self) -> usize {
        self.as_order.len()
    }

    /// Number of registered organizations.
    pub fn org_count(&self) -> usize {
        self.org_order.len()
    }

    /// ASes registered in a country.
    pub fn ases_in(&self, country: Country) -> Vec<Asn> {
        self.as_order
            .iter()
            .filter(|asn| self.ases[asn].country == country)
            .copied()
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn prefix(i: u32) -> Ipv4Prefix {
        Ipv4Prefix::new(i << 16, 16)
    }

    #[test]
    fn register_and_lookup() {
        let mut r = Registry::new();
        let hetzner = r.register_org("Hetzner Online GmbH");
        r.register_as(Asn(24940), hetzner, Country::Germany, vec![prefix(1)]);
        assert_eq!(r.as_count(), 1);
        assert_eq!(r.org_count(), 1);
        assert_eq!(r.org_of(Asn(24940)), Some(hetzner));
        assert_eq!(r.org_name(hetzner), "Hetzner Online GmbH");
        assert_eq!(r.country_of(Asn(24940)), Some(Country::Germany));
    }

    #[test]
    fn org_controls_multiple_ases() {
        let mut r = Registry::new();
        let amazon = r.register_org("Amazon.com, Inc");
        r.register_as(Asn(16509), amazon, Country::UnitedStates, vec![prefix(1)]);
        r.register_as(Asn(14618), amazon, Country::UnitedStates, vec![prefix(2)]);
        assert_eq!(r.org_record(amazon).unwrap().ases.len(), 2);
    }

    #[test]
    fn register_org_is_idempotent_by_name() {
        let mut r = Registry::new();
        let a = r.register_org("OVH SAS");
        let b = r.register_org("OVH SAS");
        assert_eq!(a, b);
        assert_eq!(r.org_count(), 1);
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn duplicate_asn_panics() {
        let mut r = Registry::new();
        let org = r.register_org("X");
        r.register_as(Asn(1), org, Country::Other, vec![]);
        r.register_as(Asn(1), org, Country::Other, vec![]);
    }

    #[test]
    fn country_filter() {
        let mut r = Registry::new();
        let alibaba = r.register_org("AliBaba (China)");
        let comcast = r.register_org("Comcast");
        r.register_as(Asn(45102), alibaba, Country::China, vec![]);
        r.register_as(Asn(37963), alibaba, Country::China, vec![]);
        r.register_as(Asn(7922), comcast, Country::UnitedStates, vec![]);
        assert_eq!(r.ases_in(Country::China), vec![Asn(45102), Asn(37963)]);
    }

    #[test]
    fn iteration_is_deterministic() {
        let mut r = Registry::new();
        let org = r.register_org("X");
        for i in (0..10).rev() {
            r.register_as(Asn(i), org, Country::Other, vec![]);
        }
        let order: Vec<u32> = r.ases().map(|a| a.asn.0).collect();
        assert_eq!(order, (0..10).rev().collect::<Vec<_>>());
    }
}
