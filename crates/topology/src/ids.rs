//! Identifier newtypes and IPv4 prefixes for the Internet substrate.

use std::fmt;
use std::str::FromStr;

/// An autonomous system number.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Asn(pub u32);

impl fmt::Display for Asn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "AS{}", self.0)
    }
}

/// An organization identifier (ISPs/hosting providers; one organization may
/// control several ASes, which the paper exploits at the org level).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct OrgId(pub u32);

impl fmt::Display for OrgId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "org{}", self.0)
    }
}

/// A node identifier — a dense index into the snapshot's node table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The index as `usize` for table addressing.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Country codes relevant to the paper's nation-state analysis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Country {
    /// China — hosts ≈60 % of mining traffic per Table IV.
    China,
    /// United States.
    UnitedStates,
    /// Germany.
    Germany,
    /// France.
    France,
    /// Any other jurisdiction.
    Other,
}

impl fmt::Display for Country {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Country::China => "CN",
            Country::UnitedStates => "US",
            Country::Germany => "DE",
            Country::France => "FR",
            Country::Other => "--",
        };
        f.write_str(s)
    }
}

/// An IPv4 prefix in CIDR form, e.g. `10.1.0.0/16`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Ipv4Prefix {
    network: u32,
    len: u8,
}

impl Ipv4Prefix {
    /// Creates a prefix, masking `addr` down to the network address.
    ///
    /// # Panics
    ///
    /// Panics if `len > 32`.
    pub fn new(addr: u32, len: u8) -> Self {
        assert!(len <= 32, "prefix length must be <= 32");
        Self {
            network: addr & Self::mask(len),
            len,
        }
    }

    fn mask(len: u8) -> u32 {
        if len == 0 {
            0
        } else {
            u32::MAX << (32 - len)
        }
    }

    /// The network address.
    pub fn network(&self) -> u32 {
        self.network
    }

    /// The prefix length.
    pub fn len(&self) -> u8 {
        self.len
    }

    /// Returns `true` for the 0-length default route.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of addresses covered by the prefix.
    pub fn size(&self) -> u64 {
        1u64 << (32 - self.len)
    }

    /// Whether `addr` falls inside this prefix.
    pub fn contains(&self, addr: u32) -> bool {
        addr & Self::mask(self.len) == self.network
    }

    /// Whether `other` is fully contained in (more specific than or equal
    /// to) this prefix.
    pub fn covers(&self, other: &Ipv4Prefix) -> bool {
        other.len >= self.len && self.contains(other.network)
    }

    /// The `i`-th host address within the prefix (wraps modulo prefix
    /// size).
    pub fn host(&self, i: u64) -> u32 {
        self.network.wrapping_add((i % self.size()) as u32)
    }
}

impl fmt::Display for Ipv4Prefix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let n = self.network;
        write!(
            f,
            "{}.{}.{}.{}/{}",
            n >> 24,
            (n >> 16) & 0xff,
            (n >> 8) & 0xff,
            n & 0xff,
            self.len
        )
    }
}

/// Error parsing an [`Ipv4Prefix`] from CIDR notation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsePrefixError;

impl fmt::Display for ParsePrefixError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("invalid CIDR prefix")
    }
}

impl std::error::Error for ParsePrefixError {}

impl FromStr for Ipv4Prefix {
    type Err = ParsePrefixError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let (addr_part, len_part) = s.split_once('/').ok_or(ParsePrefixError)?;
        let len: u8 = len_part.parse().map_err(|_| ParsePrefixError)?;
        if len > 32 {
            return Err(ParsePrefixError);
        }
        let mut octets = [0u32; 4];
        let mut count = 0;
        for (i, part) in addr_part.split('.').enumerate() {
            if i >= 4 {
                return Err(ParsePrefixError);
            }
            octets[i] = part.parse::<u8>().map_err(|_| ParsePrefixError)? as u32;
            count += 1;
        }
        if count != 4 {
            return Err(ParsePrefixError);
        }
        let addr = (octets[0] << 24) | (octets[1] << 16) | (octets[2] << 8) | octets[3];
        Ok(Ipv4Prefix::new(addr, len))
    }
}

/// A node's network address: the three connectivity families of Table I.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NodeAddr {
    /// Public IPv4 address.
    V4(u32),
    /// IPv6, represented by its low 64 bits (enough for identity).
    V6(u64),
    /// A Tor onion service, by index.
    Onion(u32),
}

impl NodeAddr {
    /// The connectivity family of this address.
    pub fn conn_type(&self) -> ConnType {
        match self {
            NodeAddr::V4(_) => ConnType::IPv4,
            NodeAddr::V6(_) => ConnType::IPv6,
            NodeAddr::Onion(_) => ConnType::Tor,
        }
    }
}

impl fmt::Display for NodeAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NodeAddr::V4(a) => write!(
                f,
                "{}.{}.{}.{}",
                a >> 24,
                (a >> 16) & 0xff,
                (a >> 8) & 0xff,
                a & 0xff
            ),
            NodeAddr::V6(a) => write!(f, "[::{a:x}]"),
            NodeAddr::Onion(i) => write!(f, "onion{i}.onion"),
        }
    }
}

/// Connectivity families of Table I.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ConnType {
    /// Plain IPv4 (93.41 % of full nodes in the paper's snapshot).
    IPv4,
    /// IPv6 (4.24 %).
    IPv6,
    /// Tor onion services (2.33 %), treated by the paper as one AS.
    Tor,
}

impl fmt::Display for ConnType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ConnType::IPv4 => "IPv4",
            ConnType::IPv6 => "IPv6",
            ConnType::Tor => "TOR",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prefix_contains_and_covers() {
        let p: Ipv4Prefix = "10.1.0.0/16".parse().unwrap();
        assert!(p.contains(0x0A01_1234));
        assert!(!p.contains(0x0A02_0000));
        let sub: Ipv4Prefix = "10.1.2.0/24".parse().unwrap();
        assert!(p.covers(&sub));
        assert!(!sub.covers(&p));
        assert!(p.covers(&p));
    }

    #[test]
    fn prefix_masks_host_bits() {
        let p = Ipv4Prefix::new(0x0A01_02FF, 24);
        assert_eq!(p.network(), 0x0A01_0200);
        assert_eq!(p.to_string(), "10.1.2.0/24");
    }

    #[test]
    fn prefix_size() {
        assert_eq!(Ipv4Prefix::new(0, 24).size(), 256);
        assert_eq!(Ipv4Prefix::new(0, 32).size(), 1);
        assert_eq!(Ipv4Prefix::new(0, 0).size(), 1u64 << 32);
    }

    #[test]
    fn prefix_parse_rejects_garbage() {
        assert!("10.1.0.0".parse::<Ipv4Prefix>().is_err());
        assert!("10.1.0.0/33".parse::<Ipv4Prefix>().is_err());
        assert!("10.1.0/24".parse::<Ipv4Prefix>().is_err());
        assert!("a.b.c.d/8".parse::<Ipv4Prefix>().is_err());
    }

    #[test]
    fn host_addresses_stay_in_prefix() {
        let p: Ipv4Prefix = "192.168.4.0/24".parse().unwrap();
        for i in 0..300 {
            assert!(p.contains(p.host(i)));
        }
    }

    #[test]
    fn addr_conn_types() {
        assert_eq!(NodeAddr::V4(1).conn_type(), ConnType::IPv4);
        assert_eq!(NodeAddr::V6(1).conn_type(), ConnType::IPv6);
        assert_eq!(NodeAddr::Onion(1).conn_type(), ConnType::Tor);
    }

    #[test]
    fn displays_are_nonempty() {
        assert_eq!(Asn(24940).to_string(), "AS24940");
        assert_eq!(NodeAddr::V4(0x0A000001).to_string(), "10.0.0.1");
        assert_eq!(ConnType::Tor.to_string(), "TOR");
        assert_eq!(Country::China.to_string(), "CN");
    }
}
