//! Synthetic network-snapshot generator, calibrated to the paper's
//! February 28, 2018 measurement.
//!
//! The paper's raw input — an 80 GB, two-month Bitnodes crawl — is not
//! available, so this module substitutes a generator that reproduces every
//! *marginal* the paper reports and that the downstream analyses consume:
//!
//! * 13,635 full nodes, 83.47 % up (Table I / §IV-C);
//! * 12,737 IPv4 / 579 IPv6 / 319 Tor, with Table I link-speed and
//!   latency/uptime-index moments per family;
//! * the exact top-10 AS and organization populations of Table II
//!   (AS24940 = 1,030 nodes, Amazon.com = 756 across two ASes, …);
//! * per-AS BGP prefix counts and within-AS concentration matching
//!   Figure 4 (51 prefixes for AS24940 with ~80 % of nodes in the top
//!   ~15; 2,969 prefixes for AS16509 with nodes spread so that > 140
//!   hijacks are needed for 95 %);
//! * a heavy-tailed remainder over ~1,650 further ASes so that ≈8 ASes
//!   host 30 % of nodes and ≈24 host 50 % (Figure 3 / Table III);
//! * the Table VIII software-version census.
//!
//! All randomness flows from a single seed, so snapshots are reproducible.

use crate::ids::{Asn, ConnType, Country, Ipv4Prefix, NodeAddr, NodeId, OrgId};
use crate::profile::{NodeProfile, ScaleProfile};
use crate::registry::Registry;
use crate::versions::VersionCensus;
use bp_analysis::dist::{standard_normal, zipf_weights, LogNormal, WeightedIndex};
use bp_analysis::stats::Summary;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

/// The pseudo-ASN under which Tor nodes are grouped ("we group TOR nodes
/// and treat them as a single AS", §V-A). 64512 is the first private-use
/// ASN.
pub const TOR_ASN: Asn = Asn(64512);

/// Specification of one anchor AS (a named row of Table II / Table IV /
/// Figure 4).
#[derive(Debug, Clone)]
struct AnchorSpec {
    asn: Asn,
    org_name: &'static str,
    country: Country,
    /// Node population at paper scale.
    nodes: usize,
    /// Announced BGP prefix count (Figure 4 legend).
    prefix_count: usize,
    /// Zipf exponent of node placement over prefixes; higher = more
    /// concentrated = cheaper to hijack.
    concentration: f64,
    /// Fraction of announced prefixes that actually host Bitcoin nodes
    /// (cloud providers announce thousands of prefixes, only a few of
    /// which contain full nodes).
    active_prefixes: f64,
}

/// The anchor ASes: Table II's top 10 plus the secondary ASes that make
/// the organization-level totals come out right (Amazon, OVH and
/// DigitalOcean each control a second AS), plus Chinanet Hubei which
/// appears in Table IV as an F2Pool stratum host.
fn anchors() -> Vec<AnchorSpec> {
    vec![
        AnchorSpec {
            asn: Asn(24940),
            org_name: "Hetzner Online GmbH",
            country: Country::Germany,
            nodes: 1030,
            prefix_count: 51,
            concentration: 1.35,
            active_prefixes: 1.0,
        },
        AnchorSpec {
            asn: Asn(16276),
            org_name: "OVH SAS",
            country: Country::France,
            nodes: 697,
            prefix_count: 104,
            concentration: 1.55,
            active_prefixes: 1.0,
        },
        AnchorSpec {
            asn: Asn(37963),
            org_name: "Hangzhou Alibaba",
            country: Country::China,
            nodes: 640,
            prefix_count: 454,
            concentration: 1.75,
            active_prefixes: 0.5,
        },
        AnchorSpec {
            asn: Asn(16509),
            org_name: "Amazon.com, Inc",
            country: Country::UnitedStates,
            nodes: 609,
            prefix_count: 2969,
            concentration: 0.25,
            active_prefixes: 0.054,
        },
        AnchorSpec {
            asn: Asn(14061),
            org_name: "DigitalOcean, LLC",
            country: Country::UnitedStates,
            nodes: 460,
            prefix_count: 1430,
            concentration: 1.75,
            active_prefixes: 0.3,
        },
        AnchorSpec {
            asn: Asn(7922),
            org_name: "Comcast Communication",
            country: Country::UnitedStates,
            nodes: 414,
            prefix_count: 72,
            concentration: 1.25,
            active_prefixes: 1.0,
        },
        AnchorSpec {
            asn: Asn(4134),
            org_name: "No.31, Jin-rong Street",
            country: Country::China,
            nodes: 394,
            prefix_count: 310,
            concentration: 1.45,
            active_prefixes: 0.6,
        },
        AnchorSpec {
            asn: Asn(51167),
            org_name: "Contabo GmbH",
            country: Country::Germany,
            nodes: 288,
            prefix_count: 18,
            concentration: 1.20,
            active_prefixes: 1.0,
        },
        AnchorSpec {
            asn: Asn(45102),
            org_name: "AliBaba (China)",
            country: Country::China,
            nodes: 279,
            prefix_count: 96,
            concentration: 1.35,
            active_prefixes: 1.0,
        },
        AnchorSpec {
            asn: Asn(58563),
            org_name: "Chinanet Hubei",
            country: Country::China,
            nodes: 118,
            prefix_count: 210,
            concentration: 1.25,
            active_prefixes: 0.5,
        },
        // Secondary ASes: same organizations, additional networks.
        AnchorSpec {
            asn: Asn(14618),
            org_name: "Amazon.com, Inc",
            country: Country::UnitedStates,
            nodes: 147,
            prefix_count: 520,
            concentration: 0.30,
            active_prefixes: 0.1,
        },
        AnchorSpec {
            asn: Asn(35540),
            org_name: "OVH SAS",
            country: Country::France,
            nodes: 3,
            prefix_count: 6,
            concentration: 1.00,
            active_prefixes: 1.0,
        },
        AnchorSpec {
            asn: Asn(393406),
            org_name: "DigitalOcean, LLC",
            country: Country::UnitedStates,
            nodes: 43,
            prefix_count: 60,
            concentration: 1.20,
            active_prefixes: 1.0,
        },
    ]
}

/// Table I moments per connectivity family:
/// (link μ, link σ, latency μ, latency σ, uptime μ, uptime σ).
fn table_i_moments(conn: ConnType) -> (f64, f64, f64, f64, f64, f64) {
    match conn {
        ConnType::IPv4 => (25.04, 258.80, 0.70, 0.45, 0.68, 0.44),
        ConnType::IPv6 => (23.06, 245.36, 0.86, 0.35, 0.67, 0.42),
        ConnType::Tor => (432.67, 1046.5, 0.24, 0.25, 0.76, 0.37),
    }
}

/// Configuration of the snapshot generator.
#[derive(Debug, Clone, PartialEq)]
pub struct SnapshotConfig {
    /// RNG seed; equal seeds produce identical snapshots.
    pub seed: u64,
    /// Linear population scale; `1.0` reproduces the paper's 13,635
    /// nodes, `0.1` builds a ~1,360-node network for fast tests.
    pub scale: f64,
    /// Fraction of nodes up at snapshot time (paper: 0.8347).
    pub up_fraction: f64,
    /// Total IPv6 nodes at paper scale (579).
    pub ipv6_nodes: usize,
    /// Total Tor nodes at paper scale (319).
    pub tor_nodes: usize,
    /// Total nodes at paper scale (13,635).
    pub total_nodes: usize,
    /// Number of non-anchor "tail" ASes (paper: 1,660 ASes host all
    /// nodes; 13 are anchors here).
    pub tail_as_count: usize,
    /// Zipf exponent of the tail AS-size distribution. Calibrated so that
    /// ≈8 ASes host 30 % of nodes and ≈24 host 50 %.
    pub tail_zipf_exponent: f64,
    /// Rank offset of the shifted-Zipf tail (keeps the largest tail AS
    /// below the smallest anchor).
    pub tail_rank_offset: f64,
    /// Number of minor software variants beyond the Table VIII top five.
    pub version_tail: usize,
}

impl SnapshotConfig {
    /// Paper-scale configuration (Feb 28, 2018 calibration).
    pub fn paper() -> Self {
        Self {
            seed: 20_180_228,
            scale: 1.0,
            up_fraction: 0.8347,
            ipv6_nodes: 579,
            tor_nodes: 319,
            total_nodes: 13_635,
            tail_as_count: 1_647,
            tail_zipf_exponent: 1.2,
            tail_rank_offset: 12.0,
            version_tail: 283,
        }
    }

    /// The million-node stress profile behind `repro --scale huge`
    /// ([`ScaleProfile::Huge`]): the paper population scaled so the
    /// rounded total is exactly 1,000,000 nodes, with every node up so
    /// the simulator's arenas carry the full population. The documented
    /// day-of-gossip memory budget lives in
    /// [`ScaleProfile::memory_budget_mb`].
    pub fn huge() -> Self {
        Self {
            scale: ScaleProfile::Huge.factor(),
            up_fraction: 1.0,
            ..Self::paper()
        }
    }

    /// A ~10 %-scale configuration for fast tests.
    pub fn test_small() -> Self {
        Self {
            scale: 0.1,
            tail_as_count: 180,
            version_tail: 40,
            ..Self::paper()
        }
    }

    /// Returns a copy with a different seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    fn scaled(&self, n: usize) -> usize {
        ((n as f64) * self.scale).round() as usize
    }
}

impl Default for SnapshotConfig {
    fn default() -> Self {
        Self::paper()
    }
}

/// A generated network snapshot: the registry, every node's profile, and
/// the software census.
#[derive(Debug, Clone)]
pub struct Snapshot {
    /// AS/organization registry.
    pub registry: Registry,
    /// All node profiles, indexed by [`NodeId`].
    pub nodes: Vec<NodeProfile>,
    /// Software-version census.
    pub versions: VersionCensus,
    /// The configuration that produced this snapshot.
    pub config: SnapshotConfig,
}

impl Snapshot {
    /// Generates a snapshot from a configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is degenerate (zero scale, anchor
    /// populations exceeding the total).
    pub fn generate(config: SnapshotConfig) -> Self {
        assert!(config.scale > 0.0, "scale must be positive");
        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut registry = Registry::new();
        let versions = VersionCensus::with_tail(config.version_tail);
        let version_sampler = WeightedIndex::new(&versions.share_weights());

        // ---- Register anchors -------------------------------------------------
        let mut next_block: u32 = 1; // sequential /20 allocator
        let mut alloc_prefixes = |count: usize| -> Vec<Ipv4Prefix> {
            (0..count)
                .map(|_| {
                    let p = Ipv4Prefix::new(next_block << 12, 20);
                    next_block += 1;
                    p
                })
                .collect()
        };

        // (asn, ipv4_node_count, concentration, active prefix fraction)
        let mut as_populations: Vec<(Asn, usize, f64, f64)> = Vec::new();
        for spec in anchors() {
            let org = registry.register_org(spec.org_name);
            let prefixes = alloc_prefixes(spec.prefix_count);
            registry.register_as(spec.asn, org, spec.country, prefixes);
            as_populations.push((
                spec.asn,
                config.scaled(spec.nodes),
                spec.concentration,
                spec.active_prefixes,
            ));
        }

        // Tor pseudo-AS.
        let tor_org = registry.register_org("TOR");
        registry.register_as(TOR_ASN, tor_org, Country::Other, Vec::new());

        // ---- Tail ASes --------------------------------------------------------
        let tor_total = config.scaled(config.tor_nodes);
        let anchor_total: usize = as_populations.iter().map(|(_, n, _, _)| n).sum();
        let grand_total = config.scaled(config.total_nodes);
        assert!(
            grand_total > anchor_total + tor_total,
            "anchor populations exceed configured total"
        );
        let tail_total = grand_total - anchor_total - tor_total;
        // Shifted Zipf: rank-k weight proportional to (k + offset)^-s. The
        // offset keeps the largest tail AS below the smallest anchor while
        // the exponent controls how quickly the tail thins out; both are
        // calibrated so ~8 ASes host 30 % of nodes and ~24 host 50 %.
        let offset = config.tail_rank_offset;
        let raw: Vec<f64> = (1..=config.tail_as_count)
            .map(|k| (k as f64 + offset).powf(-config.tail_zipf_exponent))
            .collect();
        let raw_sum: f64 = raw.iter().sum();
        let tail_weights: Vec<f64> = raw
            .into_iter()
            .map(|w| w * tail_total as f64 / raw_sum)
            .collect();
        let tail_countries = [
            Country::UnitedStates,
            Country::China,
            Country::Germany,
            Country::Other,
            Country::France,
            Country::Other,
            Country::Other,
        ];
        let mut assigned = 0usize;
        for (i, w) in tail_weights.iter().enumerate() {
            // Round, but force the last AS to absorb the remainder so the
            // population is exact.
            let n = if i + 1 == tail_weights.len() {
                tail_total - assigned
            } else {
                (w.round() as usize).min(tail_total - assigned)
            };
            assigned += n;
            let asn = Asn(100_000 + i as u32);
            let org = registry.register_org(&format!("ISP-{i}"));
            let prefix_count = (n / 2).clamp(4, 64);
            let prefixes = alloc_prefixes(prefix_count);
            registry.register_as(asn, org, tail_countries[i % tail_countries.len()], prefixes);
            if n > 0 {
                as_populations.push((asn, n, 1.0, 1.0));
            }
        }

        // ---- Node generation --------------------------------------------------
        // Deterministic IPv6 carve-out: spread v6 nodes evenly over the
        // non-Tor population.
        let non_tor_total: usize = as_populations.iter().map(|(_, n, _, _)| n).sum();
        let ipv6_total = config.scaled(config.ipv6_nodes).min(non_tor_total);
        let v6_stride = non_tor_total
            .checked_div(ipv6_total)
            .map_or(usize::MAX, |s| s.max(1));

        let mut nodes: Vec<NodeProfile> = Vec::with_capacity(grand_total);
        let mut v6_assigned = 0usize;
        let mut v6_serial = 0u64;
        let mut global_index = 0usize;

        for (asn, population, concentration, active_frac) in &as_populations {
            let record = registry
                .as_record(*asn)
                .expect("anchor/tail AS registered above");
            let org = record.org;
            let prefix_count = record.prefixes.len().max(1);
            // Nodes land only in the "active" head of the prefix list; the
            // rest of the announced prefixes host no Bitcoin nodes (this is
            // what makes AS16509 expensive to hijack in Figure 4).
            let active =
                ((prefix_count as f64 * active_frac).round() as usize).clamp(1, prefix_count);
            let mut weights = zipf_weights(active, *concentration, 1.0);
            weights.resize(prefix_count, 0.0);
            let prefix_sampler = WeightedIndex::new(&weights);
            let prefixes = record.prefixes.clone();
            for _ in 0..*population {
                let make_v6 = global_index % v6_stride == v6_stride - 1 && v6_assigned < ipv6_total;
                let (addr, prefix_idx, conn) = if make_v6 {
                    v6_assigned += 1;
                    v6_serial += 1;
                    (NodeAddr::V6(v6_serial), None, ConnType::IPv6)
                } else {
                    let pi = prefix_sampler.sample(&mut rng);
                    let host = rng.random_range(1u64..1000);
                    let addr = if prefixes.is_empty() {
                        NodeAddr::V4(rng.random::<u32>())
                    } else {
                        NodeAddr::V4(prefixes[pi].host(host))
                    };
                    (addr, Some(pi as u32), ConnType::IPv4)
                };
                nodes.push(Self::sample_profile(
                    &mut rng,
                    NodeId(nodes.len() as u32),
                    addr,
                    *asn,
                    org,
                    prefix_idx,
                    conn,
                    config.up_fraction,
                    &version_sampler,
                ));
                global_index += 1;
            }
        }

        // Tor nodes.
        let tor_org_id = registry.org_of(TOR_ASN).expect("tor AS registered");
        for i in 0..tor_total {
            nodes.push(Self::sample_profile(
                &mut rng,
                NodeId(nodes.len() as u32),
                NodeAddr::Onion(i as u32),
                TOR_ASN,
                tor_org_id,
                None,
                ConnType::Tor,
                config.up_fraction,
                &version_sampler,
            ));
        }

        Self {
            registry,
            nodes,
            versions,
            config,
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn sample_profile(
        rng: &mut StdRng,
        id: NodeId,
        addr: NodeAddr,
        asn: Asn,
        org: OrgId,
        prefix_idx: Option<u32>,
        conn: ConnType,
        up_fraction: f64,
        version_sampler: &WeightedIndex,
    ) -> NodeProfile {
        let (lmu, lsigma, lat_mu, lat_sigma, up_mu, up_sigma) = table_i_moments(conn);
        let link = LogNormal::from_mean_std(lmu, lsigma).sample(rng);
        // Indices live in [0, 1] with σ close to the Bernoulli maximum
        // (Table I: μ = 0.70, σ = 0.45 for IPv4 latency) — i.e. the mass
        // sits near the ends. A scaled two-point mixture matches both
        // moments exactly: X = μ + c·(B − μ), B ~ Bernoulli(μ),
        // c = σ_target / √(μ(1−μ)), plus a little jitter.
        let index = |rng: &mut StdRng, mu: f64, sigma: f64| -> f64 {
            let bern_sigma = (mu * (1.0 - mu)).sqrt();
            let c = (sigma / bern_sigma).min(1.0);
            let b = if rng.random::<f64>() < mu { 1.0 } else { 0.0 };
            let jitter = 0.02 * standard_normal(rng);
            (mu + c * (b - mu) + jitter).clamp(0.0, 1.0)
        };
        NodeProfile {
            id,
            addr,
            asn,
            org,
            prefix_idx,
            link_speed_mbps: link,
            latency_index: index(rng, lat_mu, lat_sigma),
            uptime_index: index(rng, up_mu, up_sigma),
            is_up: rng.random::<f64>() < up_fraction,
            version_idx: version_sampler.sample(rng) as u32,
        }
    }

    /// Total node count.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// A node profile by id.
    pub fn node(&self, id: NodeId) -> &NodeProfile {
        &self.nodes[id.index()]
    }

    /// Nodes currently up.
    pub fn up_count(&self) -> usize {
        self.nodes.iter().filter(|n| n.is_up).count()
    }

    /// Node ids hosted by an AS.
    pub fn nodes_in_as(&self, asn: Asn) -> Vec<NodeId> {
        self.nodes
            .iter()
            .filter(|n| n.asn == asn)
            .map(|n| n.id)
            .collect()
    }

    /// Node ids hosted by an organization (across all its ASes).
    pub fn nodes_in_org(&self, org: OrgId) -> Vec<NodeId> {
        self.nodes
            .iter()
            .filter(|n| n.org == org)
            .map(|n| n.id)
            .collect()
    }

    /// `(ASN, node count)` pairs, sorted descending by count — the data
    /// behind Table II (left) and Figure 3.
    pub fn nodes_per_as(&self) -> Vec<(Asn, usize)> {
        let mut counts: HashMap<Asn, usize> = HashMap::new();
        for n in &self.nodes {
            *counts.entry(n.asn).or_default() += 1;
        }
        let mut v: Vec<(Asn, usize)> = counts.into_iter().collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        v
    }

    /// `(OrgId, node count)` pairs, sorted descending — Table II (right).
    pub fn nodes_per_org(&self) -> Vec<(OrgId, usize)> {
        let mut counts: HashMap<OrgId, usize> = HashMap::new();
        for n in &self.nodes {
            *counts.entry(n.org).or_default() += 1;
        }
        let mut v: Vec<(OrgId, usize)> = counts.into_iter().collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0 .0.cmp(&b.0 .0)));
        v
    }

    /// Per-prefix node counts inside one AS, sorted descending — the data
    /// behind Figure 4 (hijack the biggest prefixes first).
    pub fn prefix_node_counts(&self, asn: Asn) -> Vec<usize> {
        let prefix_count = self
            .registry
            .as_record(asn)
            .map(|r| r.prefixes.len())
            .unwrap_or(0);
        let mut counts = vec![0usize; prefix_count];
        for n in &self.nodes {
            if n.asn == asn {
                if let Some(pi) = n.prefix_idx {
                    counts[pi as usize] += 1;
                }
            }
        }
        counts.sort_unstable_by(|a, b| b.cmp(a));
        counts
    }

    /// Per-connectivity-family statistics — the data behind Table I:
    /// `(family, count, link-speed summary, latency summary, uptime
    /// summary)`.
    pub fn conn_stats(&self) -> Vec<(ConnType, usize, Summary, Summary, Summary)> {
        [ConnType::IPv4, ConnType::IPv6, ConnType::Tor]
            .into_iter()
            .map(|conn| {
                let members: Vec<&NodeProfile> = self
                    .nodes
                    .iter()
                    .filter(|n| n.conn_type() == conn)
                    .collect();
                let link = Summary::from_iter(members.iter().map(|n| n.link_speed_mbps));
                let lat = Summary::from_iter(members.iter().map(|n| n.latency_index));
                let up = Summary::from_iter(members.iter().map(|n| n.uptime_index));
                (conn, members.len(), link, lat, up)
            })
            .collect()
    }

    /// Per-AS node-count weights, for the centralization analyses.
    pub fn as_weights(&self) -> Vec<f64> {
        self.nodes_per_as()
            .into_iter()
            .map(|(_, n)| n as f64)
            .collect()
    }

    /// Per-organization node-count weights.
    pub fn org_weights(&self) -> Vec<f64> {
        self.nodes_per_org()
            .into_iter()
            .map(|(_, n)| n as f64)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bp_analysis::centralization::smallest_cover;

    fn small() -> Snapshot {
        Snapshot::generate(SnapshotConfig::test_small())
    }

    #[test]
    fn generation_is_deterministic() {
        let a = Snapshot::generate(SnapshotConfig::test_small());
        let b = Snapshot::generate(SnapshotConfig::test_small());
        assert_eq!(a.nodes, b.nodes);
    }

    #[test]
    fn different_seeds_differ() {
        let a = Snapshot::generate(SnapshotConfig::test_small());
        let b = Snapshot::generate(SnapshotConfig::test_small().with_seed(1));
        assert_ne!(a.nodes, b.nodes);
    }

    #[test]
    fn population_matches_scaled_total() {
        let s = small();
        let expected = (13_635.0 * 0.1f64).round() as usize;
        assert_eq!(s.node_count(), expected);
    }

    #[test]
    fn up_fraction_approximately_met() {
        let s = small();
        let frac = s.up_count() as f64 / s.node_count() as f64;
        assert!((frac - 0.8347).abs() < 0.05, "up fraction {frac}");
    }

    #[test]
    fn tor_nodes_grouped_under_pseudo_as() {
        let s = small();
        let tor_nodes = s.nodes_in_as(TOR_ASN);
        assert_eq!(tor_nodes.len(), 32); // 319 × 0.1 rounded
        for id in tor_nodes {
            assert_eq!(s.node(id).conn_type(), ConnType::Tor);
        }
    }

    #[test]
    fn hetzner_is_largest_as() {
        let s = small();
        let per_as = s.nodes_per_as();
        assert_eq!(per_as[0].0, Asn(24940));
        assert_eq!(per_as[0].1, 103); // 1030 × 0.1
    }

    #[test]
    fn org_totals_aggregate_multiple_ases() {
        let s = small();
        let amazon = s
            .registry
            .orgs()
            .find(|o| o.name == "Amazon.com, Inc")
            .unwrap();
        assert_eq!(amazon.ases.len(), 2);
        let n = s.nodes_in_org(amazon.id).len();
        // 756 × 0.1 ≈ 76, minus the deterministic IPv6 carve-out noise.
        assert!((70..=80).contains(&n), "Amazon hosts {n}");
    }

    #[test]
    fn prefix_concentration_orders_hetzner_vs_amazon() {
        let s = small();
        let hetzner = s.prefix_node_counts(Asn(24940));
        let amazon = s.prefix_node_counts(Asn(16509));
        let share_top15 = |counts: &[usize]| -> f64 {
            let total: usize = counts.iter().sum();
            let top: usize = counts.iter().take(15).sum();
            top as f64 / total.max(1) as f64
        };
        assert!(
            share_top15(&hetzner) > share_top15(&amazon) + 0.2,
            "hetzner {} vs amazon {}",
            share_top15(&hetzner),
            share_top15(&amazon)
        );
    }

    #[test]
    fn conn_stats_reproduce_table_i_shape() {
        let s = small();
        let stats = s.conn_stats();
        let (_, v4_count, v4_link, ..) = &stats[0];
        let (_, _, tor_link, tor_lat, _) = &stats[2];
        // IPv4 dominates the population.
        assert!(*v4_count > s.node_count() * 8 / 10);
        // Tor nodes are much faster on average (432 vs 25 Mbps) with much
        // lower latency index (0.24 vs 0.70).
        assert!(tor_link.mean() > v4_link.mean() * 4.0);
        let (_, _, _, v4_lat, _) = &stats[0];
        assert!(tor_lat.mean() < v4_lat.mean());
    }

    #[test]
    fn centralization_shape_holds_at_small_scale() {
        let s = small();
        let weights = s.as_weights();
        let c30 = smallest_cover(&weights, 0.30);
        let c50 = smallest_cover(&weights, 0.50);
        // Paper: 8 ASes host 30 %, 24 host 50 %. At 10 % scale the rounding
        // wiggles but the order of magnitude must hold.
        assert!((5..=12).contains(&c30), "30% cover = {c30}");
        assert!((16..=34).contains(&c50), "50% cover = {c50}");
        // Organizations are at least as centralized as ASes.
        let c50_org = smallest_cover(&s.org_weights(), 0.50);
        assert!(c50_org <= c50, "org cover {c50_org} vs as cover {c50}");
    }

    #[test]
    fn ipv6_carveout_is_applied() {
        let s = small();
        let v6 = s
            .nodes
            .iter()
            .filter(|n| n.conn_type() == ConnType::IPv6)
            .count();
        let expected = (579.0 * 0.1f64).round() as usize;
        assert!(
            (v6 as i64 - expected as i64).abs() <= 2,
            "v6 count {v6} vs expected {expected}"
        );
    }

    #[test]
    fn huge_profile_generates_exactly_one_million_up_nodes() {
        let snap = Snapshot::generate(SnapshotConfig::huge());
        assert_eq!(snap.node_count(), ScaleProfile::Huge.nodes());
        assert_eq!(snap.up_count(), snap.node_count());
    }

    #[test]
    fn every_ipv4_node_has_a_covering_prefix() {
        let s = small();
        for n in &s.nodes {
            if let (NodeAddr::V4(addr), Some(pi)) = (n.addr, n.prefix_idx) {
                let rec = s.registry.as_record(n.asn).unwrap();
                assert!(
                    rec.prefixes[pi as usize].contains(addr),
                    "node {} address outside its prefix",
                    n.id
                );
            }
        }
    }
}
