//! `bp-serve`: a long-running, batched, memoizing what-if query engine
//! over the calibrated partitioning substrate.
//!
//! Every question the paper's analyses can answer — "what does it cost
//! to partition AS X?" (§V-A), "what BlockAware threshold bounds the
//! false-alarm rate at this λ?" (§VI), "how long must the temporal
//! attacker sustain an isolation of these targets?" (§V-B) — used to
//! cost a full pipeline run. This crate is the serving edge: the
//! expensive substrate (snapshot, census, crawls) loads exactly once
//! behind write-once cells ([`Substrate`]), and parameterized queries
//! ([`Query`]) are answered from a sharded generation-stamped memo table
//! ([`memo::MemoTable`]) with cold misses fanned out across scoped
//! worker threads ([`QueryEngine`]).
//!
//! Determinism contract: responses are **byte-identical** for a fixed
//! query sequence at any worker count, any memo shard count, and across
//! a server restart against a warm persistent backend. Timing and
//! hit/miss counters are volatile observability and never influence
//! response bytes.
//!
//! # Examples
//!
//! ```
//! use bp_serve::{EngineOptions, Query, QueryEngine, Substrate};
//! use btcpart::Scenario;
//! use std::sync::Arc;
//!
//! let substrate = Substrate::new();
//! substrate.set_static(Scenario::new().scale(0.02).build_static());
//! let engine = QueryEngine::new(Arc::new(substrate), EngineOptions::default());
//! let hot = engine.execute(&Query::PartitionCost { target_as: 24940 });
//! assert_eq!(*engine.execute(&Query::PartitionCost { target_as: 24940 }), *hot);
//! assert_eq!(engine.memo_hits(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod engine;
pub mod loadgen;
pub mod memo;
pub mod query;
pub mod substrate;
pub mod wire;

pub use engine::{EngineOptions, MemoBackend, QueryEngine};
pub use loadgen::{drive, script, LoadReport, Pacing, ScriptConfig, TargetMix};
pub use query::{Answer, Query};
pub use substrate::Substrate;
pub use wire::{serve, Client, ServerHandle};
