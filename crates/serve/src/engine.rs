//! The query engine: memo-table hot path, micro-DAG cold path.
//!
//! A batch of queries is answered in three phases:
//!
//! 1. **Memo probe** — every query's cache key (injected `key_fn`, by
//!    default an FNV-1a-128 over the canonical query encoding) is looked
//!    up in the sharded [`MemoTable`], then in the optional persistent
//!    [`MemoBackend`].
//! 2. **Cold fan-out** — distinct missing keys expand into per-query
//!    micro-DAGs (a short dependency chain of named steps, e.g. `rank →
//!    hash_share → serialize` for `partition_cost`) claimed by scoped
//!    worker threads off a shared counter. Every step is a pure function
//!    of the substrate, so any claim order produces the same bytes.
//! 3. **Publish** — fresh responses enter the memo table and backend in
//!    ascending batch order (so a persistent store's bytes are identical
//!    at any worker count), and the batch is assembled positionally.
//!
//! Responses for a fixed query sequence are therefore byte-identical at
//! any worker count, shard count, and across restarts against a warm
//! backend.

use crate::memo::MemoTable;
use crate::query::{
    Answer, BlockawareAnswer, EclipseAnswer, MinTimingAnswer, PartitionCostAnswer, Query,
};
use crate::substrate::Substrate;
use bp_attacks::countermeasures::blockaware_tradeoff_one;
use bp_attacks::spatial::SpatialContext;
use bp_attacks::temporal::model::TemporalModel;
use bp_bgp::{HijackIndex, HijackOutcome};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Isolation probability target for `min_timing` (the paper's 80 %).
const MIN_TIMING_TARGET_P: f64 = 0.8;
/// Search cap (seconds) for the `min_timing` bisection.
const MIN_TIMING_CAP_SECS: u64 = 500_000;

/// Pluggable persistent memo store (e.g. the bench artifact cache).
pub trait MemoBackend: Send {
    /// Returns the stored response bytes for `key`, if present.
    fn lookup(&mut self, key: u128) -> Option<Vec<u8>>;
    /// Stores response bytes under `key`.
    fn insert(&mut self, key: u128, bytes: &[u8]);
    /// Persists staged inserts.
    ///
    /// # Errors
    ///
    /// Returns a message on I/O failure.
    fn flush(&mut self) -> Result<(), String>;
}

/// Engine construction knobs.
#[derive(Debug, Clone, Copy)]
pub struct EngineOptions {
    /// Worker threads for cold-query fan-out (1 = inline).
    pub workers: usize,
    /// Memo table lock shards (rounded up to a power of two).
    pub memo_shards: usize,
}

impl Default for EngineOptions {
    fn default() -> Self {
        Self {
            workers: 1,
            memo_shards: 16,
        }
    }
}

type KeyFn = Box<dyn Fn(&Query) -> u128 + Send + Sync>;

/// The long-running query engine. See the module docs for the phase
/// breakdown; construct with [`QueryEngine::new`] and drive with
/// [`execute_batch`](QueryEngine::execute_batch) (in-process) or the
/// TCP front end in [`crate::wire`].
pub struct QueryEngine {
    substrate: Arc<Substrate>,
    hijacks: HijackIndex,
    memo: MemoTable,
    key_fn: KeyFn,
    backend: Option<Mutex<Box<dyn MemoBackend>>>,
    workers: usize,
    cold_evals: AtomicU64,
    backend_hits: AtomicU64,
}

impl std::fmt::Debug for QueryEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QueryEngine")
            .field("workers", &self.workers)
            .field("memo", &self.memo)
            .field("has_backend", &self.backend.is_some())
            .finish()
    }
}

impl QueryEngine {
    /// Builds an engine over a loaded substrate, ranking the hijack
    /// index once up front.
    ///
    /// # Panics
    ///
    /// Panics if the substrate's static environment is not loaded.
    pub fn new(substrate: Arc<Substrate>, options: EngineOptions) -> Self {
        let hijacks = HijackIndex::new(substrate.snapshot());
        Self {
            substrate,
            hijacks,
            memo: MemoTable::new(options.memo_shards),
            key_fn: Box::new(default_key),
            backend: None,
            workers: options.workers.max(1),
            cold_evals: AtomicU64::new(0),
            backend_hits: AtomicU64::new(0),
        }
    }

    /// Replaces the cache-key derivation (the bench harness injects the
    /// artifact-cache `KeyBuilder` machinery here so keys incorporate
    /// the substrate configuration).
    #[must_use]
    pub fn with_key_fn(mut self, key_fn: impl Fn(&Query) -> u128 + Send + Sync + 'static) -> Self {
        self.key_fn = Box::new(key_fn);
        self
    }

    /// Attaches a persistent memo backend.
    #[must_use]
    pub fn with_backend(mut self, backend: Box<dyn MemoBackend>) -> Self {
        self.backend = Some(Mutex::new(backend));
        self
    }

    /// The substrate this engine serves from.
    pub fn substrate(&self) -> &Substrate {
        &self.substrate
    }

    /// The prebuilt hijack ranking (target universe for load scripts).
    pub fn hijacks(&self) -> &HijackIndex {
        &self.hijacks
    }

    /// The cache key for a query under the engine's key function.
    pub fn key_of(&self, query: &Query) -> u128 {
        (self.key_fn)(query)
    }

    /// In-memory memo hits so far (volatile observability).
    pub fn memo_hits(&self) -> u64 {
        self.memo.hits()
    }

    /// In-memory memo misses so far (volatile observability).
    pub fn memo_misses(&self) -> u64 {
        self.memo.misses()
    }

    /// Queries answered by the persistent backend (volatile).
    pub fn backend_hits(&self) -> u64 {
        self.backend_hits.load(Ordering::Relaxed)
    }

    /// Micro-DAG evaluations performed (volatile).
    pub fn cold_evals(&self) -> u64 {
        self.cold_evals.load(Ordering::Relaxed)
    }

    /// Drops every memoized response (generation bump, O(1)).
    pub fn invalidate_memo(&self) {
        self.memo.invalidate();
    }

    /// Persists the backend's staged inserts, if a backend is attached.
    ///
    /// # Errors
    ///
    /// Returns the backend's flush error.
    pub fn flush_backend(&self) -> Result<(), String> {
        match &self.backend {
            Some(backend) => backend.lock().expect("backend poisoned").flush(),
            None => Ok(()),
        }
    }

    /// Answers one query (a batch of one).
    pub fn execute(&self, query: &Query) -> Arc<Vec<u8>> {
        self.execute_batch(std::slice::from_ref(query))
            .pop()
            .expect("one response per query")
    }

    /// Answers a batch. Responses are positional: `out[i]` answers
    /// `queries[i]`. Byte-identical for a fixed query sequence at any
    /// worker count.
    pub fn execute_batch(&self, queries: &[Query]) -> Vec<Arc<Vec<u8>>> {
        let keys: Vec<u128> = queries.iter().map(|q| (self.key_fn)(q)).collect();
        let mut out: Vec<Option<Arc<Vec<u8>>>> = vec![None; queries.len()];

        // Phase 1: memo + backend probes, in batch order.
        let mut cold: Vec<usize> = Vec::new();
        let mut cold_keys: Vec<u128> = Vec::new();
        for (i, &key) in keys.iter().enumerate() {
            if let Some(bytes) = self.memo.lookup(key) {
                out[i] = Some(bytes);
                continue;
            }
            if !cold_keys.contains(&key) {
                if let Some(bytes) = self.backend_lookup(key) {
                    let bytes = Arc::new(bytes);
                    self.memo.insert(key, Arc::clone(&bytes));
                    self.backend_hits.fetch_add(1, Ordering::Relaxed);
                    out[i] = Some(bytes);
                    continue;
                }
                cold_keys.push(key);
            }
            cold.push(i);
        }

        // Phase 2: distinct cold queries fan out over scoped workers.
        let unique: Vec<(u128, &Query)> = cold_keys
            .iter()
            .map(|&key| {
                let i = cold
                    .iter()
                    .find(|&&i| keys[i] == key)
                    .expect("cold key has an owner");
                (key, &queries[*i])
            })
            .collect();
        let slots: Vec<OnceLock<Arc<Vec<u8>>>> =
            (0..unique.len()).map(|_| OnceLock::new()).collect();
        let workers = self.workers.min(unique.len());
        if workers <= 1 {
            for ((_, query), slot) in unique.iter().zip(&slots) {
                slot.set(Arc::new(self.eval(query))).expect("slot set once");
            }
        } else {
            let claim = AtomicUsize::new(0);
            std::thread::scope(|scope| {
                for _ in 0..workers {
                    scope.spawn(|| loop {
                        let at = claim.fetch_add(1, Ordering::Relaxed);
                        let Some((_, query)) = unique.get(at) else {
                            break;
                        };
                        slots[at]
                            .set(Arc::new(self.eval(query)))
                            .expect("slot set once");
                    });
                }
            });
        }

        // Phase 3: publish in ascending key-discovery order (fixed for a
        // given batch, independent of which worker computed what).
        for ((key, _), slot) in unique.iter().zip(&slots) {
            let bytes = slot.get().expect("cold slot computed");
            self.memo.insert(*key, Arc::clone(bytes));
            self.backend_insert(*key, bytes);
        }
        for i in cold {
            let key = keys[i];
            let at = cold_keys
                .iter()
                .position(|&k| k == key)
                .expect("cold key indexed");
            out[i] = Some(Arc::clone(slots[at].get().expect("cold slot computed")));
        }

        out.into_iter()
            .map(|slot| slot.expect("every query answered"))
            .collect()
    }

    fn backend_lookup(&self, key: u128) -> Option<Vec<u8>> {
        let backend = self.backend.as_ref()?;
        backend.lock().expect("backend poisoned").lookup(key)
    }

    fn backend_insert(&self, key: u128, bytes: &[u8]) {
        if let Some(backend) = &self.backend {
            backend.lock().expect("backend poisoned").insert(key, bytes);
        }
    }

    /// Runs one cold query's micro-DAG and serializes the answer.
    fn eval(&self, query: &Query) -> Vec<u8> {
        self.cold_evals.fetch_add(1, Ordering::Relaxed);
        let answer = match *query {
            Query::PartitionCost { target_as } => {
                // rank → thresholds → hash_share
                let victim = bp_topology::Asn(target_as);
                let curve = self.hijacks.isolation_curve(victim);
                let clamp = |k: Option<usize>| k.map(|k| k as u32);
                Answer::PartitionCost(PartitionCostAnswer {
                    members: self.hijacks.members(victim) as u32,
                    prefixes_total: curve.len() as u32,
                    prefixes_50: clamp(self.hijacks.prefixes_for_fraction(victim, 0.5)),
                    prefixes_90: clamp(self.hijacks.prefixes_for_fraction(victim, 0.9)),
                    hash_share: self.substrate.census().isolated_share(&[victim]),
                })
            }
            Query::BlockawareTradeoff {
                threshold_secs,
                lambda,
            } => {
                // closed_form
                let tradeoff = blockaware_tradeoff_one(threshold_secs, 600.0 / lambda);
                Answer::Blockaware(BlockawareAnswer {
                    threshold_secs: tradeoff.threshold_secs,
                    detection_delay_secs: tradeoff.detection_delay_secs,
                    false_alarm_rate: tradeoff.false_alarm_rate,
                })
            }
            Query::Eclipse {
                target_as,
                prefixes,
                cascade,
            } => {
                // rank → outcome → hash_share [→ cascade]
                let victim = bp_topology::Asn(target_as);
                let outcome: HijackOutcome =
                    self.hijacks.hijack_top_prefixes(victim, prefixes as usize);
                let ctx = SpatialContext::new(self.substrate.snapshot(), self.substrate.census());
                let cascade = cascade.then(|| {
                    ctx.eclipse_cascade(self.substrate.day_sim(), victim, prefixes as usize)
                });
                Answer::Eclipse(EclipseAnswer {
                    prefixes_hijacked: outcome.prefixes_hijacked as u32,
                    isolated: outcome.isolated_nodes.len() as u32,
                    fraction_of_as: outcome.fraction_of_as,
                    hash_share: self.substrate.census().isolated_share(&[victim]),
                    cascade,
                })
            }
            Query::MinTiming {
                min_blocks,
                window_samples,
                lambda,
            } => {
                // select → model
                let matrix = &self.substrate.day_crawl().matrix;
                let m = matrix
                    .max_vulnerable(window_samples as usize, min_blocks)
                    .map_or(0, |w| w.max_nodes as u64);
                let t_secs = (m > 0)
                    .then(|| {
                        TemporalModel::new(lambda).min_time_to_isolate(
                            m,
                            MIN_TIMING_TARGET_P,
                            MIN_TIMING_CAP_SECS,
                        )
                    })
                    .flatten();
                Answer::MinTiming(MinTimingAnswer { m, t_secs })
            }
        };
        answer.encode()
    }
}

/// The default key: FNV-1a-128 over a schema tag and the canonical query
/// encoding. Suitable for a single-substrate process; attach a richer
/// `key_fn` when keys must distinguish substrate configurations (e.g.
/// a persistent store shared across profiles).
fn default_key(query: &Query) -> u128 {
    const FNV_OFFSET: u128 = 0x6c62_272e_07bb_0142_62b8_2175_6295_c58d;
    const FNV_PRIME: u128 = 0x0000_0000_0100_0000_0000_0000_0000_013b;
    let mut state = FNV_OFFSET;
    let mut mix = |bytes: &[u8]| {
        for &b in bytes {
            state ^= b as u128;
            state = state.wrapping_mul(FNV_PRIME);
        }
    };
    mix(b"bp-serve/q1");
    mix(&query.encode());
    state
}

#[cfg(test)]
mod tests {
    use super::*;
    use btcpart::Scenario;
    use std::collections::HashMap;

    fn test_substrate() -> Arc<Substrate> {
        let substrate = Substrate::new();
        substrate.set_static(Scenario::new().scale(0.05).seed(20_180_228).build_static());
        Arc::new(substrate)
    }

    fn static_queries() -> Vec<Query> {
        vec![
            Query::PartitionCost { target_as: 24940 },
            Query::BlockawareTradeoff {
                threshold_secs: 600,
                lambda: 1.0,
            },
            Query::Eclipse {
                target_as: 24940,
                prefixes: 15,
                cascade: false,
            },
            Query::PartitionCost { target_as: 24940 }, // duplicate
            Query::PartitionCost { target_as: 16276 },
        ]
    }

    #[test]
    fn batches_are_byte_identical_across_worker_counts() {
        let substrate = test_substrate();
        let queries = static_queries();
        let mut baseline: Option<Vec<Vec<u8>>> = None;
        for workers in [1usize, 2, 8] {
            let engine = QueryEngine::new(
                Arc::clone(&substrate),
                EngineOptions {
                    workers,
                    memo_shards: workers,
                },
            );
            let responses: Vec<Vec<u8>> = engine
                .execute_batch(&queries)
                .into_iter()
                .map(|r| r.as_ref().clone())
                .collect();
            match &baseline {
                None => baseline = Some(responses),
                Some(b) => assert_eq!(b, &responses, "workers={workers}"),
            }
        }
    }

    #[test]
    fn memo_collapses_repeats_and_in_batch_duplicates() {
        let engine = QueryEngine::new(test_substrate(), EngineOptions::default());
        let queries = static_queries();
        let first = engine.execute_batch(&queries);
        // 5 queries, one in-batch duplicate: 4 cold evaluations.
        assert_eq!(engine.cold_evals(), 4);
        let second = engine.execute_batch(&queries);
        assert_eq!(engine.cold_evals(), 4, "warm batch re-evaluated");
        for (a, b) in first.iter().zip(&second) {
            assert_eq!(a, b);
        }
        // Invalidation forces recomputation to the same bytes.
        engine.invalidate_memo();
        let third = engine.execute_batch(&queries);
        assert_eq!(engine.cold_evals(), 8);
        for (a, b) in first.iter().zip(&third) {
            assert_eq!(a, b);
        }
    }

    #[test]
    fn partition_cost_matches_the_hijack_index() {
        let substrate = test_substrate();
        let engine = QueryEngine::new(Arc::clone(&substrate), EngineOptions::default());
        let victim = bp_topology::Asn(24940);
        let response = engine.execute(&Query::PartitionCost { target_as: 24940 });
        let Answer::PartitionCost(a) = Answer::decode(&response).unwrap() else {
            panic!("wrong family");
        };
        assert_eq!(a.members as usize, engine.hijacks().members(victim));
        assert_eq!(
            a.prefixes_50.map(|k| k as usize),
            engine.hijacks().prefixes_for_fraction(victim, 0.5)
        );
        assert_eq!(
            a.hash_share.to_bits(),
            substrate.census().isolated_share(&[victim]).to_bits()
        );
    }

    #[test]
    fn unknown_as_answers_empty_not_error() {
        let engine = QueryEngine::new(test_substrate(), EngineOptions::default());
        let response = engine.execute(&Query::PartitionCost { target_as: 1 });
        let Answer::PartitionCost(a) = Answer::decode(&response).unwrap() else {
            panic!("wrong family");
        };
        assert_eq!(a.members, 0);
        assert_eq!(a.prefixes_50, None);
    }

    #[test]
    fn in_memory_backend_replays_across_engines() {
        let substrate = test_substrate();
        let shared: Arc<Mutex<HashMap<u128, Vec<u8>>>> = Arc::default();

        struct SharedBackend(Arc<Mutex<HashMap<u128, Vec<u8>>>>);
        impl MemoBackend for SharedBackend {
            fn lookup(&mut self, key: u128) -> Option<Vec<u8>> {
                self.0.lock().unwrap().get(&key).cloned()
            }
            fn insert(&mut self, key: u128, bytes: &[u8]) {
                self.0.lock().unwrap().insert(key, bytes.to_vec());
            }
            fn flush(&mut self) -> Result<(), String> {
                Ok(())
            }
        }

        let queries = static_queries();
        let first = QueryEngine::new(Arc::clone(&substrate), EngineOptions::default())
            .with_backend(Box::new(SharedBackend(Arc::clone(&shared))));
        let cold = first.execute_batch(&queries);
        assert_eq!(first.cold_evals(), 4);
        first.flush_backend().unwrap();

        // A fresh engine (cold memo) replays everything from the store.
        let second = QueryEngine::new(Arc::clone(&substrate), EngineOptions::default())
            .with_backend(Box::new(SharedBackend(shared)));
        let warm = second.execute_batch(&queries);
        assert_eq!(second.cold_evals(), 0, "restart recomputed");
        assert_eq!(second.backend_hits(), 4);
        for (a, b) in cold.iter().zip(&warm) {
            assert_eq!(a, b);
        }
    }
}
