//! Length-prefixed binary framing over TCP.
//!
//! One frame = `u32` little-endian body length + body. A request body is
//! `u16` query count followed by that many `u16`-length-prefixed
//! canonical query encodings; the response frame mirrors it with
//! `u32`-length-prefixed answer payloads in request order. A malformed
//! frame (bad tag, truncated field, oversized body) closes the
//! connection; clients see EOF rather than an undefined answer.

use crate::engine::QueryEngine;
use crate::query::Query;
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// Upper bound on a frame body — queries are tens of bytes, so anything
/// near this is a protocol error, not a workload.
pub const MAX_FRAME_BYTES: u32 = 16 * 1024 * 1024;
/// Maximum queries per batch frame.
pub const MAX_BATCH: usize = u16::MAX as usize;

/// Encodes a request frame body from a query batch.
///
/// # Panics
///
/// Panics if the batch exceeds [`MAX_BATCH`].
pub fn encode_request(queries: &[Query]) -> Vec<u8> {
    assert!(queries.len() <= MAX_BATCH, "batch too large");
    let mut body = Vec::with_capacity(2 + queries.len() * 24);
    body.extend_from_slice(&(queries.len() as u16).to_le_bytes());
    for query in queries {
        let bytes = query.encode();
        body.extend_from_slice(&(bytes.len() as u16).to_le_bytes());
        body.extend_from_slice(&bytes);
    }
    body
}

/// Decodes a request frame body.
///
/// # Errors
///
/// Returns a message on truncation, trailing bytes, or any malformed
/// query encoding.
pub fn decode_request(body: &[u8]) -> Result<Vec<Query>, String> {
    let count = u16::from_le_bytes(body.get(..2).ok_or("short header")?.try_into().expect("2"));
    let mut at = 2usize;
    let mut queries = Vec::with_capacity(count as usize);
    for _ in 0..count {
        let len = u16::from_le_bytes(
            body.get(at..at + 2)
                .ok_or("truncated query length")?
                .try_into()
                .expect("2"),
        ) as usize;
        at += 2;
        let bytes = body.get(at..at + len).ok_or("truncated query body")?;
        at += len;
        queries.push(Query::decode(bytes)?);
    }
    if at != body.len() {
        return Err("trailing bytes after batch".to_string());
    }
    Ok(queries)
}

/// Encodes a response frame body from positional answer payloads.
pub fn encode_response(payloads: &[Arc<Vec<u8>>]) -> Vec<u8> {
    let mut body = Vec::with_capacity(2 + payloads.len() * 48);
    body.extend_from_slice(&(payloads.len() as u16).to_le_bytes());
    for payload in payloads {
        body.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        body.extend_from_slice(payload);
    }
    body
}

/// Decodes a response frame body into per-query payloads.
///
/// # Errors
///
/// Returns a message on truncation or trailing bytes.
pub fn decode_response(body: &[u8]) -> Result<Vec<Vec<u8>>, String> {
    let count = u16::from_le_bytes(body.get(..2).ok_or("short header")?.try_into().expect("2"));
    let mut at = 2usize;
    let mut payloads = Vec::with_capacity(count as usize);
    for _ in 0..count {
        let len = u32::from_le_bytes(
            body.get(at..at + 4)
                .ok_or("truncated answer length")?
                .try_into()
                .expect("4"),
        ) as usize;
        at += 4;
        payloads.push(
            body.get(at..at + len)
                .ok_or("truncated answer body")?
                .to_vec(),
        );
        at += len;
    }
    if at != body.len() {
        return Err("trailing bytes after response".to_string());
    }
    Ok(payloads)
}

/// Writes one `u32`-length-prefixed frame.
///
/// # Errors
///
/// Propagates the underlying I/O error.
pub fn write_frame(writer: &mut impl Write, body: &[u8]) -> std::io::Result<()> {
    writer.write_all(&(body.len() as u32).to_le_bytes())?;
    writer.write_all(body)?;
    writer.flush()
}

/// Reads one frame; `Ok(None)` on a clean EOF at a frame boundary.
///
/// # Errors
///
/// Propagates I/O errors; an oversized length prefix is reported as
/// [`std::io::ErrorKind::InvalidData`].
pub fn read_frame(reader: &mut impl Read) -> std::io::Result<Option<Vec<u8>>> {
    let mut len_bytes = [0u8; 4];
    match reader.read_exact(&mut len_bytes) {
        Ok(()) => {}
        Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e),
    }
    let len = u32::from_le_bytes(len_bytes);
    if len > MAX_FRAME_BYTES {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("frame of {len} bytes exceeds cap"),
        ));
    }
    let mut body = vec![0u8; len as usize];
    reader.read_exact(&mut body)?;
    Ok(Some(body))
}

/// A running TCP front end; dropping the handle leaves the threads
/// detached, call [`shutdown`](ServerHandle::shutdown) for a clean stop.
#[derive(Debug)]
pub struct ServerHandle {
    addr: std::net::SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<std::thread::JoinHandle<()>>,
    served: Arc<AtomicU64>,
}

impl ServerHandle {
    /// The bound address (useful with port 0).
    pub fn addr(&self) -> std::net::SocketAddr {
        self.addr
    }

    /// Batch frames served so far across all connections.
    pub fn frames_served(&self) -> u64 {
        self.served.load(Ordering::Relaxed)
    }

    /// Stops accepting, unblocks the accept loop, and joins it.
    /// In-flight connections finish their current frame and close.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Unblock accept() with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
    }
}

/// Binds `addr` (e.g. `127.0.0.1:0`) and serves the engine until
/// [`ServerHandle::shutdown`]. At most `max_conns` connections are
/// serviced concurrently; excess connections are refused (closed
/// immediately) rather than queued.
///
/// # Errors
///
/// Returns the bind error.
pub fn serve(
    engine: Arc<QueryEngine>,
    addr: &str,
    max_conns: usize,
) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(addr)?;
    let local = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let served = Arc::new(AtomicU64::new(0));
    let accept_stop = Arc::clone(&stop);
    let accept_served = Arc::clone(&served);
    let accept_thread = std::thread::spawn(move || {
        let live = Arc::new(AtomicU64::new(0));
        for stream in listener.incoming() {
            if accept_stop.load(Ordering::SeqCst) {
                break;
            }
            let Ok(stream) = stream else { continue };
            if live.load(Ordering::SeqCst) >= max_conns as u64 {
                drop(stream); // refuse: close without serving
                continue;
            }
            live.fetch_add(1, Ordering::SeqCst);
            let engine = Arc::clone(&engine);
            let live = Arc::clone(&live);
            let served = Arc::clone(&accept_served);
            let stop = Arc::clone(&accept_stop);
            std::thread::spawn(move || {
                let _ = handle_connection(&engine, stream, &served, &stop);
                live.fetch_sub(1, Ordering::SeqCst);
            });
        }
    });
    Ok(ServerHandle {
        addr: local,
        stop,
        accept_thread: Some(accept_thread),
        served,
    })
}

fn handle_connection(
    engine: &QueryEngine,
    mut stream: TcpStream,
    served: &AtomicU64,
    stop: &AtomicBool,
) -> std::io::Result<()> {
    while !stop.load(Ordering::SeqCst) {
        let Some(body) = read_frame(&mut stream)? else {
            return Ok(()); // clean EOF
        };
        let queries = match decode_request(&body) {
            Ok(queries) => queries,
            Err(_) => return Ok(()), // malformed: close
        };
        let responses = engine.execute_batch(&queries);
        write_frame(&mut stream, &encode_response(&responses))?;
        served.fetch_add(1, Ordering::Relaxed);
    }
    Ok(())
}

/// A minimal blocking client for tests and the load generator's TCP
/// mode: one connection, synchronous batch round trips.
#[derive(Debug)]
pub struct Client {
    stream: TcpStream,
}

impl Client {
    /// Connects to a serving engine.
    ///
    /// # Errors
    ///
    /// Returns the connect error.
    pub fn connect(addr: std::net::SocketAddr) -> std::io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Self { stream })
    }

    /// Sends one batch and reads the response frame.
    ///
    /// # Errors
    ///
    /// Returns an I/O error on a closed/hung connection or a malformed
    /// response frame.
    pub fn roundtrip(&mut self, queries: &[Query]) -> std::io::Result<Vec<Vec<u8>>> {
        write_frame(&mut self.stream, &encode_request(queries))?;
        let body = read_frame(&mut self.stream)?.ok_or_else(|| {
            std::io::Error::new(std::io::ErrorKind::UnexpectedEof, "server closed")
        })?;
        decode_response(&body).map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EngineOptions;
    use crate::substrate::Substrate;
    use btcpart::Scenario;

    fn test_engine() -> Arc<QueryEngine> {
        let substrate = Substrate::new();
        substrate.set_static(Scenario::new().scale(0.05).seed(20_180_228).build_static());
        Arc::new(QueryEngine::new(
            Arc::new(substrate),
            EngineOptions::default(),
        ))
    }

    fn sample_batch() -> Vec<Query> {
        vec![
            Query::PartitionCost { target_as: 24940 },
            Query::BlockawareTradeoff {
                threshold_secs: 600,
                lambda: 1.0,
            },
            Query::Eclipse {
                target_as: 16276,
                prefixes: 10,
                cascade: false,
            },
        ]
    }

    #[test]
    fn request_and_response_bodies_round_trip() {
        let queries = sample_batch();
        let decoded = decode_request(&encode_request(&queries)).unwrap();
        assert_eq!(decoded, queries);

        let payloads: Vec<Arc<Vec<u8>>> =
            vec![Arc::new(vec![1, 2, 3]), Arc::new(vec![]), Arc::new(vec![9])];
        let decoded = decode_response(&encode_response(&payloads)).unwrap();
        assert_eq!(decoded, vec![vec![1, 2, 3], vec![], vec![9]]);
    }

    #[test]
    fn malformed_request_bodies_are_rejected() {
        assert!(decode_request(&[]).is_err());
        // Count says one query, body empty.
        assert!(decode_request(&[1, 0]).is_err());
        // Trailing garbage.
        let mut body = encode_request(&sample_batch());
        body.push(0);
        assert!(decode_request(&body).is_err());
    }

    #[test]
    fn tcp_round_trip_matches_in_process_execution() {
        let engine = test_engine();
        let queries = sample_batch();
        let direct: Vec<Vec<u8>> = engine
            .execute_batch(&queries)
            .into_iter()
            .map(|r| r.as_ref().clone())
            .collect();

        let server = serve(Arc::clone(&engine), "127.0.0.1:0", 4).unwrap();
        let mut client = Client::connect(server.addr()).unwrap();
        let over_wire = client.roundtrip(&queries).unwrap();
        assert_eq!(direct, over_wire);
        // A second round trip on the same connection still works.
        let again = client.roundtrip(&queries).unwrap();
        assert_eq!(direct, again);
        assert_eq!(server.frames_served(), 2);
        drop(client);
        server.shutdown();
    }

    #[test]
    fn oversized_frame_is_invalid_data() {
        let mut bytes: &[u8] = &[0xFF, 0xFF, 0xFF, 0xFF];
        let err = read_frame(&mut bytes).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    }
}
