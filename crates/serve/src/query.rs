//! The query families and their canonical binary codec.
//!
//! Every query has exactly one wire encoding (little-endian fields
//! behind a one-byte family tag, `f64` parameters carried as *canonical*
//! bits — NaNs collapse to one pattern and `-0.0` equals `+0.0`), so a
//! query's bytes double as its memo identity and two clients asking the
//! same question always hash to the same cache key. Responses use the
//! same discipline: pure little-endian field layouts, floats as raw
//! bits, no platform- or thread-dependent content anywhere.

use bp_attacks::spatial::CascadeReport;

/// Collapses NaN payloads and `-0.0` so equal-valued parameters encode
/// identically (mirror of the cache key machinery's canonicalization).
pub fn canonical_f64_bits(v: f64) -> u64 {
    if v.is_nan() {
        f64::NAN.to_bits()
    } else if v == 0.0 {
        0.0f64.to_bits()
    } else {
        v.to_bits()
    }
}

/// A parameterized what-if question over the loaded substrate.
///
/// Each variant is a pure function of the substrate: no query mutates
/// the simulation or any other shared state, which is what makes
/// responses byte-identical at any worker count.
#[derive(Debug, Clone, PartialEq)]
pub enum Query {
    /// What does it cost to partition `target_as`? Prefix counts for
    /// 50 % / 90 % isolation plus the hash share hosted there.
    PartitionCost {
        /// The victim AS number.
        target_as: u32,
    },
    /// BlockAware detection-delay vs false-alarm tradeoff at a given
    /// staleness threshold and block arrival rate λ (blocks/interval).
    BlockawareTradeoff {
        /// Staleness threshold in seconds.
        threshold_secs: u64,
        /// Block arrival rate λ (per 600 s interval); the mean
        /// inter-block gap is `600 / λ` seconds.
        lambda: f64,
    },
    /// Static eclipse of an AS: the top-`prefixes` hijack outcome, with
    /// an optional cascade analysis of the un-hijacked remainder against
    /// the day simulation's peer graph.
    Eclipse {
        /// The victim AS number.
        target_as: u32,
        /// Number of top-ranked prefixes hijacked.
        prefixes: u32,
        /// Whether to also compute the remainder cascade.
        cascade: bool,
    },
    /// Minimum time to isolate the targets picked by a lag selection
    /// over the day crawl (`m` = nodes at least `min_blocks` behind for
    /// `window_samples` consecutive samples), at attack rate λ.
    MinTiming {
        /// Minimum lag (blocks) for a node to count as a target.
        min_blocks: u8,
        /// Consecutive vulnerable samples required.
        window_samples: u16,
        /// Attacker block rate λ used by the temporal model.
        lambda: f64,
    },
}

const TAG_PARTITION_COST: u8 = 1;
const TAG_BLOCKAWARE: u8 = 2;
const TAG_ECLIPSE: u8 = 3;
const TAG_MIN_TIMING: u8 = 4;

impl Query {
    /// The family tag (used for per-family metrics and bench labels).
    pub fn family(&self) -> &'static str {
        match self {
            Query::PartitionCost { .. } => "partition_cost",
            Query::BlockawareTradeoff { .. } => "blockaware_tradeoff",
            Query::Eclipse { .. } => "eclipse",
            Query::MinTiming { .. } => "min_timing",
        }
    }

    /// The canonical encoding: `tag` byte followed by the family's
    /// little-endian field layout.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(24);
        match *self {
            Query::PartitionCost { target_as } => {
                out.push(TAG_PARTITION_COST);
                out.extend_from_slice(&target_as.to_le_bytes());
            }
            Query::BlockawareTradeoff {
                threshold_secs,
                lambda,
            } => {
                out.push(TAG_BLOCKAWARE);
                out.extend_from_slice(&threshold_secs.to_le_bytes());
                out.extend_from_slice(&canonical_f64_bits(lambda).to_le_bytes());
            }
            Query::Eclipse {
                target_as,
                prefixes,
                cascade,
            } => {
                out.push(TAG_ECLIPSE);
                out.extend_from_slice(&target_as.to_le_bytes());
                out.extend_from_slice(&prefixes.to_le_bytes());
                out.push(u8::from(cascade));
            }
            Query::MinTiming {
                min_blocks,
                window_samples,
                lambda,
            } => {
                out.push(TAG_MIN_TIMING);
                out.push(min_blocks);
                out.extend_from_slice(&window_samples.to_le_bytes());
                out.extend_from_slice(&canonical_f64_bits(lambda).to_le_bytes());
            }
        }
        out
    }

    /// Decodes one query, validating parameters a server must never
    /// evaluate (non-finite or non-positive λ, junk booleans, trailing
    /// bytes).
    ///
    /// # Errors
    ///
    /// Returns a message naming the defect; malformed queries close the
    /// connection rather than producing an undefined response.
    pub fn decode(bytes: &[u8]) -> Result<Self, String> {
        let (&tag, body) = bytes.split_first().ok_or("empty query")?;
        let query = match tag {
            TAG_PARTITION_COST => Query::PartitionCost {
                target_as: u32::from_le_bytes(take(body, 0, "target_as")?),
            },
            TAG_BLOCKAWARE => Query::BlockawareTradeoff {
                threshold_secs: u64::from_le_bytes(take(body, 0, "threshold_secs")?),
                lambda: decode_lambda(body, 8)?,
            },
            TAG_ECLIPSE => Query::Eclipse {
                target_as: u32::from_le_bytes(take(body, 0, "target_as")?),
                prefixes: u32::from_le_bytes(take(body, 4, "prefixes")?),
                cascade: match body.get(8) {
                    Some(0) => false,
                    Some(1) => true,
                    _ => return Err("eclipse cascade flag must be 0 or 1".to_string()),
                },
            },
            TAG_MIN_TIMING => Query::MinTiming {
                min_blocks: *body.first().ok_or("missing min_blocks")?,
                window_samples: u16::from_le_bytes(take(body, 1, "window_samples")?),
                lambda: decode_lambda(body, 3)?,
            },
            other => return Err(format!("unknown query tag {other}")),
        };
        if bytes.len() != query.encode().len() {
            return Err(format!(
                "query tag {tag} carries {} bytes, expected {}",
                bytes.len(),
                query.encode().len()
            ));
        }
        Ok(query)
    }
}

fn take<const N: usize>(body: &[u8], at: usize, field: &str) -> Result<[u8; N], String> {
    body.get(at..at + N)
        .and_then(|s| s.try_into().ok())
        .ok_or_else(|| format!("truncated {field}"))
}

fn decode_lambda(body: &[u8], at: usize) -> Result<f64, String> {
    let lambda = f64::from_bits(u64::from_le_bytes(take(body, at, "lambda")?));
    if !lambda.is_finite() || lambda <= 0.0 {
        return Err(format!("lambda must be finite and positive, got {lambda}"));
    }
    Ok(lambda)
}

/// Answer to a [`Query::PartitionCost`].
#[derive(Debug, Clone, PartialEq)]
pub struct PartitionCostAnswer {
    /// Bitcoin nodes registered in the AS.
    pub members: u32,
    /// Announced prefixes of the AS.
    pub prefixes_total: u32,
    /// Prefix hijacks isolating ≥ 50 % of the AS (`None`: unreachable).
    pub prefixes_50: Option<u32>,
    /// Prefix hijacks isolating ≥ 90 % of the AS.
    pub prefixes_90: Option<u32>,
    /// Hash share whose stratum servers the AS hosts.
    pub hash_share: f64,
}

/// Answer to a [`Query::BlockawareTradeoff`].
#[derive(Debug, Clone, PartialEq)]
pub struct BlockawareAnswer {
    /// Echoed threshold.
    pub threshold_secs: u64,
    /// Seconds from isolation to alarm.
    pub detection_delay_secs: u64,
    /// Probability an honest inter-block gap trips the alarm.
    pub false_alarm_rate: f64,
}

/// Answer to a [`Query::Eclipse`].
#[derive(Debug, Clone, PartialEq)]
pub struct EclipseAnswer {
    /// Prefixes actually hijacked (≤ requested).
    pub prefixes_hijacked: u32,
    /// Nodes isolated by those prefixes.
    pub isolated: u32,
    /// Fraction of the AS isolated.
    pub fraction_of_as: f64,
    /// Hash share isolated along with the AS.
    pub hash_share: f64,
    /// Remainder cascade, when requested.
    pub cascade: Option<CascadeReport>,
}

/// Answer to a [`Query::MinTiming`].
#[derive(Debug, Clone, PartialEq)]
pub struct MinTimingAnswer {
    /// Targets matching the selection in the day crawl.
    pub m: u64,
    /// Minimum seconds to isolate them with ≥ 80 % probability
    /// (`None`: infeasible within the search cap).
    pub t_secs: Option<u64>,
}

/// A decoded response payload.
#[derive(Debug, Clone, PartialEq)]
pub enum Answer {
    /// See [`PartitionCostAnswer`].
    PartitionCost(PartitionCostAnswer),
    /// See [`BlockawareAnswer`].
    Blockaware(BlockawareAnswer),
    /// See [`EclipseAnswer`].
    Eclipse(EclipseAnswer),
    /// See [`MinTimingAnswer`].
    MinTiming(MinTimingAnswer),
}

fn push_opt_u32(out: &mut Vec<u8>, v: Option<u32>) {
    match v {
        Some(v) => out.extend_from_slice(&i64::from(v).to_le_bytes()),
        None => out.extend_from_slice(&(-1i64).to_le_bytes()),
    }
}

fn read_opt_u32(body: &[u8], at: usize, field: &str) -> Result<Option<u32>, String> {
    let raw = i64::from_le_bytes(take(body, at, field)?);
    if raw < 0 {
        Ok(None)
    } else {
        u32::try_from(raw)
            .map(Some)
            .map_err(|_| format!("{field} out of range"))
    }
}

impl Answer {
    /// Serializes the answer behind its family tag. Floats keep their
    /// raw bits — the response is the deterministic artifact.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64);
        match self {
            Answer::PartitionCost(a) => {
                out.push(TAG_PARTITION_COST);
                out.extend_from_slice(&a.members.to_le_bytes());
                out.extend_from_slice(&a.prefixes_total.to_le_bytes());
                push_opt_u32(&mut out, a.prefixes_50);
                push_opt_u32(&mut out, a.prefixes_90);
                out.extend_from_slice(&a.hash_share.to_bits().to_le_bytes());
            }
            Answer::Blockaware(a) => {
                out.push(TAG_BLOCKAWARE);
                out.extend_from_slice(&a.threshold_secs.to_le_bytes());
                out.extend_from_slice(&a.detection_delay_secs.to_le_bytes());
                out.extend_from_slice(&a.false_alarm_rate.to_bits().to_le_bytes());
            }
            Answer::Eclipse(a) => {
                out.push(TAG_ECLIPSE);
                out.extend_from_slice(&a.prefixes_hijacked.to_le_bytes());
                out.extend_from_slice(&a.isolated.to_le_bytes());
                out.extend_from_slice(&a.fraction_of_as.to_bits().to_le_bytes());
                out.extend_from_slice(&a.hash_share.to_bits().to_le_bytes());
                match &a.cascade {
                    None => out.push(0),
                    Some(c) => {
                        out.push(1);
                        out.extend_from_slice(&(c.directly_isolated as u64).to_le_bytes());
                        out.extend_from_slice(&(c.remainder as u64).to_le_bytes());
                        out.extend_from_slice(&(c.degraded as u64).to_le_bytes());
                        out.extend_from_slice(&(c.fully_eclipsed as u64).to_le_bytes());
                        out.extend_from_slice(&c.mean_peer_loss.to_bits().to_le_bytes());
                    }
                }
            }
            Answer::MinTiming(a) => {
                out.push(TAG_MIN_TIMING);
                out.extend_from_slice(&a.m.to_le_bytes());
                match a.t_secs {
                    Some(t) => out.extend_from_slice(&(t as i64).to_le_bytes()),
                    None => out.extend_from_slice(&(-1i64).to_le_bytes()),
                }
            }
        }
        out
    }

    /// Decodes a response payload (the client side of the wire).
    ///
    /// # Errors
    ///
    /// Returns a message on truncation or an unknown tag.
    pub fn decode(bytes: &[u8]) -> Result<Self, String> {
        let (&tag, body) = bytes.split_first().ok_or("empty answer")?;
        match tag {
            TAG_PARTITION_COST => Ok(Answer::PartitionCost(PartitionCostAnswer {
                members: u32::from_le_bytes(take(body, 0, "members")?),
                prefixes_total: u32::from_le_bytes(take(body, 4, "prefixes_total")?),
                prefixes_50: read_opt_u32(body, 8, "prefixes_50")?,
                prefixes_90: read_opt_u32(body, 16, "prefixes_90")?,
                hash_share: f64::from_bits(u64::from_le_bytes(take(body, 24, "hash_share")?)),
            })),
            TAG_BLOCKAWARE => Ok(Answer::Blockaware(BlockawareAnswer {
                threshold_secs: u64::from_le_bytes(take(body, 0, "threshold_secs")?),
                detection_delay_secs: u64::from_le_bytes(take(body, 8, "detection_delay")?),
                false_alarm_rate: f64::from_bits(u64::from_le_bytes(take(body, 16, "rate")?)),
            })),
            TAG_ECLIPSE => {
                let cascade = match body.get(24) {
                    Some(0) => None,
                    Some(1) => Some(CascadeReport {
                        directly_isolated: u64::from_le_bytes(take(body, 25, "directly")?) as usize,
                        remainder: u64::from_le_bytes(take(body, 33, "remainder")?) as usize,
                        degraded: u64::from_le_bytes(take(body, 41, "degraded")?) as usize,
                        fully_eclipsed: u64::from_le_bytes(take(body, 49, "fully")?) as usize,
                        mean_peer_loss: f64::from_bits(u64::from_le_bytes(take(body, 57, "loss")?)),
                    }),
                    _ => return Err("bad cascade flag".to_string()),
                };
                Ok(Answer::Eclipse(EclipseAnswer {
                    prefixes_hijacked: u32::from_le_bytes(take(body, 0, "prefixes_hijacked")?),
                    isolated: u32::from_le_bytes(take(body, 4, "isolated")?),
                    fraction_of_as: f64::from_bits(u64::from_le_bytes(take(body, 8, "fraction")?)),
                    hash_share: f64::from_bits(u64::from_le_bytes(take(body, 16, "hash")?)),
                    cascade,
                }))
            }
            TAG_MIN_TIMING => {
                let raw = i64::from_le_bytes(take(body, 8, "t_secs")?);
                Ok(Answer::MinTiming(MinTimingAnswer {
                    m: u64::from_le_bytes(take(body, 0, "m")?),
                    t_secs: if raw < 0 { None } else { Some(raw as u64) },
                }))
            }
            other => Err(format!("unknown answer tag {other}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn samples() -> Vec<Query> {
        vec![
            Query::PartitionCost { target_as: 24940 },
            Query::BlockawareTradeoff {
                threshold_secs: 600,
                lambda: 1.0,
            },
            Query::Eclipse {
                target_as: 16276,
                prefixes: 15,
                cascade: true,
            },
            Query::Eclipse {
                target_as: 16276,
                prefixes: 15,
                cascade: false,
            },
            Query::MinTiming {
                min_blocks: 2,
                window_samples: 5,
                lambda: 0.8,
            },
        ]
    }

    #[test]
    fn queries_round_trip() {
        for q in samples() {
            let bytes = q.encode();
            assert_eq!(Query::decode(&bytes).unwrap(), q, "{q:?}");
        }
    }

    #[test]
    fn negative_zero_lambda_param_encodes_canonically() {
        let a = Query::BlockawareTradeoff {
            threshold_secs: 600,
            lambda: 1.0,
        };
        // Same λ through a -0.0-polluted computation still keys equal.
        let b = Query::BlockawareTradeoff {
            threshold_secs: 600,
            lambda: 1.0 * (0.0 + 1.0),
        };
        assert_eq!(a.encode(), b.encode());
        assert_eq!(canonical_f64_bits(-0.0), canonical_f64_bits(0.0));
        assert_eq!(
            canonical_f64_bits(f64::from_bits(0x7ff8_0000_0000_0001)),
            canonical_f64_bits(f64::NAN)
        );
    }

    #[test]
    fn malformed_queries_are_rejected() {
        assert!(Query::decode(&[]).is_err());
        assert!(Query::decode(&[9, 0, 0, 0, 0]).is_err()); // unknown tag
        assert!(Query::decode(&[TAG_PARTITION_COST, 1, 2]).is_err()); // short
        let mut extra = Query::PartitionCost { target_as: 1 }.encode();
        extra.push(0);
        assert!(Query::decode(&extra).is_err()); // trailing bytes
        let mut bad_flag = Query::Eclipse {
            target_as: 1,
            prefixes: 1,
            cascade: false,
        }
        .encode();
        *bad_flag.last_mut().unwrap() = 7;
        assert!(Query::decode(&bad_flag).is_err());
        // Non-positive λ.
        let mut q = Query::BlockawareTradeoff {
            threshold_secs: 1,
            lambda: 1.0,
        }
        .encode();
        q.truncate(9);
        q.extend_from_slice(&(-1.0f64).to_bits().to_le_bytes());
        assert!(Query::decode(&q).is_err());
    }

    #[test]
    fn answers_round_trip() {
        let answers = vec![
            Answer::PartitionCost(PartitionCostAnswer {
                members: 120,
                prefixes_total: 51,
                prefixes_50: Some(9),
                prefixes_90: None,
                hash_share: 0.0575,
            }),
            Answer::Blockaware(BlockawareAnswer {
                threshold_secs: 600,
                detection_delay_secs: 600,
                false_alarm_rate: (-1.0f64).exp(),
            }),
            Answer::Eclipse(EclipseAnswer {
                prefixes_hijacked: 15,
                isolated: 48,
                fraction_of_as: 0.52,
                hash_share: 0.0,
                cascade: Some(CascadeReport {
                    directly_isolated: 48,
                    remainder: 44,
                    degraded: 3,
                    fully_eclipsed: 0,
                    mean_peer_loss: 0.21,
                }),
            }),
            Answer::Eclipse(EclipseAnswer {
                prefixes_hijacked: 0,
                isolated: 0,
                fraction_of_as: 0.0,
                hash_share: 0.0,
                cascade: None,
            }),
            Answer::MinTiming(MinTimingAnswer {
                m: 500,
                t_secs: Some(589),
            }),
            Answer::MinTiming(MinTimingAnswer { m: 0, t_secs: None }),
        ];
        for a in answers {
            assert_eq!(Answer::decode(&a.encode()).unwrap(), a, "{a:?}");
        }
    }
}
