//! The sharded, generation-stamped in-memory memo table.
//!
//! Hot-path lookups take one shard lock (shard = low bits of the 128-bit
//! cache key) and clone an `Arc` to the response bytes. Entries carry
//! the generation they were inserted under; [`MemoTable::invalidate`]
//! bumps the generation, turning every existing entry stale in O(1)
//! without touching the shards — stale entries are dropped lazily on
//! their next lookup or overwrite. Hit/miss counters are volatile
//! observability: they never influence response bytes.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

struct Entry {
    generation: u64,
    bytes: Arc<Vec<u8>>,
}

/// Sharded memo table keyed by 128-bit cache keys.
pub struct MemoTable {
    shards: Vec<Mutex<HashMap<u128, Entry>>>,
    generation: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl std::fmt::Debug for MemoTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MemoTable")
            .field("shards", &self.shards.len())
            .field("generation", &self.generation.load(Ordering::Relaxed))
            .finish()
    }
}

impl MemoTable {
    /// Creates a table with `shards` lock shards (rounded up to a power
    /// of two, minimum 1).
    pub fn new(shards: usize) -> Self {
        let shards = shards.max(1).next_power_of_two();
        Self {
            shards: (0..shards).map(|_| Mutex::new(HashMap::new())).collect(),
            generation: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    fn shard(&self, key: u128) -> &Mutex<HashMap<u128, Entry>> {
        &self.shards[(key as usize) & (self.shards.len() - 1)]
    }

    /// Returns the memoized response for `key`, if fresh.
    pub fn lookup(&self, key: u128) -> Option<Arc<Vec<u8>>> {
        let generation = self.generation.load(Ordering::Acquire);
        let mut shard = self.shard(key).lock().expect("memo shard poisoned");
        match shard.get(&key) {
            Some(entry) if entry.generation == generation => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(Arc::clone(&entry.bytes))
            }
            Some(_) => {
                // Stale generation: drop lazily.
                shard.remove(&key);
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Memoizes `bytes` under `key` at the current generation.
    pub fn insert(&self, key: u128, bytes: Arc<Vec<u8>>) {
        let generation = self.generation.load(Ordering::Acquire);
        let mut shard = self.shard(key).lock().expect("memo shard poisoned");
        shard.insert(key, Entry { generation, bytes });
    }

    /// Invalidates every entry by bumping the generation stamp.
    pub fn invalidate(&self) {
        self.generation.fetch_add(1, Ordering::AcqRel);
    }

    /// Entries currently resident (stale entries included until their
    /// lazy drop).
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("memo shard poisoned").len())
            .sum()
    }

    /// True when no entries are resident.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lifetime hit count (volatile, observability only).
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lifetime miss count (volatile, observability only).
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_after_insert_miss_before() {
        let memo = MemoTable::new(4);
        assert!(memo.lookup(42).is_none());
        memo.insert(42, Arc::new(vec![1, 2, 3]));
        assert_eq!(memo.lookup(42).unwrap().as_slice(), &[1, 2, 3]);
        assert_eq!(memo.hits(), 1);
        assert_eq!(memo.misses(), 1);
    }

    #[test]
    fn invalidate_stales_everything() {
        let memo = MemoTable::new(1);
        memo.insert(1, Arc::new(vec![9]));
        memo.insert(2, Arc::new(vec![8]));
        assert_eq!(memo.len(), 2);
        memo.invalidate();
        assert!(memo.lookup(1).is_none());
        // Stale entry was dropped lazily by the failed lookup.
        assert_eq!(memo.len(), 1);
        // Reinsertion at the new generation is fresh again.
        memo.insert(1, Arc::new(vec![7]));
        assert_eq!(memo.lookup(1).unwrap().as_slice(), &[7]);
    }

    #[test]
    fn shard_count_rounds_to_power_of_two() {
        assert_eq!(MemoTable::new(0).shards.len(), 1);
        assert_eq!(MemoTable::new(3).shards.len(), 4);
        assert_eq!(MemoTable::new(16).shards.len(), 16);
    }

    #[test]
    fn concurrent_readers_share_one_arc() {
        let memo = Arc::new(MemoTable::new(8));
        memo.insert(7, Arc::new(vec![0xAA; 128]));
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let memo = Arc::clone(&memo);
                scope.spawn(move || {
                    for _ in 0..100 {
                        assert_eq!(memo.lookup(7).unwrap().len(), 128);
                    }
                });
            }
        });
        assert_eq!(memo.hits(), 400);
    }
}
