//! Deterministic synthetic load for the query engine.
//!
//! A load *script* — the query sequence — is a pure function of its
//! seed, the target-AS universe, and the mix knobs, so two runs (or two
//! worker counts, or a run against a restarted server) replay the exact
//! same questions and must produce the exact same response stream.
//! Timing is the only nondeterministic output, and it flows into
//! `bp-obs` histograms (volatile observability), never into response
//! bytes.

use crate::engine::QueryEngine;
use crate::query::Query;
use bp_obs::Registry;
use bp_topology::Asn;
use std::time::Instant;

/// Microsecond latency buckets: 1 µs … ~4.2 s in powers of two.
pub const LATENCY_BOUNDS_US: [u64; 23] = [
    1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096, 8192, 16384, 32768, 65536, 131072,
    262144, 524288, 1048576, 2097152, 4194304,
];

/// Histogram name for cold-phase per-query latency.
pub const COLD_LATENCY_METRIC: &str = "serve.cold.latency_us";
/// Histogram name for warm-phase per-query latency.
pub const WARM_LATENCY_METRIC: &str = "serve.warm.latency_us";

/// How targets are drawn from the AS universe.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TargetMix {
    /// Zipfian (rank-weighted, popular ASes dominate) — the realistic
    /// "everyone asks about the same big ASes" shape.
    Zipf,
    /// Uniform over the universe.
    Uniform,
}

/// Load pacing discipline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Pacing {
    /// Open loop: arrivals scheduled at a fixed rate; latency is
    /// measured from the *scheduled* arrival, so a saturated engine
    /// shows queueing delay.
    Open {
        /// Offered load in queries per second.
        rate_qps: u64,
    },
    /// Closed loop: the next batch is issued when the previous one
    /// completes; measures peak sustainable throughput.
    Closed {
        /// Queries per batch.
        batch: usize,
    },
}

/// Script generation knobs.
#[derive(Debug, Clone, Copy)]
pub struct ScriptConfig {
    /// PRNG seed; the script is a pure function of it.
    pub seed: u64,
    /// Total queries in the script.
    pub queries: usize,
    /// Target-AS draw distribution.
    pub mix: TargetMix,
}

/// Deterministic xorshift64* generator (no `rand` dependency; the
/// script must be reproducible from the seed alone).
#[derive(Debug, Clone)]
struct Prng(u64);

impl Prng {
    fn new(seed: u64) -> Self {
        // Avoid the all-zero fixed point.
        Self(seed ^ 0x9E37_79B9_7F4A_7C15)
    }

    fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn below(&mut self, n: u64) -> u64 {
        if n == 0 {
            0
        } else {
            self.next_u64() % n
        }
    }

    fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Draws target ASes from the universe under the configured mix.
#[derive(Debug, Clone)]
struct TargetSampler {
    universe: Vec<Asn>,
    /// Cumulative zipf weights (empty for uniform).
    cumulative: Vec<f64>,
}

impl TargetSampler {
    fn new(universe: &[Asn], mix: TargetMix) -> Self {
        let mut universe: Vec<Asn> = universe.to_vec();
        universe.sort_unstable();
        let cumulative = match mix {
            TargetMix::Uniform => Vec::new(),
            TargetMix::Zipf => {
                let mut acc = 0.0;
                (0..universe.len())
                    .map(|rank| {
                        acc += 1.0 / (rank + 1) as f64;
                        acc
                    })
                    .collect()
            }
        };
        Self {
            universe,
            cumulative,
        }
    }

    fn draw(&self, rng: &mut Prng) -> Asn {
        if self.universe.is_empty() {
            return Asn(0);
        }
        if self.cumulative.is_empty() {
            return self.universe[rng.below(self.universe.len() as u64) as usize];
        }
        let total = *self.cumulative.last().expect("nonempty");
        let needle = rng.unit_f64() * total;
        let at = self
            .cumulative
            .partition_point(|&c| c < needle)
            .min(self.universe.len() - 1);
        self.universe[at]
    }
}

/// Generates the deterministic query script.
///
/// Family mix: 40 % `partition_cost`, 25 % `eclipse` (half with
/// cascade), 20 % `blockaware_tradeoff`, 15 % `min_timing`.
pub fn script(universe: &[Asn], config: &ScriptConfig) -> Vec<Query> {
    let sampler = TargetSampler::new(universe, config.mix);
    let mut rng = Prng::new(config.seed);
    (0..config.queries)
        .map(|_| match rng.below(100) {
            0..=39 => Query::PartitionCost {
                target_as: sampler.draw(&mut rng).0,
            },
            40..=64 => Query::Eclipse {
                target_as: sampler.draw(&mut rng).0,
                prefixes: 1 + rng.below(40) as u32,
                cascade: rng.below(2) == 1,
            },
            65..=84 => Query::BlockawareTradeoff {
                threshold_secs: 60 * (1 + rng.below(40)),
                lambda: 0.5 + rng.below(16) as f64 * 0.1,
            },
            _ => Query::MinTiming {
                min_blocks: 1 + rng.below(3) as u8,
                window_samples: 1 + rng.below(5) as u16,
                lambda: 0.5 + rng.below(16) as f64 * 0.1,
            },
        })
        .collect()
}

/// Measured outcome of one load run.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadReport {
    /// Queries in the warm phase (the full script).
    pub warm_queries: usize,
    /// Distinct queries evaluated in the cold phase.
    pub cold_queries: usize,
    /// Cold-phase wall time (ms).
    pub cold_wall_ms: u64,
    /// Warm-phase wall time (ms).
    pub warm_wall_ms: u64,
    /// Warm-phase sustained throughput (queries per second).
    pub qps: f64,
    /// Warm-phase latency quantiles (µs, histogram bucket bounds).
    pub p50_us: u64,
    /// 99th percentile (µs).
    pub p99_us: u64,
    /// 99.9th percentile (µs).
    pub p999_us: u64,
    /// Cold-phase mean per-query latency (µs).
    pub cold_mean_us: f64,
    /// Warm-phase mean per-query latency (µs).
    pub warm_mean_us: f64,
    /// Engine memo hits at the end of the run.
    pub memo_hits: u64,
    /// Engine memo misses at the end of the run.
    pub memo_misses: u64,
    /// Micro-DAG evaluations the run triggered.
    pub cold_evals: u64,
    /// Queries answered from the persistent backend.
    pub backend_hits: u64,
}

/// Batch size used for the cold phase (and the response sink).
const COLD_BATCH: usize = 64;

/// Drives a script against the engine: a **cold phase** touching every
/// distinct query once, then a **warm phase** replaying the full script
/// under `pacing`. Response bytes (cold then warm, each length-prefixed)
/// are appended to `sink` in script order — the determinism artifact a
/// caller byte-compares across worker counts and restarts.
pub fn drive(
    engine: &QueryEngine,
    script: &[Query],
    pacing: Pacing,
    registry: &Registry,
    mut sink: Option<&mut Vec<u8>>,
) -> LoadReport {
    // Cold phase: distinct queries in first-appearance order.
    let mut seen: Vec<Vec<u8>> = Vec::new();
    let mut distinct: Vec<Query> = Vec::new();
    for query in script {
        let encoding = query.encode();
        if !seen.contains(&encoding) {
            seen.push(encoding);
            distinct.push(query.clone());
        }
    }
    let cold_start = Instant::now();
    let mut cold_us_total = 0.0f64;
    for chunk in distinct.chunks(COLD_BATCH) {
        let t0 = Instant::now();
        let responses = engine.execute_batch(chunk);
        let per_query_us = t0.elapsed().as_micros() as f64 / chunk.len() as f64;
        cold_us_total += per_query_us * chunk.len() as f64;
        for response in &responses {
            registry.observe(COLD_LATENCY_METRIC, &LATENCY_BOUNDS_US, per_query_us as u64);
            if let Some(sink) = sink.as_deref_mut() {
                sink.extend_from_slice(&(response.len() as u32).to_le_bytes());
                sink.extend_from_slice(response);
            }
        }
    }
    let cold_wall_ms = cold_start.elapsed().as_millis() as u64;

    // Warm phase: the full script under the pacing discipline.
    let warm_start = Instant::now();
    let mut warm_us_total = 0.0f64;
    match pacing {
        Pacing::Closed { batch } => {
            let batch = batch.max(1);
            for chunk in script.chunks(batch) {
                let t0 = Instant::now();
                let responses = engine.execute_batch(chunk);
                let per_query_us = t0.elapsed().as_micros() as f64 / chunk.len() as f64;
                warm_us_total += per_query_us * chunk.len() as f64;
                for response in &responses {
                    registry.observe(WARM_LATENCY_METRIC, &LATENCY_BOUNDS_US, per_query_us as u64);
                    if let Some(sink) = sink.as_deref_mut() {
                        sink.extend_from_slice(&(response.len() as u32).to_le_bytes());
                        sink.extend_from_slice(response);
                    }
                }
            }
        }
        Pacing::Open { rate_qps } => {
            let rate = rate_qps.max(1);
            let gap_nanos = 1_000_000_000u64 / rate;
            for (i, query) in script.iter().enumerate() {
                let scheduled_nanos = i as u64 * gap_nanos;
                loop {
                    let now = warm_start.elapsed().as_nanos() as u64;
                    if now >= scheduled_nanos {
                        break;
                    }
                    std::hint::spin_loop();
                }
                let response = engine.execute(query);
                let latency_us = (warm_start.elapsed().as_nanos() as u64)
                    .saturating_sub(scheduled_nanos)
                    / 1_000;
                warm_us_total += latency_us as f64;
                registry.observe(WARM_LATENCY_METRIC, &LATENCY_BOUNDS_US, latency_us);
                if let Some(sink) = sink.as_deref_mut() {
                    sink.extend_from_slice(&(response.len() as u32).to_le_bytes());
                    sink.extend_from_slice(&response);
                }
            }
        }
    }
    let warm_wall = warm_start.elapsed();
    let warm_wall_ms = warm_wall.as_millis() as u64;
    let qps = if warm_wall.as_secs_f64() > 0.0 {
        script.len() as f64 / warm_wall.as_secs_f64()
    } else {
        0.0
    };

    let snapshot = registry.snapshot();
    let warm_hist = snapshot.histogram(WARM_LATENCY_METRIC);
    let quantile = |q: f64| warm_hist.map_or(0, |h| h.quantile(q));
    LoadReport {
        warm_queries: script.len(),
        cold_queries: distinct.len(),
        cold_wall_ms,
        warm_wall_ms,
        qps,
        p50_us: quantile(0.50),
        p99_us: quantile(0.99),
        p999_us: quantile(0.999),
        cold_mean_us: if distinct.is_empty() {
            0.0
        } else {
            cold_us_total / distinct.len() as f64
        },
        warm_mean_us: if script.is_empty() {
            0.0
        } else {
            warm_us_total / script.len() as f64
        },
        memo_hits: engine.memo_hits(),
        memo_misses: engine.memo_misses(),
        cold_evals: engine.cold_evals(),
        backend_hits: engine.backend_hits(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EngineOptions;
    use crate::substrate::Substrate;
    use btcpart::Scenario;
    use std::sync::Arc;

    fn universe() -> Vec<Asn> {
        vec![Asn(24940), Asn(16276), Asn(37963), Asn(16509), Asn(14061)]
    }

    #[test]
    fn scripts_are_pure_functions_of_the_seed() {
        let cfg = ScriptConfig {
            seed: 7,
            queries: 500,
            mix: TargetMix::Zipf,
        };
        assert_eq!(script(&universe(), &cfg), script(&universe(), &cfg));
        let other = script(&universe(), &ScriptConfig { seed: 8, ..cfg });
        assert_ne!(script(&universe(), &cfg), other);
    }

    #[test]
    fn script_mixes_all_families() {
        let cfg = ScriptConfig {
            seed: 11,
            queries: 400,
            mix: TargetMix::Uniform,
        };
        let script = script(&universe(), &cfg);
        for family in [
            "partition_cost",
            "eclipse",
            "blockaware_tradeoff",
            "min_timing",
        ] {
            assert!(
                script.iter().any(|q| q.family() == family),
                "missing {family}"
            );
        }
    }

    #[test]
    fn zipf_prefers_low_ranked_ases() {
        let cfg = ScriptConfig {
            seed: 3,
            queries: 2000,
            mix: TargetMix::Zipf,
        };
        let universe = universe();
        let mut sorted = universe.clone();
        sorted.sort_unstable();
        let head = sorted[0];
        let tail = sorted[sorted.len() - 1];
        let count_of = |asn: Asn, qs: &[Query]| {
            qs.iter()
                .filter(|q| matches!(q, Query::PartitionCost { target_as } if *target_as == asn.0))
                .count()
        };
        let qs = script(&universe, &cfg);
        assert!(
            count_of(head, &qs) > count_of(tail, &qs),
            "zipf head not preferred"
        );
    }

    #[test]
    fn drive_replays_byte_identically() {
        let substrate = Substrate::new();
        substrate.set_static(Scenario::new().scale(0.05).seed(20_180_228).build_static());
        let substrate = Arc::new(substrate);
        let cfg = ScriptConfig {
            seed: 5,
            queries: 200,
            mix: TargetMix::Zipf,
        };
        // Cascade queries need the day sim; restrict to a static-only
        // universe by filtering them out of the script.
        let qs: Vec<Query> = script(&universe(), &cfg)
            .into_iter()
            .filter(|q| {
                !matches!(q, Query::Eclipse { cascade: true, .. })
                    && !matches!(q, Query::MinTiming { .. })
            })
            .collect();

        let mut streams: Vec<Vec<u8>> = Vec::new();
        for workers in [1usize, 4] {
            let engine = QueryEngine::new(
                Arc::clone(&substrate),
                EngineOptions {
                    workers,
                    memo_shards: 8,
                },
            );
            let registry = Registry::new();
            let mut sink = Vec::new();
            let report = drive(
                &engine,
                &qs,
                Pacing::Closed { batch: 32 },
                &registry,
                Some(&mut sink),
            );
            assert_eq!(report.warm_queries, qs.len());
            assert!(report.cold_queries > 0);
            assert!(report.qps > 0.0);
            streams.push(sink);
        }
        assert_eq!(streams[0], streams[1], "response stream diverged");
    }
}
