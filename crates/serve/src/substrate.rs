//! The write-once substrate the query engine serves from.
//!
//! A server pays the expensive pipeline inputs — calibrated snapshot,
//! pool census, day and general crawls — exactly once, then every query
//! borrows them immutably. Each part lives behind a [`OnceLock`] cell:
//! publishing twice is a bug (panics), and queries that reach an unbuilt
//! part fail loudly instead of silently rebuilding it, mirroring the
//! bench pipeline's `SharedInputs` discipline.

use bp_crawler::CrawlResult;
use bp_mining::PoolCensus;
use bp_net::Simulation;
use bp_topology::Snapshot;
use btcpart::Lab;
use std::sync::OnceLock;

/// The loaded substrate: static environment plus the two crawls.
#[derive(Debug, Default)]
pub struct Substrate {
    static_env: OnceLock<(Snapshot, PoolCensus)>,
    day: OnceLock<(CrawlResult, Lab)>,
    general: OnceLock<(CrawlResult, Lab)>,
}

impl Substrate {
    /// An empty substrate; publish parts with the `set_*` methods.
    pub fn new() -> Self {
        Self::default()
    }

    /// Publishes the static environment (snapshot + census).
    ///
    /// # Panics
    ///
    /// Panics if the static environment was already published.
    pub fn set_static(&self, value: (Snapshot, PoolCensus)) {
        assert!(
            self.static_env.set(value).is_ok(),
            "static environment built twice"
        );
    }

    /// Publishes the one-day, minute-sampled crawl and its lab.
    ///
    /// # Panics
    ///
    /// Panics if the day crawl was already published.
    pub fn set_day(&self, value: (CrawlResult, Lab)) {
        assert!(self.day.set(value).is_ok(), "day crawl built twice");
    }

    /// Publishes the general (long, 10-minute-sampled) crawl.
    ///
    /// # Panics
    ///
    /// Panics if the general crawl was already published.
    pub fn set_general(&self, value: (CrawlResult, Lab)) {
        assert!(self.general.set(value).is_ok(), "general crawl built twice");
    }

    /// Whether the static environment has been published.
    pub fn has_static(&self) -> bool {
        self.static_env.get().is_some()
    }

    /// Whether the day crawl has been published.
    pub fn has_day(&self) -> bool {
        self.day.get().is_some()
    }

    /// Whether the general crawl has been published.
    pub fn has_general(&self) -> bool {
        self.general.get().is_some()
    }

    /// The calibrated snapshot.
    ///
    /// # Panics
    ///
    /// Panics if the static environment is not loaded.
    pub fn snapshot(&self) -> &Snapshot {
        &self.static_part().0
    }

    /// The Table IV pool census.
    ///
    /// # Panics
    ///
    /// Panics if the static environment is not loaded.
    pub fn census(&self) -> &PoolCensus {
        &self.static_part().1
    }

    fn static_part(&self) -> &(Snapshot, PoolCensus) {
        self.static_env
            .get()
            .expect("query requires the static environment")
    }

    /// The day crawl result (per-node lag matrix and series).
    ///
    /// # Panics
    ///
    /// Panics if the day crawl is not loaded.
    pub fn day_crawl(&self) -> &CrawlResult {
        &self.day.get().expect("query requires the day crawl").0
    }

    /// The simulation state left behind by the day crawl — the peer
    /// graph eclipse cascades are evaluated against.
    ///
    /// # Panics
    ///
    /// Panics if the day crawl is not loaded.
    pub fn day_sim(&self) -> &Simulation {
        &self.day.get().expect("query requires the day crawl").1.sim
    }

    /// The general crawl result.
    ///
    /// # Panics
    ///
    /// Panics if the general crawl is not loaded.
    pub fn general_crawl(&self) -> &CrawlResult {
        &self
            .general
            .get()
            .expect("query requires the general crawl")
            .0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use btcpart::Scenario;

    #[test]
    fn parts_publish_once_and_read_back() {
        let sub = Substrate::new();
        assert!(!sub.has_static());
        sub.set_static(Scenario::new().scale(0.02).build_static());
        assert!(sub.has_static());
        assert!(sub.snapshot().node_count() > 0);
        assert!(!sub.census().is_empty());
        assert!(!sub.has_day() && !sub.has_general());
    }

    #[test]
    #[should_panic(expected = "built twice")]
    fn double_publish_panics() {
        let sub = Substrate::new();
        sub.set_static(Scenario::new().scale(0.02).build_static());
        sub.set_static(Scenario::new().scale(0.02).build_static());
    }

    #[test]
    #[should_panic(expected = "requires the day crawl")]
    fn missing_part_fails_loudly() {
        let sub = Substrate::new();
        let _ = sub.day_crawl();
    }
}
