//! Property-based tests for the statistics substrate.

use bp_analysis::centralization::{gini, hhi, smallest_cover, top_k_share};
use bp_analysis::csv;
use bp_analysis::dist::{zipf_weights, Exponential, WeightedIndex};
use bp_analysis::ecdf::{cumulative_share, Ecdf};
use bp_analysis::stats::{Accumulator, Summary};
use proptest::prelude::*;

fn finite_vec(max_len: usize) -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(-1e6f64..1e6, 1..max_len)
}

fn weight_vec(max_len: usize) -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(0.001f64..1e4, 1..max_len)
}

proptest! {
    /// Summary mean is bounded by min/max; std-dev is non-negative and
    /// zero for constant samples.
    #[test]
    fn summary_invariants(data in finite_vec(200)) {
        let s = Summary::from_iter(data.clone());
        prop_assert!(s.mean() >= s.min() - 1e-9);
        prop_assert!(s.mean() <= s.max() + 1e-9);
        prop_assert!(s.std_dev() >= 0.0);
        prop_assert!(s.quantile(0.0) == s.min());
        prop_assert!(s.quantile(1.0) == s.max());
        // Quantiles are monotone.
        let mut prev = f64::NEG_INFINITY;
        for q in [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 1.0] {
            let v = s.quantile(q);
            prop_assert!(v >= prev);
            prev = v;
        }
    }

    /// Streaming accumulator agrees with the batch summary.
    #[test]
    fn accumulator_matches_summary(data in finite_vec(200)) {
        let mut acc = Accumulator::new();
        for &x in &data {
            acc.add(x);
        }
        let s = Summary::from_iter(data);
        prop_assert!((acc.mean() - s.mean()).abs() < 1e-6);
        prop_assert!((acc.std_dev() - s.std_dev()).abs() < 1e-6);
    }

    /// Merging accumulators in any split equals sequential accumulation.
    #[test]
    fn accumulator_merge_associative(
        data in finite_vec(100),
        cut in any::<prop::sample::Index>(),
    ) {
        let k = cut.index(data.len());
        let mut left = Accumulator::new();
        let mut right = Accumulator::new();
        data[..k].iter().for_each(|&x| left.add(x));
        data[k..].iter().for_each(|&x| right.add(x));
        left.merge(&right);
        let mut whole = Accumulator::new();
        data.iter().for_each(|&x| whole.add(x));
        prop_assert_eq!(left.count(), whole.count());
        prop_assert!((left.mean() - whole.mean()).abs() < 1e-6);
        prop_assert!((left.std_dev() - whole.std_dev()).abs() < 1e-6);
    }

    /// ECDF is a valid CDF: monotone, 0 below min, 1 at max.
    #[test]
    fn ecdf_is_monotone(data in finite_vec(100)) {
        let e = Ecdf::from_iter(data.clone());
        let lo = data.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = data.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert_eq!(e.eval(lo - 1.0), 0.0);
        prop_assert_eq!(e.eval(hi), 1.0);
        let mut prev = 0.0;
        for pt in e.points() {
            prop_assert!(pt.1 >= prev);
            prev = pt.1;
        }
    }

    /// Cumulative share ends at exactly 1.0 and is monotone; the smallest
    /// cover is consistent with top-k shares.
    #[test]
    fn cover_and_share_are_inverse(weights in weight_vec(100), frac in 0.01f64..1.0) {
        let shares = cumulative_share(&weights);
        prop_assert!((shares.last().unwrap() - 1.0).abs() < 1e-9);
        for w in shares.windows(2) {
            prop_assert!(w[0] <= w[1] + 1e-12);
        }
        let k = smallest_cover(&weights, frac);
        prop_assert!(top_k_share(&weights, k) + 1e-9 >= frac);
        if k > 1 {
            prop_assert!(top_k_share(&weights, k - 1) < frac + 1e-9);
        }
    }

    /// Gini and HHI are scale-invariant and bounded.
    #[test]
    fn concentration_metrics_bounded(weights in weight_vec(60), scale in 0.1f64..100.0) {
        let g = gini(&weights);
        prop_assert!((-1e-9..=1.0).contains(&g), "gini {g}");
        let h = hhi(&weights);
        prop_assert!(h > 0.0 && h <= 1.0 + 1e-12, "hhi {h}");
        let scaled: Vec<f64> = weights.iter().map(|w| w * scale).collect();
        prop_assert!((gini(&scaled) - g).abs() < 1e-9);
        prop_assert!((hhi(&scaled) - h).abs() < 1e-9);
    }

    /// Zipf weights sum to the requested total and are non-increasing.
    #[test]
    fn zipf_weights_valid(n in 1usize..500, s in 0.0f64..3.0, total in 1.0f64..1e6) {
        let w = zipf_weights(n, s, total);
        prop_assert_eq!(w.len(), n);
        let sum: f64 = w.iter().sum();
        prop_assert!((sum - total).abs() / total < 1e-9);
        for pair in w.windows(2) {
            prop_assert!(pair[0] >= pair[1] - 1e-12);
        }
    }

    /// Exponential samples are positive and the CDF is in [0, 1].
    #[test]
    fn exponential_sane(lambda in 0.001f64..100.0, t in -10.0f64..1e5, seed in any::<u64>()) {
        let exp = Exponential::new(lambda);
        let cdf = exp.cdf(t);
        prop_assert!((0.0..=1.0).contains(&cdf));
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        prop_assert!(exp.sample(&mut rng) >= 0.0);
    }

    /// Weighted sampling never returns a zero-weight category.
    #[test]
    fn weighted_index_respects_zeros(
        mask in proptest::collection::vec(any::<bool>(), 2..20),
        seed in any::<u64>(),
    ) {
        prop_assume!(mask.iter().any(|&m| m));
        let weights: Vec<f64> = mask.iter().map(|&m| if m { 1.0 } else { 0.0 }).collect();
        let wi = WeightedIndex::new(&weights);
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        for _ in 0..64 {
            let idx = wi.sample(&mut rng);
            prop_assert!(mask[idx], "sampled zero-weight index {idx}");
        }
    }

    /// CSV write/parse round-trips arbitrary printable content.
    #[test]
    fn csv_round_trip(
        rows in proptest::collection::vec(
            proptest::collection::vec("[ -~]{0,20}", 1..5),
            1..10,
        )
    ) {
        // Normalise row widths (ragged rows are legal CSV but our writer
        // emits rectangular data).
        let width = rows[0].len();
        let rect: Vec<Vec<String>> = rows
            .into_iter()
            .map(|mut r| {
                r.resize(width, String::new());
                r
            })
            .collect();
        let text = csv::write(&rect);
        let parsed = csv::parse(&text).unwrap();
        prop_assert_eq!(parsed, rect);
    }
}
