//! Fixed-bin histograms.
//!
//! Used for distributional views the summary statistics flatten: the
//! propagation-delay distribution (§V-B cites Decker–Wattenhofer's
//! measurements) and the per-node lag-duration distribution behind
//! Table V.

use std::fmt;

/// A histogram over `[lo, hi)` with uniformly sized bins plus overflow /
/// underflow counters.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    bins: Vec<u64>,
    underflow: u64,
    overflow: u64,
}

impl Histogram {
    /// Creates a histogram with `bins` uniform bins over `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics unless `lo < hi`, both finite, and `bins > 0`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(lo.is_finite() && hi.is_finite() && lo < hi, "need lo < hi");
        assert!(bins > 0, "need at least one bin");
        Self {
            lo,
            hi,
            bins: vec![0; bins],
            underflow: 0,
            overflow: 0,
        }
    }

    /// Records one observation.
    ///
    /// # Panics
    ///
    /// Panics if `x` is not finite.
    pub fn add(&mut self, x: f64) {
        assert!(x.is_finite(), "histogram requires finite observations");
        if x < self.lo {
            self.underflow += 1;
        } else if x >= self.hi {
            self.overflow += 1;
        } else {
            let n = self.bins.len();
            let idx = ((x - self.lo) / (self.hi - self.lo) * n as f64) as usize;
            self.bins[idx.min(n - 1)] += 1;
        }
    }

    /// Total observations recorded (including under/overflow).
    pub fn count(&self) -> u64 {
        self.bins.iter().sum::<u64>() + self.underflow + self.overflow
    }

    /// Count in bin `i`.
    pub fn bin(&self, i: usize) -> u64 {
        self.bins[i]
    }

    /// Number of bins.
    pub fn bin_count(&self) -> usize {
        self.bins.len()
    }

    /// `(bin lower edge, count)` pairs.
    pub fn edges_and_counts(&self) -> Vec<(f64, u64)> {
        let width = (self.hi - self.lo) / self.bins.len() as f64;
        self.bins
            .iter()
            .enumerate()
            .map(|(i, &c)| (self.lo + i as f64 * width, c))
            .collect()
    }

    /// Observations below `lo`.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Observations at or above `hi`.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// The approximate `q`-quantile from the binned data (bin midpoint of
    /// the bin containing the quantile), or `None` for an empty
    /// histogram or `q` outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if !(0.0..=1.0).contains(&q) || self.count() == 0 {
            return None;
        }
        // `q = 0.0` would otherwise yield `target = 0`, which every
        // prefix sum trivially satisfies — the 0-quantile must still
        // land in the first *occupied* bin, so ask for at least one
        // observation.
        let target = ((q * self.count() as f64).ceil() as u64).max(1);
        let mut acc = self.underflow;
        if acc >= target && self.underflow > 0 {
            return Some(self.lo);
        }
        let width = (self.hi - self.lo) / self.bins.len() as f64;
        for (i, &c) in self.bins.iter().enumerate() {
            acc += c;
            if acc >= target {
                return Some(self.lo + (i as f64 + 0.5) * width);
            }
        }
        Some(self.hi)
    }
}

impl fmt::Display for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let max = self.bins.iter().copied().max().unwrap_or(0).max(1);
        for (edge, count) in self.edges_and_counts() {
            let bar = (count * 40 / max) as usize;
            writeln!(f, "{edge:>10.2} | {:<40} {count}", "#".repeat(bar))?;
        }
        if self.underflow > 0 || self.overflow > 0 {
            writeln!(
                f,
                "(underflow {}, overflow {})",
                self.underflow, self.overflow
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bins_partition_the_range() {
        let mut h = Histogram::new(0.0, 10.0, 5);
        for x in [0.0, 1.9, 2.0, 5.5, 9.999] {
            h.add(x);
        }
        assert_eq!(h.bin(0), 2); // 0.0, 1.9
        assert_eq!(h.bin(1), 1); // 2.0
        assert_eq!(h.bin(2), 1); // 5.5
        assert_eq!(h.bin(4), 1); // 9.999
        assert_eq!(h.count(), 5);
    }

    #[test]
    fn under_and_overflow_counted() {
        let mut h = Histogram::new(0.0, 1.0, 2);
        h.add(-5.0);
        h.add(1.0); // hi is exclusive
        h.add(2.0);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 2);
        assert_eq!(h.count(), 3);
    }

    #[test]
    fn quantile_approximates_median() {
        let mut h = Histogram::new(0.0, 100.0, 100);
        for i in 0..100 {
            h.add(i as f64);
        }
        let median = h.quantile(0.5).unwrap();
        assert!((median - 49.5).abs() <= 1.0, "median {median}");
        assert_eq!(h.quantile(1.5), None);
        assert_eq!(Histogram::new(0.0, 1.0, 1).quantile(0.5), None);
    }

    #[test]
    fn zero_quantile_tracks_the_occupied_bin() {
        // Regression: with all mass in a high bin, quantile(0.0) used to
        // compute `target = 0` and return the bin-0 midpoint (0.5 here)
        // even though bin 0 is empty.
        let mut h = Histogram::new(0.0, 100.0, 100);
        for _ in 0..10 {
            h.add(90.5);
        }
        assert_eq!(h.quantile(0.0), Some(90.5));
        assert_eq!(h.quantile(0.0), h.quantile(0.01));
        // With underflow mass the 0-quantile clamps to `lo`, as before.
        let mut u = Histogram::new(0.0, 1.0, 4);
        u.add(-3.0);
        u.add(0.9);
        assert_eq!(u.quantile(0.0), Some(0.0));
    }

    #[test]
    fn display_draws_bars() {
        let mut h = Histogram::new(0.0, 2.0, 2);
        h.add(0.5);
        h.add(0.6);
        h.add(1.5);
        let s = h.to_string();
        assert!(s.contains('#'));
        assert_eq!(s.lines().count(), 2);
    }

    #[test]
    #[should_panic(expected = "lo < hi")]
    fn invalid_range_rejected() {
        let _ = Histogram::new(5.0, 5.0, 3);
    }
}
