//! Centralization metrics.
//!
//! Section V-A of the paper quantifies how much more centralized the Bitcoin
//! network became between 2017 and 2018: the number of ASes hosting 50 % of
//! nodes fell from 50 to 24 (a 52 % change) and hosting 30 % fell from 13 to
//! 8 (38 %), using the metric `C = (N1 − N2) · 100 / N1` (Table III).
//!
//! This module implements that metric plus the supporting concentration
//! measures (top-k share, smallest cover, Gini coefficient and HHI) used by
//! the spatial-attack analysis.

use crate::ecdf::{cumulative_share, entities_to_cover};

/// The paper's centralization-change metric `C = (N1 − N2) · 100 / N1`
/// (Table III), where `N1` entities covered a fixed share in the earlier
/// measurement and `N2` in the later one.
///
/// Positive values mean the network *centralized* (fewer entities needed).
///
/// # Examples
///
/// ```
/// use bp_analysis::centralization_change;
///
/// // 50 ASes hosted 50% of nodes in 2017; 24 in 2018 → 52% centralization.
/// assert_eq!(centralization_change(50, 24), 52.0);
/// // 13 → 8 for the 30% cover → 38.46…%, which the paper rounds to 38%.
/// assert!((centralization_change(13, 8) - 38.46).abs() < 0.01);
/// ```
///
/// # Panics
///
/// Panics if `n1` is zero.
pub fn centralization_change(n1: usize, n2: usize) -> f64 {
    assert!(n1 > 0, "earlier count must be positive");
    (n1 as f64 - n2 as f64) * 100.0 / n1 as f64
}

/// Fraction of total weight held by the `k` largest entities.
///
/// # Panics
///
/// Panics if weights are empty, negative, non-finite, or all zero.
pub fn top_k_share(weights: &[f64], k: usize) -> f64 {
    let shares = cumulative_share(weights);
    if k == 0 {
        return 0.0;
    }
    shares[(k - 1).min(shares.len() - 1)]
}

/// Smallest number of top-ranked entities covering at least `fraction` of
/// the total weight — "`smallest_cover(nodes_per_as, 0.30)` ASes host 30 % of
/// Bitcoin nodes".
///
/// # Panics
///
/// Panics under the same conditions as [`top_k_share`], or if `fraction` is
/// outside `(0, 1]`.
pub fn smallest_cover(weights: &[f64], fraction: f64) -> usize {
    entities_to_cover(weights, fraction)
}

/// Gini coefficient of a weight vector (0 = perfectly equal, → 1 = one
/// entity holds everything).
///
/// # Panics
///
/// Panics if weights are empty, negative, non-finite, or all zero.
pub fn gini(weights: &[f64]) -> f64 {
    assert!(!weights.is_empty(), "gini of empty weights");
    assert!(
        weights.iter().all(|w| w.is_finite() && *w >= 0.0),
        "weights must be finite and non-negative"
    );
    let mut sorted = weights.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite values are comparable"));
    let n = sorted.len() as f64;
    let total: f64 = sorted.iter().sum();
    assert!(total > 0.0, "gini of zero total weight");
    let weighted_rank_sum: f64 = sorted
        .iter()
        .enumerate()
        .map(|(i, &w)| (i as f64 + 1.0) * w)
        .sum();
    (2.0 * weighted_rank_sum) / (n * total) - (n + 1.0) / n
}

/// Herfindahl–Hirschman index: the sum of squared shares, a standard market
/// concentration measure (1/n for a uniform market, 1.0 for a monopoly).
///
/// # Panics
///
/// Panics if weights are empty, negative, non-finite, or all zero.
pub fn hhi(weights: &[f64]) -> f64 {
    assert!(!weights.is_empty(), "hhi of empty weights");
    assert!(
        weights.iter().all(|w| w.is_finite() && *w >= 0.0),
        "weights must be finite and non-negative"
    );
    let total: f64 = weights.iter().sum();
    assert!(total > 0.0, "hhi of zero total weight");
    weights.iter().map(|w| (w / total).powi(2)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_iii_values() {
        assert_eq!(centralization_change(50, 24), 52.0);
        let c = centralization_change(13, 8);
        assert!((c - 38.4615).abs() < 1e-3);
    }

    #[test]
    fn change_can_be_negative_for_decentralization() {
        assert_eq!(centralization_change(10, 20), -100.0);
    }

    #[test]
    fn top_k_share_monotone_in_k() {
        let w = [5.0, 1.0, 3.0, 1.0];
        assert_eq!(top_k_share(&w, 0), 0.0);
        assert_eq!(top_k_share(&w, 1), 0.5);
        assert_eq!(top_k_share(&w, 2), 0.8);
        assert_eq!(top_k_share(&w, 10), 1.0);
    }

    #[test]
    fn smallest_cover_inverse_of_top_k() {
        let w = [5.0, 1.0, 3.0, 1.0];
        assert_eq!(smallest_cover(&w, 0.5), 1);
        assert_eq!(smallest_cover(&w, 0.8), 2);
        assert_eq!(smallest_cover(&w, 0.81), 3);
    }

    #[test]
    fn gini_extremes() {
        assert!(gini(&[1.0, 1.0, 1.0, 1.0]).abs() < 1e-12);
        // One entity holds everything among n=4: gini = (n-1)/n = 0.75.
        assert!((gini(&[0.0, 0.0, 0.0, 8.0]) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn gini_is_scale_invariant() {
        let a = gini(&[1.0, 2.0, 3.0]);
        let b = gini(&[10.0, 20.0, 30.0]);
        assert!((a - b).abs() < 1e-12);
    }

    #[test]
    fn hhi_extremes() {
        assert!((hhi(&[1.0, 1.0, 1.0, 1.0]) - 0.25).abs() < 1e-12);
        assert!((hhi(&[0.0, 4.0]) - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn change_rejects_zero_baseline() {
        let _ = centralization_change(0, 5);
    }
}
