//! Statistics and analysis substrate for the `btcpart` workspace.
//!
//! The paper *Partitioning Attacks on Bitcoin: Colliding Space, Time, and
//! Logic* (ICDCS 2019) is a data-driven study: every table and figure is a
//! statistical summary of a crawled dataset or of simulation output. This
//! crate provides the analysis primitives that the rest of the workspace
//! builds on:
//!
//! * [`stats`] — summary statistics (mean, standard deviation, quantiles)
//!   matching the μ/σ columns of the paper's Table I.
//! * [`ecdf`] — empirical CDFs used for Figure 3 (nodes over ASes and
//!   organizations) and Figure 4 (nodes hijacked vs. BGP prefixes).
//! * [`dist`] — seedable sampling distributions (exponential, log-normal,
//!   Pareto/Zipf, discrete weighted) implemented directly on top of
//!   [`rand`] so the workspace needs no extra dependency crates.
//! * [`centralization`] — the paper's centralization-change metric
//!   `C = (N1 − N2) · 100 / N1` (Table III), top-k shares, and
//!   smallest-cover counts ("how many ASes host p% of nodes").
//! * [`table`] — fixed-width text tables used to render every paper table.
//! * [`chart`] — ASCII line/stacked-area charts used to render every paper
//!   figure in a terminal.
//! * [`csv`] — a minimal CSV writer/reader for exporting figure series.
//!
//! # Examples
//!
//! ```
//! use bp_analysis::stats::Summary;
//!
//! let s = Summary::from_iter([1.0, 2.0, 3.0, 4.0]);
//! assert_eq!(s.mean(), 2.5);
//! assert_eq!(s.count(), 4);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod centralization;
pub mod chart;
pub mod csv;
pub mod dist;
pub mod ecdf;
pub mod histogram;
pub mod stats;
pub mod table;
pub mod timeseries;

pub use centralization::{centralization_change, smallest_cover, top_k_share};
pub use ecdf::Ecdf;
pub use histogram::Histogram;
pub use stats::Summary;
pub use table::TextTable;
