//! Time-series utilities for the crawler's consensus series.
//!
//! The spatio-temporal planner (§V-C) looks for *sustained* weak spots
//! rather than single-sample noise: "the width of nodes that are behind
//! show the attack time window while the height represents the number of
//! vulnerable nodes". These helpers smooth a series and locate its
//! widest/deepest troughs.

/// Simple moving average with a centred window of `2k + 1` samples
/// (shrinking at the edges).
///
/// # Examples
///
/// ```
/// use bp_analysis::timeseries::moving_average;
///
/// let smoothed = moving_average(&[0.0, 10.0, 0.0], 1);
/// assert_eq!(smoothed[1], 10.0 / 3.0);
/// ```
///
/// # Panics
///
/// Panics if any value is not finite.
pub fn moving_average(values: &[f64], k: usize) -> Vec<f64> {
    assert!(
        values.iter().all(|v| v.is_finite()),
        "moving average requires finite values"
    );
    (0..values.len())
        .map(|i| {
            let lo = i.saturating_sub(k);
            let hi = (i + k + 1).min(values.len());
            values[lo..hi].iter().sum::<f64>() / (hi - lo) as f64
        })
        .collect()
}

/// A contiguous stretch where the (smoothed) series stays below a
/// threshold — an attack window in the §V-C sense.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Trough {
    /// First sample index of the stretch.
    pub start: usize,
    /// Number of samples in the stretch (the window *width*).
    pub len: usize,
    /// Minimum value inside the stretch (the window *depth*).
    pub min_value: f64,
    /// Sample index of the minimum.
    pub min_at: usize,
}

impl Trough {
    /// A width × depth score: wider and deeper troughs are better attack
    /// windows. Depth is measured from the threshold.
    pub fn score(&self, threshold: f64) -> f64 {
        self.len as f64 * (threshold - self.min_value).max(0.0)
    }
}

/// Finds all maximal below-`threshold` stretches of `values`.
///
/// # Panics
///
/// Panics if any value is not finite.
pub fn troughs(values: &[f64], threshold: f64) -> Vec<Trough> {
    assert!(
        values.iter().all(|v| v.is_finite()),
        "trough detection requires finite values"
    );
    let mut out = Vec::new();
    let mut open: Option<Trough> = None;
    for (i, &v) in values.iter().enumerate() {
        if v < threshold {
            match open.as_mut() {
                None => {
                    open = Some(Trough {
                        start: i,
                        len: 1,
                        min_value: v,
                        min_at: i,
                    });
                }
                Some(t) => {
                    t.len += 1;
                    if v < t.min_value {
                        t.min_value = v;
                        t.min_at = i;
                    }
                }
            }
        } else if let Some(t) = open.take() {
            out.push(t);
        }
    }
    if let Some(t) = open {
        out.push(t);
    }
    out
}

/// The best attack window: the trough with the highest width × depth
/// score below `threshold`, after smoothing with window `2k + 1`.
///
/// Returns `None` when the series never dips below the threshold.
pub fn best_window(values: &[f64], threshold: f64, k: usize) -> Option<Trough> {
    let smoothed = moving_average(values, k);
    troughs(&smoothed, threshold).into_iter().max_by(|a, b| {
        a.score(threshold)
            .partial_cmp(&b.score(threshold))
            .expect("finite scores")
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn moving_average_flat_is_identity() {
        let v = vec![2.0; 10];
        assert_eq!(moving_average(&v, 3), v);
    }

    #[test]
    fn moving_average_window_shrinks_at_edges() {
        let v = [0.0, 10.0, 0.0, 10.0];
        let s = moving_average(&v, 1);
        assert_eq!(s[0], 5.0); // (0+10)/2
        assert_eq!(s[3], 5.0); // (0+10)/2
    }

    #[test]
    fn troughs_found_with_bounds() {
        let v = [5.0, 1.0, 2.0, 5.0, 0.5, 5.0];
        let t = troughs(&v, 3.0);
        assert_eq!(t.len(), 2);
        assert_eq!(t[0].start, 1);
        assert_eq!(t[0].len, 2);
        assert_eq!(t[0].min_value, 1.0);
        assert_eq!(t[1].start, 4);
        assert_eq!(t[1].min_at, 4);
    }

    #[test]
    fn trough_open_at_series_end_is_closed() {
        let v = [5.0, 1.0, 1.0];
        let t = troughs(&v, 3.0);
        assert_eq!(t.len(), 1);
        assert_eq!(t[0].len, 2);
    }

    #[test]
    fn best_window_prefers_wide_deep_troughs() {
        // One narrow deep dip, one wide moderately deep dip.
        let mut v = vec![10.0; 30];
        v[5] = 0.0; // narrow
        for x in v.iter_mut().take(25).skip(15) {
            *x = 4.0; // wide
        }
        let best = best_window(&v, 8.0, 0).unwrap();
        assert_eq!(best.start, 15);
        assert_eq!(best.len, 10);
    }

    #[test]
    fn no_window_above_threshold() {
        assert!(best_window(&[5.0, 6.0], 3.0, 1).is_none());
    }

    #[test]
    fn smoothing_suppresses_single_sample_noise() {
        let mut v = vec![10.0; 20];
        v[10] = 0.0; // one-sample glitch
                     // With smoothing the glitch's dip is shallower than the raw dip.
        let best_raw = best_window(&v, 9.0, 0).unwrap();
        let best_smooth = best_window(&v, 9.0, 2).unwrap();
        assert!(best_smooth.min_value > best_raw.min_value);
    }
}
