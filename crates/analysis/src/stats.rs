//! Summary statistics.
//!
//! The paper reports node characteristics as mean/standard-deviation pairs
//! (Table I) and works extensively with quantiles of skewed distributions
//! (link speeds have σ ≈ 10× μ). [`Summary`] is an owned, sorted sample that
//! answers all of those queries exactly.

use std::fmt;

/// An owned sample of `f64` observations with exact summary queries.
///
/// The sample is sorted at construction so that quantile queries are `O(1)`.
/// Non-finite observations are rejected at construction — statistics over
/// `NaN`/`±∞` are never meaningful for the measurement data this workspace
/// handles.
///
/// # Empty samples
///
/// Every query has a defined behavior on an empty sample, stated in its
/// docs: the moment queries ([`mean`](Self::mean), [`std_dev`](Self::std_dev),
/// [`sample_std_dev`](Self::sample_std_dev), [`sum`](Self::sum)) return
/// `0.0`, while the order statistics ([`min`](Self::min), [`max`](Self::max),
/// [`quantile`](Self::quantile), [`median`](Self::median)) panic because no
/// neutral element exists for them. Artifact renderers that may see empty
/// strata (e.g. the Tor family in a heavily down-scaled snapshot) should use
/// the `try_*` variants, which return `None` instead of panicking.
///
/// # Examples
///
/// ```
/// use bp_analysis::stats::Summary;
///
/// let s = Summary::from_iter([4.0, 1.0, 3.0, 2.0]);
/// assert_eq!(s.min(), 1.0);
/// assert_eq!(s.max(), 4.0);
/// assert_eq!(s.median(), 2.5);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Summary {
    sorted: Vec<f64>,
    mean: f64,
    /// Sum of squared deviations from the mean (for population/sample std).
    m2: f64,
}

impl Summary {
    /// Builds a summary from any iterator of observations.
    ///
    /// # Panics
    ///
    /// Panics if any observation is `NaN` or infinite.
    #[allow(clippy::should_implement_trait)] // the FromIterator impl delegates here
    pub fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut sorted: Vec<f64> = iter.into_iter().collect();
        assert!(
            sorted.iter().all(|x| x.is_finite()),
            "summary statistics require finite observations"
        );
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite values are comparable"));
        // Welford's online algorithm, numerically stable for the heavy-tailed
        // link-speed samples (σ/μ ≈ 10 in Table I).
        let mut mean = 0.0;
        let mut m2 = 0.0;
        for (i, &x) in sorted.iter().enumerate() {
            let n = (i + 1) as f64;
            let delta = x - mean;
            mean += delta / n;
            m2 += delta * (x - mean);
        }
        Self { sorted, mean, m2 }
    }

    /// Number of observations.
    pub fn count(&self) -> usize {
        self.sorted.len()
    }

    /// Returns `true` if the sample holds no observations.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// Arithmetic mean; `0.0` for an empty sample.
    pub fn mean(&self) -> f64 {
        if self.sorted.is_empty() {
            0.0
        } else {
            self.mean
        }
    }

    /// Population standard deviation (`÷ n`); `0.0` for samples of size < 1.
    pub fn std_dev(&self) -> f64 {
        match self.sorted.len() {
            0 => 0.0,
            n => (self.m2 / n as f64).sqrt(),
        }
    }

    /// Sample standard deviation (`÷ (n − 1)`); `0.0` for samples of size < 2.
    pub fn sample_std_dev(&self) -> f64 {
        match self.sorted.len() {
            0 | 1 => 0.0,
            n => (self.m2 / (n - 1) as f64).sqrt(),
        }
    }

    /// Arithmetic mean, or `None` for an empty sample.
    pub fn try_mean(&self) -> Option<f64> {
        (!self.sorted.is_empty()).then_some(self.mean)
    }

    /// Population standard deviation, or `None` for an empty sample.
    pub fn try_std_dev(&self) -> Option<f64> {
        (!self.sorted.is_empty()).then(|| self.std_dev())
    }

    /// Smallest observation.
    ///
    /// # Panics
    ///
    /// Panics if the sample is empty.
    pub fn min(&self) -> f64 {
        *self.sorted.first().expect("min of empty sample")
    }

    /// Smallest observation, or `None` for an empty sample.
    pub fn try_min(&self) -> Option<f64> {
        self.sorted.first().copied()
    }

    /// Largest observation.
    ///
    /// # Panics
    ///
    /// Panics if the sample is empty.
    pub fn max(&self) -> f64 {
        *self.sorted.last().expect("max of empty sample")
    }

    /// Largest observation, or `None` for an empty sample.
    pub fn try_max(&self) -> Option<f64> {
        self.sorted.last().copied()
    }

    /// Sum of all observations.
    pub fn sum(&self) -> f64 {
        self.sorted.iter().sum()
    }

    /// The `q`-quantile (`0.0 ≤ q ≤ 1.0`) with linear interpolation between
    /// order statistics (the same convention as numpy's default).
    ///
    /// # Panics
    ///
    /// Panics if the sample is empty or `q` is outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "quantile must lie in [0, 1]");
        assert!(!self.sorted.is_empty(), "quantile of empty sample");
        let n = self.sorted.len();
        if n == 1 {
            return self.sorted[0];
        }
        let pos = q * (n - 1) as f64;
        let lo = pos.floor() as usize;
        let hi = pos.ceil() as usize;
        let frac = pos - lo as f64;
        self.sorted[lo] * (1.0 - frac) + self.sorted[hi] * frac
    }

    /// The `q`-quantile, or `None` for an empty sample.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]` — an out-of-range quantile is a
    /// caller bug regardless of sample size.
    pub fn try_quantile(&self, q: f64) -> Option<f64> {
        assert!((0.0..=1.0).contains(&q), "quantile must lie in [0, 1]");
        (!self.sorted.is_empty()).then(|| self.quantile(q))
    }

    /// Median (the 0.5-quantile).
    ///
    /// # Panics
    ///
    /// Panics if the sample is empty.
    pub fn median(&self) -> f64 {
        self.quantile(0.5)
    }

    /// Median, or `None` for an empty sample.
    pub fn try_median(&self) -> Option<f64> {
        self.try_quantile(0.5)
    }

    /// Read-only view of the sorted observations.
    pub fn as_sorted_slice(&self) -> &[f64] {
        &self.sorted
    }
}

impl FromIterator<f64> for Summary {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        Summary::from_iter(iter)
    }
}

impl fmt::Display for Summary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} mean={:.4} std={:.4}",
            self.count(),
            self.mean(),
            self.std_dev()
        )
    }
}

/// A streaming mean/variance accumulator for cases where the full sample does
/// not need to be retained (e.g. per-step simulator telemetry).
///
/// # Examples
///
/// ```
/// use bp_analysis::stats::Accumulator;
///
/// let mut acc = Accumulator::new();
/// for x in [2.0, 4.0, 6.0] {
///     acc.add(x);
/// }
/// assert_eq!(acc.mean(), 4.0);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Accumulator {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Accumulator {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    ///
    /// # Panics
    ///
    /// Panics if `x` is not finite.
    pub fn add(&mut self, x: f64) {
        assert!(x.is_finite(), "accumulator requires finite observations");
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations added so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Running mean; `0.0` before any observation.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Running population standard deviation; `0.0` before any observation.
    pub fn std_dev(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            (self.m2 / self.count as f64).sqrt()
        }
    }

    /// Smallest observation so far, or `None` before any observation.
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest observation so far, or `None` before any observation.
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Merges another accumulator into this one (parallel reduction).
    pub fn merge(&mut self, other: &Accumulator) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let total = self.count + other.count;
        let delta = other.mean - self.mean;
        self.mean += delta * other.count as f64 / total as f64;
        self.m2 +=
            other.m2 + delta * delta * (self.count as f64 * other.count as f64) / total as f64;
        self.count = total;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_basic_moments() {
        let s = Summary::from_iter([2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.std_dev() - 2.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn summary_empty_is_safe_for_mean_and_std() {
        let s = Summary::from_iter(std::iter::empty());
        assert!(s.is_empty());
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.std_dev(), 0.0);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn summary_rejects_nan() {
        let _ = Summary::from_iter([1.0, f64::NAN]);
    }

    #[test]
    fn quantile_interpolates() {
        let s = Summary::from_iter([10.0, 20.0, 30.0, 40.0]);
        assert_eq!(s.quantile(0.0), 10.0);
        assert_eq!(s.quantile(1.0), 40.0);
        assert!((s.quantile(0.5) - 25.0).abs() < 1e-12);
        assert!((s.quantile(0.25) - 17.5).abs() < 1e-12);
    }

    #[test]
    fn quantile_single_element() {
        let s = Summary::from_iter([42.0]);
        assert_eq!(s.quantile(0.3), 42.0);
        assert_eq!(s.median(), 42.0);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn quantile_empty_panics() {
        let s = Summary::from_iter(std::iter::empty());
        let _ = s.quantile(0.5);
    }

    #[test]
    fn try_variants_are_none_on_empty() {
        let s = Summary::from_iter(std::iter::empty());
        assert_eq!(s.try_mean(), None);
        assert_eq!(s.try_std_dev(), None);
        assert_eq!(s.try_min(), None);
        assert_eq!(s.try_max(), None);
        assert_eq!(s.try_quantile(0.9), None);
        assert_eq!(s.try_median(), None);
    }

    #[test]
    fn try_variants_match_panicking_queries() {
        let s = Summary::from_iter([10.0, 20.0, 30.0, 40.0]);
        assert_eq!(s.try_mean(), Some(s.mean()));
        assert_eq!(s.try_std_dev(), Some(s.std_dev()));
        assert_eq!(s.try_min(), Some(s.min()));
        assert_eq!(s.try_max(), Some(s.max()));
        assert_eq!(s.try_quantile(0.25), Some(s.quantile(0.25)));
        assert_eq!(s.try_median(), Some(s.median()));
    }

    #[test]
    #[should_panic(expected = "quantile must lie")]
    fn try_quantile_still_rejects_bad_q() {
        let s = Summary::from_iter([1.0]);
        let _ = s.try_quantile(1.5);
    }

    #[test]
    fn sample_std_dev_uses_bessel_correction() {
        let s = Summary::from_iter([1.0, 2.0, 3.0]);
        // population: sqrt(2/3); sample: sqrt(1.0)
        assert!((s.std_dev() - (2.0f64 / 3.0).sqrt()).abs() < 1e-12);
        assert!((s.sample_std_dev() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn accumulator_matches_summary() {
        let data = [3.5, -1.0, 7.25, 0.0, 12.0, 5.5];
        let mut acc = Accumulator::new();
        for &x in &data {
            acc.add(x);
        }
        let s = Summary::from_iter(data);
        assert!((acc.mean() - s.mean()).abs() < 1e-12);
        assert!((acc.std_dev() - s.std_dev()).abs() < 1e-12);
        assert_eq!(acc.min(), Some(-1.0));
        assert_eq!(acc.max(), Some(12.0));
    }

    #[test]
    fn accumulator_merge_equals_sequential() {
        let left = [1.0, 2.0, 3.0];
        let right = [10.0, 20.0];
        let mut a = Accumulator::new();
        let mut b = Accumulator::new();
        left.iter().for_each(|&x| a.add(x));
        right.iter().for_each(|&x| b.add(x));
        a.merge(&b);

        let mut whole = Accumulator::new();
        left.iter().chain(right.iter()).for_each(|&x| whole.add(x));
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-12);
        assert!((a.std_dev() - whole.std_dev()).abs() < 1e-12);
    }

    #[test]
    fn accumulator_merge_with_empty_is_identity() {
        let mut a = Accumulator::new();
        a.add(5.0);
        let before = a;
        a.merge(&Accumulator::new());
        assert_eq!(a, before);

        let mut empty = Accumulator::new();
        empty.merge(&before);
        assert_eq!(empty, before);
    }

    #[test]
    fn display_is_nonempty() {
        let s = Summary::from_iter([1.0]);
        assert!(!format!("{s}").is_empty());
    }
}
