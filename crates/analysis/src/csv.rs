//! A minimal CSV writer/reader.
//!
//! The benchmark harness exports every figure's data series as CSV so the
//! plots can be regenerated with external tooling. The format implemented
//! here is the RFC-4180 subset the workspace needs: comma separation,
//! double-quote escaping, `\n` record ends.

use std::fmt;

/// Error returned by [`parse`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseCsvError {
    line: usize,
    message: String,
}

impl ParseCsvError {
    /// 1-based line on which the error occurred.
    pub fn line(&self) -> usize {
        self.line
    }
}

impl fmt::Display for ParseCsvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "csv parse error on line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseCsvError {}

/// Escapes a single field per RFC 4180 (quotes only when needed).
fn escape(field: &str) -> String {
    if field.contains([',', '"', '\n', '\r']) {
        let mut out = String::with_capacity(field.len() + 2);
        out.push('"');
        for c in field.chars() {
            if c == '"' {
                out.push('"');
            }
            out.push(c);
        }
        out.push('"');
        out
    } else {
        field.to_string()
    }
}

/// Serialises rows of string fields to CSV text.
///
/// # Examples
///
/// ```
/// let text = bp_analysis::csv::write(&[
///     vec!["x".to_string(), "y".to_string()],
///     vec!["1".to_string(), "a,b".to_string()],
/// ]);
/// assert_eq!(text, "x,y\n1,\"a,b\"\n");
/// ```
pub fn write(rows: &[Vec<String>]) -> String {
    let mut out = String::new();
    for row in rows {
        let line: Vec<String> = row.iter().map(|f| escape(f)).collect();
        out.push_str(&line.join(","));
        out.push('\n');
    }
    out
}

/// Convenience: serialises `(x, y)` pairs under the given header names.
pub fn write_xy(x_name: &str, y_name: &str, points: &[(f64, f64)]) -> String {
    let mut rows = Vec::with_capacity(points.len() + 1);
    rows.push(vec![x_name.to_string(), y_name.to_string()]);
    for &(x, y) in points {
        rows.push(vec![format!("{x}"), format!("{y}")]);
    }
    write(&rows)
}

/// Parses CSV text into rows of fields.
///
/// # Errors
///
/// Returns [`ParseCsvError`] on an unterminated quoted field or a stray
/// quote inside an unquoted field.
pub fn parse(text: &str) -> Result<Vec<Vec<String>>, ParseCsvError> {
    let mut rows = Vec::new();
    let mut row: Vec<String> = Vec::new();
    let mut field = String::new();
    let mut in_quotes = false;
    let mut line = 1usize;
    let mut chars = text.chars().peekable();
    let mut any = false;

    while let Some(c) = chars.next() {
        any = true;
        if in_quotes {
            match c {
                '"' => {
                    if chars.peek() == Some(&'"') {
                        chars.next();
                        field.push('"');
                    } else {
                        in_quotes = false;
                    }
                }
                '\n' => {
                    line += 1;
                    field.push(c);
                }
                _ => field.push(c),
            }
        } else {
            match c {
                '"' => {
                    if field.is_empty() {
                        in_quotes = true;
                    } else {
                        return Err(ParseCsvError {
                            line,
                            message: "stray quote inside unquoted field".into(),
                        });
                    }
                }
                ',' => {
                    row.push(std::mem::take(&mut field));
                }
                '\r' => {}
                '\n' => {
                    row.push(std::mem::take(&mut field));
                    rows.push(std::mem::take(&mut row));
                    line += 1;
                }
                _ => field.push(c),
            }
        }
    }
    if in_quotes {
        return Err(ParseCsvError {
            line,
            message: "unterminated quoted field".into(),
        });
    }
    if any && (!field.is_empty() || !row.is_empty()) {
        row.push(field);
        rows.push(row);
    }
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_simple() {
        let rows = vec![
            vec!["a".to_string(), "b".to_string()],
            vec!["1".to_string(), "2".to_string()],
        ];
        let text = write(&rows);
        assert_eq!(parse(&text).unwrap(), rows);
    }

    #[test]
    fn round_trip_escapes() {
        let rows = vec![vec![
            "needs,comma".to_string(),
            "has\"quote".to_string(),
            "multi\nline".to_string(),
        ]];
        let text = write(&rows);
        assert_eq!(parse(&text).unwrap(), rows);
    }

    #[test]
    fn parse_without_trailing_newline() {
        let rows = parse("a,b\nc,d").unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[1], vec!["c", "d"]);
    }

    #[test]
    fn parse_crlf() {
        let rows = parse("a,b\r\nc,d\r\n").unwrap();
        assert_eq!(rows, vec![vec!["a", "b"], vec!["c", "d"]]);
    }

    #[test]
    fn parse_empty_text() {
        assert!(parse("").unwrap().is_empty());
    }

    #[test]
    fn unterminated_quote_errors() {
        let err = parse("\"oops").unwrap_err();
        assert!(err.to_string().contains("unterminated"));
    }

    #[test]
    fn stray_quote_errors_with_line() {
        let err = parse("ok\nbad\"field").unwrap_err();
        assert_eq!(err.line(), 2);
    }

    #[test]
    fn write_xy_has_header() {
        let text = write_xy("t", "nodes", &[(0.0, 10.0), (1.0, 12.0)]);
        assert!(text.starts_with("t,nodes\n"));
        assert_eq!(text.lines().count(), 3);
    }
}
