//! Seedable sampling distributions.
//!
//! The simulations in the paper lean on a small set of distributions:
//!
//! * **Exponential** — Bitcoin switched to *diffusion spreading* in 2015, in
//!   which information propagates with independent exponential delays
//!   (paper §V-B, Eq. 1); block inter-arrival times are exponential with a
//!   600 s mean.
//! * **Log-normal** — per-node link speeds are extremely heavy-tailed
//!   (Table I: μ = 25 Mbps, σ = 259 Mbps), which a log-normal reproduces.
//! * **Pareto / Zipf** — AS sizes follow a power law (8 of 84,903 ASes host
//!   30 % of nodes, Figure 3); prefix sizes inside an AS do too (Figure 4).
//! * **Discrete weighted** — choosing a miner proportionally to hash rate,
//!   or a hosting AS proportionally to its share.
//!
//! All samplers are plain structs over `rand::Rng` so every simulation in the
//! workspace is reproducible from a single `u64` seed.

use rand::Rng;

/// Exponential distribution with rate `lambda` (mean `1 / lambda`).
///
/// # Examples
///
/// ```
/// use bp_analysis::dist::Exponential;
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mut rng = StdRng::seed_from_u64(7);
/// let exp = Exponential::new(1.0 / 600.0); // mean 600 s block interval
/// let dt = exp.sample(&mut rng);
/// assert!(dt > 0.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Exponential {
    lambda: f64,
}

impl Exponential {
    /// Creates an exponential sampler with rate `lambda`.
    ///
    /// # Panics
    ///
    /// Panics unless `lambda` is finite and strictly positive.
    pub fn new(lambda: f64) -> Self {
        assert!(
            lambda.is_finite() && lambda > 0.0,
            "exponential rate must be finite and positive"
        );
        Self { lambda }
    }

    /// Creates a sampler with the given mean (`1 / lambda`).
    ///
    /// # Panics
    ///
    /// Panics unless `mean` is finite and strictly positive.
    pub fn with_mean(mean: f64) -> Self {
        assert!(
            mean.is_finite() && mean > 0.0,
            "exponential mean must be finite and positive"
        );
        Self::new(1.0 / mean)
    }

    /// The rate parameter λ.
    pub fn lambda(&self) -> f64 {
        self.lambda
    }

    /// Draws one sample via inverse-transform sampling.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        // `random::<f64>()` is in [0, 1); use 1−u to avoid ln(0).
        let u: f64 = rng.random();
        -(1.0 - u).ln() / self.lambda
    }

    /// The CDF `F(t) = 1 − e^{−λt}` (paper Eq. 1), clamped at 0 for `t < 0`.
    pub fn cdf(&self, t: f64) -> f64 {
        if t <= 0.0 {
            0.0
        } else {
            1.0 - (-self.lambda * t).exp()
        }
    }
}

/// Log-normal distribution parameterised by the *target* mean and standard
/// deviation of the resulting (not the underlying normal) distribution.
///
/// Table I reports link speeds with σ ≈ 10 μ; a log-normal matched by
/// moments reproduces that shape.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogNormal {
    mu: f64,
    sigma: f64,
}

impl LogNormal {
    /// Creates a log-normal from the underlying normal parameters.
    ///
    /// # Panics
    ///
    /// Panics unless both parameters are finite and `sigma` is non-negative.
    pub fn new(mu: f64, sigma: f64) -> Self {
        assert!(
            mu.is_finite() && sigma.is_finite() && sigma >= 0.0,
            "log-normal parameters must be finite with sigma >= 0"
        );
        Self { mu, sigma }
    }

    /// Creates a log-normal whose *resulting* distribution has the given
    /// mean and standard deviation (moment matching).
    ///
    /// # Panics
    ///
    /// Panics unless `mean > 0` and `std_dev >= 0` and both are finite.
    pub fn from_mean_std(mean: f64, std_dev: f64) -> Self {
        assert!(
            mean.is_finite() && mean > 0.0 && std_dev.is_finite() && std_dev >= 0.0,
            "log-normal target mean must be positive, std non-negative"
        );
        let cv2 = (std_dev / mean).powi(2);
        let sigma2 = (1.0 + cv2).ln();
        let mu = mean.ln() - sigma2 / 2.0;
        Self::new(mu, sigma2.sqrt())
    }

    /// Draws one sample using the Box–Muller transform.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let z = standard_normal(rng);
        (self.mu + self.sigma * z).exp()
    }
}

/// Draws a standard-normal variate via the Box–Muller transform.
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = rng.random();
    let u2: f64 = rng.random();
    // Guard u1 away from zero so ln is finite.
    let u1 = u1.max(f64::MIN_POSITIVE);
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Bounded Pareto (power-law) distribution on `[min, max]` with shape `alpha`.
///
/// Used for AS sizes and per-AS prefix sizes: a small `alpha` (≈ 0.6–1.1)
/// yields the "few giants, long tail" concentration the paper measures.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BoundedPareto {
    min: f64,
    max: f64,
    alpha: f64,
}

impl BoundedPareto {
    /// Creates a bounded Pareto sampler.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < min < max` and `alpha > 0`, all finite.
    pub fn new(min: f64, max: f64, alpha: f64) -> Self {
        assert!(
            min.is_finite() && max.is_finite() && alpha.is_finite(),
            "bounded Pareto parameters must be finite"
        );
        assert!(min > 0.0 && max > min, "require 0 < min < max");
        assert!(alpha > 0.0, "require alpha > 0");
        Self { min, max, alpha }
    }

    /// Draws one sample by inverse-transform of the truncated CDF.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let u: f64 = rng.random();
        let la = self.min.powf(-self.alpha);
        let ha = self.max.powf(-self.alpha);
        (la - u * (la - ha)).powf(-1.0 / self.alpha)
    }
}

/// Zipf-ranked weights: weight of rank `k` (1-based) proportional to
/// `1 / k^s`, normalised to sum to `total`.
///
/// This produces the deterministic "rank-size" profile used to extend the
/// paper's top-10 AS table into a full 1,660-AS tail.
///
/// # Panics
///
/// Panics unless `n > 0`, `s` is finite and non-negative, and `total` is
/// finite and positive.
pub fn zipf_weights(n: usize, s: f64, total: f64) -> Vec<f64> {
    assert!(n > 0, "zipf_weights requires n > 0");
    assert!(s.is_finite() && s >= 0.0, "zipf exponent must be >= 0");
    assert!(
        total.is_finite() && total > 0.0,
        "zipf total must be positive"
    );
    let raw: Vec<f64> = (1..=n).map(|k| (k as f64).powf(-s)).collect();
    let sum: f64 = raw.iter().sum();
    raw.into_iter().map(|w| w * total / sum).collect()
}

/// A discrete distribution over indices `0..n`, sampled proportionally to
/// caller-supplied non-negative weights.
///
/// Implemented with a cumulative table and binary search — `O(log n)` per
/// sample, plenty for this workspace's sizes (≤ tens of thousands).
#[derive(Debug, Clone, PartialEq)]
pub struct WeightedIndex {
    cumulative: Vec<f64>,
}

impl WeightedIndex {
    /// Builds the sampler from weights.
    ///
    /// # Panics
    ///
    /// Panics if `weights` is empty, contains a negative or non-finite
    /// value, or sums to zero.
    pub fn new(weights: &[f64]) -> Self {
        assert!(!weights.is_empty(), "weighted index requires weights");
        assert!(
            weights.iter().all(|w| w.is_finite() && *w >= 0.0),
            "weights must be finite and non-negative"
        );
        let mut cumulative = Vec::with_capacity(weights.len());
        let mut acc = 0.0;
        for &w in weights {
            acc += w;
            cumulative.push(acc);
        }
        assert!(acc > 0.0, "weights must not all be zero");
        Self { cumulative }
    }

    /// Number of categories.
    pub fn len(&self) -> usize {
        self.cumulative.len()
    }

    /// Returns `true` if there are no categories (never constructible; kept
    /// for API completeness).
    pub fn is_empty(&self) -> bool {
        self.cumulative.is_empty()
    }

    /// Draws one index.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let total = *self.cumulative.last().expect("non-empty by construction");
        let x: f64 = rng.random::<f64>() * total;
        self.cumulative
            .partition_point(|&c| c <= x)
            .min(self.cumulative.len() - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0xB17C01)
    }

    #[test]
    fn exponential_mean_converges() {
        let mut rng = rng();
        let exp = Exponential::with_mean(600.0);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| exp.sample(&mut rng)).sum::<f64>() / n as f64;
        assert!((mean - 600.0).abs() < 15.0, "mean {mean} too far from 600");
    }

    #[test]
    fn exponential_cdf_matches_formula() {
        let exp = Exponential::new(0.5);
        assert_eq!(exp.cdf(-1.0), 0.0);
        assert!((exp.cdf(2.0) - (1.0 - (-1.0f64).exp())).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn exponential_rejects_zero_rate() {
        let _ = Exponential::new(0.0);
    }

    #[test]
    fn lognormal_moment_matching() {
        let mut rng = rng();
        let ln = LogNormal::from_mean_std(25.0, 100.0);
        let n = 100_000;
        let samples: Vec<f64> = (0..n).map(|_| ln.sample(&mut rng)).collect();
        let mean: f64 = samples.iter().sum::<f64>() / n as f64;
        // Heavy tail → generous tolerance, but mean must be in the ballpark.
        assert!((mean - 25.0).abs() < 4.0, "mean {mean} too far from 25");
        assert!(samples.iter().all(|&x| x > 0.0));
    }

    #[test]
    fn bounded_pareto_stays_in_bounds() {
        let mut rng = rng();
        let p = BoundedPareto::new(1.0, 1000.0, 0.8);
        for _ in 0..5_000 {
            let x = p.sample(&mut rng);
            assert!((1.0..=1000.0).contains(&x), "sample {x} out of bounds");
        }
    }

    #[test]
    fn bounded_pareto_is_heavy_tailed() {
        let mut rng = rng();
        let p = BoundedPareto::new(1.0, 10_000.0, 0.7);
        let n = 50_000;
        let samples: Vec<f64> = (0..n).map(|_| p.sample(&mut rng)).collect();
        let below_ten = samples.iter().filter(|&&x| x < 10.0).count() as f64 / n as f64;
        // Most mass near the minimum, but a real tail exists.
        assert!(below_ten > 0.6, "Pareto body too light: {below_ten}");
        assert!(samples.iter().any(|&x| x > 1_000.0), "no tail samples");
    }

    #[test]
    fn zipf_weights_sum_and_order() {
        let w = zipf_weights(100, 1.0, 13_635.0);
        let sum: f64 = w.iter().sum();
        assert!((sum - 13_635.0).abs() < 1e-6);
        for pair in w.windows(2) {
            assert!(pair[0] >= pair[1]);
        }
    }

    #[test]
    fn weighted_index_respects_weights() {
        let mut rng = rng();
        let wi = WeightedIndex::new(&[0.0, 3.0, 1.0]);
        let mut counts = [0usize; 3];
        for _ in 0..40_000 {
            counts[wi.sample(&mut rng)] += 1;
        }
        assert_eq!(counts[0], 0, "zero-weight category was sampled");
        let ratio = counts[1] as f64 / counts[2] as f64;
        assert!((ratio - 3.0).abs() < 0.3, "ratio {ratio} too far from 3");
    }

    #[test]
    #[should_panic(expected = "not all be zero")]
    fn weighted_index_rejects_all_zero() {
        let _ = WeightedIndex::new(&[0.0, 0.0]);
    }

    #[test]
    fn samplers_are_deterministic_under_seed() {
        let exp = Exponential::new(1.0);
        let a: Vec<f64> = {
            let mut r = StdRng::seed_from_u64(99);
            (0..10).map(|_| exp.sample(&mut r)).collect()
        };
        let b: Vec<f64> = {
            let mut r = StdRng::seed_from_u64(99);
            (0..10).map(|_| exp.sample(&mut r)).collect()
        };
        assert_eq!(a, b);
    }
}
