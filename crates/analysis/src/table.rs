//! Fixed-width text tables.
//!
//! Every table in the paper (Tables I–VIII) is rendered by the `repro`
//! harness through [`TextTable`]: a small column-aligned renderer with no
//! external dependencies.

use std::fmt;

/// Column alignment for [`TextTable`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Align {
    /// Left-aligned (default, for labels).
    #[default]
    Left,
    /// Right-aligned (for numbers).
    Right,
}

/// A fixed-width text table built row by row.
///
/// # Examples
///
/// ```
/// use bp_analysis::table::{Align, TextTable};
///
/// let mut t = TextTable::new(vec!["AS".into(), "Nodes".into()]);
/// t.align(1, Align::Right);
/// t.row(vec!["AS24940".into(), "1030".into()]);
/// let s = t.render();
/// assert!(s.contains("AS24940"));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct TextTable {
    headers: Vec<String>,
    aligns: Vec<Align>,
    rows: Vec<Vec<String>>,
    title: Option<String>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    ///
    /// # Panics
    ///
    /// Panics if `headers` is empty.
    pub fn new(headers: Vec<String>) -> Self {
        assert!(!headers.is_empty(), "a table needs at least one column");
        let aligns = vec![Align::Left; headers.len()];
        Self {
            headers,
            aligns,
            rows: Vec::new(),
            title: None,
        }
    }

    /// Sets an optional title printed above the table.
    pub fn title(&mut self, title: impl Into<String>) -> &mut Self {
        self.title = Some(title.into());
        self
    }

    /// Sets the alignment of column `col`.
    ///
    /// # Panics
    ///
    /// Panics if `col` is out of range.
    pub fn align(&mut self, col: usize, align: Align) -> &mut Self {
        assert!(col < self.aligns.len(), "column {col} out of range");
        self.aligns[col] = align;
        self
    }

    /// Appends one row.
    ///
    /// # Panics
    ///
    /// Panics if the row's width differs from the header width.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width must match header width"
        );
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Returns `true` if no data rows have been added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table to a `String` with a header separator line.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }

        let mut out = String::new();
        if let Some(title) = &self.title {
            out.push_str(title);
            out.push('\n');
        }
        let fmt_row = |cells: &[String], widths: &[usize], aligns: &[Align]| -> String {
            let mut line = String::new();
            for i in 0..cols {
                if i > 0 {
                    line.push_str("  ");
                }
                let cell = &cells[i];
                let pad = widths[i].saturating_sub(cell.chars().count());
                match aligns[i] {
                    Align::Left => {
                        line.push_str(cell);
                        line.extend(std::iter::repeat_n(' ', pad));
                    }
                    Align::Right => {
                        line.extend(std::iter::repeat_n(' ', pad));
                        line.push_str(cell);
                    }
                }
            }
            // Trailing spaces on left-aligned last columns are noise.
            line.trim_end().to_string()
        };

        out.push_str(&fmt_row(&self.headers, &widths, &self.aligns));
        out.push('\n');
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        out.extend(std::iter::repeat_n('-', total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths, &self.aligns));
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for TextTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

/// Formats a fraction as a percentage with two decimals, e.g. `7.54%`.
pub fn pct(fraction: f64) -> String {
    format!("{:.2}%", fraction * 100.0)
}

/// Formats a float with `digits` decimals.
pub fn num(value: f64, digits: usize) -> String {
    format!("{value:.digits$}")
}

/// Formats an integer with thousands separators, e.g. `13,635`.
pub fn thousands(value: u64) -> String {
    let s = value.to_string();
    let mut out = String::with_capacity(s.len() + s.len() / 3);
    let offset = s.len() % 3;
    for (i, c) in s.chars().enumerate() {
        if i > 0 && (i + 3 - offset).is_multiple_of(3) {
            out.push(',');
        }
        out.push(c);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = TextTable::new(vec!["name".into(), "n".into()]);
        t.align(1, Align::Right);
        t.row(vec!["alpha".into(), "5".into()]);
        t.row(vec!["b".into(), "12345".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4); // header, rule, two rows
        assert!(lines[2].starts_with("alpha"));
        assert!(lines[3].ends_with("12345"));
        // Right alignment: "5" appears at the end of its column.
        assert!(lines[2].ends_with("    5"));
    }

    #[test]
    fn title_is_prepended() {
        let mut t = TextTable::new(vec!["x".into()]);
        t.title("Table I");
        t.row(vec!["1".into()]);
        assert!(t.render().starts_with("Table I\n"));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn row_width_mismatch_panics() {
        let mut t = TextTable::new(vec!["a".into(), "b".into()]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    #[should_panic(expected = "at least one column")]
    fn empty_headers_panic() {
        let _ = TextTable::new(vec![]);
    }

    #[test]
    fn helpers_format() {
        assert_eq!(pct(0.0754), "7.54%");
        assert_eq!(num(1.23456, 2), "1.23");
        assert_eq!(thousands(13_635), "13,635");
        assert_eq!(thousands(999), "999");
        assert_eq!(thousands(1_000_000), "1,000,000");
        assert_eq!(thousands(0), "0");
    }

    #[test]
    fn display_matches_render() {
        let mut t = TextTable::new(vec!["h".into()]);
        t.row(vec!["v".into()]);
        assert_eq!(format!("{t}"), t.render());
    }
}
