//! ASCII charts for rendering the paper's figures in a terminal.
//!
//! The `repro` harness regenerates each figure as data (CSV) plus an ASCII
//! rendering: [`LineChart`] covers Figures 3, 4 and 8; [`StackedAreaChart`]
//! covers the consensus stacks of Figure 6; the grid snapshots of Figure 7
//! are rendered by `bp-attacks::grid` using per-cell glyphs.

use std::fmt::Write as _;

/// A named data series of `(x, y)` points.
#[derive(Debug, Clone, PartialEq)]
pub struct Series {
    /// Legend label.
    pub label: String,
    /// Data points; x values need not be uniform.
    pub points: Vec<(f64, f64)>,
}

impl Series {
    /// Creates a series from a label and points.
    pub fn new(label: impl Into<String>, points: Vec<(f64, f64)>) -> Self {
        Self {
            label: label.into(),
            points,
        }
    }
}

/// A multi-series ASCII line chart on a character raster.
#[derive(Debug, Clone)]
pub struct LineChart {
    title: String,
    width: usize,
    height: usize,
    series: Vec<Series>,
}

const GLYPHS: &[char] = &['*', '+', 'o', 'x', '#', '@', '%', '&'];

impl LineChart {
    /// Creates an empty chart with the given raster size.
    ///
    /// # Panics
    ///
    /// Panics unless `width >= 10` and `height >= 4`.
    pub fn new(title: impl Into<String>, width: usize, height: usize) -> Self {
        assert!(width >= 10 && height >= 4, "chart raster too small");
        Self {
            title: title.into(),
            width,
            height,
            series: Vec::new(),
        }
    }

    /// Adds a series to the chart.
    pub fn series(&mut self, series: Series) -> &mut Self {
        self.series.push(series);
        self
    }

    /// Renders the chart.
    ///
    /// Returns a placeholder string if no series has any points.
    pub fn render(&self) -> String {
        let all: Vec<(f64, f64)> = self
            .series
            .iter()
            .flat_map(|s| s.points.iter().copied())
            .filter(|(x, y)| x.is_finite() && y.is_finite())
            .collect();
        if all.is_empty() {
            return format!("{}\n(no data)\n", self.title);
        }
        let (mut xmin, mut xmax) = (f64::INFINITY, f64::NEG_INFINITY);
        let (mut ymin, mut ymax) = (f64::INFINITY, f64::NEG_INFINITY);
        for (x, y) in &all {
            xmin = xmin.min(*x);
            xmax = xmax.max(*x);
            ymin = ymin.min(*y);
            ymax = ymax.max(*y);
        }
        if (xmax - xmin).abs() < f64::EPSILON {
            xmax = xmin + 1.0;
        }
        if (ymax - ymin).abs() < f64::EPSILON {
            ymax = ymin + 1.0;
        }

        let mut raster = vec![vec![' '; self.width]; self.height];
        for (si, s) in self.series.iter().enumerate() {
            let glyph = GLYPHS[si % GLYPHS.len()];
            for &(x, y) in &s.points {
                if !x.is_finite() || !y.is_finite() {
                    continue;
                }
                let cx = ((x - xmin) / (xmax - xmin) * (self.width - 1) as f64).round() as usize;
                let cy = ((y - ymin) / (ymax - ymin) * (self.height - 1) as f64).round() as usize;
                let row = self.height - 1 - cy.min(self.height - 1);
                raster[row][cx.min(self.width - 1)] = glyph;
            }
        }

        let mut out = String::new();
        let _ = writeln!(out, "{}", self.title);
        let _ = writeln!(out, "y: [{ymin:.3}, {ymax:.3}]  x: [{xmin:.3}, {xmax:.3}]");
        for row in &raster {
            out.push('|');
            out.extend(row.iter());
            out.push('\n');
        }
        out.push('+');
        out.extend(std::iter::repeat_n('-', self.width));
        out.push('\n');
        for (si, s) in self.series.iter().enumerate() {
            let _ = writeln!(out, "  {} {}", GLYPHS[si % GLYPHS.len()], s.label);
        }
        out
    }
}

/// A stacked area chart over uniform time steps, rendered as ASCII.
///
/// Used for Figure 6: each band is a lag class ("synced", "1 behind",
/// "2–4 behind", …) and each column is one crawler sample.
#[derive(Debug, Clone)]
pub struct StackedAreaChart {
    title: String,
    height: usize,
    band_labels: Vec<String>,
    /// `columns[t][b]` = value of band `b` at time step `t`.
    columns: Vec<Vec<f64>>,
}

impl StackedAreaChart {
    /// Creates a stacked chart with the given band labels (bottom first).
    ///
    /// # Panics
    ///
    /// Panics unless at least one band label is given and `height >= 4`.
    pub fn new(title: impl Into<String>, band_labels: Vec<String>, height: usize) -> Self {
        assert!(!band_labels.is_empty(), "need at least one band");
        assert!(height >= 4, "chart raster too small");
        Self {
            title: title.into(),
            height,
            band_labels,
            columns: Vec::new(),
        }
    }

    /// Appends one time-step column of per-band values.
    ///
    /// # Panics
    ///
    /// Panics if the column width differs from the number of bands or any
    /// value is negative/non-finite.
    pub fn push_column(&mut self, values: Vec<f64>) -> &mut Self {
        assert_eq!(
            values.len(),
            self.band_labels.len(),
            "column width must match band count"
        );
        assert!(
            values.iter().all(|v| v.is_finite() && *v >= 0.0),
            "band values must be finite and non-negative"
        );
        self.columns.push(values);
        self
    }

    /// Number of time-step columns pushed so far.
    pub fn len(&self) -> usize {
        self.columns.len()
    }

    /// Returns `true` if no columns have been pushed.
    pub fn is_empty(&self) -> bool {
        self.columns.is_empty()
    }

    /// Renders the chart; bands use the glyph palette bottom-up. Series
    /// longer than 120 columns are downsampled by averaging buckets so
    /// the raster stays terminal-sized.
    pub fn render(&self) -> String {
        if self.columns.is_empty() {
            return format!("{}\n(no data)\n", self.title);
        }
        const MAX_WIDTH: usize = 120;
        let columns: Vec<Vec<f64>> = if self.columns.len() <= MAX_WIDTH {
            self.columns.clone()
        } else {
            let bands = self.band_labels.len();
            let n = self.columns.len();
            (0..MAX_WIDTH)
                .map(|b| {
                    let lo = b * n / MAX_WIDTH;
                    let hi = ((b + 1) * n / MAX_WIDTH).max(lo + 1);
                    let mut acc = vec![0.0; bands];
                    for col in &self.columns[lo..hi] {
                        for (a, v) in acc.iter_mut().zip(col) {
                            *a += v;
                        }
                    }
                    let count = (hi - lo) as f64;
                    acc.into_iter().map(|v| v / count).collect()
                })
                .collect()
        };
        let max_total = columns
            .iter()
            .map(|c| c.iter().sum::<f64>())
            .fold(0.0f64, f64::max)
            .max(f64::MIN_POSITIVE);

        let width = columns.len();
        let mut raster = vec![vec![' '; width]; self.height];
        for (t, col) in columns.iter().enumerate() {
            let mut acc = 0.0;
            for (b, &v) in col.iter().enumerate() {
                let lo = (acc / max_total * self.height as f64).round() as usize;
                acc += v;
                let hi = (acc / max_total * self.height as f64).round() as usize;
                let glyph = GLYPHS[b % GLYPHS.len()];
                for level in lo..hi.min(self.height) {
                    let row = self.height - 1 - level;
                    raster[row][t] = glyph;
                }
            }
        }

        let mut out = String::new();
        let _ = writeln!(out, "{}", self.title);
        let _ = writeln!(out, "max column total: {max_total:.1}");
        for row in &raster {
            out.push('|');
            out.extend(row.iter());
            out.push('\n');
        }
        out.push('+');
        out.extend(std::iter::repeat_n('-', width));
        out.push('\n');
        for (b, label) in self.band_labels.iter().enumerate() {
            let _ = writeln!(out, "  {} {}", GLYPHS[b % GLYPHS.len()], label);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_chart_renders_all_series() {
        let mut c = LineChart::new("Fig 3", 40, 10);
        c.series(Series::new("orgs", vec![(0.0, 0.0), (10.0, 1.0)]));
        c.series(Series::new("ases", vec![(0.0, 0.0), (20.0, 1.0)]));
        let s = c.render();
        assert!(s.contains("Fig 3"));
        assert!(s.contains("orgs"));
        assert!(s.contains("ases"));
        assert!(s.contains('*') && s.contains('+'));
    }

    #[test]
    fn line_chart_empty_is_placeholder() {
        let c = LineChart::new("empty", 20, 5);
        assert!(c.render().contains("(no data)"));
    }

    #[test]
    fn line_chart_handles_constant_series() {
        let mut c = LineChart::new("const", 20, 5);
        c.series(Series::new("flat", vec![(1.0, 2.0), (1.0, 2.0)]));
        // Degenerate ranges must not divide by zero.
        let s = c.render();
        assert!(s.contains('*'));
    }

    #[test]
    fn stacked_chart_column_mismatch_panics() {
        let mut c = StackedAreaChart::new("t", vec!["a".into(), "b".into()], 6);
        c.push_column(vec![1.0, 2.0]);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            c.push_column(vec![1.0]);
        }));
        assert!(result.is_err());
    }

    #[test]
    fn stacked_chart_renders_bands() {
        let mut c = StackedAreaChart::new("Fig 6", vec!["synced".into(), "behind".into()], 8);
        for t in 0..20 {
            let synced = 10.0 - (t % 5) as f64;
            let behind = (t % 5) as f64;
            c.push_column(vec![synced, behind]);
        }
        let s = c.render();
        assert!(s.contains("synced"));
        assert!(s.contains("behind"));
        assert_eq!(c.len(), 20);
    }

    #[test]
    fn stacked_chart_empty_is_placeholder() {
        let c = StackedAreaChart::new("none", vec!["x".into()], 5);
        assert!(c.is_empty());
        assert!(c.render().contains("(no data)"));
    }
}
