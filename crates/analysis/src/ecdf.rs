//! Empirical cumulative distribution functions.
//!
//! The paper uses CDFs twice: Figure 3 plots the CDF of full nodes over ASes
//! and organizations (how many hosting entities cover a given fraction of the
//! network), and Figure 4 plots the fraction of an AS's nodes hijacked as a
//! function of the number of BGP prefixes hijacked. Both are *cumulative
//! share* curves over a ranked list of weights; [`Ecdf`] covers the
//! sample-CDF case and [`cumulative_share`] covers the ranked-weight case.

/// An empirical CDF over a sample of `f64` observations.
///
/// # Examples
///
/// ```
/// use bp_analysis::Ecdf;
///
/// let ecdf = Ecdf::from_iter([1.0, 2.0, 2.0, 4.0]);
/// assert_eq!(ecdf.eval(0.0), 0.0);
/// assert_eq!(ecdf.eval(2.0), 0.75);
/// assert_eq!(ecdf.eval(10.0), 1.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Ecdf {
    sorted: Vec<f64>,
}

impl Ecdf {
    /// Builds an ECDF from an iterator of observations.
    ///
    /// # Panics
    ///
    /// Panics if any observation is not finite.
    #[allow(clippy::should_implement_trait)] // the FromIterator impl delegates here
    pub fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut sorted: Vec<f64> = iter.into_iter().collect();
        assert!(
            sorted.iter().all(|x| x.is_finite()),
            "ECDF requires finite observations"
        );
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite values are comparable"));
        Self { sorted }
    }

    /// Number of observations.
    pub fn count(&self) -> usize {
        self.sorted.len()
    }

    /// `F(x)` — the fraction of observations `≤ x`; `0.0` for an empty ECDF.
    pub fn eval(&self, x: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        let n = self.sorted.partition_point(|&v| v <= x);
        n as f64 / self.sorted.len() as f64
    }

    /// The smallest `x` with `F(x) ≥ q` (generalised inverse).
    ///
    /// # Panics
    ///
    /// Panics if the ECDF is empty or `q` is outside `(0, 1]`.
    pub fn inverse(&self, q: f64) -> f64 {
        assert!(q > 0.0 && q <= 1.0, "inverse requires q in (0, 1]");
        assert!(!self.sorted.is_empty(), "inverse of empty ECDF");
        let n = self.sorted.len();
        let idx = ((q * n as f64).ceil() as usize).clamp(1, n) - 1;
        self.sorted[idx]
    }

    /// Step points `(x, F(x))` suitable for plotting.
    pub fn points(&self) -> Vec<(f64, f64)> {
        let n = self.sorted.len();
        self.sorted
            .iter()
            .enumerate()
            .map(|(i, &x)| (x, (i + 1) as f64 / n as f64))
            .collect()
    }
}

impl FromIterator<f64> for Ecdf {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        Ecdf::from_iter(iter)
    }
}

/// Cumulative share of a descending-ranked weight list.
///
/// Given per-entity weights (e.g. nodes hosted per AS), returns the running
/// fraction of the total covered by the top `k` entities, for `k = 1..=n`.
/// This is exactly the curve of the paper's Figure 3 (x = number of
/// ASes/organizations, y = fraction of full nodes) and, applied to per-prefix
/// node counts, of Figure 4.
///
/// Weights are sorted in descending order internally; the caller does not
/// need to pre-sort.
///
/// # Examples
///
/// ```
/// use bp_analysis::ecdf::cumulative_share;
///
/// // Three ASes hosting 50, 30 and 20 nodes.
/// let shares = cumulative_share(&[30.0, 50.0, 20.0]);
/// assert_eq!(shares, vec![0.5, 0.8, 1.0]);
/// ```
///
/// # Panics
///
/// Panics if any weight is negative or non-finite, or if the total is zero.
pub fn cumulative_share(weights: &[f64]) -> Vec<f64> {
    assert!(
        weights.iter().all(|w| w.is_finite() && *w >= 0.0),
        "weights must be finite and non-negative"
    );
    let total: f64 = weights.iter().sum();
    assert!(total > 0.0, "cumulative share of zero total weight");
    let mut sorted = weights.to_vec();
    sorted.sort_by(|a, b| b.partial_cmp(a).expect("finite values are comparable"));
    let mut acc = 0.0;
    sorted
        .iter()
        .map(|w| {
            acc += w;
            acc / total
        })
        .collect()
}

/// The number of top-ranked entities needed to cover at least `fraction` of
/// the total weight (e.g. "8 ASes host 30% of Bitcoin nodes").
///
/// # Panics
///
/// Panics under the same conditions as [`cumulative_share`], or if
/// `fraction` is outside `(0, 1]`.
pub fn entities_to_cover(weights: &[f64], fraction: f64) -> usize {
    assert!(
        fraction > 0.0 && fraction <= 1.0,
        "fraction must lie in (0, 1]"
    );
    let shares = cumulative_share(weights);
    // Guard against floating point: the last share is within epsilon of 1.
    shares
        .iter()
        .position(|&s| s + 1e-12 >= fraction)
        .map(|i| i + 1)
        .unwrap_or(shares.len())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ecdf_eval_steps() {
        let e = Ecdf::from_iter([1.0, 3.0, 3.0, 5.0]);
        assert_eq!(e.eval(0.5), 0.0);
        assert_eq!(e.eval(1.0), 0.25);
        assert_eq!(e.eval(2.9), 0.25);
        assert_eq!(e.eval(3.0), 0.75);
        assert_eq!(e.eval(5.0), 1.0);
    }

    #[test]
    fn ecdf_empty_evals_to_zero() {
        let e = Ecdf::from_iter(std::iter::empty());
        assert_eq!(e.eval(100.0), 0.0);
        assert_eq!(e.count(), 0);
    }

    #[test]
    fn ecdf_inverse_round_trip() {
        let e = Ecdf::from_iter([10.0, 20.0, 30.0, 40.0]);
        assert_eq!(e.inverse(0.25), 10.0);
        assert_eq!(e.inverse(0.26), 20.0);
        assert_eq!(e.inverse(1.0), 40.0);
    }

    #[test]
    fn ecdf_points_are_monotone() {
        let e = Ecdf::from_iter([5.0, 1.0, 9.0, 2.0]);
        let pts = e.points();
        assert_eq!(pts.len(), 4);
        for w in pts.windows(2) {
            assert!(w[0].0 <= w[1].0);
            assert!(w[0].1 < w[1].1);
        }
        assert_eq!(pts.last().unwrap().1, 1.0);
    }

    #[test]
    fn cumulative_share_sorts_descending() {
        let shares = cumulative_share(&[1.0, 4.0, 3.0, 2.0]);
        assert_eq!(shares, vec![0.4, 0.7, 0.9, 1.0]);
    }

    #[test]
    fn entities_to_cover_matches_paper_shape() {
        // A toy network: one dominant AS, a medium AS, a long tail.
        let mut weights = vec![300.0, 200.0];
        weights.extend(std::iter::repeat_n(10.0, 50));
        // 300+200 = 500 of 1000 total → top-2 cover 50 %.
        assert_eq!(entities_to_cover(&weights, 0.5), 2);
        assert_eq!(entities_to_cover(&weights, 0.3), 1);
        assert_eq!(entities_to_cover(&weights, 1.0), 52);
    }

    #[test]
    #[should_panic(expected = "zero total")]
    fn cumulative_share_rejects_zero_total() {
        let _ = cumulative_share(&[0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn cumulative_share_rejects_negative() {
        let _ = cumulative_share(&[1.0, -2.0]);
    }
}
