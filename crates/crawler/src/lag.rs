//! Lag classification — the color bands of Figure 6.
//!
//! The paper classifies each node by how many blocks its best chain lags
//! the network: synced (green), 1 behind (yellow), 2–4 (purple), 5–10
//! (blue) and ≥ 10 (magenta).

use std::fmt;

/// A node's lag class at one observation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum LagClass {
    /// Up to date with the network tip.
    Synced,
    /// Exactly 1 block behind.
    OneBehind,
    /// 2–4 blocks behind.
    TwoToFour,
    /// 5–10 blocks behind.
    FiveToTen,
    /// More than 10 blocks behind.
    TenPlus,
}

impl LagClass {
    /// All classes in band order (bottom of the stack first).
    pub const ALL: [LagClass; 5] = [
        LagClass::Synced,
        LagClass::OneBehind,
        LagClass::TwoToFour,
        LagClass::FiveToTen,
        LagClass::TenPlus,
    ];

    /// Classifies a block lag.
    pub fn from_lag(lag: u64) -> Self {
        match lag {
            0 => LagClass::Synced,
            1 => LagClass::OneBehind,
            2..=4 => LagClass::TwoToFour,
            5..=10 => LagClass::FiveToTen,
            _ => LagClass::TenPlus,
        }
    }

    /// Index of this class in [`LagClass::ALL`].
    pub fn index(self) -> usize {
        match self {
            LagClass::Synced => 0,
            LagClass::OneBehind => 1,
            LagClass::TwoToFour => 2,
            LagClass::FiveToTen => 3,
            LagClass::TenPlus => 4,
        }
    }

    /// The paper's figure label for this band.
    pub fn label(self) -> &'static str {
        match self {
            LagClass::Synced => "up-to-date",
            LagClass::OneBehind => "1 block behind",
            LagClass::TwoToFour => "2-4 blocks behind",
            LagClass::FiveToTen => "5-10 blocks behind",
            LagClass::TenPlus => ">=10 blocks behind",
        }
    }
}

impl fmt::Display for LagClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_boundaries() {
        assert_eq!(LagClass::from_lag(0), LagClass::Synced);
        assert_eq!(LagClass::from_lag(1), LagClass::OneBehind);
        assert_eq!(LagClass::from_lag(2), LagClass::TwoToFour);
        assert_eq!(LagClass::from_lag(4), LagClass::TwoToFour);
        assert_eq!(LagClass::from_lag(5), LagClass::FiveToTen);
        assert_eq!(LagClass::from_lag(10), LagClass::FiveToTen);
        assert_eq!(LagClass::from_lag(11), LagClass::TenPlus);
        assert_eq!(LagClass::from_lag(1000), LagClass::TenPlus);
    }

    #[test]
    fn indices_match_all_order() {
        for (i, class) in LagClass::ALL.iter().enumerate() {
            assert_eq!(class.index(), i);
        }
    }

    #[test]
    fn labels_are_distinct_and_nonempty() {
        let labels: std::collections::HashSet<&str> =
            LagClass::ALL.iter().map(|c| c.label()).collect();
        assert_eq!(labels.len(), 5);
        assert!(labels.iter().all(|l| !l.is_empty()));
    }
}
