//! Measurement substrate: a Bitnodes-style crawler over the network
//! simulation.
//!
//! Samples every node's block lag on a fixed period, producing the
//! consensus time series of the paper's Figure 6, the per-AS synced-node
//! series of Figure 8 / Table VII, and the per-node lag matrix that the
//! temporal-attack optimizer (Table V) consumes.
//!
//! # Examples
//!
//! ```
//! use bp_crawler::{Crawler, LagClass};
//! use bp_mining::PoolCensus;
//! use bp_net::{NetConfig, Simulation};
//! use bp_topology::{Snapshot, SnapshotConfig};
//!
//! let snap = Snapshot::generate(SnapshotConfig {
//!     scale: 0.02, tail_as_count: 40, version_tail: 10,
//!     ..SnapshotConfig::paper()
//! });
//! let mut sim = Simulation::new(
//!     &snap, &PoolCensus::paper_table_iv(), NetConfig::fast_test(),
//! );
//! let result = Crawler::new(60).crawl(&mut sim, &snap, 600);
//! assert_eq!(result.series.len(), 10);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod asindex;
pub mod crawler;
pub mod lag;
pub mod matrix;
pub mod propagation;
pub mod series;

pub use asindex::AsSlotIndex;
pub use crawler::{CrawlResult, Crawler};
pub use lag::LagClass;
pub use matrix::{LagMatrix, VulnerabilityWindow};
pub use propagation::{recovery_episodes, recovery_summary, RecoveryEpisode};
pub use series::{LagSample, LagSeries};
