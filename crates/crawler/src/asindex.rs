//! The node→AS slot index shared by the crawler's per-AS tallies, the
//! flight recorder's `node_as` records, and the detection layer.
//!
//! Joining a sim node back to its AS through the snapshot is cheap once
//! but too slow to repeat every sample at 13k nodes, so the crawler
//! numbers the distinct ASes in first-seen node order ("slots") and keeps
//! a dense `node → slot` vector. The same index, serialized as one
//! `TraceKind::NodeAs` record per node, makes a trace self-describing:
//! offline consumers (`trace timeline --by-as`, `bp-detect` replay)
//! rebuild the identical slot numbering from the trace alone.

use bp_net::Simulation;
use bp_obs::trace::{TraceKind, TraceRecord};
use bp_topology::{Asn, Snapshot};
use std::collections::HashMap;

/// A dense node→AS join: `slot_of(node)` indexes into the distinct-AS
/// list `slot_asn`, numbered in first-seen node order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsSlotIndex {
    node_slot: Vec<u32>,
    slot_asn: Vec<Asn>,
}

impl AsSlotIndex {
    /// Builds the index from an arbitrary node→AS function over nodes
    /// `0..count` (slots numbered by first appearance).
    pub fn from_fn<F: FnMut(u32) -> Asn>(count: usize, mut asn_of: F) -> Self {
        let mut slot_of: HashMap<Asn, u32> = HashMap::new();
        let mut slot_asn: Vec<Asn> = Vec::new();
        let node_slot = (0..count as u32)
            .map(|i| {
                let asn = asn_of(i);
                *slot_of.entry(asn).or_insert_with(|| {
                    slot_asn.push(asn);
                    (slot_asn.len() - 1) as u32
                })
            })
            .collect();
        Self {
            node_slot,
            slot_asn,
        }
    }

    /// Joins every sim node to its AS through the snapshot the simulation
    /// was built from.
    pub fn build(sim: &Simulation, snapshot: &Snapshot) -> Self {
        Self::from_fn(sim.node_count(), |i| snapshot.node(sim.topology_id(i)).asn)
    }

    /// Rebuilds the index from a trace's `node_as` records. Records may
    /// arrive in any order; gaps (nodes without a record) are absent from
    /// [`slot_of`](Self::slot_of). The slot stored in each record wins,
    /// so a rebuilt index matches the emitting one bit for bit.
    pub fn from_trace(records: &[TraceRecord]) -> Self {
        let mut node_slot = Vec::new();
        let mut slot_asn = Vec::new();
        for r in records {
            if r.kind != TraceKind::NodeAs {
                continue;
            }
            let node = r.node as usize;
            if node >= node_slot.len() {
                node_slot.resize(node + 1, u32::MAX);
            }
            node_slot[node] = r.b as u32;
            let slot = r.b as usize;
            if slot >= slot_asn.len() {
                slot_asn.resize(slot + 1, Asn(0));
            }
            slot_asn[slot] = Asn(r.a as u32);
        }
        Self {
            node_slot,
            slot_asn,
        }
    }

    /// Number of nodes in the index.
    pub fn node_count(&self) -> usize {
        self.node_slot.len()
    }

    /// Number of distinct AS slots.
    pub fn slot_count(&self) -> usize {
        self.slot_asn.len()
    }

    /// The AS slot of `node`, or `None` when the node has no join (only
    /// possible for indexes rebuilt from partial traces).
    pub fn slot_of(&self, node: u32) -> Option<u32> {
        match self.node_slot.get(node as usize) {
            Some(&s) if s != u32::MAX => Some(s),
            _ => None,
        }
    }

    /// The AS number a slot stands for.
    ///
    /// # Panics
    ///
    /// Panics when `slot` is out of range.
    pub fn asn_of_slot(&self, slot: u32) -> Asn {
        self.slot_asn[slot as usize]
    }

    /// The dense node→slot vector (`u32::MAX` marks a missing join).
    pub fn node_slots(&self) -> &[u32] {
        &self.node_slot
    }

    /// One `node_as` trace record per node, in node order — what a
    /// freshly installed tracer is seeded with so the trace carries the
    /// index.
    pub fn to_records(&self, time: u64) -> Vec<TraceRecord> {
        self.node_slot
            .iter()
            .enumerate()
            .filter(|(_, &slot)| slot != u32::MAX)
            .map(|(node, &slot)| TraceRecord {
                time,
                node: node as u32,
                kind: TraceKind::NodeAs,
                a: self.slot_asn[slot as usize].0 as u64,
                b: slot as u64,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slots_number_ases_in_first_seen_order() {
        let asns = [7u32, 3, 7, 9, 3];
        let idx = AsSlotIndex::from_fn(asns.len(), |i| Asn(asns[i as usize]));
        assert_eq!(idx.node_count(), 5);
        assert_eq!(idx.slot_count(), 3);
        assert_eq!(idx.node_slots(), &[0, 1, 0, 2, 1]);
        assert_eq!(idx.asn_of_slot(0), Asn(7));
        assert_eq!(idx.asn_of_slot(2), Asn(9));
        assert_eq!(idx.slot_of(4), Some(1));
    }

    #[test]
    fn trace_roundtrip_preserves_the_index() {
        let asns = [5u32, 5, 11, 2];
        let idx = AsSlotIndex::from_fn(asns.len(), |i| Asn(asns[i as usize]));
        let records = idx.to_records(0);
        assert_eq!(records.len(), 4);
        assert!(records.iter().all(|r| r.kind == TraceKind::NodeAs));
        assert_eq!(AsSlotIndex::from_trace(&records), idx);
    }

    #[test]
    fn from_trace_tolerates_gaps_and_other_kinds() {
        let records = vec![
            TraceRecord {
                time: 0,
                node: 2,
                kind: TraceKind::NodeAs,
                a: 42,
                b: 0,
            },
            TraceRecord {
                time: 10,
                node: 0,
                kind: TraceKind::Mine,
                a: 1,
                b: 1,
            },
        ];
        let idx = AsSlotIndex::from_trace(&records);
        assert_eq!(idx.slot_of(2), Some(0));
        assert_eq!(idx.slot_of(0), None);
        assert_eq!(idx.slot_of(9), None);
        assert_eq!(idx.asn_of_slot(0), Asn(42));
    }
}
