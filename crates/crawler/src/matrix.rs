//! The per-node lag matrix and the Table V vulnerability-window analysis.
//!
//! The paper formulates the temporal attack as an optimization problem:
//! *"Given a timestamp t and a timing constraint T, find the maximum
//! number of vulnerable nodes whose lagging time L(t) is at least T"*
//! (§V-B). A node is vulnerable at time `t` for constraint `T` and lag
//! threshold `b` if it stays at least `b` blocks behind for the entire
//! window `[t, t+T)` — long enough for the attacker to connect and feed
//! it counterfeit blocks.

/// Per-node lag history: one row per crawl sample, one column per node.
///
/// # Examples
///
/// ```
/// use bp_crawler::LagMatrix;
///
/// let mut m = LagMatrix::new(3);
/// m.push_row(&[0, 1, 2]);
/// m.push_row(&[0, 1, 0]);
/// // Node 1 stays >=1 behind for both samples.
/// let w = m.max_vulnerable(2, 1).unwrap();
/// assert_eq!(w.max_nodes, 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LagMatrix {
    nodes: usize,
    /// `rows[t][n]` = node `n`'s lag (clamped to 255) at sample `t`.
    rows: Vec<Vec<u8>>,
}

/// The answer to one Table V cell.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VulnerabilityWindow {
    /// Maximum number of simultaneously vulnerable nodes.
    pub max_nodes: usize,
    /// That count as a fraction of all nodes.
    pub fraction: f64,
    /// Sample index at which the maximum occurs.
    pub at_sample: usize,
}

impl LagMatrix {
    /// Creates an empty matrix for `nodes` nodes.
    pub fn new(nodes: usize) -> Self {
        Self {
            nodes,
            rows: Vec::new(),
        }
    }

    /// Appends one sample row.
    ///
    /// # Panics
    ///
    /// Panics if the row's width differs from the node count.
    pub fn push_row(&mut self, lags: &[u64]) {
        assert_eq!(lags.len(), self.nodes, "row width must match node count");
        self.rows
            .push(lags.iter().map(|&l| l.min(255) as u8).collect());
    }

    /// Number of nodes (columns).
    pub fn nodes(&self) -> usize {
        self.nodes
    }

    /// Number of samples (rows).
    pub fn samples(&self) -> usize {
        self.rows.len()
    }

    /// Whether no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// One node's lag history.
    pub fn node_history(&self, node: usize) -> Vec<u8> {
        self.rows.iter().map(|r| r[node]).collect()
    }

    /// For each sample `t`, how many consecutive samples (including `t`)
    /// node `n` stays ≥ `min_blocks` behind.
    fn run_lengths(&self, node: usize, min_blocks: u8) -> Vec<u32> {
        let mut lens = vec![0u32; self.rows.len()];
        let mut run = 0u32;
        for t in (0..self.rows.len()).rev() {
            if self.rows[t][node] >= min_blocks {
                run += 1;
            } else {
                run = 0;
            }
            lens[t] = run;
        }
        lens
    }

    /// Solves the paper's optimization: the maximum number of nodes that
    /// are at least `min_blocks` behind for at least `window_samples`
    /// consecutive samples, over all starting timestamps.
    ///
    /// Returns `None` when the matrix has fewer samples than the window.
    pub fn max_vulnerable(
        &self,
        window_samples: usize,
        min_blocks: u8,
    ) -> Option<VulnerabilityWindow> {
        if window_samples == 0 || self.rows.len() < window_samples || self.nodes == 0 {
            return None;
        }
        let horizon = self.rows.len() - window_samples + 1;
        let mut counts = vec![0usize; horizon];
        for node in 0..self.nodes {
            let lens = self.run_lengths(node, min_blocks);
            for (t, count) in counts.iter_mut().enumerate() {
                if lens[t] as usize >= window_samples {
                    *count += 1;
                }
            }
        }
        let (at_sample, &max_nodes) = counts
            .iter()
            .enumerate()
            .max_by_key(|(_, c)| **c)
            .expect("horizon >= 1");
        Some(VulnerabilityWindow {
            max_nodes,
            fraction: max_nodes as f64 / self.nodes as f64,
            at_sample,
        })
    }

    /// Node indices vulnerable at a given starting sample (same criterion
    /// as [`LagMatrix::max_vulnerable`]) — the attacker's target list.
    pub fn vulnerable_at(
        &self,
        start_sample: usize,
        window_samples: usize,
        min_blocks: u8,
    ) -> Vec<usize> {
        if window_samples == 0 || start_sample + window_samples > self.rows.len() {
            return Vec::new();
        }
        (0..self.nodes)
            .filter(|&n| {
                (start_sample..start_sample + window_samples).all(|t| self.rows[t][n] >= min_blocks)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 4 nodes, 5 samples:
    /// n0 always synced; n1 always 1 behind; n2 behind for a 3-sample
    /// stretch; n3 deep behind throughout.
    fn matrix() -> LagMatrix {
        let mut m = LagMatrix::new(4);
        m.push_row(&[0, 1, 0, 12]);
        m.push_row(&[0, 1, 2, 12]);
        m.push_row(&[0, 1, 3, 13]);
        m.push_row(&[0, 1, 2, 13]);
        m.push_row(&[0, 1, 0, 14]);
        m
    }

    #[test]
    fn run_lengths_computed_correctly() {
        let m = matrix();
        assert_eq!(m.run_lengths(0, 1), vec![0, 0, 0, 0, 0]);
        assert_eq!(m.run_lengths(1, 1), vec![5, 4, 3, 2, 1]);
        assert_eq!(m.run_lengths(2, 2), vec![0, 3, 2, 1, 0]);
    }

    #[test]
    fn max_vulnerable_finds_best_window() {
        let m = matrix();
        // Window of 3 samples, ≥1 block behind: at t=1 nodes 1,2,3 qualify.
        let w = m.max_vulnerable(3, 1).unwrap();
        assert_eq!(w.max_nodes, 3);
        assert_eq!(w.at_sample, 1);
        assert!((w.fraction - 0.75).abs() < 1e-12);
        // Window of 5: only nodes 1 and 3 persist the whole time.
        let w5 = m.max_vulnerable(5, 1).unwrap();
        assert_eq!(w5.max_nodes, 2);
        // ≥5 blocks: only node 3.
        let deep = m.max_vulnerable(3, 5).unwrap();
        assert_eq!(deep.max_nodes, 1);
    }

    #[test]
    fn vulnerable_counts_decrease_with_longer_windows() {
        let m = matrix();
        let mut prev = usize::MAX;
        for w in 1..=5 {
            let count = m.max_vulnerable(w, 1).unwrap().max_nodes;
            assert!(count <= prev, "window {w}: {count} > {prev}");
            prev = count;
        }
    }

    #[test]
    fn vulnerable_at_lists_targets() {
        let m = matrix();
        assert_eq!(m.vulnerable_at(1, 3, 1), vec![1, 2, 3]);
        assert_eq!(m.vulnerable_at(0, 5, 1), vec![1, 3]);
        assert_eq!(m.vulnerable_at(0, 6, 1), Vec::<usize>::new());
    }

    #[test]
    fn window_longer_than_series_is_none() {
        let m = matrix();
        assert!(m.max_vulnerable(6, 1).is_none());
        assert!(m.max_vulnerable(0, 1).is_none());
    }

    #[test]
    fn lags_clamped_to_byte() {
        let mut m = LagMatrix::new(1);
        m.push_row(&[1000]);
        assert_eq!(m.node_history(0), vec![255]);
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn row_width_checked() {
        let mut m = LagMatrix::new(2);
        m.push_row(&[1]);
    }
}
