//! Lag time series — the data behind Figure 6 and Figure 8(a).

use crate::lag::LagClass;
use bp_net::SimTime;

/// One crawler observation: per-class node counts at an instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LagSample {
    /// Observation time.
    pub at: SimTime,
    /// Node counts per [`LagClass`] (indexed by [`LagClass::index`]).
    pub counts: [usize; 5],
}

impl LagSample {
    /// Classifies raw per-node lags into a sample.
    pub fn from_lags(at: SimTime, lags: &[u64]) -> Self {
        let mut counts = [0usize; 5];
        for &lag in lags {
            counts[LagClass::from_lag(lag).index()] += 1;
        }
        Self { at, counts }
    }

    /// Total nodes observed.
    pub fn total(&self) -> usize {
        self.counts.iter().sum()
    }

    /// Count in one class.
    pub fn count(&self, class: LagClass) -> usize {
        self.counts[class.index()]
    }

    /// Fraction of nodes at least `min_lag_class`-behind — e.g. passing
    /// [`LagClass::OneBehind`] gives the paper's "≥ 1 block behind"
    /// fraction.
    pub fn fraction_at_least(&self, min_class: LagClass) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        let behind: usize = self.counts[min_class.index()..].iter().sum();
        behind as f64 / total as f64
    }
}

/// A sequence of crawler observations.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LagSeries {
    samples: Vec<LagSample>,
}

impl LagSeries {
    /// Creates an empty series.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a sample.
    ///
    /// # Panics
    ///
    /// Panics if samples are pushed out of time order.
    pub fn push(&mut self, sample: LagSample) {
        if let Some(last) = self.samples.last() {
            assert!(last.at <= sample.at, "samples must be time-ordered");
        }
        self.samples.push(sample);
    }

    /// All samples.
    pub fn samples(&self) -> &[LagSample] {
        &self.samples
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether the series is empty.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Per-class stacked columns for rendering Figure 6 (one column per
    /// sample, bands in [`LagClass::ALL`] order).
    pub fn stacked_columns(&self) -> Vec<Vec<f64>> {
        self.samples
            .iter()
            .map(|s| s.counts.iter().map(|&c| c as f64).collect())
            .collect()
    }

    /// The `(time, count)` line for one class — Figure 8(a)'s per-class
    /// curves.
    pub fn class_series(&self, class: LagClass) -> Vec<(f64, f64)> {
        self.samples
            .iter()
            .map(|s| (s.at.as_secs_f64(), s.count(class) as f64))
            .collect()
    }

    /// The largest observed fraction of nodes at least `min_class` behind
    /// — the paper's "yellow and purple spikes can reach up to 7,000
    /// nodes" observation.
    pub fn peak_fraction_at_least(&self, min_class: LagClass) -> f64 {
        self.samples
            .iter()
            .map(|s| s.fraction_at_least(min_class))
            .fold(0.0, f64::max)
    }

    /// Mean fraction of synced nodes over the whole series.
    pub fn mean_synced_fraction(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        let sum: f64 = self
            .samples
            .iter()
            .map(|s| 1.0 - s.fraction_at_least(LagClass::OneBehind))
            .sum();
        sum / self.samples.len() as f64
    }
}

impl FromIterator<LagSample> for LagSeries {
    fn from_iter<I: IntoIterator<Item = LagSample>>(iter: I) -> Self {
        let mut series = LagSeries::new();
        for s in iter {
            series.push(s);
        }
        series
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(at_secs: u64, lags: &[u64]) -> LagSample {
        LagSample::from_lags(SimTime::from_secs(at_secs), lags)
    }

    #[test]
    fn sample_classifies_lags() {
        let s = sample(0, &[0, 0, 1, 3, 7, 20]);
        assert_eq!(s.count(LagClass::Synced), 2);
        assert_eq!(s.count(LagClass::OneBehind), 1);
        assert_eq!(s.count(LagClass::TwoToFour), 1);
        assert_eq!(s.count(LagClass::FiveToTen), 1);
        assert_eq!(s.count(LagClass::TenPlus), 1);
        assert_eq!(s.total(), 6);
    }

    #[test]
    fn fraction_at_least_accumulates_tail() {
        let s = sample(0, &[0, 0, 1, 3]);
        assert!((s.fraction_at_least(LagClass::OneBehind) - 0.5).abs() < 1e-12);
        assert!((s.fraction_at_least(LagClass::TwoToFour) - 0.25).abs() < 1e-12);
        assert_eq!(s.fraction_at_least(LagClass::TenPlus), 0.0);
    }

    #[test]
    fn empty_sample_fraction_is_zero() {
        let s = sample(0, &[]);
        assert_eq!(s.fraction_at_least(LagClass::OneBehind), 0.0);
    }

    #[test]
    fn series_orders_and_aggregates() {
        let mut series = LagSeries::new();
        series.push(sample(0, &[0, 0, 0, 1]));
        series.push(sample(60, &[0, 1, 1, 2]));
        series.push(sample(120, &[0, 0, 0, 0]));
        assert_eq!(series.len(), 3);
        assert!((series.peak_fraction_at_least(LagClass::OneBehind) - 0.75).abs() < 1e-12);
        let synced = series.class_series(LagClass::Synced);
        assert_eq!(synced, vec![(0.0, 3.0), (60.0, 1.0), (120.0, 4.0)]);
        let mean = series.mean_synced_fraction();
        assert!((mean - (0.75 + 0.25 + 1.0) / 3.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "time-ordered")]
    fn out_of_order_push_panics() {
        let mut series = LagSeries::new();
        series.push(sample(60, &[0]));
        series.push(sample(0, &[0]));
    }

    #[test]
    fn stacked_columns_shape() {
        let series: LagSeries = vec![sample(0, &[0, 1]), sample(60, &[2, 2])]
            .into_iter()
            .collect();
        let cols = series.stacked_columns();
        assert_eq!(cols.len(), 2);
        assert_eq!(cols[0].len(), 5);
        assert_eq!(cols[0][0], 1.0);
    }
}
