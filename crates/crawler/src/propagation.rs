//! Block-propagation (sync recovery) measurement.
//!
//! The paper grounds its temporal analysis in Decker–Wattenhofer's
//! observation that "propagation delay is the major factor that might
//! result in a fork" (§VII). This module extracts, from a finely-sampled
//! lag series, how long the network takes to re-synchronize after each
//! block: the time from a synced-fraction collapse (a new block arrived)
//! until the synced fraction recovers past a threshold.

use crate::lag::LagClass;
use crate::series::LagSeries;
use bp_analysis::stats::Summary;

/// One block's recovery episode.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RecoveryEpisode {
    /// Sample index at which the synced fraction collapsed.
    pub start_sample: usize,
    /// Seconds until the synced fraction exceeded the threshold again.
    pub recovery_secs: f64,
}

/// Extracts sync-recovery episodes from a lag series.
///
/// An episode starts when the synced fraction drops by at least
/// `collapse_delta` between consecutive samples (a block arrival) and
/// ends at the first subsequent sample whose synced fraction exceeds
/// `recovered_threshold`. Episodes still open at the end of the series
/// are discarded.
pub fn recovery_episodes(
    series: &LagSeries,
    collapse_delta: f64,
    recovered_threshold: f64,
) -> Vec<RecoveryEpisode> {
    let synced: Vec<(f64, f64)> = series
        .samples()
        .iter()
        .map(|s| {
            (
                s.at.as_secs_f64(),
                1.0 - s.fraction_at_least(LagClass::OneBehind),
            )
        })
        .collect();

    let mut episodes = Vec::new();
    let mut open: Option<(usize, f64)> = None;
    for i in 1..synced.len() {
        let (t, frac) = synced[i];
        if let Some((start, start_t)) = open {
            if frac >= recovered_threshold {
                episodes.push(RecoveryEpisode {
                    start_sample: start,
                    recovery_secs: t - start_t,
                });
                open = None;
            }
        }
        if open.is_none() && synced[i - 1].1 - frac >= collapse_delta {
            open = Some((i, t));
        }
    }
    episodes
}

/// Summary of recovery times across all episodes, in seconds.
pub fn recovery_summary(episodes: &[RecoveryEpisode]) -> Summary {
    Summary::from_iter(episodes.iter().map(|e| e.recovery_secs))
}

/// Derives `(collapse_delta, recovered_threshold)` from the series
/// itself: recovery means returning to 80 % of the series' own p90
/// synced fraction, and a collapse is a drop of 40 % of that ceiling.
/// Fixed absolute thresholds misfire when the network's steady-state
/// sync level differs from the analyst's guess.
pub fn adaptive_thresholds(series: &LagSeries) -> (f64, f64) {
    let synced: Vec<f64> = series
        .samples()
        .iter()
        .map(|s| 1.0 - s.fraction_at_least(LagClass::OneBehind))
        .collect();
    if synced.is_empty() {
        return (0.25, 0.5);
    }
    let ceiling = Summary::from_iter(synced).quantile(0.9).max(0.05);
    (0.4 * ceiling, 0.8 * ceiling)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::series::LagSample;
    use bp_net::SimTime;

    /// Builds a series with `n` nodes where the synced count follows the
    /// given per-sample values (rest are 1 behind).
    fn series(n: usize, synced_counts: &[usize]) -> LagSeries {
        let mut s = LagSeries::new();
        for (i, &synced) in synced_counts.iter().enumerate() {
            let lags: Vec<u64> = (0..n).map(|k| u64::from(k >= synced)).collect();
            s.push(LagSample::from_lags(
                SimTime::from_secs(i as u64 * 10),
                &lags,
            ));
        }
        s
    }

    #[test]
    fn detects_collapse_and_recovery() {
        // Synced: high, collapse, slow recovery, high again.
        let s = series(100, &[90, 20, 40, 60, 85, 90, 90]);
        let eps = recovery_episodes(&s, 0.3, 0.8);
        assert_eq!(eps.len(), 1);
        assert_eq!(eps[0].start_sample, 1);
        // Collapse at t=10, recovered at t=40 (85 synced ≥ 80%).
        assert!((eps[0].recovery_secs - 30.0).abs() < 1e-9);
    }

    #[test]
    fn unrecovered_episode_discarded() {
        let s = series(100, &[90, 10, 20, 30]);
        let eps = recovery_episodes(&s, 0.3, 0.8);
        assert!(eps.is_empty());
    }

    #[test]
    fn multiple_episodes_counted() {
        let s = series(100, &[90, 20, 85, 90, 15, 88, 90]);
        let eps = recovery_episodes(&s, 0.3, 0.8);
        assert_eq!(eps.len(), 2);
        let summary = recovery_summary(&eps);
        assert_eq!(summary.count(), 2);
        assert!(summary.mean() > 0.0);
    }

    #[test]
    fn no_collapse_no_episodes() {
        let s = series(100, &[90, 89, 91, 90]);
        assert!(recovery_episodes(&s, 0.3, 0.8).is_empty());
    }
}
