//! The measurement crawler (Bitnodes stand-in).
//!
//! "Bitnodes maintains a persistent connection with all reachable nodes …
//! For each node, Bitnodes records the response time to calculate useful
//! information such as the latency, the uptime, and the latest block"
//! (§IV-A). The crawler here plays that role against the simulation: it
//! samples every node's lag on a fixed period (1-minute and 10-minute
//! periods, as in the paper) and records both the aggregate series
//! (Figure 6) and the full per-node lag matrix used by the temporal
//! vulnerability analysis (Table V).

use crate::asindex::AsSlotIndex;
use crate::matrix::LagMatrix;
use crate::series::{LagSample, LagSeries};
use bp_net::Simulation;
use bp_topology::{Asn, Snapshot};
use std::collections::HashMap;

/// A crawler that samples a [`Simulation`] on a fixed period.
#[derive(Debug, Clone)]
pub struct Crawler {
    sample_period_secs: u64,
}

/// Everything one crawl collected.
#[derive(Debug, Clone)]
pub struct CrawlResult {
    /// Aggregate per-class counts over time (Figure 6).
    pub series: LagSeries,
    /// Full per-node lag history (Table V input).
    pub matrix: LagMatrix,
    /// Per-sample synced-node counts per AS (Figure 8(b,c) / Table VII).
    pub synced_by_as: Vec<HashMap<Asn, usize>>,
}

impl Crawler {
    /// Creates a crawler sampling every `sample_period_secs` (the paper
    /// uses 600 for the long-run view and 60 for the fine-grained one).
    ///
    /// # Panics
    ///
    /// Panics if the period is zero.
    pub fn new(sample_period_secs: u64) -> Self {
        assert!(sample_period_secs > 0, "sample period must be positive");
        Self { sample_period_secs }
    }

    /// The sampling period.
    pub fn period_secs(&self) -> u64 {
        self.sample_period_secs
    }

    /// Drives the simulation for `duration_secs`, sampling after each
    /// period. The snapshot must be the one the simulation was built from
    /// (needed to join sim nodes back to their ASes).
    pub fn crawl(
        &self,
        sim: &mut Simulation,
        snapshot: &Snapshot,
        duration_secs: u64,
    ) -> CrawlResult {
        self.crawl_with_metrics(sim, snapshot, duration_secs, None)
    }

    /// [`crawl`](Self::crawl), recording the crawler's own sampling cost
    /// into `reg` when given: `crawler.samples` / `crawler.lag_cells`
    /// counters and a `crawler.sample` wall-clock span per sample (the
    /// span excludes the simulation's own run time, so it isolates what
    /// the lag collection costs). The crawl result is identical with or
    /// without a registry.
    pub fn crawl_with_metrics(
        &self,
        sim: &mut Simulation,
        snapshot: &Snapshot,
        duration_secs: u64,
        reg: Option<&bp_obs::Registry>,
    ) -> CrawlResult {
        let steps = duration_secs / self.sample_period_secs;
        let mut series = LagSeries::new();
        let mut matrix = LagMatrix::new(sim.node_count());
        let mut synced_by_as = Vec::with_capacity(steps as usize);

        // Join each sim node to its AS once, up front (see
        // [`AsSlotIndex`]): each sample then tallies synced nodes with a
        // dense counter bump per node instead of a snapshot lookup plus
        // hash-map insert, which dominates sampling cost at 13k nodes ×
        // 1-minute periods.
        let index = AsSlotIndex::build(sim, snapshot);
        let node_slot = index.node_slots();
        let mut counts = vec![0usize; index.slot_count()];
        let mut lags: Vec<u64> = Vec::new();

        for _ in 0..steps {
            sim.run_for_secs(self.sample_period_secs);
            let sample_span = reg.map(|r| r.span("crawler.sample"));
            sim.lags_into(&mut lags);
            series.push(LagSample::from_lags(sim.now(), &lags));
            matrix.push_row(&lags);
            // Flight-recorder sample tick (no-op unless the sim carries a
            // tracer): synced count plus network best, enough to rebuild
            // this sample from the trace alone.
            let synced_total = lags.iter().filter(|&&l| l == 0).count() as u64;
            sim.trace_crawl_sample(synced_total);

            counts.fill(0);
            for (i, &lag) in lags.iter().enumerate() {
                if lag == 0 {
                    counts[node_slot[i] as usize] += 1;
                }
            }
            // Only ASes that hosted a synced node get an entry, exactly
            // as the per-node entry API produced before.
            let mut by_as: HashMap<Asn, usize> = HashMap::new();
            for (slot, &count) in counts.iter().enumerate() {
                if count > 0 {
                    by_as.insert(index.asn_of_slot(slot as u32), count);
                }
            }
            synced_by_as.push(by_as);
            if let Some(reg) = reg {
                reg.inc("crawler.samples");
                reg.add("crawler.lag_cells", lags.len() as u64);
            }
            drop(sample_span);
        }

        CrawlResult {
            series,
            matrix,
            synced_by_as,
        }
    }
}

impl CrawlResult {
    /// Ranks ASes by their total synced-node presence across all samples
    /// — Table VII's "top 5 ASes that hosted all the synchronized nodes".
    pub fn top_synced_ases(&self, k: usize) -> Vec<(Asn, f64)> {
        let mut totals: HashMap<Asn, usize> = HashMap::new();
        for sample in &self.synced_by_as {
            for (asn, count) in sample {
                *totals.entry(*asn).or_default() += count;
            }
        }
        let mut ranked: Vec<(Asn, usize)> = totals.into_iter().collect();
        ranked.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        let denom = self.synced_by_as.len().max(1) as f64;
        ranked
            .into_iter()
            .take(k)
            .map(|(asn, total)| (asn, total as f64 / denom))
            .collect()
    }

    /// The per-sample synced count of one AS — a Figure 8(b,c) line.
    pub fn as_synced_series(&self, asn: Asn) -> Vec<(f64, f64)> {
        self.synced_by_as
            .iter()
            .zip(self.series.samples())
            .map(|(by_as, sample)| {
                (
                    sample.at.as_secs_f64(),
                    by_as.get(&asn).copied().unwrap_or(0) as f64,
                )
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lag::LagClass;
    use bp_mining::PoolCensus;
    use bp_net::NetConfig;
    use bp_topology::SnapshotConfig;

    fn setup() -> (Snapshot, Simulation) {
        let config = SnapshotConfig {
            scale: 0.02,
            tail_as_count: 40,
            version_tail: 10,
            up_fraction: 1.0,
            ..SnapshotConfig::paper()
        };
        let snap = Snapshot::generate(config);
        let sim = Simulation::new(&snap, &PoolCensus::paper_table_iv(), NetConfig::fast_test());
        (snap, sim)
    }

    #[test]
    fn crawl_produces_aligned_outputs() {
        let (snap, mut sim) = setup();
        let crawler = Crawler::new(60);
        let result = crawler.crawl(&mut sim, &snap, 1800);
        assert_eq!(result.series.len(), 30);
        assert_eq!(result.matrix.samples(), 30);
        assert_eq!(result.synced_by_as.len(), 30);
        assert_eq!(result.matrix.nodes(), sim.node_count());
    }

    #[test]
    fn fast_network_is_mostly_synced() {
        let (snap, mut sim) = setup();
        let crawler = Crawler::new(60);
        let result = crawler.crawl(&mut sim, &snap, 3600);
        assert!(
            result.series.mean_synced_fraction() > 0.8,
            "mean synced {}",
            result.series.mean_synced_fraction()
        );
    }

    #[test]
    fn synced_by_as_counts_are_consistent() {
        let (snap, mut sim) = setup();
        let crawler = Crawler::new(120);
        let result = crawler.crawl(&mut sim, &snap, 1200);
        for (by_as, sample) in result.synced_by_as.iter().zip(result.series.samples()) {
            let total: usize = by_as.values().sum();
            assert_eq!(total, sample.count(LagClass::Synced));
        }
    }

    #[test]
    fn top_synced_ases_are_largest_hosts() {
        let (snap, mut sim) = setup();
        let crawler = Crawler::new(120);
        let result = crawler.crawl(&mut sim, &snap, 2400);
        let top = result.top_synced_ases(5);
        assert_eq!(top.len(), 5);
        // Each named AS's series aligns with the sample count.
        let series = result.as_synced_series(top[0].0);
        assert_eq!(series.len(), result.series.len());
        // The #1 synced AS should be one of the big hosting anchors.
        let anchor_asns = [24940u32, 16276, 37963, 16509, 14061, 7922, 4134];
        assert!(
            anchor_asns.contains(&top[0].0 .0),
            "unexpected top AS {:?}",
            top[0].0
        );
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_period_rejected() {
        let _ = Crawler::new(0);
    }

    #[test]
    fn metered_crawl_matches_unmetered() {
        let (snap, mut sim) = setup();
        let (_, mut sim2) = setup();
        let crawler = Crawler::new(60);
        let reg = bp_obs::Registry::new();
        let metered = crawler.crawl_with_metrics(&mut sim, &snap, 1800, Some(&reg));
        let plain = crawler.crawl(&mut sim2, &snap, 1800);
        assert_eq!(metered.series.samples(), plain.series.samples());
        assert_eq!(metered.synced_by_as, plain.synced_by_as);
        let snap2 = reg.snapshot();
        assert_eq!(snap2.counter("crawler.samples"), 30);
        assert_eq!(
            snap2.counter("crawler.lag_cells"),
            30 * sim.node_count() as u64
        );
        assert_eq!(snap2.span_stats("crawler.sample").unwrap().count, 30);
    }
}
