//! Property-based tests for the measurement substrate.

use bp_crawler::{LagClass, LagMatrix, LagSample, LagSeries};
use bp_net::SimTime;
use proptest::prelude::*;

proptest! {
    /// Classification is a partition: every lag lands in exactly one
    /// class and class totals reconstruct the sample size.
    #[test]
    fn lag_classes_partition(lags in proptest::collection::vec(any::<u64>(), 0..200)) {
        let sample = LagSample::from_lags(SimTime::ZERO, &lags);
        prop_assert_eq!(sample.total(), lags.len());
        let sum: usize = LagClass::ALL.iter().map(|c| sample.count(*c)).sum();
        prop_assert_eq!(sum, lags.len());
        // fraction_at_least is a decreasing tail function.
        let mut prev = 1.0f64;
        for class in LagClass::ALL {
            let f = sample.fraction_at_least(class);
            prop_assert!(f <= prev + 1e-12);
            prev = f;
        }
    }

    /// Class boundaries agree with the band definitions.
    #[test]
    fn classification_matches_bands(lag in any::<u64>()) {
        let class = LagClass::from_lag(lag);
        let expected = match lag {
            0 => LagClass::Synced,
            1 => LagClass::OneBehind,
            2..=4 => LagClass::TwoToFour,
            5..=10 => LagClass::FiveToTen,
            _ => LagClass::TenPlus,
        };
        prop_assert_eq!(class, expected);
    }

    /// Series aggregates are consistent with per-sample values.
    #[test]
    fn series_aggregates_consistent(
        lag_rows in proptest::collection::vec(
            proptest::collection::vec(0u64..20, 5),
            1..30,
        ),
    ) {
        let mut series = LagSeries::new();
        for (t, row) in lag_rows.iter().enumerate() {
            series.push(LagSample::from_lags(SimTime::from_secs(t as u64 * 60), row));
        }
        let peak = series.peak_fraction_at_least(LagClass::OneBehind);
        let max_direct = series
            .samples()
            .iter()
            .map(|s| s.fraction_at_least(LagClass::OneBehind))
            .fold(0.0f64, f64::max);
        prop_assert!((peak - max_direct).abs() < 1e-12);
        // Stacked columns re-sum to the totals.
        for (cols, sample) in series.stacked_columns().iter().zip(series.samples()) {
            let sum: f64 = cols.iter().sum();
            prop_assert_eq!(sum as usize, sample.total());
        }
        // Class series have one point per sample.
        for class in LagClass::ALL {
            prop_assert_eq!(series.class_series(class).len(), series.len());
        }
    }

    /// max_vulnerable is monotone in both the window and the lag
    /// threshold, and vulnerable_at agrees with it at the reported
    /// optimum.
    #[test]
    fn vulnerability_monotonicity(
        lag_rows in proptest::collection::vec(
            proptest::collection::vec(0u64..8, 6),
            4..25,
        ),
    ) {
        let mut m = LagMatrix::new(6);
        for row in &lag_rows {
            m.push_row(row);
        }
        let mut prev = usize::MAX;
        for window in 1..=m.samples() {
            let Some(w) = m.max_vulnerable(window, 1) else { break };
            prop_assert!(w.max_nodes <= prev, "window {window} grew");
            prev = w.max_nodes;
            // Threshold monotonicity at this window.
            let deeper = m.max_vulnerable(window, 3).unwrap();
            prop_assert!(deeper.max_nodes <= w.max_nodes);
            // The reported optimum is achievable.
            let targets = m.vulnerable_at(w.at_sample, window, 1);
            prop_assert_eq!(targets.len(), w.max_nodes);
        }
    }
}
