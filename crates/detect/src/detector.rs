//! The pluggable detector suite.
//!
//! Every detector is pure integer / fixed-point arithmetic over the
//! replayed observables — no floats, no clocks, no randomness — so the
//! alert stream is byte-identical wherever and however the records are
//! replayed. EWMA baselines use a `<< 8` fixed point updated as
//! `ewma += (cur - ewma) >> shift`, and every thresholded detector
//! demands `confirm_ticks` consecutive breaches before alerting, which
//! suppresses the single-tick dips a freshly mined block causes while it
//! propagates.

use crate::observe::{StreamState, Tick};
use bp_attacks::countermeasures::BLOCKAWARE_THRESHOLD_SECS;
use bp_obs::trace::TraceKind;

/// Fixed-point scale used by the EWMA baselines.
const FP: i64 = 256;

/// What a detector asserts when it fires; the engine stamps kind & time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Alert {
    /// Affected node / AS slot, or `u32::MAX` for network-wide alerts.
    pub node: u32,
    /// Kind-specific score payload.
    pub a: u64,
    /// Kind-specific score payload.
    pub b: u64,
}

/// A streaming partition detector, evaluated once per crawler tick.
pub trait Detector {
    /// Stable name used in counters, reports and `detection_roc.csv`.
    fn name(&self) -> &'static str;
    /// The alert kind this detector emits.
    fn kind(&self) -> TraceKind;
    /// Inspects the tick observables; `Some` fires one alert record.
    fn observe(&mut self, tick: &Tick, state: &StreamState) -> Option<Alert>;
}

/// Tuning for the standard suite. The defaults hold every detector at
/// zero false positives on the benign quick-profile crawl while keeping
/// detection latency inside the attack window — see `detection_roc.csv`
/// in EXPERIMENTS.md.
///
/// The constants are set against the simulator's benign physics, which
/// are much rougher than a census intuition suggests: block propagation
/// takes 10–25 crawl ticks to cover the network, so right after every
/// mine most nodes are briefly "stale" by the paper's 600 s predicate
/// and the synced count collapses to a handful of nodes. What separates
/// an attack from that benign churn is *persistence* — benign staleness
/// spikes drain within ~10 ticks as the block propagates, a partition
/// parks there — and *train-complete inv accounting* (a mined block's
/// announcements are only charged against it after its propagation
/// train has had time to land).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DetectConfig {
    /// Per-node staleness threshold (seconds); the paper's 600 s.
    pub blockaware_threshold_secs: u64,
    /// Stale fraction (per-mille of tracked nodes) that arms the
    /// BlockAware alarm.
    pub blockaware_min_stale_permille: u64,
    /// Consecutive armed ticks before BlockAware alerts. Benign
    /// propagation keeps the stale census above the floor for at most
    /// ~10 ticks per mined block (measured on the quick profile); a
    /// partition holds it there indefinitely.
    pub blockaware_confirm_ticks: u64,
    /// Ticks before EWMA-based detectors may alert (baseline settling).
    pub warmup_ticks: u64,
    /// EWMA decay: `ewma += (cur - ewma) >> ewma_shift`.
    pub ewma_shift: u32,
    /// Consecutive breach ticks required before an alert fires.
    pub confirm_ticks: u64,
    /// Staleness-band detector: alert when the deep-lag (≥5 blocks)
    /// fraction exceeds baseline by this many per-mille.
    pub stale_band_permille: u64,
    /// Inv-collapse detector: the fixed age (in ticks past the mine) at
    /// which a block's announcement train is scored. Full propagation
    /// takes 15–25 ticks, far too slow for a fast detector, so trains
    /// are compared *prefix against prefix*: every train is scored at
    /// exactly this age, and benign prefixes are tight (±3% on the
    /// quick profile) because propagation speed is a property of the
    /// topology, not the block.
    pub inv_train_ticks: u64,
    /// Inv-collapse detector: alert when a completed train falls below
    /// this per-mille of baseline.
    pub inv_collapse_permille: u64,
    /// Inv-collapse detector: completed trains needed to seed the
    /// baseline before alerts may fire. Small on purpose — blocks are
    /// ~10 minutes apart, so every warmup train costs real wall-clock,
    /// and a single benign train already aggregates one announcement
    /// per reachable node.
    pub inv_warmup_trains: u64,
    /// Inv-collapse detector: consecutive collapsed trains required
    /// before alerting. 1 by default (a collapsed train is a
    /// population-sized signal, and waiting for a second costs a full
    /// block interval); raise it to ride out fork-race anomalies.
    pub inv_confirm_trains: u64,
    /// AS-skew detector: alert when the population share living in dark
    /// AS slots exceeds this many per-mille.
    pub skew_threshold_permille: u64,
    /// AS-skew detector: a slot is dark when it has produced no synced
    /// node for this many ticks. Must exceed the benign gap between
    /// near-full-sync ticks (~21 ticks on the quick profile when blocks
    /// pile up).
    pub skew_dark_ticks: u64,
    /// AS-skew detector: per-slot sync sightings only count on ticks
    /// where the global synced fraction reaches this per-mille — mid-
    /// propagation samples say nothing about which ASes are cut off.
    pub skew_gate_permille: u64,
}

impl Default for DetectConfig {
    fn default() -> Self {
        Self {
            blockaware_threshold_secs: BLOCKAWARE_THRESHOLD_SECS,
            blockaware_min_stale_permille: 400,
            blockaware_confirm_ticks: 15,
            warmup_ticks: 10,
            ewma_shift: 3,
            confirm_ticks: 2,
            stale_band_permille: 150,
            inv_train_ticks: 5,
            inv_collapse_permille: 600,
            inv_warmup_trains: 2,
            inv_confirm_trains: 1,
            skew_threshold_permille: 60,
            skew_dark_ticks: 30,
            skew_gate_permille: 600,
        }
    }
}

/// The four standard detectors, in fixed evaluation (and alert) order.
pub fn standard_suite(config: DetectConfig) -> Vec<Box<dyn Detector>> {
    vec![
        Box::new(BlockAwareDetector::new(config)),
        Box::new(StaleBandDetector::new(config)),
        Box::new(InvCollapseDetector::new(config)),
        Box::new(AsSkewDetector::new(config)),
    ]
}

/// The paper's BlockAware countermeasure recast as a network detector:
/// a node is stale when it has not accepted a block for the threshold
/// *while the network tip advanced past it* (`bp_attacks::
/// countermeasures::blockaware_stale`, gated on lag > 0). The alarm
/// arms when the stale fraction of tracked nodes reaches the configured
/// per-mille and fires once it stays armed for
/// `blockaware_confirm_ticks` consecutive ticks. Both gates are doing
/// real work: the lag gate silences quiet inter-block stretches (the
/// raw per-node predicate fires on `e^{-T/600}` of benign gaps), and
/// the persistence gate silences propagation — a freshly mined block
/// momentarily marks most of the network stale while its train walks
/// the topology, but that census drains within ~10 ticks, whereas a
/// partitioned population stays stale until the heal.
#[derive(Debug)]
pub struct BlockAwareDetector {
    config: DetectConfig,
    streak: u64,
}

impl BlockAwareDetector {
    /// New detector with the given tuning.
    pub fn new(config: DetectConfig) -> Self {
        Self { config, streak: 0 }
    }
}

impl Detector for BlockAwareDetector {
    fn name(&self) -> &'static str {
        "blockaware"
    }

    fn kind(&self) -> TraceKind {
        TraceKind::DetectBlockAware
    }

    fn observe(&mut self, tick: &Tick, state: &StreamState) -> Option<Alert> {
        let (stale, tracked) = state.stale_nodes(tick.t_ms, self.config.blockaware_threshold_secs);
        if tracked == 0 {
            return None;
        }
        let permille = stale * 1000 / tracked;
        let armed = permille >= self.config.blockaware_min_stale_permille;
        self.streak = if armed { self.streak + 1 } else { 0 };
        (self.streak >= self.config.blockaware_confirm_ticks).then_some(Alert {
            node: u32::MAX,
            a: permille,
            b: stale,
        })
    }
}

/// Watches the deep end of the block-staleness bands: the fraction of
/// nodes five or more blocks behind. Benign crawls keep this band small
/// and steady (churned-off nodes catching up); a partition starves one
/// side, which sinks through the bands and parks there. Alerts when the
/// deep-lag per-mille exceeds its EWMA baseline by the configured band
/// for `confirm_ticks` consecutive ticks.
#[derive(Debug)]
pub struct StaleBandDetector {
    config: DetectConfig,
    ewma_fp: i64,
    seen: u64,
    streak: u64,
}

impl StaleBandDetector {
    /// New detector with the given tuning.
    pub fn new(config: DetectConfig) -> Self {
        Self {
            config,
            ewma_fp: 0,
            seen: 0,
            streak: 0,
        }
    }
}

impl Detector for StaleBandDetector {
    fn name(&self) -> &'static str {
        "stale_ewma"
    }

    fn kind(&self) -> TraceKind {
        TraceKind::DetectStaleEwma
    }

    fn observe(&mut self, tick: &Tick, state: &StreamState) -> Option<Alert> {
        if tick.total == 0 {
            return None;
        }
        let bands = state.lag_counts();
        let deep = bands[3] + bands[4];
        let cur = (deep * 1000 / tick.total) as i64;
        let cur_fp = cur * FP;
        self.seen += 1;
        if self.seen == 1 {
            self.ewma_fp = cur_fp;
        }
        let baseline_fp = self.ewma_fp;
        let breached = cur_fp > baseline_fp + (self.config.stale_band_permille as i64) * FP;
        // The baseline keeps learning only while the band looks benign;
        // freezing it during a breach stops a long partition from
        // normalizing itself into the baseline.
        if !breached {
            self.ewma_fp += (cur_fp - self.ewma_fp) >> self.config.ewma_shift;
        }
        if self.seen <= self.config.warmup_ticks {
            self.streak = 0;
            return None;
        }
        self.streak = if breached { self.streak + 1 } else { 0 };
        (self.streak >= self.config.confirm_ticks).then_some(Alert {
            node: u32::MAX,
            a: cur as u64,
            b: (baseline_fp / FP).max(0) as u64,
        })
    }
}

/// Watches per-block announcement trains. Both `mine` and `inv_relay`
/// records carry the block's dense id in `a`, so every announcement is
/// attributed to exactly the block it belongs to — no sliding window,
/// no tail leakage, no rate estimator at all. A block's train is scored
/// exactly once, `inv_train_ticks` after its mine tick. That age is
/// deliberately much shorter than full propagation (15–25 ticks): the
/// detector compares each train's fixed-age *prefix* against a prefix
/// baseline, which is what makes sub-propagation-time detection
/// possible at all. Benign prefixes are tight (±3% on the quick
/// profile) because early-propagation speed is a property of the
/// topology; a partition mutes the far side and the first post-cut
/// prefix lands at roughly the cut fraction of baseline. Blocks mined
/// before the stream's first sample tick are never scored — their age
/// is unknowable (the pre-tick stretch is unbounded), and a train that
/// matured during it would poison the prefix baseline with full-train
/// sizes. Alerts when `inv_confirm_trains` consecutive scored trains
/// fall below `inv_collapse_permille` of the EWMA baseline (frozen
/// during breaches, so a long partition cannot normalize itself). This
/// is the suite's fast detector: it fires one scoring age after the
/// first post-cut block, within the paper's 600 s BlockAware
/// threshold, where the staleness detectors must wait for nodes to age
/// past their thresholds.
#[derive(Debug)]
pub struct InvCollapseDetector {
    config: DetectConfig,
    /// Watermark: dense block ids below this are already scored. Dense
    /// ids are assigned in mine order, so completion order matches id
    /// order and a single cursor suffices.
    scored_from: u64,
    ewma_fp: i64,
    seen: u64,
    streak: u64,
}

impl InvCollapseDetector {
    /// New detector with the given tuning.
    pub fn new(config: DetectConfig) -> Self {
        Self {
            config,
            scored_from: 0,
            ewma_fp: 0,
            seen: 0,
            streak: 0,
        }
    }
}

impl Detector for InvCollapseDetector {
    fn name(&self) -> &'static str {
        "inv_collapse"
    }

    fn kind(&self) -> TraceKind {
        TraceKind::DetectInvCollapse
    }

    fn observe(&mut self, tick: &Tick, state: &StreamState) -> Option<Alert> {
        let mut alert = None;
        for (&dense, &(mine_tick, invs)) in state.inv_trains().range(self.scored_from..) {
            if tick.seq < mine_tick + self.config.inv_train_ticks {
                // Trains complete in mine order; the first still-open
                // one ends this evaluation.
                break;
            }
            self.scored_from = dense + 1;
            if mine_tick == 0 {
                // Mined before the first sample tick: age unknowable,
                // never scored (see the type-level docs).
                continue;
            }
            let cur_fp = invs as i64 * FP;
            self.seen += 1;
            if self.seen == 1 {
                self.ewma_fp = cur_fp;
            }
            let baseline_fp = self.ewma_fp;
            let floor_fp = baseline_fp * (self.config.inv_collapse_permille as i64) / 1000;
            let breached = cur_fp < floor_fp;
            if !breached {
                self.ewma_fp += (cur_fp - self.ewma_fp) >> self.config.ewma_shift;
            }
            if self.seen <= self.config.inv_warmup_trains {
                self.streak = 0;
                continue;
            }
            self.streak = if breached { self.streak + 1 } else { 0 };
            if self.streak >= self.config.inv_confirm_trains {
                alert = Some(Alert {
                    node: u32::MAX,
                    a: invs,
                    b: (baseline_fp / FP).max(0) as u64,
                });
            }
        }
        alert
    }
}

/// Watches per-AS sync coverage (the crawler's Figure 8 join, carried
/// into the trace by `node_as` records) for *dark slots*: ASes that
/// have not produced a single synced node across `skew_dark_ticks`
/// ticks. Sightings only count on gated ticks — ticks where the global
/// synced fraction reaches `skew_gate_permille` — because a
/// mid-propagation sample says nothing about which ASes are cut off
/// (right after a mine, almost every AS has zero synced nodes for a
/// while, benign or not). The score is the node-population share living
/// in dark slots, in per-mille; a spatial cut turns exactly the cut
/// ASes dark while benign operation re-lights every populated slot on
/// each near-full sync. A partition wide enough to suppress gated ticks
/// altogether (no side ever reaches the gate) turns *every* slot dark,
/// which is the correct verdict too. Alerts carry the most-populated
/// dark slot so the operator can name the AS.
#[derive(Debug)]
pub struct AsSkewDetector {
    config: DetectConfig,
    last_lit: Vec<u64>,
    seen: u64,
    streak: u64,
}

impl AsSkewDetector {
    /// New detector with the given tuning.
    pub fn new(config: DetectConfig) -> Self {
        Self {
            config,
            last_lit: Vec::new(),
            seen: 0,
            streak: 0,
        }
    }
}

impl Detector for AsSkewDetector {
    fn name(&self) -> &'static str {
        "as_skew"
    }

    fn kind(&self) -> TraceKind {
        TraceKind::DetectAsSkew
    }

    fn observe(&mut self, tick: &Tick, state: &StreamState) -> Option<Alert> {
        let pop = state.slot_population();
        let total_pop: u64 = pop.iter().sum();
        if total_pop == 0 {
            // No node→AS join in this trace: nothing to watch.
            return None;
        }
        self.seen += 1;
        // Slots start lit: darkness is measured from the stream's
        // start, so a slot must stay unseen for the full dark window
        // before it can contribute to the score.
        self.last_lit.resize(pop.len(), 0);
        let gated =
            tick.total > 0 && tick.synced * 1000 / tick.total >= self.config.skew_gate_permille;
        if gated {
            for (slot, &count) in state.as_synced().iter().enumerate() {
                if count > 0 {
                    self.last_lit[slot] = self.seen;
                }
            }
        }
        let mut dark_pop = 0u64;
        let mut worst_slot = 0u32;
        let mut worst_pop = 0u64;
        for (slot, &count) in pop.iter().enumerate() {
            if count == 0 || self.seen - self.last_lit[slot] < self.config.skew_dark_ticks {
                continue;
            }
            dark_pop += count;
            if count > worst_pop {
                worst_pop = count;
                worst_slot = slot as u32;
            }
        }
        let permille = dark_pop * 1000 / total_pop;
        let breached = permille >= self.config.skew_threshold_permille;
        if self.seen <= self.config.warmup_ticks {
            self.streak = 0;
            return None;
        }
        self.streak = if breached { self.streak + 1 } else { 0 };
        (self.streak >= self.config.confirm_ticks).then_some(Alert {
            node: worst_slot,
            a: permille,
            b: state.slot_asn()[worst_slot as usize],
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bp_obs::trace::TraceRecord;

    fn rec(time: u64, node: u32, kind: TraceKind, a: u64, b: u64) -> TraceRecord {
        TraceRecord {
            time,
            node,
            kind,
            a,
            b,
        }
    }

    /// Synthetic steady network: `n` nodes all accept each minute-block;
    /// from `cut_at` on, the top half stops accepting.
    fn run_suite(config: DetectConfig, ticks: u64, cut_at: u64) -> Vec<(u64, TraceKind)> {
        let mut state = StreamState::new();
        let mut suite = standard_suite(config);
        let mut fired = Vec::new();
        let n = 10u32;
        // AS-coherent halves: nodes 0..5 in AS 100 (slot 0), 5..10 in
        // AS 101 (slot 1) — the cut silences exactly slot 1.
        for i in 0..n {
            state.consume(&rec(
                0,
                i,
                TraceKind::NodeAs,
                100 + (i / 5) as u64,
                (i / 5) as u64,
            ));
        }
        for t in 0..ticks {
            let ms = (t + 1) * 60_000;
            let height = t + 1;
            state.consume(&rec(ms - 500, 0, TraceKind::Mine, height, height));
            let receivers = if t >= cut_at { n / 2 } else { n };
            for i in 0..receivers {
                state.consume(&rec(ms - 400, i, TraceKind::BlockAccept, height, height));
                state.consume(&rec(ms - 400, i, TraceKind::InvRelay, height, 8));
                state.consume(&rec(
                    ms - 300,
                    i,
                    TraceKind::GetData,
                    height,
                    (i + 1) as u64 % n as u64,
                ));
            }
            let tick = state
                .consume(&rec(
                    ms,
                    n,
                    TraceKind::CrawlSample,
                    receivers as u64,
                    height,
                ))
                .unwrap();
            for d in suite.iter_mut() {
                if d.observe(&tick, &state).is_some() {
                    fired.push((t, d.kind()));
                }
            }
        }
        fired
    }

    #[test]
    fn benign_steady_state_is_quiet() {
        let fired = run_suite(DetectConfig::default(), 100, u64::MAX);
        assert!(fired.is_empty(), "false positives: {fired:?}");
    }

    #[test]
    fn a_half_cut_trips_the_suite() {
        let config = DetectConfig::default();
        let fired = run_suite(config, 100, 30);
        for kind in TraceKind::DETECT {
            assert!(
                fired.iter().any(|&(_, k)| k == kind),
                "{kind:?} never fired: {fired:?}"
            );
        }
        // Nothing fires before the cut.
        assert!(fired.iter().all(|&(t, _)| t >= 30), "{fired:?}");
        // The inv-rate collapse is the fast path: it reacts to the
        // first post-cut blocks, well before the staleness census has
        // confirmed its persistence streak.
        let first_inv = fired
            .iter()
            .find(|&&(_, k)| k == TraceKind::DetectInvCollapse)
            .unwrap()
            .0;
        let first_blockaware = fired
            .iter()
            .find(|&&(_, k)| k == TraceKind::DetectBlockAware)
            .unwrap()
            .0;
        assert!(first_inv < first_blockaware, "{fired:?}");
    }

    #[test]
    fn blockaware_needs_an_advancing_tip() {
        let mut state = StreamState::new();
        let config = DetectConfig {
            blockaware_confirm_ticks: 1,
            ..DetectConfig::default()
        };
        let mut det = BlockAwareDetector::new(config);
        for i in 0..4u32 {
            state.consume(&rec(1000, i, TraceKind::BlockAccept, 1, 1));
        }
        // An hour of silence — no mining anywhere: no alarm.
        let tick = state
            .consume(&rec(3_600_000, 4, TraceKind::CrawlSample, 4, 1))
            .unwrap();
        assert!(det.observe(&tick, &state).is_none());
        // The tip advances without them: alarm.
        state.consume(&rec(3_600_000, 0, TraceKind::Mine, 2, 2));
        state.consume(&rec(3_601_000, 0, TraceKind::BlockAccept, 2, 2));
        let tick = state
            .consume(&rec(4_202_000, 4, TraceKind::CrawlSample, 1, 2))
            .unwrap();
        let alert = det.observe(&tick, &state).expect("stale majority");
        assert_eq!(alert.b, 3);
        assert_eq!(alert.a, 750);
    }

    #[test]
    fn blockaware_persistence_gate_outlasts_propagation_spikes() {
        let config = DetectConfig::default();
        let mut det = BlockAwareDetector::new(config);
        let mut state = StreamState::new();
        // Nodes 1..4 accepted block 1 long ago; node 0 keeps the tip
        // advancing, so 750‰ of the census is armed at every tick.
        for i in 0..4u32 {
            state.consume(&rec(1000, i, TraceKind::BlockAccept, 1, 1));
        }
        state.consume(&rec(2_000_000, 0, TraceKind::Mine, 2, 2));
        state.consume(&rec(2_000_100, 0, TraceKind::BlockAccept, 2, 2));
        let mut fired_at = None;
        for k in 0..20u64 {
            let t = 2_700_000 + k * 60_000;
            let tick = state
                .consume(&rec(t, 4, TraceKind::CrawlSample, 1, 2))
                .unwrap();
            if det.observe(&tick, &state).is_some() {
                fired_at = Some(k);
                break;
            }
        }
        // A spike shorter than the confirm streak never fires; the
        // sustained census fires exactly at the streak length.
        assert_eq!(fired_at, Some(config.blockaware_confirm_ticks - 1));
    }
}
