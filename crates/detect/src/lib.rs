//! Streaming partition detection over the flight recorder — the
//! defender's view.
//!
//! The attacks in this workspace end with a network split; the paper's
//! BlockAware countermeasure (§VI) is the victim noticing. This crate
//! generalizes that into a detection *suite*: it consumes the 32-byte
//! trace records the simulation already emits ([`bp_obs::trace`]) —
//! either online, tapped off the pipeline's `TraceHub` while the
//! simulation runs, or offline from a committed `trace.bin` — maintains
//! rolling-window observables (per-node block-staleness bands, inv
//! fan-out rate, per-AS sync-share skew, reorg-depth spikes, the
//! getdata/inv ratio), and feeds them to pluggable [`Detector`]s.
//!
//! Everything is integer / fixed-point arithmetic over an already
//! deterministic record stream, so the alert stream is byte-identical at
//! any `--jobs`/`--shards` and between the online tap and offline
//! replay. Detectors emit alerts as ordinary trace records
//! ([`bp_obs::trace::TraceCategory::Detect`] kinds), so every existing
//! trace tool (summary, filter, diff, jsonl) works on alert streams too.
//!
//! [`score`] turns ground-truth `partition_apply` / `partition_heal`
//! records into attack windows and grades each detector by detection
//! latency and false-positive rate — the `detection_roc.csv` axis the
//! paper's BlockAware countermeasure analysis (§VI) is a single point
//! on.
//!
//! # Example: offline replay
//!
//! ```
//! use bp_detect::{DetectConfig, DetectEngine};
//! use bp_obs::trace::{TraceKind, TraceRecord};
//!
//! // A two-node network where node 1 goes dark after ten minutes
//! // while the tip keeps advancing: the BlockAware detector fires once
//! // the staleness persists past its confirm streak.
//! let mut records = Vec::new();
//! for i in 0..45u64 {
//!     let t = (i + 1) * 60_000;
//!     records.push(TraceRecord {
//!         time: t, node: 0, kind: TraceKind::Mine, a: i, b: i + 1,
//!     });
//!     records.push(TraceRecord {
//!         time: t, node: 0, kind: TraceKind::BlockAccept, a: i, b: i + 1,
//!     });
//!     if i < 10 {
//!         records.push(TraceRecord {
//!             time: t, node: 1, kind: TraceKind::BlockAccept, a: i, b: i + 1,
//!         });
//!     }
//!     records.push(TraceRecord {
//!         time: t, node: 2, kind: TraceKind::CrawlSample,
//!         a: if i < 10 { 2 } else { 1 }, b: i + 1,
//!     });
//! }
//! let mut engine = DetectEngine::new(DetectConfig::default());
//! engine.feed_all(&records);
//! let report = engine.finish();
//! assert!(report
//!     .alerts
//!     .iter()
//!     .any(|r| r.kind == TraceKind::DetectBlockAware));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod detector;
pub mod engine;
pub mod observe;
pub mod score;

pub use detector::{standard_suite, Alert, DetectConfig, Detector};
pub use engine::{DetectEngine, DetectReport, OnlineTap};
pub use observe::{StreamState, Tick};
pub use score::{attack_windows, score_detectors, AttackWindow, DetectorScore};
