//! Rolling-window observables reconstructed from the record stream.
//!
//! [`StreamState`] replays net/crawler records the same way
//! `bp_obs::trace::timeline` does — per-node tip heights, the network
//! best from `Mine` records — and additionally keeps per-node last-accept
//! times, the node→AS slot join from `node_as` records, and window
//! accumulators (invs, getdatas, mines, reorg depth) that are cut on
//! every `crawl_sample` record. Detectors are evaluated once per such
//! [`Tick`], the crawler's own cadence, and never see raw
//! `partition_apply` / `partition_heal` ground truth: those records are
//! deliberately not part of the state, so detectors can only infer a
//! partition from its symptoms.

use bp_attacks::countermeasures::blockaware_stale;
use bp_obs::trace::{TraceKind, TraceRecord};
use std::collections::BTreeMap;

/// Marks "never" in per-node last-accept times.
const NEVER: u64 = u64::MAX;

/// Per-block announcement trains retained for the inv-collapse
/// detector, bounded to the most recent blocks.
const MAX_TRAINS: usize = 256;

/// One evaluation point: the observables cut at a `crawl_sample` record.
/// Window fields cover everything since the previous tick.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Tick {
    /// Sample time (simulated milliseconds).
    pub t_ms: u64,
    /// 0-based tick ordinal.
    pub seq: u64,
    /// Total node count at the sample.
    pub total: u64,
    /// Synced (lag-0) node count reported by the crawler.
    pub synced: u64,
    /// Network best height at the sample.
    pub best: u64,
    /// Inv announcements in the window.
    pub inv_count: u64,
    /// Sum of peers notified across those announcements.
    pub inv_peers: u64,
    /// Getdata requests served in the window.
    pub getdata_count: u64,
    /// Blocks mined in the window.
    pub mine_count: u64,
    /// Deepest reorg begun in the window (0 when none).
    pub max_reorg_depth: u64,
}

/// Replayed per-node / per-AS state shared by all detectors.
#[derive(Debug, Clone, Default)]
pub struct StreamState {
    heights: Vec<u64>,
    last_accept_ms: Vec<u64>,
    node_slot: Vec<u32>,
    slot_asn: Vec<u64>,
    slot_pop: Vec<u64>,
    trains: BTreeMap<u64, (u64, u64)>,
    network_best: u64,
    total_nodes: u64,
    // Window accumulators, reset at every tick.
    inv_count: u64,
    inv_peers: u64,
    getdata_count: u64,
    mine_count: u64,
    max_reorg_depth: u64,
    // Running totals for the report.
    records: u64,
    inv_total: u64,
    getdata_total: u64,
    ticks: u64,
    // Derived at each tick.
    lag_counts: [u64; 5],
    as_synced: Vec<u64>,
}

impl StreamState {
    /// Fresh, empty state.
    pub fn new() -> Self {
        Self::default()
    }

    /// Consumes one net/crawler record; returns the cut observables when
    /// the record is a sample tick. Attack- and detect-category records
    /// must be filtered out by the caller (the engine does).
    pub fn consume(&mut self, r: &TraceRecord) -> Option<Tick> {
        self.records += 1;
        match r.kind {
            TraceKind::Mine => {
                self.network_best = self.network_best.max(r.b);
                self.mine_count += 1;
                self.trains.insert(r.a, (self.ticks, 0));
                while self.trains.len() > MAX_TRAINS {
                    self.trains.pop_first();
                }
            }
            TraceKind::BlockAccept => {
                let idx = r.node as usize;
                if idx >= self.heights.len() {
                    self.heights.resize(idx + 1, 0);
                    self.last_accept_ms.resize(idx + 1, NEVER);
                }
                self.heights[idx] = r.b;
                self.last_accept_ms[idx] = r.time;
            }
            TraceKind::InvRelay => {
                self.inv_count += 1;
                self.inv_peers += r.b;
                self.inv_total += 1;
                // Attribute the announcement to its block's train;
                // blocks mined before the stream began are unknown and
                // simply not scored.
                if let Some(train) = self.trains.get_mut(&r.a) {
                    train.1 += 1;
                }
            }
            TraceKind::GetData => {
                self.getdata_count += 1;
                self.getdata_total += 1;
            }
            TraceKind::ReorgBegin => {
                self.max_reorg_depth = self.max_reorg_depth.max(r.a);
            }
            TraceKind::NodeAs => {
                let node = r.node as usize;
                if node >= self.node_slot.len() {
                    self.node_slot.resize(node + 1, u32::MAX);
                }
                let slot = r.b as usize;
                if slot >= self.slot_asn.len() {
                    self.slot_asn.resize(slot + 1, 0);
                    self.slot_pop.resize(slot + 1, 0);
                }
                // Re-announcing a node (replays concatenate streams)
                // moves it rather than double-counting it.
                let old = self.node_slot[node];
                if old != u32::MAX {
                    self.slot_pop[old as usize] -= 1;
                }
                self.node_slot[node] = r.b as u32;
                self.slot_asn[slot] = r.a;
                self.slot_pop[slot] += 1;
            }
            TraceKind::CrawlSample => {
                self.network_best = self.network_best.max(r.b);
                self.total_nodes = r.node as u64;
                let total = r.node as usize;
                if total > self.heights.len() {
                    self.heights.resize(total, 0);
                    self.last_accept_ms.resize(total, NEVER);
                }
                self.cut_tick_derived(total);
                let tick = Tick {
                    t_ms: r.time,
                    seq: self.ticks,
                    total: r.node as u64,
                    synced: r.a,
                    best: self.network_best,
                    inv_count: self.inv_count,
                    inv_peers: self.inv_peers,
                    getdata_count: self.getdata_count,
                    mine_count: self.mine_count,
                    max_reorg_depth: self.max_reorg_depth,
                };
                self.ticks += 1;
                self.inv_count = 0;
                self.inv_peers = 0;
                self.getdata_count = 0;
                self.mine_count = 0;
                self.max_reorg_depth = 0;
                return Some(tick);
            }
            _ => {}
        }
        None
    }

    /// Classifies every node's lag into the crawler's five bands and
    /// tallies synced nodes per AS slot.
    fn cut_tick_derived(&mut self, total: usize) {
        self.lag_counts = [0; 5];
        self.as_synced.clear();
        self.as_synced.resize(self.slot_asn.len(), 0);
        for (i, &h) in self.heights.iter().take(total).enumerate() {
            let lag = self.network_best.saturating_sub(h);
            let class = match lag {
                0 => 0,
                1 => 1,
                2..=4 => 2,
                5..=10 => 3,
                _ => 4,
            };
            self.lag_counts[class] += 1;
            if lag == 0 {
                if let Some(&slot) = self.node_slot.get(i) {
                    if slot != u32::MAX {
                        self.as_synced[slot as usize] += 1;
                    }
                }
            }
        }
    }

    /// Lag-band counts at the last tick:
    /// `[synced, one_behind, two_to_four, five_to_ten, ten_plus]`.
    pub fn lag_counts(&self) -> [u64; 5] {
        self.lag_counts
    }

    /// Synced-node counts per AS slot at the last tick (empty when the
    /// trace carries no `node_as` join).
    pub fn as_synced(&self) -> &[u64] {
        &self.as_synced
    }

    /// AS numbers per slot, as carried by `node_as` records.
    pub fn slot_asn(&self) -> &[u64] {
        &self.slot_asn
    }

    /// Node population per AS slot, from the `node_as` join.
    pub fn slot_population(&self) -> &[u64] {
        &self.slot_pop
    }

    /// Per-block announcement trains: dense block id → `(mine_tick,
    /// invs attributed so far)`, bounded to the most recent blocks.
    /// `inv_relay` records carry their block's dense id in `a`, and so
    /// do `mine` records, which is what makes exact attribution
    /// possible — no windowing, no tail leakage.
    pub fn inv_trains(&self) -> &BTreeMap<u64, (u64, u64)> {
        &self.trains
    }

    /// Counts nodes that are behind an *advancing* tip and have not
    /// accepted a block for more than `threshold_secs` — the BlockAware
    /// staleness predicate applied per node, gated on `height <
    /// network_best` so quiet-but-synced gaps (no blocks mined anywhere)
    /// do not count. Returns `(stale, tracked)` where `tracked` is the
    /// number of nodes that ever accepted a block.
    pub fn stale_nodes(&self, t_ms: u64, threshold_secs: u64) -> (u64, u64) {
        let total = (self.total_nodes as usize).min(self.heights.len());
        let mut stale = 0;
        let mut tracked = 0;
        for i in 0..total {
            if self.last_accept_ms[i] == NEVER {
                continue;
            }
            tracked += 1;
            if self.heights[i] < self.network_best
                && blockaware_stale(t_ms / 1000, self.last_accept_ms[i] / 1000, threshold_secs)
            {
                stale += 1;
            }
        }
        (stale, tracked)
    }

    /// Records consumed so far.
    pub fn records(&self) -> u64 {
        self.records
    }

    /// Ticks cut so far.
    pub fn ticks(&self) -> u64 {
        self.ticks
    }

    /// Total inv announcements seen.
    pub fn inv_total(&self) -> u64 {
        self.inv_total
    }

    /// Total getdata requests seen.
    pub fn getdata_total(&self) -> u64 {
        self.getdata_total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(time: u64, node: u32, kind: TraceKind, a: u64, b: u64) -> TraceRecord {
        TraceRecord {
            time,
            node,
            kind,
            a,
            b,
        }
    }

    #[test]
    fn ticks_cut_window_accumulators() {
        let mut s = StreamState::new();
        assert!(s.consume(&rec(10, 0, TraceKind::Mine, 0, 1)).is_none());
        assert!(s.consume(&rec(11, 0, TraceKind::InvRelay, 0, 8)).is_none());
        assert!(s.consume(&rec(12, 1, TraceKind::GetData, 0, 0)).is_none());
        assert!(s
            .consume(&rec(13, 1, TraceKind::BlockAccept, 0, 1))
            .is_none());
        let tick = s
            .consume(&rec(60_000, 2, TraceKind::CrawlSample, 1, 1))
            .unwrap();
        assert_eq!(tick.seq, 0);
        assert_eq!(tick.mine_count, 1);
        assert_eq!(tick.inv_count, 1);
        assert_eq!(tick.inv_peers, 8);
        assert_eq!(tick.getdata_count, 1);
        assert_eq!(tick.best, 1);
        // Node 1 accepted height 1 (synced); node 0 never accepted.
        assert_eq!(s.lag_counts(), [1, 1, 0, 0, 0]);
        // Window resets.
        let tick = s
            .consume(&rec(120_000, 2, TraceKind::CrawlSample, 1, 1))
            .unwrap();
        assert_eq!(tick.seq, 1);
        assert_eq!(tick.mine_count, 0);
        assert_eq!(tick.inv_count, 0);
    }

    #[test]
    fn staleness_requires_an_advancing_tip() {
        let mut s = StreamState::new();
        s.consume(&rec(1000, 0, TraceKind::BlockAccept, 0, 1));
        s.consume(&rec(1000, 1, TraceKind::BlockAccept, 0, 1));
        s.consume(&rec(60_000, 2, TraceKind::CrawlSample, 2, 1));
        // A long quiet gap with no new blocks: nobody is stale, the tip
        // is not advancing.
        assert_eq!(s.stale_nodes(2_000_000, 600), (0, 2));
        // The network advances but node 1 never hears of it.
        s.consume(&rec(2_000_000, 0, TraceKind::Mine, 1, 2));
        s.consume(&rec(2_000_100, 0, TraceKind::BlockAccept, 1, 2));
        s.consume(&rec(2_040_000, 2, TraceKind::CrawlSample, 1, 2));
        assert_eq!(s.stale_nodes(2_000_000 + 601_000, 600), (1, 2));
    }

    #[test]
    fn node_as_join_feeds_per_slot_synced_counts() {
        let mut s = StreamState::new();
        s.consume(&rec(0, 0, TraceKind::NodeAs, 100, 0));
        s.consume(&rec(0, 1, TraceKind::NodeAs, 200, 1));
        s.consume(&rec(0, 2, TraceKind::NodeAs, 100, 0));
        s.consume(&rec(10, 0, TraceKind::BlockAccept, 0, 1));
        s.consume(&rec(10, 2, TraceKind::BlockAccept, 0, 1));
        s.consume(&rec(20, 0, TraceKind::Mine, 0, 1));
        s.consume(&rec(60_000, 3, TraceKind::CrawlSample, 2, 1));
        assert_eq!(s.as_synced(), &[2, 0]);
        assert_eq!(s.slot_asn(), &[100, 200]);
    }
}
