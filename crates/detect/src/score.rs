//! Scoring: detection latency vs false-positive rate.
//!
//! The simulation records ground truth the detectors never see:
//! `partition_apply` / `partition_heal` trace events. This module turns
//! them into attack windows and grades an alert stream against them —
//! per detector, the latency from the cut to the first in-window alert,
//! and the fraction of benign evaluation ticks that carried a false
//! alert. The paper's BlockAware analysis (§VI) trades these two axes
//! with a closed-form model (a false-alarm rate of e^-1 per honest
//! block at the 600 s threshold); here the same trade-off is measured
//! on simulated evidence.

use crate::engine::DetectReport;
use bp_obs::trace::{TraceKind, TraceRecord};
use std::fmt::Write as _;

/// One ground-truth attack window, from a `partition_apply` record to
/// its matching `partition_heal` (or the end of the trace).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AttackWindow {
    /// When the partition was applied (ms).
    pub apply_ms: u64,
    /// When it was healed (ms); `u64::MAX` when it never was.
    pub heal_ms: u64,
}

impl AttackWindow {
    /// Whether `t_ms` falls into this window, extended by `grace_ms`
    /// past the heal (recovering state may legitimately still alarm).
    pub fn covers(&self, t_ms: u64, grace_ms: u64) -> bool {
        t_ms >= self.apply_ms && t_ms <= self.heal_ms.saturating_add(grace_ms)
    }
}

/// Extracts attack windows from a trace, pairing each `partition_apply`
/// with the next `partition_heal`.
pub fn attack_windows(records: &[TraceRecord]) -> Vec<AttackWindow> {
    let mut windows = Vec::new();
    let mut open: Option<u64> = None;
    for r in records {
        match r.kind {
            TraceKind::PartitionApply if open.is_none() => {
                open = Some(r.time);
            }
            TraceKind::PartitionHeal => {
                if let Some(apply_ms) = open.take() {
                    windows.push(AttackWindow {
                        apply_ms,
                        heal_ms: r.time,
                    });
                }
            }
            _ => {}
        }
    }
    if let Some(apply_ms) = open {
        windows.push(AttackWindow {
            apply_ms,
            heal_ms: u64::MAX,
        });
    }
    windows
}

/// One detector's grade against the ground truth.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DetectorScore {
    /// Detector name (suite order preserved).
    pub detector: String,
    /// Total alerts emitted.
    pub alerts: u64,
    /// Alerts inside an attack window (+grace).
    pub true_alerts: u64,
    /// Alerts outside every window — false positives.
    pub false_alerts: u64,
    /// Milliseconds from the first window's apply to the first in-window
    /// alert; `None` when the detector never fired in a window.
    pub latency_ms: Option<u64>,
    /// Evaluation ticks outside every window (+grace) — the FPR
    /// denominator.
    pub benign_ticks: u64,
    /// False-positive rate: false-alert ticks per mille of benign ticks.
    pub fpr_permille: u64,
}

/// Grades a report against the ground truth carried by `records`.
///
/// `tick_times` are the evaluation instants (one per crawler tick, as
/// the engine saw them); `grace_ms` extends each window past its heal.
/// A detector emits at most one alert per tick, so alert counts and
/// alert-tick counts coincide.
pub fn score_detectors(
    records: &[TraceRecord],
    report: &DetectReport,
    grace_ms: u64,
) -> Vec<DetectorScore> {
    let windows = attack_windows(records);
    let tick_times: Vec<u64> = records
        .iter()
        .filter(|r| r.kind == TraceKind::CrawlSample)
        .map(|r| r.time)
        .collect();
    let benign_ticks = tick_times
        .iter()
        .filter(|&&t| !windows.iter().any(|w| w.covers(t, grace_ms)))
        .count() as u64;

    report
        .alert_counts
        .iter()
        .map(|(name, _)| {
            let kind = kind_of(name, &report.alerts);
            let mine: Vec<&TraceRecord> = report
                .alerts
                .iter()
                .filter(|r| Some(r.kind) == kind)
                .collect();
            let mut true_alerts = 0u64;
            let mut false_alerts = 0u64;
            let mut latency_ms = None;
            for r in &mine {
                if windows.iter().any(|w| w.covers(r.time, grace_ms)) {
                    true_alerts += 1;
                    if latency_ms.is_none() {
                        if let Some(w) = windows.iter().find(|w| w.covers(r.time, grace_ms)) {
                            latency_ms = Some(r.time.saturating_sub(w.apply_ms));
                        }
                    }
                } else {
                    false_alerts += 1;
                }
            }
            let fpr_permille = (false_alerts * 1000).checked_div(benign_ticks).unwrap_or(0);
            DetectorScore {
                detector: name.clone(),
                alerts: mine.len() as u64,
                true_alerts,
                false_alerts,
                latency_ms,
                benign_ticks,
                fpr_permille,
            }
        })
        .collect()
}

/// Resolves a suite entry's alert kind from the alerts it emitted. A
/// detector that never fired has no kind on record; scoring still lists
/// it (zero alerts, no latency).
fn kind_of(name: &str, alerts: &[TraceRecord]) -> Option<TraceKind> {
    let kind = match name {
        "blockaware" => TraceKind::DetectBlockAware,
        "stale_ewma" => TraceKind::DetectStaleEwma,
        "inv_collapse" => TraceKind::DetectInvCollapse,
        "as_skew" => TraceKind::DetectAsSkew,
        _ => return alerts.first().map(|r| r.kind),
    };
    Some(kind)
}

/// Renders scores for one scenario as `detection_roc.csv` rows (no
/// header): `scenario,detector,alerts,true_alerts,false_alerts,
/// latency_secs,fpr_permille` with `latency_secs = -1` when the
/// detector never fired inside a window.
pub fn roc_rows(scenario: &str, scores: &[DetectorScore]) -> String {
    let mut out = String::new();
    for s in scores {
        let latency = match s.latency_ms {
            Some(ms) => (ms / 1000) as i64,
            None => -1,
        };
        let _ = writeln!(
            out,
            "{scenario},{},{},{},{},{latency},{}",
            s.detector, s.alerts, s.true_alerts, s.false_alerts, s.fpr_permille
        );
    }
    out
}

/// The `detection_roc.csv` header matching [`roc_rows`].
pub const ROC_HEADER: &str =
    "scenario,detector,alerts,true_alerts,false_alerts,latency_secs,fpr_permille\n";

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(time: u64, kind: TraceKind) -> TraceRecord {
        TraceRecord {
            time,
            node: u32::MAX,
            kind,
            a: 0,
            b: 0,
        }
    }

    #[test]
    fn windows_pair_apply_with_heal() {
        let records = vec![
            rec(100, TraceKind::PartitionApply),
            rec(900, TraceKind::PartitionHeal),
            rec(2000, TraceKind::PartitionApply),
        ];
        let w = attack_windows(&records);
        assert_eq!(w.len(), 2);
        assert_eq!(w[0].apply_ms, 100);
        assert_eq!(w[0].heal_ms, 900);
        assert_eq!(w[1].heal_ms, u64::MAX);
        assert!(w[0].covers(950, 100));
        assert!(!w[0].covers(1001, 100));
        assert!(!w[0].covers(99, 0));
    }

    #[test]
    fn scoring_splits_true_and_false_alerts() {
        let records = vec![
            rec(60_000, TraceKind::CrawlSample),
            rec(120_000, TraceKind::CrawlSample),
            rec(150_000, TraceKind::PartitionApply),
            rec(180_000, TraceKind::CrawlSample),
            rec(240_000, TraceKind::CrawlSample),
            rec(250_000, TraceKind::PartitionHeal),
            rec(300_000, TraceKind::CrawlSample),
        ];
        let report = DetectReport {
            alerts: vec![
                rec(120_000, TraceKind::DetectBlockAware), // before the cut: false
                rec(240_000, TraceKind::DetectBlockAware), // in window: true
            ],
            alert_counts: vec![("blockaware".into(), 2)],
            ticks: 5,
            records: 7,
            inv_total: 0,
            getdata_total: 0,
        };
        let scores = score_detectors(&records, &report, 0);
        assert_eq!(scores.len(), 1);
        let s = &scores[0];
        assert_eq!(s.alerts, 2);
        assert_eq!(s.true_alerts, 1);
        assert_eq!(s.false_alerts, 1);
        assert_eq!(s.latency_ms, Some(90_000));
        // Benign ticks: 60k, 120k, 300k.
        assert_eq!(s.benign_ticks, 3);
        assert_eq!(s.fpr_permille, 333);

        let csv = roc_rows("test", &scores);
        assert_eq!(csv, "test,blockaware,2,1,1,90,333\n");
    }
}
