//! The detection engine: records in, alert records out.
//!
//! [`DetectEngine`] pairs a [`StreamState`] with a detector suite and
//! runs the suite once per crawler tick, stamping each firing into an
//! alert [`Tracer`]. It consumes exactly the net/crawler portion of a
//! trace — attack-category records live in a different time domain and
//! detect-category records are the engine's own output, so both are
//! skipped, which makes replaying a trace that already carries alerts
//! idempotent: the recomputed alert stream is byte-identical.
//!
//! [`OnlineTap`] adapts the engine to the pipeline's `TraceHub`: stream
//! deposits arrive in nondeterministic completion order, so the tap
//! buffers them keyed by `(rank, name)` — the hub's own merge key — and
//! [`OnlineTap::merged`] replays them in sorted order, reproducing the
//! exact byte stream an offline `trace.bin` replay would see.

use crate::detector::{standard_suite, DetectConfig, Detector};
use crate::observe::{StreamState, Tick};
use bp_obs::trace::{TraceCategory, TraceRecord, Tracer};
use bp_obs::Registry;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::Mutex;

/// Streaming detection over trace records.
pub struct DetectEngine {
    state: StreamState,
    detectors: Vec<Box<dyn Detector>>,
    counts: Vec<u64>,
    alerts: Tracer,
}

impl std::fmt::Debug for DetectEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DetectEngine")
            .field("detectors", &self.names())
            .field("ticks", &self.state.ticks())
            .field("alerts", &self.alerts.len())
            .finish()
    }
}

impl DetectEngine {
    /// An engine running the standard four-detector suite.
    pub fn new(config: DetectConfig) -> Self {
        Self::with_detectors(standard_suite(config))
    }

    /// An engine running a custom suite (evaluation order = vec order).
    pub fn with_detectors(detectors: Vec<Box<dyn Detector>>) -> Self {
        let counts = vec![0; detectors.len()];
        Self {
            state: StreamState::new(),
            detectors,
            counts,
            alerts: Tracer::new(),
        }
    }

    /// Detector names, in evaluation order.
    pub fn names(&self) -> Vec<&'static str> {
        self.detectors.iter().map(|d| d.name()).collect()
    }

    /// Consumes one record; detectors run when it is a sample tick.
    pub fn feed(&mut self, r: &TraceRecord) {
        match r.kind.category() {
            TraceCategory::Attack | TraceCategory::Detect => return,
            TraceCategory::Net | TraceCategory::Crawler => {}
        }
        if let Some(tick) = self.state.consume(r) {
            self.run_suite(&tick);
        }
    }

    /// Consumes a record slice in order.
    pub fn feed_all(&mut self, records: &[TraceRecord]) {
        for r in records {
            self.feed(r);
        }
    }

    fn run_suite(&mut self, tick: &Tick) {
        for (i, d) in self.detectors.iter_mut().enumerate() {
            if let Some(alert) = d.observe(tick, &self.state) {
                self.counts[i] += 1;
                self.alerts
                    .record(d.kind(), tick.t_ms, alert.node, alert.a, alert.b);
            }
        }
    }

    /// Alerts emitted so far (the engine keeps running).
    pub fn alerts(&self) -> Vec<TraceRecord> {
        self.alerts.records()
    }

    /// Finalizes into a report.
    pub fn finish(self) -> DetectReport {
        let alert_counts = self
            .detectors
            .iter()
            .zip(&self.counts)
            .map(|(d, &n)| (d.name().to_string(), n))
            .collect();
        DetectReport {
            alerts: self.alerts.into_records(),
            alert_counts,
            ticks: self.state.ticks(),
            records: self.state.records(),
            inv_total: self.state.inv_total(),
            getdata_total: self.state.getdata_total(),
        }
    }
}

/// What one detection run produced.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DetectReport {
    /// The alert stream, in emission order (tick-major, suite order
    /// within a tick).
    pub alerts: Vec<TraceRecord>,
    /// Alerts per detector, in suite order.
    pub alert_counts: Vec<(String, u64)>,
    /// Crawler ticks evaluated.
    pub ticks: u64,
    /// Records consumed (net + crawler).
    pub records: u64,
    /// Inv announcements seen (getdata/inv ratio numeratorless half).
    pub inv_total: u64,
    /// Getdata requests seen.
    pub getdata_total: u64,
}

impl DetectReport {
    /// The getdata/inv ratio observable, in milli (1000 = parity).
    pub fn getdata_per_inv_milli(&self) -> u64 {
        (self.getdata_total * 1000)
            .checked_div(self.inv_total)
            .unwrap_or(0)
    }

    /// Exports `detect.*` counters: consumed records/ticks, the total
    /// and per-detector alert counts, and the getdata/inv ratio.
    pub fn export_metrics(&self, reg: &Registry) {
        reg.add("detect.records", self.records);
        reg.add("detect.ticks", self.ticks);
        reg.add("detect.alerts", self.alerts.len() as u64);
        for (name, n) in &self.alert_counts {
            reg.add(&format!("detect.alerts.{name}"), *n);
        }
        reg.add("detect.getdata_per_inv_milli", self.getdata_per_inv_milli());
    }

    /// Deterministic plain-text report.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "records: {}   ticks: {}   getdata/inv: {} milli",
            self.records,
            self.ticks,
            self.getdata_per_inv_milli()
        );
        let _ = writeln!(out, "alerts: {}", self.alerts.len());
        for (name, n) in &self.alert_counts {
            let _ = writeln!(out, "  {name:<16} {n}");
        }
        if let (Some(first), Some(last)) = (self.alerts.first(), self.alerts.last()) {
            let _ = writeln!(
                out,
                "alert span: {}s..{}s",
                first.time / 1000,
                last.time / 1000
            );
        }
        out
    }
}

/// Buffers `TraceHub` stream deposits for deterministic online replay.
///
/// Register a closure forwarding to [`absorb`](Self::absorb) as the
/// hub's tap; once the pipeline finishes, [`merged`](Self::merged)
/// yields the records in the hub's own `(rank, name)` merge order —
/// byte-identical to `hub.merged()` and therefore to the exported
/// `trace.bin`, at any worker count. Re-deposits of a stream key
/// overwrite (last wins), matching hub semantics.
#[derive(Debug, Default)]
pub struct OnlineTap {
    streams: Mutex<BTreeMap<(u32, String), Vec<TraceRecord>>>,
}

impl OnlineTap {
    /// An empty tap.
    pub fn new() -> Self {
        Self::default()
    }

    /// Stores one stream deposit (thread-safe; called from worker
    /// threads as tasks publish their tracers).
    pub fn absorb(&self, rank: u32, name: &str, records: &[TraceRecord]) {
        self.streams
            .lock()
            .expect("tap lock")
            .insert((rank, name.to_string()), records.to_vec());
    }

    /// All buffered records, concatenated in ascending `(rank, name)`
    /// order.
    pub fn merged(&self) -> Vec<TraceRecord> {
        let streams = self.streams.lock().expect("tap lock");
        let mut out = Vec::with_capacity(streams.values().map(Vec::len).sum());
        for records in streams.values() {
            out.extend_from_slice(records);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bp_obs::trace::TraceKind;

    #[test]
    fn engine_skips_attack_and_detect_records() {
        let mut engine = DetectEngine::new(DetectConfig::default());
        engine.feed(&TraceRecord {
            time: 1,
            node: 0,
            kind: TraceKind::GridMine,
            a: 1,
            b: 1,
        });
        engine.feed(&TraceRecord {
            time: 2,
            node: u32::MAX,
            kind: TraceKind::DetectBlockAware,
            a: 500,
            b: 5,
        });
        let report = engine.finish();
        assert_eq!(report.records, 0);
        assert!(report.alerts.is_empty());
    }

    #[test]
    fn replaying_a_trace_with_alerts_is_idempotent() {
        // Build a stream that trips BlockAware, then replay the stream
        // plus its own alerts: the recomputed alerts must be identical.
        let mut base = vec![TraceRecord {
            time: 0,
            node: 2,
            kind: TraceKind::CrawlSample,
            a: 2,
            b: 0,
        }];
        for i in 0..30u64 {
            let t = (i + 1) * 60_000;
            base.push(TraceRecord {
                time: t,
                node: 0,
                kind: TraceKind::Mine,
                a: i,
                b: i + 1,
            });
            base.push(TraceRecord {
                time: t,
                node: 0,
                kind: TraceKind::BlockAccept,
                a: i,
                b: i + 1,
            });
            base.push(TraceRecord {
                time: t,
                node: 2,
                kind: TraceKind::CrawlSample,
                a: 1,
                b: i + 1,
            });
        }
        let mut engine = DetectEngine::new(DetectConfig::default());
        engine.feed_all(&base);
        let first = engine.finish();
        assert!(!first.alerts.is_empty(), "scenario should alert");

        let mut with_alerts = base.clone();
        with_alerts.extend_from_slice(&first.alerts);
        let mut engine = DetectEngine::new(DetectConfig::default());
        engine.feed_all(&with_alerts);
        let second = engine.finish();
        assert_eq!(first.alerts, second.alerts);
        assert_eq!(first.alert_counts, second.alert_counts);
    }

    #[test]
    fn tap_merges_in_rank_order_regardless_of_deposit_order() {
        let tap = OnlineTap::new();
        let mk = |t: u64, kind: TraceKind| TraceRecord {
            time: t,
            node: 0,
            kind,
            a: 0,
            b: 0,
        };
        tap.absorb(2, "model", &[mk(5, TraceKind::ModelBisect)]);
        tap.absorb(0, "day", &[mk(1, TraceKind::Mine)]);
        tap.absorb(1, "grid", &[mk(3, TraceKind::GridMine)]);
        // Last wins on re-deposit.
        tap.absorb(0, "day", &[mk(2, TraceKind::Mine)]);
        let merged = tap.merged();
        assert_eq!(merged.len(), 3);
        assert_eq!(merged[0].time, 2);
        assert_eq!(merged[1].kind, TraceKind::GridMine);
        assert_eq!(merged[2].kind, TraceKind::ModelBisect);
    }
}
