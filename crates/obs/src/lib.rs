//! # bp-obs — deterministic observability for the simulator stack
//!
//! A zero-dependency metrics layer shared by every `bp-*` crate:
//! monotonic counters, gauges, fixed-bucket histograms and wall-clock
//! span timers, collected in a thread-safe [`Registry`] and rendered to
//! a stable text table, `metrics.json` and `metrics.csv` — plus a
//! deterministic event-trace flight recorder ([`trace`]) that captures
//! ordered simulation events for diffing, filtering and timeline
//! reconstruction.
//!
//! ## Determinism contract
//!
//! The whole point of this crate is that *observing a simulation must
//! not change it*, and that the observations themselves are
//! reproducible:
//!
//! * recording a metric never touches an RNG, never allocates event-
//!   queue entries, and never branches simulation logic — the simulated
//!   results are bit-identical with metrics on or off;
//! * counters, gauges and histograms derive only from seeded
//!   computation, so two runs of the same seeded workload produce
//!   byte-identical [`Snapshot::to_json`] / [`Snapshot::to_csv`]
//!   output, regardless of thread count (all recording operations are
//!   commutative and the rendering order is the sorted key order);
//! * span timers measure *wall time* and are therefore excluded from
//!   the deterministic JSON/CSV exports — only their (deterministic)
//!   hit counts appear there. The measured durations feed the
//!   benchmarking side (`timings.csv`, `BENCH_pipeline.json`) where
//!   run-to-run variance is expected.
//!
//! ## Usage
//!
//! ```
//! use bp_obs::Registry;
//!
//! let reg = Registry::new();
//! reg.inc("net.events.inv");
//! reg.add("net.traffic.lost", 3);
//! reg.max_gauge("net.queue.depth_hwm", 17.0);
//! reg.observe("net.reorg.depth", &[1, 2, 4, 8], 3);
//! {
//!     let _span = reg.span("pipeline.job.table1");
//!     // ... timed work ...
//! }
//! let snap = reg.snapshot();
//! assert_eq!(snap.counter("net.events.inv"), 1);
//! assert!(snap.to_json().contains("\"net.traffic.lost\": 3"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod registry;
pub mod trace;

pub use registry::{csv_field, json_escape, Histogram, Registry, Snapshot, SpanGuard, SpanStats};
pub use trace::{TraceKind, TraceRecord, Tracer};
