//! Deterministic event-trace flight recorder.
//!
//! While the [`Registry`] answers "how many", the flight
//! recorder answers "in what order": it captures a compact, fixed-width
//! stream of simulation events (mining, relay, reorgs, partitions, crawler
//! samples, attack-grid steps) that can be dumped, filtered, diffed for the
//! first divergence between two runs, and replayed into per-node timeline
//! series.
//!
//! The recorder obeys the same determinism contract as the metrics layer:
//!
//! * recording never touches an RNG, never schedules events and never
//!   branches simulation logic — a traced run produces bit-identical
//!   simulation results to an untraced one;
//! * every record derives only from values the simulation already
//!   computed, so a seeded run emits a byte-identical `trace.bin` /
//!   `trace.jsonl` regardless of worker count (each traced component is
//!   single-threaded and streams are concatenated in a fixed order).
//!
//! ## Record format
//!
//! A trace file is an 16-byte header (`b"BPTRACE1"` magic + record count as
//! little-endian `u64`) followed by fixed [`RECORD_BYTES`]-wide records:
//!
//! | bytes | field | encoding |
//! |-------|-------|----------|
//! | 0..8  | `time` | LE `u64` — milliseconds (net/crawler) or step/cell index (attack) |
//! | 8..12 | `node` | LE `u32` — node id, grid cell, or `u32::MAX` for network-wide events |
//! | 12    | kind | [`TraceKind`] discriminant |
//! | 13    | category | [`TraceCategory`] discriminant (redundant with kind; validated on decode) |
//! | 14    | severity | [`Severity`] discriminant (redundant with kind; validated on decode) |
//! | 15    | reserved | must be zero |
//! | 16..24 | `a` | LE `u64` — kind-specific payload |
//! | 24..32 | `b` | LE `u64` — kind-specific payload |
//!
//! The sequence number of a record is its ordinal position in the file; it
//! is not stored, which keeps records compact and makes "first divergence"
//! well-defined as the first differing ordinal.
//!
//! A trace written from a *wrapped* bounded ring uses the `b"BPTRACE2"`
//! header instead, which carries the drop count after the record count
//! (24 bytes total); [`decode_trace`] reads both versions. Unwrapped
//! traces keep the original 16-byte `BPTRACE1` header byte-for-byte.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::registry::{json_escape, Registry};

/// Width of one encoded trace record in bytes.
pub const RECORD_BYTES: usize = 32;

/// Magic bytes opening every binary trace file.
pub const MAGIC: &[u8; 8] = b"BPTRACE1";

/// Width of the binary file header (magic + record count).
pub const HEADER_BYTES: usize = 16;

/// Magic bytes of the drop-aware trace header written when a bounded
/// ring wrapped (see [`encode_trace`]).
pub const MAGIC_V2: &[u8; 8] = b"BPTRACE2";

/// Width of the drop-aware header (magic + record count + drop count).
pub const HEADER_V2_BYTES: usize = 24;

/// Event category: which subsystem emitted the record.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum TraceCategory {
    /// `bp-net` simulation events (time domain: simulated milliseconds).
    Net = 0,
    /// `bp-attacks` temporal-attack events (time domain: grid step or
    /// sweep-cell index).
    Attack = 1,
    /// `bp-crawler` sampling events (time domain: simulated milliseconds).
    Crawler = 2,
    /// `bp-detect` detector alerts (time domain: simulated milliseconds —
    /// alerts fire on crawler sample ticks).
    Detect = 3,
}

impl TraceCategory {
    /// Stable lowercase name used in JSONL output and CLI filters.
    pub fn name(self) -> &'static str {
        match self {
            TraceCategory::Net => "net",
            TraceCategory::Attack => "attack",
            TraceCategory::Crawler => "crawler",
            TraceCategory::Detect => "detect",
        }
    }

    /// Parses a category from its [`name`](Self::name).
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "net" => Some(TraceCategory::Net),
            "attack" => Some(TraceCategory::Attack),
            "crawler" => Some(TraceCategory::Crawler),
            "detect" => Some(TraceCategory::Detect),
            _ => None,
        }
    }

    fn from_u8(v: u8) -> Option<Self> {
        match v {
            0 => Some(TraceCategory::Net),
            1 => Some(TraceCategory::Attack),
            2 => Some(TraceCategory::Crawler),
            3 => Some(TraceCategory::Detect),
            _ => None,
        }
    }
}

/// Record severity tag.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum Severity {
    /// High-volume routine events (relay chatter).
    Debug = 0,
    /// Normal state progression (mining, block accepts, samples).
    Info = 1,
    /// Consensus- or topology-affecting events (reorgs, partitions).
    Warn = 2,
    /// A detector fired: the trace evidence is consistent with an
    /// ongoing partition.
    Alert = 3,
}

impl Severity {
    /// Stable lowercase name used in JSONL output.
    pub fn name(self) -> &'static str {
        match self {
            Severity::Debug => "debug",
            Severity::Info => "info",
            Severity::Warn => "warn",
            Severity::Alert => "alert",
        }
    }

    /// All severities, in discriminant order (used by summaries).
    pub const ALL: [Severity; 4] = [
        Severity::Debug,
        Severity::Info,
        Severity::Warn,
        Severity::Alert,
    ];

    fn from_u8(v: u8) -> Option<Self> {
        match v {
            0 => Some(Severity::Debug),
            1 => Some(Severity::Info),
            2 => Some(Severity::Warn),
            3 => Some(Severity::Alert),
            _ => None,
        }
    }
}

/// The concrete event a record describes. Discriminants are part of the
/// on-disk format and must never be reused.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum TraceKind {
    /// A pool mined a block. `node` = gateway node, `a` = dense block id,
    /// `b` = block height.
    Mine = 1,
    /// A node announced a block to its peers. `node` = announcer,
    /// `a` = dense block id, `b` = number of peers notified.
    InvRelay = 2,
    /// A getdata was served and the block transfer scheduled.
    /// `node` = requester, `a` = dense block id, `b` = holder node.
    GetData = 3,
    /// A node adopted a new best tip. `node` = accepting node,
    /// `a` = dense id of the block whose arrival advanced the tip (for
    /// an orphan cascade this is the connecting parent, not the new
    /// tip itself), `b` = new best height.
    BlockAccept = 4,
    /// A block accept triggered a reorg. `node` = reorging node,
    /// `a` = reorg depth (blocks reversed), `b` = new best height.
    ReorgBegin = 5,
    /// A partition was applied. `node` = `u32::MAX`, `a` = number of
    /// distinct groups, `b` = size of the largest group.
    PartitionApply = 6,
    /// The partition was healed. `node` = `u32::MAX`.
    PartitionHeal = 7,
    /// A churn tick ran. `node` = `u32::MAX`, `a` = nodes that went
    /// offline this tick, `b` = nodes that came online.
    Churn = 8,
    /// A finalized-state prune sweep ran. `node` = `u32::MAX`,
    /// `a` = dense-block horizon, `b` = entries pruned this sweep.
    PruneSweep = 9,
    /// Temporal grid: the honest network mined a block. `node` = mining
    /// cell, `a` = mined block height, `b` = grid step.
    GridMine = 16,
    /// Temporal grid: the attacker released a counterfeit block.
    /// `node` = attacker cell, `a` = counterfeit height, `b` = grid step.
    GridRelease = 17,
    /// Temporal grid: a figure-7 panel snapshot was selected. `node` =
    /// `u32::MAX`, `a` = counterfeit-following cell count, `b` = panel
    /// step.
    GridSnapshot = 18,
    /// Temporal model: one bisection sweep cell finished. `node` = lambda
    /// row index, `a` = node-count column value, `b` = bisection steps.
    ModelBisect = 19,
    /// Crawler sample tick. `node` = total node count, `a` = synced node
    /// count (lag 0), `b` = network best height.
    CrawlSample = 32,
    /// Node→AS join, emitted once per node when a trace starts so the
    /// trace alone carries the crawler's AS slot index. `node` = sim
    /// node, `a` = AS number, `b` = AS slot (first-seen order).
    NodeAs = 33,
    /// BlockAware detector alert: nodes stale relative to an advancing
    /// network tip. `node` = `u32::MAX`, `a` = stale fraction in
    /// per-mille, `b` = stale node count.
    DetectBlockAware = 48,
    /// Staleness-band EWMA detector alert: the synced fraction collapsed
    /// below its running baseline. `node` = `u32::MAX`, `a` = current
    /// synced per-mille, `b` = EWMA baseline per-mille.
    DetectStaleEwma = 49,
    /// Inv-fan-out-collapse detector alert: mean peers notified per inv
    /// dropped against baseline. `node` = `u32::MAX`, `a` = current mean
    /// fan-out (milli-peers), `b` = EWMA baseline (milli-peers).
    DetectInvCollapse = 50,
    /// AS-skew detector alert: the per-AS synced-share distribution
    /// drifted from baseline. `node` = most-deviating AS slot, `a` =
    /// total-variation distance in per-mille, `b` = that slot's AS
    /// number.
    DetectAsSkew = 51,
}

impl TraceKind {
    /// All kinds, in discriminant order (used by summaries and tests).
    pub const ALL: [TraceKind; 19] = [
        TraceKind::Mine,
        TraceKind::InvRelay,
        TraceKind::GetData,
        TraceKind::BlockAccept,
        TraceKind::ReorgBegin,
        TraceKind::PartitionApply,
        TraceKind::PartitionHeal,
        TraceKind::Churn,
        TraceKind::PruneSweep,
        TraceKind::GridMine,
        TraceKind::GridRelease,
        TraceKind::GridSnapshot,
        TraceKind::ModelBisect,
        TraceKind::CrawlSample,
        TraceKind::NodeAs,
        TraceKind::DetectBlockAware,
        TraceKind::DetectStaleEwma,
        TraceKind::DetectInvCollapse,
        TraceKind::DetectAsSkew,
    ];

    /// The alert kinds a detector may emit, in discriminant order.
    pub const DETECT: [TraceKind; 4] = [
        TraceKind::DetectBlockAware,
        TraceKind::DetectStaleEwma,
        TraceKind::DetectInvCollapse,
        TraceKind::DetectAsSkew,
    ];

    /// Stable lowercase name used in JSONL output and CLI filters.
    pub fn name(self) -> &'static str {
        match self {
            TraceKind::Mine => "mine",
            TraceKind::InvRelay => "inv_relay",
            TraceKind::GetData => "getdata",
            TraceKind::BlockAccept => "block_accept",
            TraceKind::ReorgBegin => "reorg_begin",
            TraceKind::PartitionApply => "partition_apply",
            TraceKind::PartitionHeal => "partition_heal",
            TraceKind::Churn => "churn",
            TraceKind::PruneSweep => "prune_sweep",
            TraceKind::GridMine => "grid_mine",
            TraceKind::GridRelease => "grid_release",
            TraceKind::GridSnapshot => "grid_snapshot",
            TraceKind::ModelBisect => "model_bisect",
            TraceKind::CrawlSample => "crawl_sample",
            TraceKind::NodeAs => "node_as",
            TraceKind::DetectBlockAware => "detect_blockaware",
            TraceKind::DetectStaleEwma => "detect_stale_ewma",
            TraceKind::DetectInvCollapse => "detect_inv_collapse",
            TraceKind::DetectAsSkew => "detect_as_skew",
        }
    }

    /// Parses a kind from its [`name`](Self::name).
    pub fn parse(s: &str) -> Option<Self> {
        TraceKind::ALL.into_iter().find(|k| k.name() == s)
    }

    /// The subsystem that emits this kind.
    pub fn category(self) -> TraceCategory {
        match self {
            TraceKind::Mine
            | TraceKind::InvRelay
            | TraceKind::GetData
            | TraceKind::BlockAccept
            | TraceKind::ReorgBegin
            | TraceKind::PartitionApply
            | TraceKind::PartitionHeal
            | TraceKind::Churn
            | TraceKind::PruneSweep => TraceCategory::Net,
            TraceKind::GridMine
            | TraceKind::GridRelease
            | TraceKind::GridSnapshot
            | TraceKind::ModelBisect => TraceCategory::Attack,
            TraceKind::CrawlSample | TraceKind::NodeAs => TraceCategory::Crawler,
            TraceKind::DetectBlockAware
            | TraceKind::DetectStaleEwma
            | TraceKind::DetectInvCollapse
            | TraceKind::DetectAsSkew => TraceCategory::Detect,
        }
    }

    /// The severity tag attached to this kind.
    pub fn severity(self) -> Severity {
        match self {
            TraceKind::InvRelay | TraceKind::GetData | TraceKind::NodeAs => Severity::Debug,
            TraceKind::ReorgBegin
            | TraceKind::PartitionApply
            | TraceKind::PartitionHeal
            | TraceKind::GridRelease => Severity::Warn,
            TraceKind::DetectBlockAware
            | TraceKind::DetectStaleEwma
            | TraceKind::DetectInvCollapse
            | TraceKind::DetectAsSkew => Severity::Alert,
            _ => Severity::Info,
        }
    }

    fn from_u8(v: u8) -> Option<Self> {
        TraceKind::ALL.into_iter().find(|k| *k as u8 == v)
    }
}

/// One decoded trace record. See [`TraceKind`] for per-kind payload
/// semantics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceRecord {
    /// Event time: simulated milliseconds for net/crawler records, grid
    /// step or sweep-cell index for attack records.
    pub time: u64,
    /// Emitting node / cell, or `u32::MAX` for network-wide events.
    pub node: u32,
    /// What happened.
    pub kind: TraceKind,
    /// Kind-specific payload.
    pub a: u64,
    /// Kind-specific payload.
    pub b: u64,
}

impl TraceRecord {
    /// Appends the fixed-width encoding of this record to `out`.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.time.to_le_bytes());
        out.extend_from_slice(&self.node.to_le_bytes());
        out.push(self.kind as u8);
        out.push(self.kind.category() as u8);
        out.push(self.kind.severity() as u8);
        out.push(0);
        out.extend_from_slice(&self.a.to_le_bytes());
        out.extend_from_slice(&self.b.to_le_bytes());
    }

    /// Decodes one record from a [`RECORD_BYTES`]-wide chunk.
    ///
    /// # Errors
    ///
    /// Returns a message when the kind byte is unknown, the category or
    /// severity byte disagrees with the kind, or the reserved byte is
    /// non-zero.
    pub fn decode(chunk: &[u8]) -> Result<TraceRecord, String> {
        if chunk.len() != RECORD_BYTES {
            return Err(format!(
                "record chunk is {} bytes, expected {RECORD_BYTES}",
                chunk.len()
            ));
        }
        let time = u64::from_le_bytes(chunk[0..8].try_into().expect("8-byte slice"));
        let node = u32::from_le_bytes(chunk[8..12].try_into().expect("4-byte slice"));
        let kind =
            TraceKind::from_u8(chunk[12]).ok_or_else(|| format!("unknown kind {}", chunk[12]))?;
        let category = TraceCategory::from_u8(chunk[13])
            .ok_or_else(|| format!("unknown category {}", chunk[13]))?;
        let severity = Severity::from_u8(chunk[14])
            .ok_or_else(|| format!("unknown severity {}", chunk[14]))?;
        if category != kind.category() {
            return Err(format!(
                "category {} does not match kind {}",
                category.name(),
                kind.name()
            ));
        }
        if severity != kind.severity() {
            return Err(format!(
                "severity {} does not match kind {}",
                severity.name(),
                kind.name()
            ));
        }
        if chunk[15] != 0 {
            return Err(format!("reserved byte is {}, expected 0", chunk[15]));
        }
        let a = u64::from_le_bytes(chunk[16..24].try_into().expect("8-byte slice"));
        let b = u64::from_le_bytes(chunk[24..32].try_into().expect("8-byte slice"));
        Ok(TraceRecord {
            time,
            node,
            kind,
            a,
            b,
        })
    }

    /// Renders this record as one JSON object (used for `trace.jsonl`).
    pub fn to_json_line(&self, seq: u64) -> String {
        format!(
            "{{\"seq\":{seq},\"t\":{},\"cat\":\"{}\",\"kind\":\"{}\",\"sev\":\"{}\",\"node\":{},\"a\":{},\"b\":{}}}",
            self.time,
            json_escape(self.kind.category().name()),
            json_escape(self.kind.name()),
            json_escape(self.kind.severity().name()),
            self.node,
            self.a,
            self.b,
        )
    }
}

/// The in-memory flight recorder: a bounded ring (or unbounded stream when
/// `capacity` is zero) of [`TraceRecord`]s plus drop accounting.
///
/// Recording is infallible and side-effect free with respect to the
/// simulation: no RNG, no event scheduling, no branching on recorder
/// state leaks back into the caller.
///
/// ## Drop-accounting invariant
///
/// `len() + dropped() == ` *number of records ever offered to this
/// recorder*. [`record`](Self::record) counts an eviction the moment a
/// full ring overwrites its oldest record, and
/// [`append`](Self::append) preserves the invariant across recorder
/// merges: it adds the other side's `dropped` (those records were
/// offered to the logical stream) plus any evictions appending into
/// this ring causes. Exports derive from the invariant consistently:
/// `events_recorded` is the offered count, `bytes_written` is the
/// *retained* bytes (exactly what an [`encode_records`] of the held
/// records emits), and `ring_drops = events_recorded − bytes_written /
/// RECORD_BYTES` is the evicted count.
#[derive(Debug, Default, Clone)]
pub struct Tracer {
    records: std::collections::VecDeque<TraceRecord>,
    capacity: usize,
    dropped: u64,
}

/// Two recorders are equal when they hold the same trace *content*:
/// retained records plus drop count. `capacity` is recorder
/// configuration, not content — it is not serialized by
/// [`Tracer::encode`], so a decode round-trip must compare equal to the
/// recorder it came from regardless of how that recorder was bounded.
impl PartialEq for Tracer {
    fn eq(&self, other: &Self) -> bool {
        self.records == other.records && self.dropped == other.dropped
    }
}

impl Eq for Tracer {}

impl Tracer {
    /// An unbounded streaming recorder.
    pub fn new() -> Self {
        Tracer::default()
    }

    /// A bounded ring recorder keeping the most recent `capacity` records
    /// and counting the overwritten ones. `capacity == 0` means unbounded.
    pub fn with_capacity(capacity: usize) -> Self {
        Tracer {
            records: std::collections::VecDeque::new(),
            capacity,
            dropped: 0,
        }
    }

    /// Rebuilds a recorder from previously captured parts (e.g. a cache
    /// replay). The result is unbounded — it already holds exactly the
    /// records that survived the original ring, so re-applying a
    /// capacity would double-count evictions — and it preserves the
    /// drop-accounting invariant: `offered() == records.len() + dropped`.
    pub fn from_parts(records: Vec<TraceRecord>, dropped: u64) -> Self {
        Tracer {
            records: records.into(),
            capacity: 0,
            dropped,
        }
    }

    /// Records one event.
    #[inline]
    pub fn record(&mut self, kind: TraceKind, time: u64, node: u32, a: u64, b: u64) {
        if self.capacity != 0 && self.records.len() == self.capacity {
            self.records.pop_front();
            self.dropped += 1;
        }
        self.records.push_back(TraceRecord {
            time,
            node,
            kind,
            a,
            b,
        });
    }

    /// Number of records currently held.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when nothing has been recorded (or everything was dropped).
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Records overwritten by the bounded ring.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Records ever offered to this recorder: `len() + dropped()` (see
    /// the drop-accounting invariant in the type docs).
    pub fn offered(&self) -> u64 {
        self.records.len() as u64 + self.dropped
    }

    /// Drains this recorder into a plain record vector.
    pub fn into_records(self) -> Vec<TraceRecord> {
        self.records.into_iter().collect()
    }

    /// Copies the held records into a plain vector.
    pub fn records(&self) -> Vec<TraceRecord> {
        self.records.iter().copied().collect()
    }

    /// Appends another recorder's records (stream concatenation).
    ///
    /// Preserves the drop-accounting invariant: the merged recorder's
    /// `offered()` equals the sum of both sides' `offered()` — records
    /// the other ring already evicted stay counted as dropped, and
    /// records this ring must evict to make room are added to the drop
    /// count as they go.
    pub fn append(&mut self, other: Tracer) {
        self.dropped += other.dropped;
        for r in other.records {
            if self.capacity != 0 && self.records.len() == self.capacity {
                self.records.pop_front();
                self.dropped += 1;
            }
            self.records.push_back(r);
        }
    }

    /// Exports `{prefix}.events_recorded`, `{prefix}.bytes_written` and
    /// `{prefix}.ring_drops` counters into `reg`.
    ///
    /// Semantics follow the drop-accounting invariant documented on
    /// [`Tracer`]: `events_recorded` counts every record ever *offered*
    /// (retained + dropped), `bytes_written` counts only the *retained*
    /// bytes — exactly the record payload an [`encode_records`] call
    /// would emit — and `ring_drops` is their difference in records.
    pub fn export_metrics(&self, reg: &Registry, prefix: &str) {
        reg.add(&format!("{prefix}.events_recorded"), self.offered());
        reg.add(
            &format!("{prefix}.bytes_written"),
            (self.records.len() * RECORD_BYTES) as u64,
        );
        reg.add(&format!("{prefix}.ring_drops"), self.dropped);
    }

    /// Encodes the retained records into the binary trace-file format,
    /// using the drop-aware `BPTRACE2` header when this ring wrapped
    /// (see [`encode_trace`]).
    pub fn encode(&self) -> Vec<u8> {
        encode_trace(&self.records(), self.dropped)
    }
}

/// Encodes records into the binary trace-file format (header + records).
pub fn encode_records(records: &[TraceRecord]) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER_BYTES + records.len() * RECORD_BYTES);
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&(records.len() as u64).to_le_bytes());
    for r in records {
        r.encode_into(&mut out);
    }
    out
}

/// Encodes records plus a ring-drop count. When `dropped` is zero this
/// is byte-identical to [`encode_records`] (the classic 16-byte
/// `BPTRACE1` header); a wrapped ring gets the 24-byte `BPTRACE2`
/// header that records how many leading records were evicted, so
/// downstream tools can say "the earliest N records are missing"
/// instead of reporting a misleading first divergence.
pub fn encode_trace(records: &[TraceRecord], dropped: u64) -> Vec<u8> {
    if dropped == 0 {
        return encode_records(records);
    }
    let mut out = Vec::with_capacity(HEADER_V2_BYTES + records.len() * RECORD_BYTES);
    out.extend_from_slice(MAGIC_V2);
    out.extend_from_slice(&(records.len() as u64).to_le_bytes());
    out.extend_from_slice(&dropped.to_le_bytes());
    for r in records {
        r.encode_into(&mut out);
    }
    out
}

/// Decodes a binary trace file produced by [`encode_records`] or
/// [`encode_trace`], returning the records and the ring-drop count
/// (zero for `BPTRACE1` files, which cannot carry one).
///
/// # Errors
///
/// Returns a message on a bad magic, a truncated file, a record-count
/// mismatch, or any malformed record (with its sequence number).
pub fn decode_trace(bytes: &[u8]) -> Result<(Vec<TraceRecord>, u64), String> {
    if bytes.len() < 8 {
        return Err(format!(
            "file is {} bytes, smaller than the 8-byte magic",
            bytes.len()
        ));
    }
    let (header_bytes, dropped) = if &bytes[..8] == MAGIC {
        (HEADER_BYTES, 0u64)
    } else if &bytes[..8] == MAGIC_V2 {
        if bytes.len() < HEADER_V2_BYTES {
            return Err(format!(
                "file is {} bytes, smaller than the {HEADER_V2_BYTES}-byte BPTRACE2 header",
                bytes.len()
            ));
        }
        (
            HEADER_V2_BYTES,
            u64::from_le_bytes(bytes[16..24].try_into().expect("8-byte slice")),
        )
    } else {
        return Err("bad magic: not a bp-obs trace file".to_string());
    };
    if bytes.len() < header_bytes {
        return Err(format!(
            "file is {} bytes, smaller than the {header_bytes}-byte header",
            bytes.len()
        ));
    }
    let count = u64::from_le_bytes(bytes[8..16].try_into().expect("8-byte slice")) as usize;
    let body = &bytes[header_bytes..];
    if body.len() != count * RECORD_BYTES {
        return Err(format!(
            "header promises {count} records ({} bytes) but body is {} bytes",
            count * RECORD_BYTES,
            body.len()
        ));
    }
    let mut records = Vec::with_capacity(count);
    for (seq, chunk) in body.chunks(RECORD_BYTES).enumerate() {
        records.push(TraceRecord::decode(chunk).map_err(|e| format!("record {seq}: {e}"))?);
    }
    Ok((records, dropped))
}

/// Decodes a binary trace file produced by [`encode_records`].
///
/// Accepts both header versions but discards the `BPTRACE2` drop count;
/// use [`decode_trace`] when drop awareness matters (e.g. diffing).
///
/// # Errors
///
/// Returns a message on a bad magic, a truncated file, a record-count
/// mismatch, or any malformed record (with its sequence number).
pub fn decode_records(bytes: &[u8]) -> Result<Vec<TraceRecord>, String> {
    if bytes.len() < HEADER_BYTES {
        return Err(format!(
            "file is {} bytes, smaller than the {HEADER_BYTES}-byte header",
            bytes.len()
        ));
    }
    if &bytes[..8] == MAGIC_V2 {
        return decode_trace(bytes).map(|(records, _)| records);
    }
    if &bytes[..8] != MAGIC {
        return Err("bad magic: not a bp-obs trace file".to_string());
    }
    let count = u64::from_le_bytes(bytes[8..16].try_into().expect("8-byte slice")) as usize;
    let body = &bytes[HEADER_BYTES..];
    if body.len() != count * RECORD_BYTES {
        return Err(format!(
            "header promises {count} records ({} bytes) but body is {} bytes",
            count * RECORD_BYTES,
            body.len()
        ));
    }
    let mut records = Vec::with_capacity(count);
    for (seq, chunk) in body.chunks(RECORD_BYTES).enumerate() {
        records.push(TraceRecord::decode(chunk).map_err(|e| format!("record {seq}: {e}"))?);
    }
    Ok(records)
}

/// Renders records as line-delimited JSON, one object per record, with
/// explicit sequence numbers.
pub fn render_jsonl(records: &[TraceRecord]) -> String {
    let mut out = String::with_capacity(records.len() * 96);
    for (seq, r) in records.iter().enumerate() {
        out.push_str(&r.to_json_line(seq as u64));
        out.push('\n');
    }
    out
}

/// A first divergence between two traces, as found by [`first_divergence`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Divergence {
    /// Ordinal of the first record that differs (or the length of the
    /// shorter trace when one is a strict prefix of the other).
    pub seq: u64,
    /// The left trace's record at `seq`, if it has one.
    pub left: Option<TraceRecord>,
    /// The right trace's record at `seq`, if it has one.
    pub right: Option<TraceRecord>,
}

impl Divergence {
    /// Human-readable divergence report: seq, timestamps and both decoded
    /// records.
    pub fn render(&self) -> String {
        fn side(label: &str, r: &Option<TraceRecord>) -> String {
            match r {
                Some(r) => format!(
                    "{label}: t={} cat={} kind={} sev={} node={} a={} b={}",
                    r.time,
                    r.kind.category().name(),
                    r.kind.name(),
                    r.kind.severity().name(),
                    r.node,
                    r.a,
                    r.b
                ),
                None => format!("{label}: <end of trace>"),
            }
        }
        format!(
            "divergence at seq {}\n{}\n{}",
            self.seq,
            side("left ", &self.left),
            side("right", &self.right)
        )
    }
}

/// Finds the first ordinal at which two traces differ, or `None` when they
/// are identical.
pub fn first_divergence(left: &[TraceRecord], right: &[TraceRecord]) -> Option<Divergence> {
    let shared = left.len().min(right.len());
    for seq in 0..shared {
        if left[seq] != right[seq] {
            return Some(Divergence {
                seq: seq as u64,
                left: Some(left[seq]),
                right: Some(right[seq]),
            });
        }
    }
    if left.len() != right.len() {
        return Some(Divergence {
            seq: shared as u64,
            left: left.get(shared).copied(),
            right: right.get(shared).copied(),
        });
    }
    None
}

/// Filter predicate for [`filter_records`] / the `trace filter` CLI.
#[derive(Debug, Default, Clone, Copy)]
pub struct TraceFilter {
    /// Keep records with `time >= from` (inclusive).
    pub from: Option<u64>,
    /// Keep records with `time <= to` (inclusive).
    pub to: Option<u64>,
    /// Keep records for this node only.
    pub node: Option<u32>,
    /// Keep records of this category only.
    pub category: Option<TraceCategory>,
    /// Keep records of this kind only.
    pub kind: Option<TraceKind>,
}

impl TraceFilter {
    /// Whether a record passes the filter.
    pub fn matches(&self, r: &TraceRecord) -> bool {
        if let Some(from) = self.from {
            if r.time < from {
                return false;
            }
        }
        if let Some(to) = self.to {
            if r.time > to {
                return false;
            }
        }
        if let Some(node) = self.node {
            if r.node != node {
                return false;
            }
        }
        if let Some(cat) = self.category {
            if r.kind.category() != cat {
                return false;
            }
        }
        if let Some(kind) = self.kind {
            if r.kind != kind {
                return false;
            }
        }
        true
    }
}

/// Applies a filter, preserving each surviving record's original sequence
/// number.
pub fn filter_records(records: &[TraceRecord], filter: &TraceFilter) -> Vec<(u64, TraceRecord)> {
    records
        .iter()
        .enumerate()
        .filter(|(_, r)| filter.matches(r))
        .map(|(seq, r)| (seq as u64, *r))
        .collect()
}

/// Renders a deterministic plain-text summary: totals, per-category,
/// per-severity and per-kind counts, and the busiest nodes. Each kind
/// line carries its severity tag, so the rollup reads per kind too.
pub fn summary(records: &[TraceRecord]) -> String {
    let mut by_kind: BTreeMap<TraceKind, u64> = BTreeMap::new();
    let mut by_cat: BTreeMap<TraceCategory, u64> = BTreeMap::new();
    let mut by_sev: BTreeMap<Severity, u64> = BTreeMap::new();
    let mut by_node: BTreeMap<u32, u64> = BTreeMap::new();
    let (mut t_min, mut t_max) = (u64::MAX, 0u64);
    for r in records {
        *by_kind.entry(r.kind).or_insert(0) += 1;
        *by_cat.entry(r.kind.category()).or_insert(0) += 1;
        *by_sev.entry(r.kind.severity()).or_insert(0) += 1;
        *by_node.entry(r.node).or_insert(0) += 1;
        t_min = t_min.min(r.time);
        t_max = t_max.max(r.time);
    }
    let mut out = String::new();
    let _ = writeln!(out, "records: {}", records.len());
    if !records.is_empty() {
        let _ = writeln!(out, "time span: {t_min}..{t_max}");
    }
    let _ = writeln!(out, "by category:");
    for (cat, n) in &by_cat {
        let _ = writeln!(out, "  {:<10} {n}", cat.name());
    }
    let _ = writeln!(out, "by severity:");
    for (sev, n) in &by_sev {
        let _ = writeln!(out, "  {:<10} {n}", sev.name());
    }
    let _ = writeln!(out, "by kind:");
    for (kind, n) in &by_kind {
        let _ = writeln!(
            out,
            "  {:<20} {:<6} {n}",
            kind.name(),
            kind.severity().name()
        );
    }
    // Busiest nodes: count descending, node id ascending on ties, top 10.
    let mut nodes: Vec<(u32, u64)> = by_node.into_iter().collect();
    nodes.sort_by(|x, y| y.1.cmp(&x.1).then(x.0.cmp(&y.0)));
    let _ = writeln!(out, "busiest nodes (top {}):", nodes.len().min(10));
    for (node, n) in nodes.iter().take(10) {
        if *node == u32::MAX {
            let _ = writeln!(out, "  <network>  {n}");
        } else {
            let _ = writeln!(out, "  node {node:<6} {n}");
        }
    }
    out
}

/// One reconstructed crawler sample: lag-class counts at a sample tick.
///
/// Bucket boundaries mirror the crawler's `LagClass`: synced (lag 0), one
/// behind, 2–4, 5–10, and 11+.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimelinePoint {
    /// Sample time in simulated milliseconds.
    pub t_ms: u64,
    /// Network best height at the sample.
    pub network_best: u64,
    /// Nodes per lag class: `[synced, one_behind, two_to_four, five_to_ten, ten_plus]`.
    pub lag_counts: [u64; 5],
}

/// Replays a trace into per-node tip heights and reconstructs the crawler's
/// block-lag series from `BlockAccept` / `Mine` / `CrawlSample` records
/// alone.
///
/// Net records carry enough state to maintain each node's best height
/// (`BlockAccept.b`) and the network best (max of `Mine.b`); every
/// `CrawlSample` record then yields one [`TimelinePoint`] by classifying
/// `network_best - height` for all `CrawlSample.node` nodes (nodes that
/// never accepted a block sit at height 0, like freshly seeded views).
/// Attack-category records are ignored — their time domain is unrelated.
pub fn timeline(records: &[TraceRecord]) -> Vec<TimelinePoint> {
    let mut heights: Vec<u64> = Vec::new();
    let mut network_best = 0u64;
    let mut points = Vec::new();
    for r in records {
        match r.kind {
            TraceKind::Mine => {
                network_best = network_best.max(r.b);
            }
            TraceKind::BlockAccept => {
                let idx = r.node as usize;
                if idx >= heights.len() {
                    heights.resize(idx + 1, 0);
                }
                heights[idx] = r.b;
            }
            TraceKind::CrawlSample => {
                let total = r.node as usize;
                if total > heights.len() {
                    heights.resize(total, 0);
                }
                let mut counts = [0u64; 5];
                for &h in heights.iter().take(total) {
                    let lag = network_best.saturating_sub(h);
                    let class = match lag {
                        0 => 0,
                        1 => 1,
                        2..=4 => 2,
                        5..=10 => 3,
                        _ => 4,
                    };
                    counts[class] += 1;
                }
                points.push(TimelinePoint {
                    t_ms: r.time,
                    network_best,
                    lag_counts: counts,
                });
            }
            _ => {}
        }
    }
    points
}

/// Renders timeline points as CSV with the same header and row shape as
/// the crawler's published `fig6_*` series.
pub fn timeline_csv(points: &[TimelinePoint]) -> String {
    let mut out = String::from("t_secs,synced,one_behind,two_to_four,five_to_ten,ten_plus\n");
    for p in points {
        let _ = writeln!(
            out,
            "{},{},{},{},{},{}",
            p.t_ms / 1000,
            p.lag_counts[0],
            p.lag_counts[1],
            p.lag_counts[2],
            p.lag_counts[3],
            p.lag_counts[4]
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_records() -> Vec<TraceRecord> {
        vec![
            TraceRecord {
                time: 1000,
                node: 3,
                kind: TraceKind::Mine,
                a: 1,
                b: 1,
            },
            TraceRecord {
                time: 1200,
                node: 3,
                kind: TraceKind::InvRelay,
                a: 1,
                b: 8,
            },
            TraceRecord {
                time: 1400,
                node: 5,
                kind: TraceKind::BlockAccept,
                a: 1,
                b: 1,
            },
            TraceRecord {
                time: 2000,
                node: 2,
                kind: TraceKind::CrawlSample,
                a: 1,
                b: 1,
            },
        ]
    }

    #[test]
    fn roundtrip_bin_is_lossless() {
        let records = sample_records();
        let bin = encode_records(&records);
        assert_eq!(bin.len(), HEADER_BYTES + records.len() * RECORD_BYTES);
        assert_eq!(decode_records(&bin).unwrap(), records);
    }

    #[test]
    fn decode_rejects_corruption() {
        let records = sample_records();
        let mut bin = encode_records(&records);
        assert!(decode_records(&bin[..7]).is_err(), "truncated header");
        bin[0] = b'X';
        assert!(decode_records(&bin).unwrap_err().contains("bad magic"));
        let mut bin = encode_records(&records);
        bin[HEADER_BYTES + 12] = 250; // unknown kind byte on record 0
        assert!(decode_records(&bin).unwrap_err().contains("record 0"));
        let mut bin = encode_records(&records);
        bin[HEADER_BYTES + 13] = TraceCategory::Attack as u8; // mismatched category
        assert!(decode_records(&bin)
            .unwrap_err()
            .contains("does not match kind"));
        let mut bin = encode_records(&records);
        bin.truncate(bin.len() - 1);
        assert!(decode_records(&bin).unwrap_err().contains("body"));
    }

    #[test]
    fn every_kind_roundtrips_and_parses() {
        for kind in TraceKind::ALL {
            let r = TraceRecord {
                time: 7,
                node: 9,
                kind,
                a: 11,
                b: 13,
            };
            let mut buf = Vec::new();
            r.encode_into(&mut buf);
            assert_eq!(TraceRecord::decode(&buf).unwrap(), r);
            assert_eq!(TraceKind::parse(kind.name()), Some(kind));
            assert_eq!(
                TraceCategory::parse(kind.category().name()),
                Some(kind.category())
            );
        }
    }

    #[test]
    fn ring_bounds_and_counts_drops() {
        let mut t = Tracer::with_capacity(2);
        for i in 0..5u64 {
            t.record(TraceKind::Mine, i, 0, i, i);
        }
        assert_eq!(t.len(), 2);
        assert_eq!(t.dropped(), 3);
        let records = t.into_records();
        assert_eq!(records[0].time, 3);
        assert_eq!(records[1].time, 4);
    }

    #[test]
    fn offered_invariant_survives_wrapping_and_append() {
        let mut a = Tracer::with_capacity(3);
        for i in 0..7u64 {
            a.record(TraceKind::Mine, i, 0, 0, 0);
        }
        assert_eq!(a.offered(), 7);
        assert_eq!(a.len() as u64 + a.dropped(), a.offered());

        let mut b = Tracer::with_capacity(2);
        for i in 0..5u64 {
            b.record(TraceKind::Churn, i, u32::MAX, 0, 0);
        }
        let offered_sum = a.offered() + b.offered();
        a.append(b);
        assert_eq!(a.offered(), offered_sum);
        assert_eq!(a.len(), 3, "ring capacity still bounds retention");
    }

    #[test]
    fn wrapped_ring_encodes_drop_count() {
        let mut t = Tracer::with_capacity(2);
        for i in 0..5u64 {
            t.record(TraceKind::Mine, i, 0, i, i);
        }
        let bin = t.encode();
        assert_eq!(&bin[..8], MAGIC_V2);
        let (records, dropped) = decode_trace(&bin).unwrap();
        assert_eq!(records, t.records());
        assert_eq!(dropped, 3);
        // decode_records tolerates the v2 header, dropping the count.
        assert_eq!(decode_records(&bin).unwrap(), t.records());
    }

    #[test]
    fn unwrapped_encode_matches_classic_format() {
        let mut t = Tracer::new();
        for r in sample_records() {
            t.record(r.kind, r.time, r.node, r.a, r.b);
        }
        assert_eq!(t.encode(), encode_records(&t.records()));
        let (records, dropped) = decode_trace(&t.encode()).unwrap();
        assert_eq!(records, t.records());
        assert_eq!(dropped, 0);
    }

    #[test]
    fn decode_trace_rejects_truncated_v2_header() {
        let mut t = Tracer::with_capacity(1);
        t.record(TraceKind::Mine, 0, 0, 0, 0);
        t.record(TraceKind::Mine, 1, 0, 0, 0);
        let bin = t.encode();
        assert!(decode_trace(&bin[..20]).unwrap_err().contains("BPTRACE2"));
    }

    #[test]
    fn append_concatenates_streams() {
        let mut a = Tracer::new();
        a.record(TraceKind::Mine, 1, 0, 0, 0);
        let mut b = Tracer::new();
        b.record(TraceKind::Churn, 2, u32::MAX, 1, 1);
        a.append(b);
        let records = a.into_records();
        assert_eq!(records.len(), 2);
        assert_eq!(records[1].kind, TraceKind::Churn);
    }

    #[test]
    fn export_metrics_accounts_for_recorder() {
        let mut t = Tracer::with_capacity(2);
        for i in 0..3u64 {
            t.record(TraceKind::Mine, i, 0, 0, 0);
        }
        let reg = Registry::new();
        t.export_metrics(&reg, "trace.test");
        let snap = reg.snapshot();
        assert_eq!(snap.counter("trace.test.events_recorded"), 3);
        assert_eq!(snap.counter("trace.test.bytes_written"), 2 * 32);
        assert_eq!(snap.counter("trace.test.ring_drops"), 1);
    }

    #[test]
    fn first_divergence_finds_mismatch_and_prefix() {
        let a = sample_records();
        assert_eq!(first_divergence(&a, &a), None);

        let mut b = a.clone();
        b[2].b = 99;
        let d = first_divergence(&a, &b).unwrap();
        assert_eq!(d.seq, 2);
        assert_eq!(d.left.unwrap().b, 1);
        assert_eq!(d.right.unwrap().b, 99);
        assert!(d.render().contains("seq 2"));

        let d = first_divergence(&a, &a[..3]).unwrap();
        assert_eq!(d.seq, 3);
        assert!(d.left.is_some());
        assert!(d.right.is_none());
        assert!(d.render().contains("<end of trace>"));
    }

    #[test]
    fn filter_keeps_original_seqs() {
        let records = sample_records();
        let kept = filter_records(
            &records,
            &TraceFilter {
                node: Some(3),
                ..TraceFilter::default()
            },
        );
        assert_eq!(kept.len(), 2);
        assert_eq!(kept[0].0, 0);
        assert_eq!(kept[1].0, 1);

        let kept = filter_records(
            &records,
            &TraceFilter {
                from: Some(1300),
                to: Some(1500),
                ..TraceFilter::default()
            },
        );
        assert_eq!(kept.len(), 1);
        assert_eq!(kept[0].1.kind, TraceKind::BlockAccept);

        let kept = filter_records(
            &records,
            &TraceFilter {
                category: Some(TraceCategory::Crawler),
                ..TraceFilter::default()
            },
        );
        assert_eq!(kept.len(), 1);
        assert_eq!(kept[0].0, 3);
    }

    #[test]
    fn summary_counts_categories_and_kinds() {
        let s = summary(&sample_records());
        assert!(s.contains("records: 4"));
        assert!(s.contains("net"));
        assert!(s.contains("crawl_sample"));
        assert!(s.contains("mine"));
        assert!(s.contains("time span: 1000..2000"));
    }

    #[test]
    fn summary_rolls_up_severities() {
        let mut records = sample_records();
        records.push(TraceRecord {
            time: 2500,
            node: u32::MAX,
            kind: TraceKind::DetectStaleEwma,
            a: 400,
            b: 900,
        });
        let s = summary(&records);
        // One debug (inv_relay), three info (mine, accept, sample), one
        // alert (the detector record); each kind line carries its tag.
        assert!(s.contains("by severity:"));
        assert!(s.contains("  debug      1"));
        assert!(s.contains("  info       3"));
        assert!(s.contains("  alert      1"));
        assert!(s.contains("detect_stale_ewma"));
        let kind_line = s
            .lines()
            .find(|l| l.trim_start().starts_with("inv_relay"))
            .unwrap();
        assert!(kind_line.contains("debug"));
    }

    #[test]
    fn jsonl_lines_are_valid_shape() {
        let text = render_jsonl(&sample_records());
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("{\"seq\":0,\"t\":1000,\"cat\":\"net\",\"kind\":\"mine\""));
        assert!(lines[3].contains("\"cat\":\"crawler\""));
    }

    #[test]
    fn timeline_reconstructs_lag_classes() {
        // Two nodes; node 0 accepts height 1, node 1 stays at 0 while the
        // network advances to height 3 → node 0 lags 2 (class 2), node 1
        // lags 3 (class 2).
        let records = vec![
            TraceRecord {
                time: 100,
                node: 0,
                kind: TraceKind::Mine,
                a: 1,
                b: 1,
            },
            TraceRecord {
                time: 150,
                node: 0,
                kind: TraceKind::BlockAccept,
                a: 1,
                b: 1,
            },
            TraceRecord {
                time: 200,
                node: 0,
                kind: TraceKind::Mine,
                a: 2,
                b: 3,
            },
            TraceRecord {
                time: 60_000,
                node: 2,
                kind: TraceKind::CrawlSample,
                a: 0,
                b: 3,
            },
        ];
        let points = timeline(&records);
        assert_eq!(points.len(), 1);
        assert_eq!(points[0].t_ms, 60_000);
        assert_eq!(points[0].network_best, 3);
        assert_eq!(points[0].lag_counts, [0, 0, 2, 0, 0]);
        let csv = timeline_csv(&points);
        assert_eq!(
            csv,
            "t_secs,synced,one_behind,two_to_four,five_to_ten,ten_plus\n60,0,0,2,0,0\n"
        );
    }

    #[test]
    fn timeline_ignores_attack_records() {
        let records = vec![
            TraceRecord {
                time: 5,
                node: 1,
                kind: TraceKind::GridMine,
                a: 40,
                b: 5,
            },
            TraceRecord {
                time: 1000,
                node: 1,
                kind: TraceKind::CrawlSample,
                a: 1,
                b: 0,
            },
        ];
        let points = timeline(&records);
        assert_eq!(points.len(), 1);
        assert_eq!(points[0].network_best, 0);
        assert_eq!(points[0].lag_counts, [1, 0, 0, 0, 0]);
    }
}
