//! The metric registry and its deterministic renderers.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// A fixed-bucket histogram: counts of observed values per upper bound
/// (`value <= bound`), plus an overflow bucket for everything larger.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Histogram {
    /// Inclusive upper bounds, strictly increasing.
    bounds: Vec<u64>,
    /// One count per bound.
    counts: Vec<u64>,
    /// Observations above the last bound.
    overflow: u64,
    /// Total observations.
    total: u64,
    /// Sum of observed values (for the mean).
    sum: u64,
    /// Largest observed value.
    max: u64,
}

impl Histogram {
    /// Creates a histogram with the given inclusive upper bounds.
    ///
    /// # Panics
    ///
    /// Panics if `bounds` is empty or not strictly increasing.
    pub fn with_bounds(bounds: &[u64]) -> Self {
        assert!(!bounds.is_empty(), "histogram needs at least one bucket");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly increasing"
        );
        Self {
            bounds: bounds.to_vec(),
            counts: vec![0; bounds.len()],
            overflow: 0,
            total: 0,
            sum: 0,
            max: 0,
        }
    }

    /// Records one observation.
    pub fn record(&mut self, value: u64) {
        match self.bounds.iter().position(|&b| value <= b) {
            Some(i) => self.counts[i] += 1,
            None => self.overflow += 1,
        }
        self.total += 1;
        self.sum += value;
        self.max = self.max.max(value);
    }

    /// The inclusive upper bounds.
    pub fn bounds(&self) -> &[u64] {
        &self.bounds
    }

    /// Per-bucket counts (aligned with [`bounds`](Self::bounds)).
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Observations above the last bound.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Total observations.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Largest observed value (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Sum of observed values.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// The `q`-quantile as the inclusive upper bound of the bucket where
    /// the cumulative count first reaches `ceil(q · total)` — a
    /// conservative (upper) estimate, exact at bucket boundaries.
    /// Observations past the last bound report [`max`](Self::max), and an
    /// empty histogram reports 0.
    ///
    /// # Panics
    ///
    /// Panics unless `q` lies in `[0, 1]`.
    pub fn quantile(&self, q: f64) -> u64 {
        assert!((0.0..=1.0).contains(&q), "quantile must lie in [0, 1]");
        if self.total == 0 {
            return 0;
        }
        let target = ((q * self.total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (count, bound) in self.counts.iter().zip(&self.bounds) {
            seen += count;
            if seen >= target {
                return *bound;
            }
        }
        self.max
    }

    /// Mean observed value (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum as f64 / self.total as f64
        }
    }

    /// Reconstructs a histogram from its exported parts (the inverse of
    /// the getter set above) — used to round-trip histograms through
    /// stable byte encodings such as the bench cache.
    ///
    /// # Errors
    ///
    /// Returns a message when the parts are inconsistent: empty or
    /// unsorted bounds, a counts/bounds length mismatch, or a total that
    /// does not equal the bucket counts plus overflow.
    pub fn from_parts(
        bounds: Vec<u64>,
        counts: Vec<u64>,
        overflow: u64,
        total: u64,
        sum: u64,
        max: u64,
    ) -> Result<Self, String> {
        if bounds.is_empty() {
            return Err("histogram needs at least one bucket".to_string());
        }
        if !bounds.windows(2).all(|w| w[0] < w[1]) {
            return Err("histogram bounds must be strictly increasing".to_string());
        }
        if counts.len() != bounds.len() {
            return Err(format!(
                "histogram has {} bounds but {} counts",
                bounds.len(),
                counts.len()
            ));
        }
        let bucketed: u64 = counts.iter().sum();
        if bucketed + overflow != total {
            return Err(format!(
                "histogram total {total} does not match {bucketed} bucketed + {overflow} overflow"
            ));
        }
        Ok(Self {
            bounds,
            counts,
            overflow,
            total,
            sum,
            max,
        })
    }
}

/// Accumulated span-timer statistics for one name.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SpanStats {
    /// Completed spans.
    pub count: u64,
    /// Total wall time across those spans.
    pub total: Duration,
}

#[derive(Debug, Default)]
struct Inner {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Histogram>,
    spans: BTreeMap<String, SpanStats>,
    /// Run-relative counters (cache hit rates, environment facts):
    /// deliberately excluded from the deterministic `to_json`/`to_csv`
    /// renderings because they may differ between two runs that produce
    /// byte-identical results (e.g. a cold vs a warm cache run).
    volatile: BTreeMap<String, u64>,
}

/// A thread-safe metric registry (see the crate docs for the
/// determinism contract).
///
/// All recording methods take `&self`; the registry can be shared by
/// reference across scoped threads.
#[derive(Debug, Default)]
pub struct Registry {
    inner: Mutex<Inner>,
}

/// RAII guard returned by [`Registry::span`]: records the elapsed wall
/// time under its name when dropped.
#[derive(Debug)]
pub struct SpanGuard<'a> {
    registry: &'a Registry,
    name: String,
    started: Instant,
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        self.registry
            .record_span(&self.name, self.started.elapsed());
    }
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    fn with_inner<R>(&self, f: impl FnOnce(&mut Inner) -> R) -> R {
        let mut inner = self.inner.lock().expect("metrics registry poisoned");
        f(&mut inner)
    }

    /// Increments a monotonic counter by 1.
    pub fn inc(&self, name: &str) {
        self.add(name, 1);
    }

    /// Increments a monotonic counter by `delta`.
    pub fn add(&self, name: &str, delta: u64) {
        self.with_inner(|i| *i.counters.entry(name.to_string()).or_default() += delta);
    }

    /// Increments a *volatile* counter by `delta`. Volatile counters are
    /// run metadata (cache hits, bytes moved): they appear in
    /// [`Snapshot::render_table`] and via [`Snapshot::volatile`], but are
    /// excluded from the deterministic `metrics.json`/`metrics.csv`
    /// renderings, like span wall times.
    pub fn add_volatile(&self, name: &str, delta: u64) {
        self.with_inner(|i| *i.volatile.entry(name.to_string()).or_default() += delta);
    }

    /// Sets a gauge to `value` (last write wins).
    pub fn set_gauge(&self, name: &str, value: f64) {
        self.with_inner(|i| {
            i.gauges.insert(name.to_string(), value);
        });
    }

    /// Raises a gauge to `value` if larger (high-water mark).
    pub fn max_gauge(&self, name: &str, value: f64) {
        self.with_inner(|i| {
            let g = i.gauges.entry(name.to_string()).or_insert(f64::MIN);
            if value > *g {
                *g = value;
            }
        });
    }

    /// Records `value` into the fixed-bucket histogram `name`. The
    /// bounds are fixed by the first call; later calls must pass the
    /// same bounds.
    ///
    /// # Panics
    ///
    /// Panics if `bounds` differ from the histogram's existing bounds.
    pub fn observe(&self, name: &str, bounds: &[u64], value: u64) {
        self.with_inner(|i| {
            let hist = i
                .histograms
                .entry(name.to_string())
                .or_insert_with(|| Histogram::with_bounds(bounds));
            assert_eq!(
                hist.bounds(),
                bounds,
                "histogram {name} re-registered with different bounds"
            );
            hist.record(value);
        });
    }

    /// Merges a pre-built histogram into the registry (bucket-wise sum;
    /// inserts when absent).
    ///
    /// # Panics
    ///
    /// Panics if an existing histogram under `name` has different bounds.
    pub fn merge_histogram(&self, name: &str, hist: &Histogram) {
        self.with_inner(|i| match i.histograms.get_mut(name) {
            None => {
                i.histograms.insert(name.to_string(), hist.clone());
            }
            Some(existing) => {
                assert_eq!(
                    existing.bounds(),
                    hist.bounds(),
                    "histogram {name} merged with different bounds"
                );
                for (c, add) in existing.counts.iter_mut().zip(&hist.counts) {
                    *c += add;
                }
                existing.overflow += hist.overflow;
                existing.total += hist.total;
                existing.sum += hist.sum;
                existing.max = existing.max.max(hist.max);
            }
        });
    }

    /// Starts a wall-clock span; the elapsed time is recorded under
    /// `name` when the returned guard drops.
    pub fn span(&self, name: &str) -> SpanGuard<'_> {
        SpanGuard {
            registry: self,
            name: name.to_string(),
            started: Instant::now(),
        }
    }

    /// Records one completed span of `elapsed` wall time under `name`.
    pub fn record_span(&self, name: &str, elapsed: Duration) {
        self.with_inner(|i| {
            let s = i.spans.entry(name.to_string()).or_default();
            s.count += 1;
            s.total += elapsed;
        });
    }

    /// Takes an immutable snapshot of everything recorded so far.
    pub fn snapshot(&self) -> Snapshot {
        self.with_inner(|i| Snapshot {
            counters: i.counters.clone(),
            gauges: i.gauges.clone(),
            histograms: i.histograms.clone(),
            spans: i.spans.clone(),
            volatile: i.volatile.clone(),
        })
    }

    /// Folds a snapshot of another registry into this one: counters and
    /// volatile counters add, gauges take the maximum (inserting when
    /// absent), histograms merge bucket-wise, and span statistics add
    /// both hit counts and wall time.
    ///
    /// This is the primitive behind scoped observation: each pipeline
    /// task records into its own registry, and the per-task registries
    /// are merged in task order afterwards. Because counters, histogram
    /// buckets and span counts are additive and the deterministic
    /// renderers sort by name, the merged result is byte-identical to
    /// recording into one shared registry — regardless of the
    /// interleaving the worker pool produced. The max rule for gauges
    /// assumes cross-registry gauge names are either disjoint or
    /// high-water marks, which holds for every `bp-*` metric family.
    ///
    /// # Panics
    ///
    /// Panics if a histogram in `snap` has different bounds than an
    /// existing histogram of the same name (same as
    /// [`merge_histogram`](Self::merge_histogram)).
    pub fn merge_snapshot(&self, snap: &Snapshot) {
        self.with_inner(|i| {
            for (name, value) in &snap.counters {
                *i.counters.entry(name.clone()).or_default() += value;
            }
            for (name, value) in &snap.volatile {
                *i.volatile.entry(name.clone()).or_default() += value;
            }
            for (name, value) in &snap.gauges {
                let g = i.gauges.entry(name.clone()).or_insert(f64::MIN);
                if *value > *g {
                    *g = *value;
                }
            }
            for (name, hist) in &snap.histograms {
                match i.histograms.get_mut(name) {
                    None => {
                        i.histograms.insert(name.clone(), hist.clone());
                    }
                    Some(existing) => {
                        assert_eq!(
                            existing.bounds(),
                            hist.bounds(),
                            "histogram {name} merged with different bounds"
                        );
                        for (c, add) in existing.counts.iter_mut().zip(&hist.counts) {
                            *c += add;
                        }
                        existing.overflow += hist.overflow;
                        existing.total += hist.total;
                        existing.sum += hist.sum;
                        existing.max = existing.max.max(hist.max);
                    }
                }
            }
            for (name, stats) in &snap.spans {
                let s = i.spans.entry(name.clone()).or_default();
                s.count += stats.count;
                s.total += stats.total;
            }
        });
    }
}

/// A point-in-time copy of a [`Registry`], with the stable renderers.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Snapshot {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Histogram>,
    spans: BTreeMap<String, SpanStats>,
    volatile: BTreeMap<String, u64>,
}

/// Escapes a string for a JSON key/value position.
///
/// Public so downstream renderers that interpolate metric names into
/// hand-written JSON (e.g. the bench pipeline report) can reuse the exact
/// escaping [`Snapshot::to_json`] applies.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Escapes a single CSV field per RFC 4180: quoted only when it contains a
/// comma, double quote, or line break, so well-formed metric names render
/// byte-identically to the unescaped form.
///
/// Public for the same reason as [`json_escape`]: downstream CSV renderers
/// that interpolate metric or trace names should share this escaping.
pub fn csv_field(s: &str) -> String {
    if s.contains([',', '"', '\n', '\r']) {
        let mut out = String::with_capacity(s.len() + 2);
        out.push('"');
        for c in s.chars() {
            if c == '"' {
                out.push('"');
            }
            out.push(c);
        }
        out.push('"');
        out
    } else {
        s.to_string()
    }
}

/// Formats an `f64` for JSON: finite values via Rust's shortest-roundtrip
/// `Display` (deterministic), non-finite values as `null`.
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        let s = format!("{v}");
        // Ensure a JSON number stays a number on re-parse ("1" not "1.0"
        // matters to byte-stability, not to JSON validity).
        s
    } else {
        "null".to_string()
    }
}

impl Snapshot {
    /// A counter's value (0 when never recorded).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// A gauge's value, if set.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// A histogram, if recorded.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// Span statistics, if recorded.
    pub fn span_stats(&self, name: &str) -> Option<SpanStats> {
        self.spans.get(name).copied()
    }

    /// All counters in sorted-name order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// All gauges in sorted-name order.
    pub fn gauges(&self) -> impl Iterator<Item = (&str, f64)> {
        self.gauges.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// All histograms in sorted-name order.
    pub fn histograms(&self) -> impl Iterator<Item = (&str, &Histogram)> {
        self.histograms.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// All span statistics in sorted-name order.
    pub fn spans(&self) -> impl Iterator<Item = (&str, SpanStats)> {
        self.spans.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// A volatile counter's value (0 when never recorded). Volatile
    /// counters never appear in `to_json`/`to_csv` — see
    /// [`Registry::add_volatile`].
    pub fn volatile_counter(&self, name: &str) -> u64 {
        self.volatile.get(name).copied().unwrap_or(0)
    }

    /// All volatile counters in sorted-name order.
    pub fn volatile(&self) -> impl Iterator<Item = (&str, u64)> {
        self.volatile.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
            && self.gauges.is_empty()
            && self.histograms.is_empty()
            && self.spans.is_empty()
    }

    /// The deterministic `metrics.json` rendering: counters, gauges and
    /// histograms in sorted-name order, plus span *hit counts* (span
    /// wall times are intentionally excluded — see the crate docs).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"schema\": \"bp-obs/v1\",\n");

        out.push_str("  \"counters\": {");
        for (i, (name, value)) in self.counters.iter().enumerate() {
            let sep = if i == 0 { "\n" } else { ",\n" };
            let _ = write!(out, "{sep}    \"{}\": {value}", json_escape(name));
        }
        out.push_str(if self.counters.is_empty() {
            "},\n"
        } else {
            "\n  },\n"
        });

        out.push_str("  \"gauges\": {");
        for (i, (name, value)) in self.gauges.iter().enumerate() {
            let sep = if i == 0 { "\n" } else { ",\n" };
            let _ = write!(
                out,
                "{sep}    \"{}\": {}",
                json_escape(name),
                json_f64(*value)
            );
        }
        out.push_str(if self.gauges.is_empty() {
            "},\n"
        } else {
            "\n  },\n"
        });

        out.push_str("  \"histograms\": {");
        for (i, (name, hist)) in self.histograms.iter().enumerate() {
            let sep = if i == 0 { "\n" } else { ",\n" };
            let bounds: Vec<String> = hist.bounds().iter().map(|b| b.to_string()).collect();
            let counts: Vec<String> = hist.counts().iter().map(|c| c.to_string()).collect();
            let _ = write!(
                out,
                "{sep}    \"{}\": {{\"bounds\": [{}], \"counts\": [{}], \"overflow\": {}, \"total\": {}, \"max\": {}}}",
                json_escape(name),
                bounds.join(", "),
                counts.join(", "),
                hist.overflow(),
                hist.total(),
                hist.max(),
            );
        }
        out.push_str(if self.histograms.is_empty() {
            "},\n"
        } else {
            "\n  },\n"
        });

        out.push_str("  \"span_counts\": {");
        for (i, (name, stats)) in self.spans.iter().enumerate() {
            let sep = if i == 0 { "\n" } else { ",\n" };
            let _ = write!(out, "{sep}    \"{}\": {}", json_escape(name), stats.count);
        }
        out.push_str(if self.spans.is_empty() {
            "}\n"
        } else {
            "\n  }\n"
        });

        out.push_str("}\n");
        out
    }

    /// The deterministic `metrics.csv` rendering: one row per metric
    /// (`kind,name,field,value`), histogram buckets expanded to one row
    /// per bound. Span wall times are excluded, as in
    /// [`to_json`](Self::to_json).
    pub fn to_csv(&self) -> String {
        let mut out = String::from("kind,name,field,value\n");
        for (name, value) in &self.counters {
            let _ = writeln!(out, "counter,{},value,{value}", csv_field(name));
        }
        for (name, value) in &self.gauges {
            let _ = writeln!(out, "gauge,{},value,{}", csv_field(name), json_f64(*value));
        }
        for (name, hist) in &self.histograms {
            let name = csv_field(name);
            for (bound, count) in hist.bounds().iter().zip(hist.counts()) {
                let _ = writeln!(out, "histogram,{name},le_{bound},{count}");
            }
            let _ = writeln!(out, "histogram,{name},overflow,{}", hist.overflow());
            let _ = writeln!(out, "histogram,{name},total,{}", hist.total());
            let _ = writeln!(out, "histogram,{name},max,{}", hist.max());
        }
        for (name, stats) in &self.spans {
            let _ = writeln!(out, "span,{},count,{}", csv_field(name), stats.count);
        }
        out
    }

    /// A human-readable table of everything, including span wall times
    /// (this rendering is for eyes, not for diffing — wall times vary
    /// run to run).
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        if !self.counters.is_empty() {
            out.push_str("counters:\n");
            let width = self.counters.keys().map(|k| k.len()).max().unwrap_or(0);
            for (name, value) in &self.counters {
                let _ = writeln!(out, "  {name:<width$}  {value}");
            }
        }
        if !self.gauges.is_empty() {
            out.push_str("gauges:\n");
            let width = self.gauges.keys().map(|k| k.len()).max().unwrap_or(0);
            for (name, value) in &self.gauges {
                let _ = writeln!(out, "  {name:<width$}  {value}");
            }
        }
        if !self.histograms.is_empty() {
            out.push_str("histograms:\n");
            for (name, hist) in &self.histograms {
                let buckets: Vec<String> = hist
                    .bounds()
                    .iter()
                    .zip(hist.counts())
                    .map(|(b, c)| format!("<={b}:{c}"))
                    .collect();
                let _ = writeln!(
                    out,
                    "  {name}  total={} max={} [{}] overflow={}",
                    hist.total(),
                    hist.max(),
                    buckets.join(" "),
                    hist.overflow(),
                );
            }
        }
        if !self.spans.is_empty() {
            out.push_str("spans:\n");
            let width = self.spans.keys().map(|k| k.len()).max().unwrap_or(0);
            for (name, stats) in &self.spans {
                let _ = writeln!(
                    out,
                    "  {name:<width$}  count={} total={:.1} ms",
                    stats.count,
                    stats.total.as_secs_f64() * 1e3,
                );
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let reg = Registry::new();
        reg.inc("a");
        reg.add("a", 4);
        reg.inc("b");
        let snap = reg.snapshot();
        assert_eq!(snap.counter("a"), 5);
        assert_eq!(snap.counter("b"), 1);
        assert_eq!(snap.counter("missing"), 0);
    }

    #[test]
    fn gauges_set_and_max() {
        let reg = Registry::new();
        reg.set_gauge("g", 2.5);
        reg.set_gauge("g", 1.0);
        reg.max_gauge("hwm", 3.0);
        reg.max_gauge("hwm", 2.0);
        let snap = reg.snapshot();
        assert_eq!(snap.gauge("g"), Some(1.0));
        assert_eq!(snap.gauge("hwm"), Some(3.0));
    }

    #[test]
    fn histogram_buckets_and_overflow() {
        let mut h = Histogram::with_bounds(&[1, 2, 4]);
        for v in [0, 1, 2, 3, 4, 5, 100] {
            h.record(v);
        }
        assert_eq!(h.counts(), &[2, 1, 2]); // <=1: {0,1}; <=2: {2}; <=4: {3,4}
        assert_eq!(h.overflow(), 2);
        assert_eq!(h.total(), 7);
        assert_eq!(h.max(), 100);
        assert!((h.mean() - 115.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn unsorted_bounds_rejected() {
        let _ = Histogram::with_bounds(&[2, 1]);
    }

    #[test]
    fn quantiles_report_bucket_upper_bounds() {
        let mut h = Histogram::with_bounds(&[1, 2, 4, 8]);
        assert_eq!(h.quantile(0.5), 0); // empty
        for v in [1, 1, 2, 3, 4, 5, 6, 7, 8, 9] {
            h.record(v);
        }
        // 10 observations: 2 in <=1, 1 in <=2, 2 in <=4, 4 in <=8, 1 over.
        assert_eq!(h.quantile(0.0), 1);
        assert_eq!(h.quantile(0.2), 1);
        assert_eq!(h.quantile(0.5), 4);
        assert_eq!(h.quantile(0.9), 8);
        // Past the last bound: the tracked max, not a fake bucket.
        assert_eq!(h.quantile(1.0), 9);
    }

    #[test]
    #[should_panic(expected = "quantile")]
    fn out_of_range_quantile_rejected() {
        Histogram::with_bounds(&[1]).quantile(1.5);
    }

    #[test]
    fn observe_and_merge_agree() {
        let reg = Registry::new();
        reg.observe("h", &[10, 20], 5);
        reg.observe("h", &[10, 20], 15);
        let mut local = Histogram::with_bounds(&[10, 20]);
        local.record(25);
        reg.merge_histogram("h", &local);
        let snap = reg.snapshot();
        let h = snap.histogram("h").unwrap();
        assert_eq!(h.counts(), &[1, 1]);
        assert_eq!(h.overflow(), 1);
        assert_eq!(h.total(), 3);
    }

    #[test]
    fn spans_record_counts_and_time() {
        let reg = Registry::new();
        {
            let _s = reg.span("work");
        }
        reg.record_span("work", Duration::from_millis(5));
        let stats = reg.snapshot().span_stats("work").unwrap();
        assert_eq!(stats.count, 2);
        assert!(stats.total >= Duration::from_millis(5));
    }

    #[test]
    fn json_is_deterministic_and_excludes_span_times() {
        let make = || {
            let reg = Registry::new();
            reg.add("z.last", 1);
            reg.add("a.first", 2);
            reg.set_gauge("g", 0.5);
            reg.observe("h", &[1, 2], 2);
            reg.record_span("s", Duration::from_millis(17));
            reg.snapshot()
        };
        let a = make().to_json();
        // A second registry with different span timing renders the same.
        let reg = Registry::new();
        reg.add("z.last", 1);
        reg.add("a.first", 2);
        reg.set_gauge("g", 0.5);
        reg.observe("h", &[1, 2], 2);
        reg.record_span("s", Duration::from_millis(9_999));
        let b = reg.snapshot().to_json();
        assert_eq!(a, b);
        // Sorted keys: a.first before z.last.
        assert!(a.find("a.first").unwrap() < a.find("z.last").unwrap());
        assert!(a.contains("\"span_counts\""));
        assert!(!a.contains("9999"));
    }

    #[test]
    fn csv_covers_every_kind() {
        let reg = Registry::new();
        reg.inc("c");
        reg.set_gauge("g", 2.0);
        reg.observe("h", &[1], 0);
        reg.record_span("s", Duration::from_millis(1));
        let csv = reg.snapshot().to_csv();
        assert!(csv.starts_with("kind,name,field,value\n"));
        assert!(csv.contains("counter,c,value,1"));
        assert!(csv.contains("gauge,g,value,2"));
        assert!(csv.contains("histogram,h,le_1,1"));
        assert!(csv.contains("histogram,h,overflow,0"));
        assert!(csv.contains("span,s,count,1"));
    }

    #[test]
    fn empty_snapshot_renders_valid_json() {
        let snap = Registry::new().snapshot();
        assert!(snap.is_empty());
        let json = snap.to_json();
        assert!(json.contains("\"counters\": {}"));
        assert!(json.ends_with("}\n"));
    }

    #[test]
    fn registry_is_shareable_across_threads() {
        let reg = Registry::new();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for _ in 0..1000 {
                        reg.inc("shared");
                    }
                });
            }
        });
        assert_eq!(reg.snapshot().counter("shared"), 4000);
    }

    #[test]
    fn json_escaping_handles_special_chars() {
        let reg = Registry::new();
        reg.inc("weird\"name\\with\ncontrol");
        let json = reg.snapshot().to_json();
        assert!(json.contains("weird\\\"name\\\\with\\u000acontrol"));
    }

    #[test]
    fn csv_escaping_quotes_reserved_chars() {
        let reg = Registry::new();
        reg.inc("name,with\"comma");
        reg.set_gauge("g,1", 2.0);
        reg.observe("h,1", &[1], 1);
        reg.record_span("s,1", std::time::Duration::from_millis(1));
        let csv = reg.snapshot().to_csv();
        assert!(csv.contains("counter,\"name,with\"\"comma\",value,1"));
        assert!(csv.contains("gauge,\"g,1\",value,2"));
        assert!(csv.contains("histogram,\"h,1\",le_1,1"));
        assert!(csv.contains("span,\"s,1\",count,1"));
        // Every data row still has exactly four parsed fields.
        for line in csv.lines().skip(1) {
            assert_eq!(parse_csv_fields(line).len(), 4, "row: {line}");
        }
    }

    #[test]
    fn csv_escaping_leaves_clean_names_untouched() {
        assert_eq!(csv_field("net.events.inv"), "net.events.inv");
        assert_eq!(csv_field("a,b"), "\"a,b\"");
        assert_eq!(csv_field("a\"b"), "\"a\"\"b\"");
        assert_eq!(csv_field("a\nb"), "\"a\nb\"");
    }

    /// Minimal RFC-4180 field splitter for the escaping test above.
    fn parse_csv_fields(line: &str) -> Vec<String> {
        let mut fields = Vec::new();
        let mut field = String::new();
        let mut chars = line.chars().peekable();
        let mut quoted = false;
        while let Some(c) = chars.next() {
            match c {
                '"' if quoted => {
                    if chars.peek() == Some(&'"') {
                        chars.next();
                        field.push('"');
                    } else {
                        quoted = false;
                    }
                }
                '"' if field.is_empty() => quoted = true,
                ',' if !quoted => fields.push(std::mem::take(&mut field)),
                c => field.push(c),
            }
        }
        fields.push(field);
        fields
    }

    #[test]
    fn table_renders_all_sections() {
        let reg = Registry::new();
        reg.inc("c");
        reg.set_gauge("g", 1.5);
        reg.observe("h", &[1], 1);
        reg.record_span("s", Duration::from_millis(2));
        let table = reg.snapshot().render_table();
        for section in ["counters:", "gauges:", "histograms:", "spans:"] {
            assert!(table.contains(section), "missing {section}");
        }
    }
}
