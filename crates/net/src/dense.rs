//! Generation-stamped dense sets over small integer keys.
//!
//! The simulator's per-node relay state (`seen_invs`, `requested`) is a
//! set of block indices that is queried tens of millions of times per
//! day-scale run and cleared wholesale on churn. A `HashSet<BlockId>`
//! pays a 32-byte SipHash per probe; a [`DenseSet`] is one bounds check
//! and one `u32` compare, and `clear` is a single generation bump
//! instead of a walk over the backing store.

/// A set of `u32` keys backed by a generation-stamped vector.
///
/// `stamps[k] == gen` means `k` is in the set. Clearing increments
/// `gen`, invalidating every stamp in O(1). The backing vector grows
/// lazily to the largest key inserted, so memory is bounded by the
/// global block-index size, shared across the set's lifetime.
#[derive(Debug, Clone, Default)]
pub struct DenseSet {
    stamps: Vec<u32>,
    gen: u32,
    len: usize,
}

impl DenseSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        Self {
            stamps: Vec::new(),
            gen: 1,
            len: 0,
        }
    }

    /// Number of keys in the set.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Whether `key` is in the set.
    #[inline]
    pub fn contains(&self, key: u32) -> bool {
        self.stamps.get(key as usize) == Some(&self.gen)
    }

    /// Inserts `key`; returns `true` if it was not already present.
    #[inline]
    pub fn insert(&mut self, key: u32) -> bool {
        let idx = key as usize;
        if idx >= self.stamps.len() {
            self.stamps.resize(idx + 1, 0);
        }
        if self.stamps[idx] == self.gen {
            return false;
        }
        self.stamps[idx] = self.gen;
        self.len += 1;
        true
    }

    /// Removes `key`; returns `true` if it was present.
    #[inline]
    pub fn remove(&mut self, key: u32) -> bool {
        match self.stamps.get_mut(key as usize) {
            Some(stamp) if *stamp == self.gen => {
                *stamp = 0;
                self.len -= 1;
                true
            }
            _ => false,
        }
    }

    /// Clears the set in O(1) by bumping the generation.
    pub fn clear(&mut self) {
        self.len = 0;
        if self.gen == u32::MAX {
            // Generation wrap: reset every stamp so stale marks from the
            // first generation cannot alias. Amortized over 2^32 clears.
            self.stamps.clear();
            self.gen = 1;
        } else {
            self.gen += 1;
        }
    }

    /// Iterates the keys in the set in ascending order.
    ///
    /// O(capacity), not O(len) — intended for cold paths (pruning,
    /// assertions), never the per-message hot path.
    pub fn iter(&self) -> impl Iterator<Item = u32> + '_ {
        self.stamps
            .iter()
            .enumerate()
            .filter(move |(_, s)| **s == self.gen)
            .map(|(i, _)| i as u32)
    }

    /// Removes every key for which `keep` returns `false`, returning the
    /// number removed. O(capacity); cold-path only.
    pub fn retain(&mut self, mut keep: impl FnMut(u32) -> bool) -> usize {
        let mut removed = 0;
        for (i, stamp) in self.stamps.iter_mut().enumerate() {
            if *stamp == self.gen && !keep(i as u32) {
                *stamp = 0;
                removed += 1;
            }
        }
        self.len -= removed;
        removed
    }
}

/// A pool of [`DenseSet`]-semantics rows, one per node, backed by a
/// single stamps matrix.
///
/// A million-node simulation needs a `requested` and a `seen_invs` set
/// per node; one `DenseSet` each means two million separate `Vec`
/// allocations plus per-set growth bookkeeping. The pool stores every
/// node's stamps in one flat `nodes × stride` matrix (stride grows to
/// the largest key seen, rounded to a power of two), with per-node
/// generations and lengths, so the per-node semantics stay identical to
/// [`DenseSet`] while the allocation count stays O(1).
#[derive(Debug, Clone)]
pub struct DenseSetPool {
    stamps: Vec<u32>,
    gens: Vec<u32>,
    lens: Vec<u32>,
    stride: usize,
    total: usize,
}

impl DenseSetPool {
    /// Creates a pool of `nodes` empty sets.
    pub fn new(nodes: usize) -> Self {
        Self {
            stamps: Vec::new(),
            gens: vec![1; nodes],
            lens: vec![0; nodes],
            stride: 0,
            total: 0,
        }
    }

    /// Number of rows (nodes) in the pool.
    pub fn nodes(&self) -> usize {
        self.gens.len()
    }

    /// Number of keys in node's set.
    #[inline]
    pub fn len_of(&self, node: u32) -> usize {
        self.lens[node as usize] as usize
    }

    /// Total keys across every node's set — the pool's live footprint.
    pub fn total_len(&self) -> usize {
        self.total
    }

    /// Grows the stride so `key` fits, re-striding existing rows.
    #[cold]
    fn grow(&mut self, key: u32) {
        let new_stride = (key as usize + 1).next_power_of_two().max(64);
        let nodes = self.gens.len();
        let mut stamps = vec![0u32; nodes * new_stride];
        for node in 0..nodes {
            let src = node * self.stride;
            let dst = node * new_stride;
            stamps[dst..dst + self.stride].copy_from_slice(&self.stamps[src..src + self.stride]);
        }
        self.stamps = stamps;
        self.stride = new_stride;
    }

    /// Whether `key` is in node's set.
    #[inline]
    pub fn contains(&self, node: u32, key: u32) -> bool {
        let node = node as usize;
        (key as usize) < self.stride
            && self.stamps[node * self.stride + key as usize] == self.gens[node]
    }

    /// Inserts `key` into node's set; `true` if it was not present.
    #[inline]
    pub fn insert(&mut self, node: u32, key: u32) -> bool {
        if key as usize >= self.stride {
            self.grow(key);
        }
        let node = node as usize;
        let idx = node * self.stride + key as usize;
        if self.stamps[idx] == self.gens[node] {
            return false;
        }
        self.stamps[idx] = self.gens[node];
        self.lens[node] += 1;
        self.total += 1;
        true
    }

    /// Removes `key` from node's set; `true` if it was present.
    #[inline]
    pub fn remove(&mut self, node: u32, key: u32) -> bool {
        if key as usize >= self.stride {
            return false;
        }
        let node = node as usize;
        let idx = node * self.stride + key as usize;
        if self.stamps[idx] != self.gens[node] {
            return false;
        }
        self.stamps[idx] = 0;
        self.lens[node] -= 1;
        self.total -= 1;
        true
    }

    /// Clears node's set in O(1) by bumping its generation.
    pub fn clear(&mut self, node: u32) {
        let n = node as usize;
        self.total -= self.lens[n] as usize;
        self.lens[n] = 0;
        if self.gens[n] == u32::MAX {
            // Generation wrap: wipe this row so stale first-generation
            // stamps cannot alias. Amortized over 2^32 clears per node.
            self.stamps[n * self.stride..(n + 1) * self.stride].fill(0);
            self.gens[n] = 1;
        } else {
            self.gens[n] += 1;
        }
    }

    /// Removes every key in node's set for which `keep` returns `false`,
    /// returning the number removed. O(stride); cold-path only.
    pub fn retain(&mut self, node: u32, mut keep: impl FnMut(u32) -> bool) -> usize {
        let n = node as usize;
        let gen = self.gens[n];
        let mut removed = 0u32;
        for (i, stamp) in self.stamps[n * self.stride..(n + 1) * self.stride]
            .iter_mut()
            .enumerate()
        {
            if *stamp == gen && !keep(i as u32) {
                *stamp = 0;
                removed += 1;
            }
        }
        self.lens[n] -= removed;
        self.total -= removed as usize;
        removed as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_remove() {
        let mut s = DenseSet::new();
        assert!(s.is_empty());
        assert!(s.insert(5));
        assert!(!s.insert(5));
        assert!(s.contains(5));
        assert!(!s.contains(4));
        assert_eq!(s.len(), 1);
        assert!(s.remove(5));
        assert!(!s.remove(5));
        assert!(s.is_empty());
    }

    #[test]
    fn clear_is_generation_bump() {
        let mut s = DenseSet::new();
        for k in 0..100 {
            s.insert(k);
        }
        s.clear();
        assert!(s.is_empty());
        for k in 0..100 {
            assert!(!s.contains(k), "{k} leaked across clear");
        }
        assert!(s.insert(3));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn iter_and_retain_visit_live_keys_in_order() {
        let mut s = DenseSet::new();
        for k in [9, 2, 7, 4] {
            s.insert(k);
        }
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![2, 4, 7, 9]);
        let removed = s.retain(|k| k % 2 == 0);
        assert_eq!(removed, 2);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![2, 4]);
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn retain_counts_exactly_once_per_removed_key() {
        let mut s = DenseSet::new();
        // Empty set: nothing to remove, len stays consistent.
        assert_eq!(s.retain(|_| false), 0);
        assert_eq!(s.len(), 0);
        // Keys removed via `remove` must not be counted again by retain.
        for k in [1, 3, 5, 7] {
            s.insert(k);
        }
        assert!(s.remove(3));
        assert_eq!(s.retain(|_| false), 3, "3 was already removed");
        assert!(s.is_empty());
        // Keep-all retain removes nothing.
        for k in [2, 4] {
            s.insert(k);
        }
        assert_eq!(s.retain(|_| true), 0);
        assert_eq!(s.len(), 2);
        // Stale stamps from earlier generations are not retain candidates.
        s.clear();
        s.insert(9);
        assert_eq!(s.retain(|_| false), 1, "only the live key counts");
        assert_eq!(s.len(), 0);
        // Insert still works after a destructive retain.
        assert!(s.insert(4));
        assert!(s.contains(4));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn generation_wrap_resets_stamps_without_aliasing() {
        let mut s = DenseSet::new();
        // A key inserted in generation 1 leaves stamp 1 behind.
        s.insert(3);
        s.clear();
        // Force the set to the last generation and fill it.
        s.gen = u32::MAX;
        assert!(
            !s.contains(3),
            "generation-1 stamp visible at generation MAX"
        );
        s.insert(7);
        assert!(s.contains(7));
        assert_eq!(s.len(), 1);
        // Wrapping clear: gen returns to 1, which would alias the old
        // stamp 1 on key 3 unless the stamps were wiped.
        s.clear();
        assert_eq!(s.gen, 1, "generation must wrap to 1");
        assert!(s.stamps.is_empty(), "stamps must be wiped on wrap");
        assert!(s.is_empty());
        assert!(!s.contains(3), "pre-wrap stamp aliased after wrap");
        assert!(!s.contains(7));
        // The set is fully usable after the wrap.
        assert!(s.insert(3));
        assert!(s.contains(3));
        assert_eq!(s.len(), 1);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![3]);
        // And a post-wrap clear behaves like a normal bump again.
        s.clear();
        assert_eq!(s.gen, 2);
        assert!(!s.contains(3));
    }

    #[test]
    fn pool_rows_match_independent_dense_sets() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let nodes = 17u32;
        let mut rng = StdRng::seed_from_u64(11);
        let mut pool = DenseSetPool::new(nodes as usize);
        let mut reference: Vec<DenseSet> = (0..nodes).map(|_| DenseSet::new()).collect();
        for _ in 0..40_000 {
            let node = rng.random_range(0..nodes);
            let key = rng.random_range(0..700u32);
            let r = &mut reference[node as usize];
            match rng.random_range(0..12u32) {
                0..=4 => assert_eq!(pool.insert(node, key), r.insert(key)),
                5..=7 => assert_eq!(pool.remove(node, key), r.remove(key)),
                8..=9 => assert_eq!(pool.contains(node, key), r.contains(key)),
                10 => {
                    let kept = key % 3;
                    assert_eq!(
                        pool.retain(node, |k| k % 3 == kept),
                        r.retain(|k| k % 3 == kept)
                    );
                }
                _ => {
                    pool.clear(node);
                    r.clear();
                }
            }
            assert_eq!(pool.len_of(node), r.len());
        }
        let total: usize = reference.iter().map(|r| r.len()).sum();
        assert_eq!(pool.total_len(), total);
    }

    #[test]
    fn pool_generation_wrap_stays_isolated_per_node() {
        let mut pool = DenseSetPool::new(3);
        pool.insert(0, 5);
        pool.insert(1, 5);
        pool.clear(0);
        // Force node 0 to the last generation and wrap it.
        pool.gens[0] = u32::MAX;
        pool.insert(0, 9);
        pool.clear(0);
        assert_eq!(pool.gens[0], 1, "generation must wrap to 1");
        assert!(!pool.contains(0, 5), "pre-wrap stamp aliased after wrap");
        assert!(!pool.contains(0, 9));
        // The neighbouring row is untouched by the wrap wipe.
        assert!(pool.contains(1, 5));
        assert!(pool.insert(0, 5));
        assert!(pool.contains(0, 5));
        assert_eq!(pool.total_len(), 2);
    }

    #[test]
    fn pool_grow_preserves_rows() {
        let mut pool = DenseSetPool::new(4);
        pool.insert(2, 3);
        pool.insert(3, 60);
        pool.clear(3);
        pool.insert(3, 7);
        // Key beyond the current stride forces a re-stride.
        pool.insert(1, 5_000);
        assert!(pool.contains(2, 3));
        assert!(pool.contains(3, 7));
        assert!(!pool.contains(3, 60), "cleared key revived by grow");
        assert!(pool.contains(1, 5_000));
        assert_eq!(pool.total_len(), 3);
    }

    #[test]
    fn matches_hashset_under_random_ops() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        use std::collections::HashSet;
        let mut rng = StdRng::seed_from_u64(7);
        let mut dense = DenseSet::new();
        let mut reference: HashSet<u32> = HashSet::new();
        for _ in 0..20_000 {
            let key = rng.random_range(0..512u32);
            match rng.random_range(0..10u32) {
                0..=4 => assert_eq!(dense.insert(key), reference.insert(key)),
                5..=7 => assert_eq!(dense.remove(key), reference.remove(&key)),
                8 => assert_eq!(dense.contains(key), reference.contains(&key)),
                _ => {
                    if rng.random_bool(0.05) {
                        dense.clear();
                        reference.clear();
                    }
                }
            }
            assert_eq!(dense.len(), reference.len());
        }
    }
}
