//! Simulation clock and event queue.
//!
//! A classic discrete-event core: events are `(time, sequence, payload)`
//! triples in a min-heap; the sequence number makes ordering of
//! simultaneous events deterministic, which keeps whole simulations
//! reproducible from a seed.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// Simulation time in milliseconds since simulation start.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

impl SimTime {
    /// Time zero.
    pub const ZERO: SimTime = SimTime(0);

    /// Constructs from whole seconds.
    pub fn from_secs(secs: u64) -> Self {
        SimTime(secs * 1000)
    }

    /// Constructs from fractional seconds (rounded to milliseconds).
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative or not finite.
    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(secs.is_finite() && secs >= 0.0, "time must be non-negative");
        SimTime((secs * 1000.0).round() as u64)
    }

    /// Milliseconds since start.
    pub fn as_millis(self) -> u64 {
        self.0
    }

    /// Whole seconds since start (truncating).
    pub fn as_secs(self) -> u64 {
        self.0 / 1000
    }

    /// Fractional seconds since start.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1000.0
    }
}

impl Add<u64> for SimTime {
    type Output = SimTime;
    /// Advances by `rhs` milliseconds.
    fn add(self, rhs: u64) -> SimTime {
        SimTime(self.0 + rhs)
    }
}

impl AddAssign<u64> for SimTime {
    fn add_assign(&mut self, rhs: u64) {
        self.0 += rhs;
    }
}

impl Sub for SimTime {
    type Output = u64;
    /// Milliseconds between two instants (saturating).
    fn sub(self, rhs: SimTime) -> u64 {
        self.0.saturating_sub(rhs.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{:.3}s", self.as_secs_f64())
    }
}

/// A deterministic min-heap event queue.
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Reverse<(SimTime, u64, EventBox<E>)>>,
    seq: u64,
    now: SimTime,
}

/// Wrapper giving the payload a vacuous ordering so the heap orders purely
/// on `(time, seq)`.
#[derive(Debug)]
struct EventBox<E>(E);

impl<E> PartialEq for EventBox<E> {
    fn eq(&self, _: &Self) -> bool {
        true
    }
}
impl<E> Eq for EventBox<E> {}
impl<E> PartialOrd for EventBox<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for EventBox<E> {
    fn cmp(&self, _: &Self) -> std::cmp::Ordering {
        std::cmp::Ordering::Equal
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue at time zero.
    pub fn new() -> Self {
        Self {
            heap: BinaryHeap::new(),
            seq: 0,
            now: SimTime::ZERO,
        }
    }

    /// Current simulation time (the time of the last popped event).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Schedules `event` at absolute time `at`.
    ///
    /// Events scheduled in the past are clamped to `now` (they fire next).
    pub fn schedule(&mut self, at: SimTime, event: E) {
        let at = at.max(self.now);
        self.heap.push(Reverse((at, self.seq, EventBox(event))));
        self.seq += 1;
    }

    /// Schedules `event` `delay_ms` milliseconds from now.
    pub fn schedule_in(&mut self, delay_ms: u64, event: E) {
        self.schedule(self.now + delay_ms, event);
    }

    /// Pops the next event, advancing the clock to its time.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let Reverse((at, _, EventBox(event))) = self.heap.pop()?;
        self.now = at;
        Some((at, event))
    }

    /// The time of the next pending event without popping it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|Reverse((at, _, _))| *at)
    }

    /// Advances the clock to `t` without processing anything (no-op if
    /// `t` is in the past). Drivers call this after draining events up
    /// to a deadline so that relative scheduling (`schedule_in`,
    /// `run_for_secs`) measures from the deadline rather than from the
    /// last event — otherwise simulated time stalls whenever events are
    /// sparse.
    pub fn advance_to(&mut self, t: SimTime) {
        self.now = self.now.max(t);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simtime_arithmetic() {
        let t = SimTime::from_secs(600);
        assert_eq!(t.as_millis(), 600_000);
        assert_eq!((t + 500).as_millis(), 600_500);
        assert_eq!(t - SimTime::from_secs(100), 500_000);
        assert_eq!(SimTime::from_secs(1) - SimTime::from_secs(2), 0);
        assert_eq!(SimTime::from_secs_f64(1.5).as_millis(), 1500);
    }

    #[test]
    fn events_pop_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime(30), "c");
        q.schedule(SimTime(10), "a");
        q.schedule(SimTime(20), "b");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn simultaneous_events_pop_in_schedule_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime(10), 1);
        q.schedule(SimTime(10), 2);
        q.schedule(SimTime(10), 3);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut q = EventQueue::new();
        q.schedule(SimTime(100), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime(100));
    }

    #[test]
    fn past_events_clamped_to_now() {
        let mut q = EventQueue::new();
        q.schedule(SimTime(100), "first");
        q.pop();
        q.schedule(SimTime(50), "late"); // in the past now
        let (at, _) = q.pop().unwrap();
        assert_eq!(at, SimTime(100));
    }

    #[test]
    fn advance_to_moves_clock_forward_only() {
        let mut q: EventQueue<()> = EventQueue::new();
        q.advance_to(SimTime(500));
        assert_eq!(q.now(), SimTime(500));
        q.advance_to(SimTime(100)); // no-op backwards
        assert_eq!(q.now(), SimTime(500));
        // Relative scheduling measures from the advanced clock.
        q.schedule_in(10, ());
        assert_eq!(q.peek_time(), Some(SimTime(510)));
    }

    #[test]
    fn schedule_in_is_relative() {
        let mut q = EventQueue::new();
        q.schedule(SimTime(100), ());
        q.pop();
        q.schedule_in(25, ());
        assert_eq!(q.peek_time(), Some(SimTime(125)));
    }
}
