//! Simulation clock and event queue.
//!
//! A classic discrete-event core: events are `(time, sequence, payload)`
//! triples popped in `(time, sequence)` order; the sequence number makes
//! ordering of simultaneous events deterministic, which keeps whole
//! simulations reproducible from a seed.
//!
//! Two queue implementations share that contract:
//!
//! * [`EventQueue`] — the production queue, a bucketed calendar (timing
//!   wheel). Scheduling appends to a per-slot bucket in O(1); a bucket is
//!   sorted once when the clock reaches its slot, so the per-event cost is
//!   a small sort share instead of a `log n` heap walk over hundreds of
//!   thousands of pending events (the measured high-water mark of a
//!   paper-profile crawl is ≈300 k).
//! * [`HeapQueue`] — the original binary-heap queue, kept as the reference
//!   model. The property tests drive both with identical schedules and
//!   assert the pop sequences match exactly.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// Simulation time in milliseconds since simulation start.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

impl SimTime {
    /// Time zero.
    pub const ZERO: SimTime = SimTime(0);

    /// Constructs from whole seconds.
    pub fn from_secs(secs: u64) -> Self {
        SimTime(secs * 1000)
    }

    /// Constructs from fractional seconds (rounded to milliseconds).
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative or not finite.
    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(secs.is_finite() && secs >= 0.0, "time must be non-negative");
        SimTime((secs * 1000.0).round() as u64)
    }

    /// Milliseconds since start.
    pub fn as_millis(self) -> u64 {
        self.0
    }

    /// Whole seconds since start (truncating).
    pub fn as_secs(self) -> u64 {
        self.0 / 1000
    }

    /// Fractional seconds since start.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1000.0
    }
}

impl Add<u64> for SimTime {
    type Output = SimTime;
    /// Advances by `rhs` milliseconds.
    fn add(self, rhs: u64) -> SimTime {
        SimTime(self.0 + rhs)
    }
}

impl AddAssign<u64> for SimTime {
    fn add_assign(&mut self, rhs: u64) {
        self.0 += rhs;
    }
}

impl Sub for SimTime {
    type Output = u64;
    /// Milliseconds between two instants (saturating).
    fn sub(self, rhs: SimTime) -> u64 {
        self.0.saturating_sub(rhs.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{:.3}s", self.as_secs_f64())
    }
}

/// Wrapper giving the payload a vacuous ordering so heaps order purely
/// on `(time, seq)`.
#[derive(Debug)]
struct EventBox<E>(E);

impl<E> PartialEq for EventBox<E> {
    fn eq(&self, _: &Self) -> bool {
        true
    }
}
impl<E> Eq for EventBox<E> {}
impl<E> PartialOrd for EventBox<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for EventBox<E> {
    fn cmp(&self, _: &Self) -> std::cmp::Ordering {
        std::cmp::Ordering::Equal
    }
}

/// The deterministic min-heap reference queue.
///
/// This was the production queue before the calendar [`EventQueue`]
/// replaced it on the hot path; it stays as the executable specification
/// of the `(time, seq)` pop order, and the equivalence tests drive both
/// implementations with the same schedules.
#[derive(Debug)]
pub struct HeapQueue<E> {
    heap: BinaryHeap<Reverse<(SimTime, u64, EventBox<E>)>>,
    seq: u64,
    now: SimTime,
}

impl<E> Default for HeapQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> HeapQueue<E> {
    /// Creates an empty queue at time zero.
    pub fn new() -> Self {
        Self {
            heap: BinaryHeap::new(),
            seq: 0,
            now: SimTime::ZERO,
        }
    }

    /// Current simulation time (the time of the last popped event).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Schedules `event` at absolute time `at`.
    ///
    /// Events scheduled in the past are clamped to `now` (they fire next).
    pub fn schedule(&mut self, at: SimTime, event: E) {
        let at = at.max(self.now);
        self.heap.push(Reverse((at, self.seq, EventBox(event))));
        self.seq += 1;
    }

    /// Schedules `event` `delay_ms` milliseconds from now.
    pub fn schedule_in(&mut self, delay_ms: u64, event: E) {
        self.schedule(self.now + delay_ms, event);
    }

    /// Pops the next event, advancing the clock to its time.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let Reverse((at, _, EventBox(event))) = self.heap.pop()?;
        self.now = at;
        Some((at, event))
    }

    /// The time of the next pending event without popping it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|Reverse((at, _, _))| *at)
    }

    /// Advances the clock to `t` without processing anything (no-op if
    /// `t` is in the past).
    pub fn advance_to(&mut self, t: SimTime) {
        self.now = self.now.max(t);
    }
}

/// Scheduling counters of an [`EventQueue`], for observability
/// (`net.*.queue.*` metrics). Purely bookkeeping — the counts are as
/// deterministic as the schedule that produced them.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueueStats {
    /// Events ever scheduled.
    pub scheduled: u64,
    /// Events that landed in a wheel slot (the common O(1) path).
    pub wheel: u64,
    /// Events for the current (or an already-drained) slot, kept in the
    /// small late-insertion heap.
    pub late: u64,
    /// Events beyond the wheel horizon, parked in the overflow heap.
    pub overflow: u64,
    /// Overflow events cascaded back into the wheel as the clock advanced.
    pub cascaded: u64,
}

/// Bucket width of the calendar wheel: 2^7 = 128 ms per slot.
const SLOT_SHIFT: u64 = 7;
/// Number of slots: the wheel spans 8192 × 128 ms ≈ 17.5 simulated
/// minutes, which covers every delay the diffusion model draws in
/// practice (lazy fetches bound at 2 × 300 s); rarer arrivals (long
/// exponential mining gaps) take the overflow path.
const SLOT_COUNT: u64 = 8192;

/// Width of one wheel slot in milliseconds (public so boundary tests can
/// aim events exactly at slot edges).
pub const WHEEL_SLOT_MS: u64 = 1 << SLOT_SHIFT;
/// Span of the whole wheel in milliseconds: events scheduled at
/// `now + WHEEL_SPAN_MS` or later (relative to the current slot's start)
/// take the overflow path; nearer future events land in the wheel.
pub const WHEEL_SPAN_MS: u64 = SLOT_COUNT << SLOT_SHIFT;

fn slot_of(t: SimTime) -> u64 {
    t.0 >> SLOT_SHIFT
}

/// The deterministic calendar (timing-wheel) event queue.
///
/// Pops events in exactly the `(time, seq)` order of [`HeapQueue`]:
/// FIFO among simultaneous events, validated by reference-equivalence
/// tests. Internally, events within the wheel horizon append O(1) to a
/// per-slot bucket that is sorted once when the clock enters the slot;
/// events for the current slot (or the past) go to a small heap, and
/// events beyond the horizon wait in an overflow heap that cascades back
/// into the wheel as the clock advances.
#[derive(Debug)]
pub struct EventQueue<E> {
    /// Ring of future-slot buckets, indexed by `slot % SLOT_COUNT`; holds
    /// events with `cur_slot < slot < cur_slot + SLOT_COUNT`, unsorted.
    wheel: Vec<Vec<(SimTime, u64, E)>>,
    /// Events in wheel buckets (so empty-wheel fast paths are O(1)).
    wheel_len: usize,
    /// The current slot's events, sorted, drained from the front.
    active: VecDeque<(SimTime, u64, E)>,
    /// Events scheduled into the current slot after it was sorted, or
    /// clamped from the past; merged with `active` by `(time, seq)`.
    late: BinaryHeap<Reverse<(SimTime, u64, EventBox<E>)>>,
    /// Events at or beyond `cur_slot + SLOT_COUNT`.
    overflow: BinaryHeap<Reverse<(SimTime, u64, EventBox<E>)>>,
    /// Absolute slot index the clock is currently draining.
    cur_slot: u64,
    len: usize,
    seq: u64,
    now: SimTime,
    stats: QueueStats,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue at time zero.
    pub fn new() -> Self {
        Self {
            wheel: (0..SLOT_COUNT).map(|_| Vec::new()).collect(),
            wheel_len: 0,
            active: VecDeque::new(),
            late: BinaryHeap::new(),
            overflow: BinaryHeap::new(),
            cur_slot: 0,
            len: 0,
            seq: 0,
            now: SimTime::ZERO,
            stats: QueueStats::default(),
        }
    }

    /// Current simulation time (the time of the last popped event).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Scheduling counters so far.
    pub fn stats(&self) -> QueueStats {
        self.stats
    }

    /// Schedules `event` at absolute time `at`.
    ///
    /// Events scheduled in the past are clamped to `now` (they fire next).
    pub fn schedule(&mut self, at: SimTime, event: E) {
        let at = at.max(self.now);
        let seq = self.seq;
        self.seq += 1;
        self.len += 1;
        self.stats.scheduled += 1;
        let slot = slot_of(at);
        if slot <= self.cur_slot {
            // Current or already-passed slot: the bucket (if any) was
            // already sorted and adopted, so the event joins the
            // late-insertion heap that pops alongside it.
            self.stats.late += 1;
            self.late.push(Reverse((at, seq, EventBox(event))));
        } else if slot < self.cur_slot + SLOT_COUNT {
            self.stats.wheel += 1;
            self.wheel_len += 1;
            self.wheel[(slot % SLOT_COUNT) as usize].push((at, seq, event));
        } else {
            self.stats.overflow += 1;
            self.overflow.push(Reverse((at, seq, EventBox(event))));
        }
    }

    /// Schedules `event` `delay_ms` milliseconds from now.
    pub fn schedule_in(&mut self, delay_ms: u64, event: E) {
        self.schedule(self.now + delay_ms, event);
    }

    /// Advances `cur_slot` until the next pending event is reachable in
    /// `active` or `late`. Caller must ensure `len > 0`.
    fn position(&mut self) {
        while self.active.is_empty() && self.late.is_empty() {
            self.cur_slot += 1;
            if self.wheel_len == 0 {
                // Nothing inside the horizon: jump straight to the slot
                // of the earliest overflow event instead of stepping
                // through (possibly millions of) empty slots.
                if let Some(Reverse((t, _, _))) = self.overflow.peek() {
                    self.cur_slot = self.cur_slot.max(slot_of(*t));
                }
            }
            // Overflow events whose slot entered the horizon cascade into
            // the wheel; the overflow heap is time-ordered, so its head
            // bounds everything behind it.
            while let Some(Reverse((t, _, _))) = self.overflow.peek() {
                if slot_of(*t) >= self.cur_slot + SLOT_COUNT {
                    break;
                }
                let Reverse((t, seq, EventBox(event))) = self.overflow.pop().expect("peeked");
                self.stats.cascaded += 1;
                self.wheel_len += 1;
                self.wheel[(slot_of(t) % SLOT_COUNT) as usize].push((t, seq, event));
            }
            let bucket = &mut self.wheel[(self.cur_slot % SLOT_COUNT) as usize];
            if !bucket.is_empty() {
                bucket.sort_unstable_by_key(|a| (a.0, a.1));
                self.wheel_len -= bucket.len();
                self.active.extend(bucket.drain(..));
            }
        }
    }

    /// Whether the next event comes from `active` rather than `late`.
    /// Caller must ensure `position` ran and `len > 0`.
    fn next_is_active(&self) -> bool {
        match (self.active.front(), self.late.peek()) {
            (Some(a), Some(Reverse(l))) => (a.0, a.1) <= (l.0, l.1),
            (Some(_), None) => true,
            _ => false,
        }
    }

    /// Pops the next event, advancing the clock to its time.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        if self.len == 0 {
            return None;
        }
        self.position();
        let (at, event) = if self.next_is_active() {
            let (at, _, event) = self.active.pop_front().expect("positioned");
            (at, event)
        } else {
            let Reverse((at, _, EventBox(event))) = self.late.pop().expect("positioned");
            (at, event)
        };
        self.len -= 1;
        self.now = at;
        Some((at, event))
    }

    /// The time of the next pending event without popping it.
    ///
    /// Takes `&mut self` because the calendar positions itself lazily;
    /// the observable queue state is unchanged.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        if self.len == 0 {
            return None;
        }
        self.position();
        if self.next_is_active() {
            self.active.front().map(|(at, _, _)| *at)
        } else {
            self.late.peek().map(|Reverse((at, _, _))| *at)
        }
    }

    /// Advances the clock to `t` without processing anything (no-op if
    /// `t` is in the past). Drivers call this after draining events up
    /// to a deadline so that relative scheduling (`schedule_in`,
    /// `run_for_secs`) measures from the deadline rather than from the
    /// last event — otherwise simulated time stalls whenever events are
    /// sparse.
    pub fn advance_to(&mut self, t: SimTime) {
        self.now = self.now.max(t);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn simtime_arithmetic() {
        let t = SimTime::from_secs(600);
        assert_eq!(t.as_millis(), 600_000);
        assert_eq!((t + 500).as_millis(), 600_500);
        assert_eq!(t - SimTime::from_secs(100), 500_000);
        assert_eq!(SimTime::from_secs(1) - SimTime::from_secs(2), 0);
        assert_eq!(SimTime::from_secs_f64(1.5).as_millis(), 1500);
    }

    #[test]
    fn events_pop_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime(30), "c");
        q.schedule(SimTime(10), "a");
        q.schedule(SimTime(20), "b");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn simultaneous_events_pop_in_schedule_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime(10), 1);
        q.schedule(SimTime(10), 2);
        q.schedule(SimTime(10), 3);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut q = EventQueue::new();
        q.schedule(SimTime(100), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime(100));
    }

    #[test]
    fn past_events_clamped_to_now() {
        let mut q = EventQueue::new();
        q.schedule(SimTime(100), "first");
        q.pop();
        q.schedule(SimTime(50), "late"); // in the past now
        let (at, _) = q.pop().unwrap();
        assert_eq!(at, SimTime(100));
    }

    #[test]
    fn advance_to_moves_clock_forward_only() {
        let mut q: EventQueue<()> = EventQueue::new();
        q.advance_to(SimTime(500));
        assert_eq!(q.now(), SimTime(500));
        q.advance_to(SimTime(100)); // no-op backwards
        assert_eq!(q.now(), SimTime(500));
        // Relative scheduling measures from the advanced clock.
        q.schedule_in(10, ());
        assert_eq!(q.peek_time(), Some(SimTime(510)));
    }

    #[test]
    fn schedule_in_is_relative() {
        let mut q = EventQueue::new();
        q.schedule(SimTime(100), ());
        q.pop();
        q.schedule_in(25, ());
        assert_eq!(q.peek_time(), Some(SimTime(125)));
    }

    #[test]
    fn horizon_boundary_classification_is_exact() {
        // At t=0 (current slot 0): exactly the wheel span goes to
        // overflow, one millisecond inside stays in the wheel, and the
        // current slot (even future times within it) takes the late heap.
        let mut q = EventQueue::new();
        q.schedule(SimTime(WHEEL_SPAN_MS), "horizon");
        assert_eq!(q.stats().overflow, 1);
        q.schedule(SimTime(WHEEL_SPAN_MS - 1), "inside");
        assert_eq!(q.stats().wheel, 1);
        q.schedule(SimTime(WHEEL_SLOT_MS - 1), "same-slot");
        assert_eq!(q.stats().late, 1);
        q.schedule(SimTime(WHEEL_SLOT_MS), "next-slot");
        assert_eq!(q.stats().wheel, 2);
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!["same-slot", "next-slot", "inside", "horizon"]);
        assert_eq!(q.stats().cascaded, 1, "the horizon event cascaded back");
    }

    #[test]
    fn horizon_is_anchored_to_the_popped_slot() {
        // The wheel horizon advances with `cur_slot` (the slot of the
        // last popped wheel event), not with `now`: after popping into
        // slot 10, the first overflow time is that slot's start plus the
        // wheel span, even if `now` sits mid-slot.
        let mut q = EventQueue::new();
        q.schedule(SimTime(10 * WHEEL_SLOT_MS + 100), "positioner");
        assert_eq!(q.pop().unwrap().1, "positioner");
        let slot_start = 10 * WHEEL_SLOT_MS;
        q.schedule(SimTime(slot_start + WHEEL_SPAN_MS), "first-overflow");
        assert_eq!(q.stats().overflow, 1);
        q.schedule(SimTime(slot_start + WHEEL_SPAN_MS - 1), "last-wheel");
        assert_eq!(q.stats().wheel, 2, "positioner plus last-wheel");
        assert_eq!(q.pop().unwrap().1, "last-wheel");
        assert_eq!(q.pop().unwrap().1, "first-overflow");
        assert!(q.is_empty());
    }

    #[test]
    fn events_beyond_the_horizon_cascade_back() {
        let mut q = EventQueue::new();
        // Far beyond the wheel span (8192 slots × 128 ms ≈ 1049 s).
        q.schedule(SimTime(5_000_000), "far");
        q.schedule(SimTime(10), "near");
        assert_eq!(q.stats().overflow, 1);
        assert_eq!(q.pop().unwrap(), (SimTime(10), "near"));
        assert_eq!(q.pop().unwrap(), (SimTime(5_000_000), "far"));
        assert_eq!(q.stats().cascaded, 1);
        assert!(q.is_empty());
    }

    #[test]
    fn sparse_far_events_pop_without_slot_walking() {
        // Events dozens of horizons apart must still pop promptly (the
        // empty-wheel jump); interleave near events to exercise re-entry.
        let mut q = EventQueue::new();
        let times = [3u64, 2_000_000, 1_500, 900_000_000, 42];
        for (i, &t) in times.iter().enumerate() {
            q.schedule(SimTime(t), i);
        }
        let mut sorted: Vec<u64> = times.to_vec();
        sorted.sort_unstable();
        let popped: Vec<u64> = std::iter::from_fn(|| q.pop().map(|(at, _)| at.0)).collect();
        assert_eq!(popped, sorted);
    }

    /// Drives the calendar queue and the heap reference with an identical
    /// randomized schedule/pop interleaving and asserts the pop sequences
    /// match exactly — `(time, seq)` order, FIFO on ties. The proptest
    /// version in `tests/properties.rs` explores the same space with
    /// shrinking; this seeded run keeps the guarantee in plain
    /// `cargo test`.
    #[test]
    fn calendar_queue_matches_heap_reference() {
        for seed in 0..8u64 {
            let mut rng = StdRng::seed_from_u64(0xCA1E_0000 + seed);
            let mut cal: EventQueue<usize> = EventQueue::new();
            let mut heap: HeapQueue<usize> = HeapQueue::new();
            let mut payload = 0usize;
            for _ in 0..2_000 {
                match rng.random_range(0..10u32) {
                    // Schedule a burst: mixes past times (clamped), ties,
                    // in-horizon and far-overflow times.
                    0..=5 => {
                        let burst = rng.random_range(1..8usize);
                        for _ in 0..burst {
                            let at = match rng.random_range(0..4u32) {
                                0 => rng.random_range(0..1_000u64),             // often the past
                                1 => cal.now().0 + rng.random_range(0..200u64), // ties likely
                                2 => cal.now().0 + rng.random_range(0..500_000u64),
                                _ => cal.now().0 + rng.random_range(0..20_000_000u64),
                            };
                            cal.schedule(SimTime(at), payload);
                            heap.schedule(SimTime(at), payload);
                            payload += 1;
                        }
                    }
                    6..=8 => {
                        for _ in 0..rng.random_range(1..6usize) {
                            assert_eq!(cal.pop(), heap.pop(), "seed {seed}");
                        }
                    }
                    _ => {
                        let t = SimTime(cal.now().0 + rng.random_range(0..2_000_000u64));
                        cal.advance_to(t);
                        heap.advance_to(t);
                    }
                }
                assert_eq!(cal.len(), heap.len(), "seed {seed}");
                assert_eq!(cal.now(), heap.now(), "seed {seed}");
            }
            while let Some(expect) = heap.pop() {
                assert_eq!(cal.pop(), Some(expect), "seed {seed} drain");
            }
            assert!(cal.is_empty());
        }
    }

    #[test]
    fn stats_classify_scheduling_paths() {
        let mut q: EventQueue<u8> = EventQueue::new();
        q.schedule(SimTime(50), 0); // slot 0 == current slot → late
        q.schedule(SimTime(10_000), 1); // inside the horizon → wheel
        q.schedule(SimTime(50_000_000), 2); // beyond → overflow
        let s = q.stats();
        assert_eq!(s.scheduled, 3);
        assert_eq!(s.late, 1);
        assert_eq!(s.wheel, 1);
        assert_eq!(s.overflow, 1);
    }
}
