//! Simulation clock and event queue.
//!
//! A classic discrete-event core: events are `(time, sequence, payload)`
//! triples popped in `(time, sequence)` order; the sequence number makes
//! ordering of simultaneous events deterministic, which keeps whole
//! simulations reproducible from a seed.
//!
//! Three queue implementations share that contract:
//!
//! * [`EventQueue`] — the production single-wheel queue, a bucketed
//!   calendar (timing wheel). Scheduling appends to a per-slot bucket in
//!   O(1); a bucket is sorted once when the clock reaches its slot, so
//!   the per-event cost is a small sort share instead of a `log n` heap
//!   walk over hundreds of thousands of pending events (the measured
//!   high-water mark of a paper-profile crawl is ≈300 k).
//! * [`ShardedQueue`] — N calendar wheels, one per node-range shard,
//!   merged at pop time into exactly the `(time, seq)` order of the
//!   single wheel. Conservative lookahead (the minimum link latency)
//!   keeps the merge cheap: cross-shard arrivals cannot land closer than
//!   `now + lookahead`, so a cached pop boundary survives long pop runs
//!   from one shard before another shard has to be consulted.
//! * [`HeapQueue`] — the original binary-heap queue, kept as the reference
//!   model. The property tests drive all implementations with identical
//!   schedules and assert the pop sequences match exactly.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// Simulation time in milliseconds since simulation start.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

impl SimTime {
    /// Time zero.
    pub const ZERO: SimTime = SimTime(0);

    /// Constructs from whole seconds.
    pub fn from_secs(secs: u64) -> Self {
        SimTime(secs * 1000)
    }

    /// Constructs from fractional seconds (rounded to milliseconds).
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative or not finite.
    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(secs.is_finite() && secs >= 0.0, "time must be non-negative");
        SimTime((secs * 1000.0).round() as u64)
    }

    /// Milliseconds since start.
    pub fn as_millis(self) -> u64 {
        self.0
    }

    /// Whole seconds since start (truncating).
    pub fn as_secs(self) -> u64 {
        self.0 / 1000
    }

    /// Fractional seconds since start.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1000.0
    }
}

impl Add<u64> for SimTime {
    type Output = SimTime;
    /// Advances by `rhs` milliseconds.
    fn add(self, rhs: u64) -> SimTime {
        SimTime(self.0 + rhs)
    }
}

impl AddAssign<u64> for SimTime {
    fn add_assign(&mut self, rhs: u64) {
        self.0 += rhs;
    }
}

impl Sub for SimTime {
    type Output = u64;
    /// Milliseconds between two instants (saturating).
    fn sub(self, rhs: SimTime) -> u64 {
        self.0.saturating_sub(rhs.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{:.3}s", self.as_secs_f64())
    }
}

/// Wrapper giving the payload a vacuous ordering so heaps order purely
/// on `(time, seq)`.
#[derive(Debug)]
struct EventBox<E>(E);

impl<E> PartialEq for EventBox<E> {
    fn eq(&self, _: &Self) -> bool {
        true
    }
}
impl<E> Eq for EventBox<E> {}
impl<E> PartialOrd for EventBox<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for EventBox<E> {
    fn cmp(&self, _: &Self) -> std::cmp::Ordering {
        std::cmp::Ordering::Equal
    }
}

/// The deterministic min-heap reference queue.
///
/// This was the production queue before the calendar [`EventQueue`]
/// replaced it on the hot path; it stays as the executable specification
/// of the `(time, seq)` pop order, and the equivalence tests drive both
/// implementations with the same schedules.
#[derive(Debug)]
pub struct HeapQueue<E> {
    heap: BinaryHeap<Reverse<(SimTime, u64, EventBox<E>)>>,
    seq: u64,
    now: SimTime,
}

impl<E> Default for HeapQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> HeapQueue<E> {
    /// Creates an empty queue at time zero.
    pub fn new() -> Self {
        Self {
            heap: BinaryHeap::new(),
            seq: 0,
            now: SimTime::ZERO,
        }
    }

    /// Current simulation time (the time of the last popped event).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Schedules `event` at absolute time `at`.
    ///
    /// Events scheduled in the past are clamped to `now` (they fire next).
    pub fn schedule(&mut self, at: SimTime, event: E) {
        let at = at.max(self.now);
        self.heap.push(Reverse((at, self.seq, EventBox(event))));
        self.seq += 1;
    }

    /// Schedules `event` `delay_ms` milliseconds from now.
    pub fn schedule_in(&mut self, delay_ms: u64, event: E) {
        self.schedule(self.now + delay_ms, event);
    }

    /// Pops the next event, advancing the clock to its time.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let Reverse((at, _, EventBox(event))) = self.heap.pop()?;
        self.now = at;
        Some((at, event))
    }

    /// The time of the next pending event without popping it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|Reverse((at, _, _))| *at)
    }

    /// Advances the clock to `t` without processing anything (no-op if
    /// `t` is in the past).
    pub fn advance_to(&mut self, t: SimTime) {
        self.now = self.now.max(t);
    }
}

/// Scheduling counters of an [`EventQueue`], for observability
/// (`net.*.queue.*` metrics). Purely bookkeeping — the counts are as
/// deterministic as the schedule that produced them.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueueStats {
    /// Events ever scheduled.
    pub scheduled: u64,
    /// Events that landed in a wheel slot (the common O(1) path).
    pub wheel: u64,
    /// Events for the current (or an already-drained) slot, kept in the
    /// small late-insertion heap.
    pub late: u64,
    /// Events beyond the wheel horizon, parked in the overflow heap.
    pub overflow: u64,
    /// Overflow events cascaded back into the wheel as the clock advanced.
    pub cascaded: u64,
}

/// Bucket width of the calendar wheel: 2^7 = 128 ms per slot.
const SLOT_SHIFT: u64 = 7;
/// Number of slots: the wheel spans 8192 × 128 ms ≈ 17.5 simulated
/// minutes, which covers every delay the diffusion model draws in
/// practice (lazy fetches bound at 2 × 300 s); rarer arrivals (long
/// exponential mining gaps) take the overflow path.
const SLOT_COUNT: u64 = 8192;

/// Width of one wheel slot in milliseconds (public so boundary tests can
/// aim events exactly at slot edges).
pub const WHEEL_SLOT_MS: u64 = 1 << SLOT_SHIFT;

/// Capacity (in events) above which a drained wheel bucket's allocation
/// is released instead of kept for reuse. Gossip waves at large scale
/// concentrate tens of millions of events into the few slots nearest
/// `now`; since every wave lands on different ring offsets, retained
/// bucket capacity otherwise accretes monotonically across the whole
/// ring — gigabytes over a simulated day at a million nodes. Buckets at
/// or below the threshold (the steady-state case) keep their allocation,
/// so ordinary traffic never reallocates; a mega-wave bucket regrows
/// from empty on the next wave, which is amortized O(1) per event.
const SLOT_RETAIN_CAP: usize = 1024;
/// Span of the whole wheel in milliseconds: events scheduled at
/// `now + WHEEL_SPAN_MS` or later (relative to the current slot's start)
/// take the overflow path; nearer future events land in the wheel.
pub const WHEEL_SPAN_MS: u64 = SLOT_COUNT << SLOT_SHIFT;

fn slot_of(t: SimTime) -> u64 {
    t.0 >> SLOT_SHIFT
}

/// The deterministic calendar (timing-wheel) event queue.
///
/// Pops events in exactly the `(time, seq)` order of [`HeapQueue`]:
/// FIFO among simultaneous events, validated by reference-equivalence
/// tests. Internally, events within the wheel horizon append O(1) to a
/// per-slot bucket that is sorted once when the clock enters the slot;
/// events for the current slot (or the past) go to a small heap, and
/// events beyond the horizon wait in an overflow heap that cascades back
/// into the wheel as the clock advances.
#[derive(Debug)]
pub struct EventQueue<E> {
    /// Ring of future-slot buckets, indexed by `slot % SLOT_COUNT`; holds
    /// events with `cur_slot < slot < cur_slot + SLOT_COUNT`, unsorted.
    wheel: Vec<Vec<(SimTime, u64, E)>>,
    /// Events in wheel buckets (so empty-wheel fast paths are O(1)).
    wheel_len: usize,
    /// The current slot's events, sorted, drained from the front.
    active: VecDeque<(SimTime, u64, E)>,
    /// Events scheduled into the current slot after it was sorted, or
    /// clamped from the past; merged with `active` by `(time, seq)`.
    late: BinaryHeap<Reverse<(SimTime, u64, EventBox<E>)>>,
    /// Events at or beyond `cur_slot + SLOT_COUNT`.
    overflow: BinaryHeap<Reverse<(SimTime, u64, EventBox<E>)>>,
    /// Absolute slot index the clock is currently draining.
    cur_slot: u64,
    len: usize,
    seq: u64,
    now: SimTime,
    stats: QueueStats,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue at time zero.
    pub fn new() -> Self {
        Self {
            wheel: (0..SLOT_COUNT).map(|_| Vec::new()).collect(),
            wheel_len: 0,
            active: VecDeque::new(),
            late: BinaryHeap::new(),
            overflow: BinaryHeap::new(),
            cur_slot: 0,
            len: 0,
            seq: 0,
            now: SimTime::ZERO,
            stats: QueueStats::default(),
        }
    }

    /// Current simulation time (the time of the last popped event).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Scheduling counters so far.
    pub fn stats(&self) -> QueueStats {
        self.stats
    }

    /// Schedules `event` at absolute time `at`.
    ///
    /// Events scheduled in the past are clamped to `now` (they fire next).
    pub fn schedule(&mut self, at: SimTime, event: E) {
        let at = at.max(self.now);
        let seq = self.seq;
        self.seq += 1;
        self.schedule_keyed(at, seq, event);
    }

    /// Core insert with a caller-assigned sequence number; `at` must
    /// already be clamped to the owning clock. [`ShardedQueue`] routes
    /// through this so every shard shares one global `(time, seq)` space.
    fn schedule_keyed(&mut self, at: SimTime, seq: u64, event: E) {
        self.len += 1;
        self.stats.scheduled += 1;
        let slot = slot_of(at);
        if slot <= self.cur_slot {
            // Current or already-passed slot: the bucket (if any) was
            // already sorted and adopted, so the event joins the
            // late-insertion heap that pops alongside it.
            self.stats.late += 1;
            self.late.push(Reverse((at, seq, EventBox(event))));
        } else if slot < self.cur_slot + SLOT_COUNT {
            self.stats.wheel += 1;
            self.wheel_len += 1;
            self.wheel[(slot % SLOT_COUNT) as usize].push((at, seq, event));
        } else {
            self.stats.overflow += 1;
            self.overflow.push(Reverse((at, seq, EventBox(event))));
        }
    }

    /// Schedules `event` `delay_ms` milliseconds from now.
    pub fn schedule_in(&mut self, delay_ms: u64, event: E) {
        self.schedule(self.now + delay_ms, event);
    }

    /// Advances `cur_slot` until the next pending event is reachable in
    /// `active` or `late`. Caller must ensure `len > 0`.
    fn position(&mut self) {
        while self.active.is_empty() && self.late.is_empty() {
            // Both staging structures are empty here; if either adopted a
            // mega-wave's footprint, release it before the next bucket
            // moves in. Pure allocation behaviour — order is untouched.
            if self.active.capacity() > SLOT_RETAIN_CAP {
                self.active = VecDeque::new();
            }
            if self.late.capacity() > SLOT_RETAIN_CAP {
                self.late = BinaryHeap::new();
            }
            self.cur_slot += 1;
            if self.wheel_len == 0 {
                // Nothing inside the horizon: jump straight to the slot
                // of the earliest overflow event instead of stepping
                // through (possibly millions of) empty slots.
                if let Some(Reverse((t, _, _))) = self.overflow.peek() {
                    self.cur_slot = self.cur_slot.max(slot_of(*t));
                }
            }
            // Overflow events whose slot entered the horizon cascade into
            // the wheel; the overflow heap is time-ordered, so its head
            // bounds everything behind it.
            while let Some(Reverse((t, _, _))) = self.overflow.peek() {
                if slot_of(*t) >= self.cur_slot + SLOT_COUNT {
                    break;
                }
                let Reverse((t, seq, EventBox(event))) = self.overflow.pop().expect("peeked");
                self.stats.cascaded += 1;
                self.wheel_len += 1;
                self.wheel[(slot_of(t) % SLOT_COUNT) as usize].push((t, seq, event));
            }
            let bucket = &mut self.wheel[(self.cur_slot % SLOT_COUNT) as usize];
            if !bucket.is_empty() {
                bucket.sort_unstable_by_key(|a| (a.0, a.1));
                self.wheel_len -= bucket.len();
                self.active.extend(bucket.drain(..));
                if bucket.capacity() > SLOT_RETAIN_CAP {
                    *bucket = Vec::new();
                }
            }
        }
    }

    /// Whether the next event comes from `active` rather than `late`.
    /// Caller must ensure `position` ran and `len > 0`.
    fn next_is_active(&self) -> bool {
        match (self.active.front(), self.late.peek()) {
            (Some(a), Some(Reverse(l))) => (a.0, a.1) <= (l.0, l.1),
            (Some(_), None) => true,
            _ => false,
        }
    }

    /// Pops the next event, advancing the clock to its time.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        if self.len == 0 {
            return None;
        }
        self.position();
        let (at, event) = if self.next_is_active() {
            let (at, _, event) = self.active.pop_front().expect("positioned");
            (at, event)
        } else {
            let Reverse((at, _, EventBox(event))) = self.late.pop().expect("positioned");
            (at, event)
        };
        self.len -= 1;
        self.now = at;
        Some((at, event))
    }

    /// The time of the next pending event without popping it.
    ///
    /// Takes `&mut self` because the calendar positions itself lazily;
    /// the observable queue state is unchanged.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        self.peek_key().map(|(at, _)| at)
    }

    /// The `(time, seq)` key of the next pending event, positioning the
    /// wheel lazily like [`Self::peek_time`]. The sharded merge compares
    /// these keys across shards.
    fn peek_key(&mut self) -> Option<(SimTime, u64)> {
        if self.len == 0 {
            return None;
        }
        self.position();
        if self.next_is_active() {
            self.active.front().map(|&(at, seq, _)| (at, seq))
        } else {
            self.late.peek().map(|Reverse((at, seq, _))| (*at, *seq))
        }
    }

    /// Advances the clock to `t` without processing anything (no-op if
    /// `t` is in the past). Drivers call this after draining events up
    /// to a deadline so that relative scheduling (`schedule_in`,
    /// `run_for_secs`) measures from the deadline rather than from the
    /// last event — otherwise simulated time stalls whenever events are
    /// sparse.
    pub fn advance_to(&mut self, t: SimTime) {
        self.now = self.now.max(t);
    }

    /// Drains every event strictly below `horizon` into `out`, in the
    /// exact `(time, seq)` order [`Self::pop`] would yield them,
    /// advancing the shard clock the same way. The epoch executor calls
    /// this on every shard concurrently — each shard's sub-horizon run
    /// is final because handlers only fire *after* the drain.
    fn drain_below(&mut self, horizon: SimTime, out: &mut Vec<(SimTime, u64, E)>) {
        while self.len > 0 {
            if self.active.is_empty() && self.late.is_empty() {
                // Cheap lower bound on the head without positioning:
                // wheel events sit strictly beyond the current slot and
                // the overflow heap is time-ordered. Epochs are narrower
                // than a calendar slot, so this keeps idle shards O(1)
                // per epoch instead of walking the ring every window.
                let bound = if self.wheel_len > 0 {
                    SimTime((self.cur_slot + 1) << SLOT_SHIFT)
                } else if let Some(Reverse((t, _, _))) = self.overflow.peek() {
                    *t
                } else {
                    unreachable!("len > 0 with every structure empty");
                };
                if bound >= horizon {
                    return;
                }
            }
            self.position();
            let head_time = if self.next_is_active() {
                self.active.front().expect("positioned").0
            } else {
                self.late.peek().expect("positioned").0 .0
            };
            if head_time >= horizon {
                return;
            }
            let entry = if self.next_is_active() {
                self.active.pop_front().expect("positioned")
            } else {
                let Reverse((at, seq, EventBox(event))) = self.late.pop().expect("positioned");
                (at, seq, event)
            };
            self.len -= 1;
            self.now = entry.0;
            out.push(entry);
        }
    }
}

/// A payload-free replica of the [`EventQueue`] slot state machine.
///
/// A [`ShardedQueue`] classifies each event against its own shard's
/// wheel, so the per-shard `late`/`wheel`/`overflow` splits depend on the
/// shard count — but the exported `net.*.queue.*` counters are part of
/// the deterministic metrics surface and must stay byte-identical to the
/// unsharded wheel at any `--shards N`. The shadow runs the single-wheel
/// classifier over the global (shard-invariant) schedule/position/pop
/// sequence, tracking only per-slot occupancy counts, and yields exactly
/// the [`QueueStats`] the unsharded [`EventQueue`] would have produced.
#[derive(Debug)]
struct ShadowWheel {
    /// Occupancy of each ring slot (events the single wheel would hold).
    counts: Vec<u32>,
    /// Events the single wheel would keep in `active` + `late`.
    near: usize,
    /// Events in wheel buckets (mirror of `EventQueue::wheel_len`).
    wheel_len: usize,
    /// Times of events beyond the horizon (payload-free overflow heap;
    /// cascade counting and the empty-wheel jump only need times).
    overflow: BinaryHeap<Reverse<SimTime>>,
    cur_slot: u64,
    stats: QueueStats,
}

impl ShadowWheel {
    fn new() -> Self {
        Self {
            counts: vec![0; SLOT_COUNT as usize],
            near: 0,
            wheel_len: 0,
            overflow: BinaryHeap::new(),
            cur_slot: 0,
            stats: QueueStats::default(),
        }
    }

    /// Mirror of [`EventQueue::schedule`] classification; `at` must
    /// already be clamped to the global clock.
    fn on_schedule(&mut self, at: SimTime) {
        self.stats.scheduled += 1;
        let slot = slot_of(at);
        if slot <= self.cur_slot {
            self.stats.late += 1;
            self.near += 1;
        } else if slot < self.cur_slot + SLOT_COUNT {
            self.stats.wheel += 1;
            self.wheel_len += 1;
            self.counts[(slot % SLOT_COUNT) as usize] += 1;
        } else {
            self.stats.overflow += 1;
            self.overflow.push(Reverse(at));
        }
    }

    /// Mirror of [`EventQueue::position`]: advance `cur_slot`, cascading
    /// overflow and adopting buckets, until a poppable event is near.
    /// Caller must ensure at least one event is pending.
    fn position(&mut self) {
        while self.near == 0 {
            self.cur_slot += 1;
            if self.wheel_len == 0 {
                if let Some(Reverse(t)) = self.overflow.peek() {
                    self.cur_slot = self.cur_slot.max(slot_of(*t));
                }
            }
            while let Some(Reverse(t)) = self.overflow.peek() {
                if slot_of(*t) >= self.cur_slot + SLOT_COUNT {
                    break;
                }
                let Reverse(t) = self.overflow.pop().expect("peeked");
                self.stats.cascaded += 1;
                self.wheel_len += 1;
                self.counts[(slot_of(t) % SLOT_COUNT) as usize] += 1;
            }
            let bucket = &mut self.counts[(self.cur_slot % SLOT_COUNT) as usize];
            if *bucket > 0 {
                self.near += *bucket as usize;
                self.wheel_len -= *bucket as usize;
                *bucket = 0;
            }
        }
    }

    fn on_pop(&mut self) {
        self.near -= 1;
    }
}

/// Merge-layer diagnostics of a [`ShardedQueue`].
///
/// These depend on the shard count (they describe how much work the
/// merge did, not what the simulation computed), so the simulator
/// exports them as *volatile* counters, excluded from the deterministic
/// metrics surface.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MergeStats {
    /// Head reads served from the cached `(active, boundary)` pair.
    pub fast: u64,
    /// Full head rescans across every shard.
    pub rescans: u64,
    /// Cross-shard schedules that undercut the cached boundary and
    /// shrank it (forcing an earlier rescan than the cache hoped for).
    pub shrinks: u64,
    /// Cross-shard schedules that landed inside `now + lookahead` —
    /// violations of the conservative-lookahead contract. Zero whenever
    /// every cross-shard delay honours the configured minimum latency.
    /// Under the epoch executor this counts reinjections: mid-epoch
    /// schedules that undercut the open horizon and took the serialized
    /// slow path.
    pub horizon_breaches: u64,
    /// Conservative-window epochs opened by [`ShardedQueue::begin_epoch`]
    /// (the parallel executor; zero under the classic serial drain).
    pub epochs: u64,
}

/// N [`EventQueue`] wheels (one per node-range shard) merged into the
/// exact global `(time, seq)` pop order of a single wheel.
///
/// Scheduling stamps each event with a *global* sequence number and
/// routes it to its target's shard, where the per-shard calendar wheel
/// files it in O(1). Popping takes the minimum head key across shards —
/// but not by scanning every shard per pop: a rescan caches the winning
/// shard plus a `boundary` (the runner-up head key), and subsequent pops
/// stay inside the cached shard while its head is ≤ the boundary. The
/// cache is kept *exact* (not heuristic) by shrinking the boundary
/// whenever a schedule lands in a non-active shard below it; the
/// conservative lookahead — the minimum cross-shard link latency,
/// passed by the simulator — is what makes those shrinks rare, because
/// a cross-shard arrival cannot land below `now + lookahead`. Each
/// shard's wheel therefore positions/sorts independently of the others
/// up to that horizon, which is what lets shards advance in parallel
/// without ever breaking the single-wheel pop order.
///
/// The exported [`QueueStats`] come from a count-only shadow wheel
/// driven by the shard-invariant global op sequence, so `stats()` is
/// byte-identical to the unsharded [`EventQueue`] for any shard count.
#[derive(Debug)]
pub struct ShardedQueue<E> {
    shards: Vec<EventQueue<E>>,
    now: SimTime,
    len: usize,
    seq: u64,
    lookahead_ms: u64,
    shadow: ShadowWheel,
    /// Shard the merge is currently draining.
    active: usize,
    /// Upper bound `(time, seq)` on keys poppable from `active` without
    /// consulting the other shards (the runner-up head at last rescan,
    /// shrunk by any cross-shard schedule that lands below it).
    boundary: (SimTime, u64),
    /// Whether `active`/`boundary` are valid.
    batch: bool,
    merge: MergeStats,
    epoch: EpochState<E>,
}

/// Retention threshold for the per-shard epoch buffers, mirroring the
/// wheel's [`SLOT_RETAIN_CAP`] policy: steady-state buffers keep their
/// allocation across epochs, mega-wave footprints are released when the
/// buffer drains. Epoch buffers are per *shard*, not per ring slot, so
/// the threshold can be far more generous than the wheel's.
const EPOCH_RETAIN_CAP: usize = 64 * 1024;

/// In-flight state of one conservative-window epoch (see
/// [`ShardedQueue::begin_epoch`]). The buffers persist across epochs so
/// steady-state windows allocate nothing.
#[derive(Debug)]
struct EpochState<E> {
    on: bool,
    horizon: SimTime,
    /// Per-shard drained runs, sorted *descending* by `(time, seq)` so
    /// the merge head is `last()` and popping it moves the payload out
    /// in O(1); empty between epochs.
    runs: Vec<Vec<(SimTime, u64, E)>>,
    /// Per-shard events scheduled mid-epoch at or beyond the horizon,
    /// bulk-inserted into the shard wheels at the barrier commit.
    staged: Vec<Vec<(SimTime, u64, E)>>,
    /// Events scheduled mid-epoch *below* the horizon — breaches of the
    /// conservative-lookahead promise. They join the live merge (the
    /// serialized slow path) so the pop order stays exact for any delay
    /// pattern; the wheels stay untouched until the commit.
    reinject: BinaryHeap<Reverse<(SimTime, u64, EventBox<E>)>>,
}

impl<E> EpochState<E> {
    fn new(shards: usize) -> Self {
        Self {
            on: false,
            horizon: SimTime::ZERO,
            runs: (0..shards).map(|_| Vec::new()).collect(),
            staged: (0..shards).map(|_| Vec::new()).collect(),
            reinject: BinaryHeap::new(),
        }
    }
}

impl<E> ShardedQueue<E> {
    /// Creates an empty queue of `shards` wheels at time zero.
    ///
    /// `lookahead_ms` is the conservative lookahead: the caller promises
    /// cross-shard events are scheduled at least this far in the future
    /// (the simulator passes its minimum link latency). The merge stays
    /// exact even when the promise is broken — breaches only cost merge
    /// efficiency and are counted in [`MergeStats::horizon_breaches`].
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero.
    pub fn new(shards: usize, lookahead_ms: u64) -> Self {
        assert!(shards > 0, "need at least one shard");
        Self {
            shards: (0..shards).map(|_| EventQueue::new()).collect(),
            now: SimTime::ZERO,
            len: 0,
            seq: 0,
            lookahead_ms,
            shadow: ShadowWheel::new(),
            active: 0,
            boundary: (SimTime(u64::MAX), u64::MAX),
            batch: false,
            merge: MergeStats::default(),
            epoch: EpochState::new(shards),
        }
    }

    /// Current simulation time (the time of the last popped event).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of pending events across all shards.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The configured conservative lookahead in milliseconds.
    pub fn lookahead_ms(&self) -> u64 {
        self.lookahead_ms
    }

    /// Scheduling counters — byte-identical to the single-wheel
    /// [`EventQueue::stats`] for the same schedule, at any shard count.
    pub fn stats(&self) -> QueueStats {
        self.shadow.stats
    }

    /// Merge-layer diagnostics (shard-count-dependent; volatile).
    pub fn merge_stats(&self) -> MergeStats {
        self.merge
    }

    /// Schedules `event` at absolute time `at` on `shard`.
    ///
    /// Events scheduled in the past are clamped to `now` (they fire
    /// next), exactly as in the unsharded wheel.
    ///
    /// # Panics
    ///
    /// Panics if `shard` is out of range.
    pub fn schedule(&mut self, at: SimTime, shard: usize, event: E) {
        let at = at.max(self.now);
        let seq = self.seq;
        self.seq += 1;
        self.len += 1;
        self.shadow.on_schedule(at);
        if self.epoch.on {
            if at < self.epoch.horizon {
                // Lookahead-promise breach: the event lands inside the
                // open window, so it joins the live merge instead of the
                // barrier commit — exact order, serialized slow path.
                self.merge.horizon_breaches += 1;
                self.epoch
                    .reinject
                    .push(Reverse((at, seq, EventBox(event))));
            } else {
                self.epoch.staged[shard].push((at, seq, event));
            }
            return;
        }
        if shard != self.active {
            if at.0 < self.now.0 + self.lookahead_ms {
                self.merge.horizon_breaches += 1;
            }
            if self.batch && (at, seq) < self.boundary {
                self.merge.shrinks += 1;
                self.boundary = (at, seq);
            }
        }
        self.shards[shard].schedule_keyed(at, seq, event);
    }

    /// Schedules `event` on `shard`, `delay_ms` milliseconds from now.
    pub fn schedule_in(&mut self, delay_ms: u64, shard: usize, event: E) {
        self.schedule(self.now + delay_ms, shard, event);
    }

    /// The key of the globally next event, refreshing the batch cache if
    /// needed. Caller must ensure `len > 0`.
    fn head_key(&mut self) -> (SimTime, u64) {
        if self.batch {
            if let Some(key) = self.shards[self.active].peek_key() {
                if key <= self.boundary {
                    self.merge.fast += 1;
                    return key;
                }
            }
        }
        self.rescan()
    }

    /// Scans every shard head: the minimum becomes the active shard, the
    /// runner-up becomes the pop boundary. Exact for any event pattern —
    /// pops only drain the active shard, and any schedule that could
    /// undercut the boundary shrinks it on the spot.
    fn rescan(&mut self) -> (SimTime, u64) {
        self.merge.rescans += 1;
        let mut best: Option<((SimTime, u64), usize)> = None;
        let mut runner_up = (SimTime(u64::MAX), u64::MAX);
        for (i, shard) in self.shards.iter_mut().enumerate() {
            let Some(key) = shard.peek_key() else {
                continue;
            };
            match &mut best {
                Some((bk, bi)) => {
                    if key < *bk {
                        runner_up = *bk;
                        (*bk, *bi) = (key, i);
                    } else if key < runner_up {
                        runner_up = key;
                    }
                }
                None => best = Some((key, i)),
            }
        }
        let (key, idx) = best.expect("len > 0 implies a non-empty shard");
        self.active = idx;
        self.boundary = runner_up;
        self.batch = true;
        key
    }

    /// Pops the globally next event, advancing the clock to its time.
    ///
    /// Inside an open epoch (between [`Self::begin_epoch`] and
    /// [`Self::commit_epoch`]) this yields only events strictly below
    /// the horizon — `None` once the epoch is exhausted, even when
    /// later events remain in the wheels.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        if self.len == 0 {
            return None;
        }
        if self.epoch.on {
            return self.epoch_pop();
        }
        self.shadow.position();
        let (at, _) = self.head_key();
        let (popped_at, event) = self.shards[self.active].pop().expect("head_key found it");
        debug_assert_eq!(popped_at, at);
        self.len -= 1;
        self.now = popped_at;
        self.shadow.on_pop();
        Some((popped_at, event))
    }

    /// Opens a conservative-window epoch: every event strictly below
    /// `horizon` is drained out of the shard wheels — by `workers`
    /// scoped threads, one contiguous shard range each — into per-shard
    /// sorted runs, parallelizing the wheel's positioning, cascade and
    /// bucket-sort work. Until [`Self::commit_epoch`] closes the epoch,
    /// [`Self::pop`] merges those runs (plus any mid-epoch reinjections)
    /// in the global `(time, seq)` order, and [`Self::schedule`] stages
    /// new events for the barrier commit instead of touching the wheels.
    /// The pop/schedule stream the caller observes is byte-identical to
    /// the non-epoch path for any `workers`.
    ///
    /// The caller picks `horizon ≤ head_time + lookahead` so that the
    /// drained runs are final: handlers run only after the drain, and
    /// anything they schedule inside the open window falls back to the
    /// serialized reinjection heap (counted in
    /// [`MergeStats::horizon_breaches`]) rather than corrupting order.
    ///
    /// # Panics
    ///
    /// Panics (debug) if an epoch is already open.
    pub fn begin_epoch(&mut self, horizon: SimTime, workers: usize)
    where
        E: Send,
    {
        debug_assert!(!self.epoch.on, "epoch already open");
        self.epoch.on = true;
        self.epoch.horizon = horizon;
        self.merge.epochs += 1;
        fn drain<E>(horizon: SimTime, qs: &mut [EventQueue<E>], rs: &mut [Vec<(SimTime, u64, E)>]) {
            for (q, run) in qs.iter_mut().zip(rs.iter_mut()) {
                q.drain_below(horizon, run);
                // Descending, so the merge pops heads off the back.
                run.reverse();
            }
        }
        let workers = workers.clamp(1, self.shards.len());
        let chunk = self.shards.len().div_ceil(workers);
        let runs = &mut self.epoch.runs;
        if workers == 1 {
            drain(horizon, &mut self.shards, runs);
        } else {
            std::thread::scope(|scope| {
                let mut chunks = self.shards.chunks_mut(chunk).zip(runs.chunks_mut(chunk));
                let (head_q, head_r) = chunks.next().expect("at least one shard");
                for (qs, rs) in chunks {
                    scope.spawn(move || drain(horizon, qs, rs));
                }
                // The first chunk runs on the calling thread.
                drain(horizon, head_q, head_r);
            });
        }
        // Shard heads moved wholesale; the serial merge cache is stale.
        self.batch = false;
    }

    /// Whether the open epoch still has events to pop. Callers drive the
    /// epoch with `while q.epoch_pending() { q.pop() }` so queue-depth
    /// sampling can happen at exactly the serial loop's pop points.
    pub fn epoch_pending(&self) -> bool {
        debug_assert!(self.epoch.on, "no epoch open");
        self.epoch_head().is_some()
    }

    /// Closes the epoch: every staged event is bulk-inserted into its
    /// shard wheel — by `workers` scoped threads again — under the
    /// globally-stamped `(time, seq)` keys assigned at schedule time, so
    /// subsequent pops observe exactly the single-wheel order.
    ///
    /// # Panics
    ///
    /// Panics (debug) if no epoch is open or epoch events were left
    /// unpopped.
    pub fn commit_epoch(&mut self, workers: usize)
    where
        E: Send,
    {
        debug_assert!(self.epoch.on, "no epoch open");
        debug_assert!(
            self.epoch_head().is_none(),
            "epoch closed with events left unpopped"
        );
        self.epoch.on = false;
        fn commit<E>(qs: &mut [EventQueue<E>], ss: &mut [Vec<(SimTime, u64, E)>]) {
            for (q, staged) in qs.iter_mut().zip(ss.iter_mut()) {
                for (at, seq, event) in staged.drain(..) {
                    q.schedule_keyed(at, seq, event);
                }
                if staged.capacity() > EPOCH_RETAIN_CAP {
                    *staged = Vec::new();
                }
            }
        }
        let workers = workers.clamp(1, self.shards.len());
        let chunk = self.shards.len().div_ceil(workers);
        let staged = &mut self.epoch.staged;
        if workers == 1 {
            commit(&mut self.shards, staged);
        } else {
            std::thread::scope(|scope| {
                let mut chunks = self.shards.chunks_mut(chunk).zip(staged.chunks_mut(chunk));
                let (head_q, head_s) = chunks.next().expect("at least one shard");
                for (qs, ss) in chunks {
                    scope.spawn(move || commit(qs, ss));
                }
                commit(head_q, head_s);
            });
        }
        for run in &mut self.epoch.runs {
            debug_assert!(run.is_empty(), "epoch run left undrained");
            if run.capacity() > EPOCH_RETAIN_CAP {
                *run = Vec::new();
            }
        }
        self.batch = false;
    }

    /// The `(time, seq)` head of the open epoch and where it lives:
    /// `Some(shard)` for a drained run, `None` for the reinjection heap.
    fn epoch_head(&self) -> Option<((SimTime, u64), Option<usize>)> {
        let mut best: Option<((SimTime, u64), Option<usize>)> = None;
        for (i, run) in self.epoch.runs.iter().enumerate() {
            if let Some(&(at, seq, _)) = run.last() {
                if best.is_none_or(|(k, _)| (at, seq) < k) {
                    best = Some(((at, seq), Some(i)));
                }
            }
        }
        if let Some(Reverse((at, seq, _))) = self.epoch.reinject.peek() {
            if best.is_none_or(|(k, _)| (*at, *seq) < k) {
                best = Some(((*at, *seq), None));
            }
        }
        best
    }

    /// Epoch-mode [`Self::pop`]: merge the per-shard runs with the
    /// reinjection heap, preserving the shadow's op sequence exactly.
    fn epoch_pop(&mut self) -> Option<(SimTime, E)> {
        let (_, src) = self.epoch_head()?;
        self.shadow.position();
        let (at, _seq, event) = match src {
            Some(i) => self.epoch.runs[i].pop().expect("head observed"),
            None => {
                let Reverse((at, seq, EventBox(event))) =
                    self.epoch.reinject.pop().expect("head observed");
                (at, seq, event)
            }
        };
        self.len -= 1;
        self.now = at;
        self.shadow.on_pop();
        Some((at, event))
    }

    /// The time of the globally next event without popping it.
    ///
    /// Takes `&mut self` because shard wheels position lazily; the
    /// observable queue state is unchanged.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        debug_assert!(!self.epoch.on, "peek_time inside an open epoch");
        if self.len == 0 {
            return None;
        }
        self.shadow.position();
        Some(self.head_key().0)
    }

    /// Advances the clock to `t` without processing anything (no-op if
    /// `t` is in the past); see [`EventQueue::advance_to`].
    pub fn advance_to(&mut self, t: SimTime) {
        self.now = self.now.max(t);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn simtime_arithmetic() {
        let t = SimTime::from_secs(600);
        assert_eq!(t.as_millis(), 600_000);
        assert_eq!((t + 500).as_millis(), 600_500);
        assert_eq!(t - SimTime::from_secs(100), 500_000);
        assert_eq!(SimTime::from_secs(1) - SimTime::from_secs(2), 0);
        assert_eq!(SimTime::from_secs_f64(1.5).as_millis(), 1500);
    }

    #[test]
    fn events_pop_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime(30), "c");
        q.schedule(SimTime(10), "a");
        q.schedule(SimTime(20), "b");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn simultaneous_events_pop_in_schedule_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime(10), 1);
        q.schedule(SimTime(10), 2);
        q.schedule(SimTime(10), 3);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut q = EventQueue::new();
        q.schedule(SimTime(100), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime(100));
    }

    #[test]
    fn past_events_clamped_to_now() {
        let mut q = EventQueue::new();
        q.schedule(SimTime(100), "first");
        q.pop();
        q.schedule(SimTime(50), "late"); // in the past now
        let (at, _) = q.pop().unwrap();
        assert_eq!(at, SimTime(100));
    }

    #[test]
    fn advance_to_moves_clock_forward_only() {
        let mut q: EventQueue<()> = EventQueue::new();
        q.advance_to(SimTime(500));
        assert_eq!(q.now(), SimTime(500));
        q.advance_to(SimTime(100)); // no-op backwards
        assert_eq!(q.now(), SimTime(500));
        // Relative scheduling measures from the advanced clock.
        q.schedule_in(10, ());
        assert_eq!(q.peek_time(), Some(SimTime(510)));
    }

    #[test]
    fn schedule_in_is_relative() {
        let mut q = EventQueue::new();
        q.schedule(SimTime(100), ());
        q.pop();
        q.schedule_in(25, ());
        assert_eq!(q.peek_time(), Some(SimTime(125)));
    }

    #[test]
    fn horizon_boundary_classification_is_exact() {
        // At t=0 (current slot 0): exactly the wheel span goes to
        // overflow, one millisecond inside stays in the wheel, and the
        // current slot (even future times within it) takes the late heap.
        let mut q = EventQueue::new();
        q.schedule(SimTime(WHEEL_SPAN_MS), "horizon");
        assert_eq!(q.stats().overflow, 1);
        q.schedule(SimTime(WHEEL_SPAN_MS - 1), "inside");
        assert_eq!(q.stats().wheel, 1);
        q.schedule(SimTime(WHEEL_SLOT_MS - 1), "same-slot");
        assert_eq!(q.stats().late, 1);
        q.schedule(SimTime(WHEEL_SLOT_MS), "next-slot");
        assert_eq!(q.stats().wheel, 2);
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!["same-slot", "next-slot", "inside", "horizon"]);
        assert_eq!(q.stats().cascaded, 1, "the horizon event cascaded back");
    }

    #[test]
    fn horizon_is_anchored_to_the_popped_slot() {
        // The wheel horizon advances with `cur_slot` (the slot of the
        // last popped wheel event), not with `now`: after popping into
        // slot 10, the first overflow time is that slot's start plus the
        // wheel span, even if `now` sits mid-slot.
        let mut q = EventQueue::new();
        q.schedule(SimTime(10 * WHEEL_SLOT_MS + 100), "positioner");
        assert_eq!(q.pop().unwrap().1, "positioner");
        let slot_start = 10 * WHEEL_SLOT_MS;
        q.schedule(SimTime(slot_start + WHEEL_SPAN_MS), "first-overflow");
        assert_eq!(q.stats().overflow, 1);
        q.schedule(SimTime(slot_start + WHEEL_SPAN_MS - 1), "last-wheel");
        assert_eq!(q.stats().wheel, 2, "positioner plus last-wheel");
        assert_eq!(q.pop().unwrap().1, "last-wheel");
        assert_eq!(q.pop().unwrap().1, "first-overflow");
        assert!(q.is_empty());
    }

    #[test]
    fn events_beyond_the_horizon_cascade_back() {
        let mut q = EventQueue::new();
        // Far beyond the wheel span (8192 slots × 128 ms ≈ 1049 s).
        q.schedule(SimTime(5_000_000), "far");
        q.schedule(SimTime(10), "near");
        assert_eq!(q.stats().overflow, 1);
        assert_eq!(q.pop().unwrap(), (SimTime(10), "near"));
        assert_eq!(q.pop().unwrap(), (SimTime(5_000_000), "far"));
        assert_eq!(q.stats().cascaded, 1);
        assert!(q.is_empty());
    }

    #[test]
    fn sparse_far_events_pop_without_slot_walking() {
        // Events dozens of horizons apart must still pop promptly (the
        // empty-wheel jump); interleave near events to exercise re-entry.
        let mut q = EventQueue::new();
        let times = [3u64, 2_000_000, 1_500, 900_000_000, 42];
        for (i, &t) in times.iter().enumerate() {
            q.schedule(SimTime(t), i);
        }
        let mut sorted: Vec<u64> = times.to_vec();
        sorted.sort_unstable();
        let popped: Vec<u64> = std::iter::from_fn(|| q.pop().map(|(at, _)| at.0)).collect();
        assert_eq!(popped, sorted);
    }

    /// Drives the calendar queue and the heap reference with an identical
    /// randomized schedule/pop interleaving and asserts the pop sequences
    /// match exactly — `(time, seq)` order, FIFO on ties. The proptest
    /// version in `tests/properties.rs` explores the same space with
    /// shrinking; this seeded run keeps the guarantee in plain
    /// `cargo test`.
    #[test]
    fn calendar_queue_matches_heap_reference() {
        for seed in 0..8u64 {
            let mut rng = StdRng::seed_from_u64(0xCA1E_0000 + seed);
            let mut cal: EventQueue<usize> = EventQueue::new();
            let mut heap: HeapQueue<usize> = HeapQueue::new();
            let mut payload = 0usize;
            for _ in 0..2_000 {
                match rng.random_range(0..10u32) {
                    // Schedule a burst: mixes past times (clamped), ties,
                    // in-horizon and far-overflow times.
                    0..=5 => {
                        let burst = rng.random_range(1..8usize);
                        for _ in 0..burst {
                            let at = match rng.random_range(0..4u32) {
                                0 => rng.random_range(0..1_000u64),             // often the past
                                1 => cal.now().0 + rng.random_range(0..200u64), // ties likely
                                2 => cal.now().0 + rng.random_range(0..500_000u64),
                                _ => cal.now().0 + rng.random_range(0..20_000_000u64),
                            };
                            cal.schedule(SimTime(at), payload);
                            heap.schedule(SimTime(at), payload);
                            payload += 1;
                        }
                    }
                    6..=8 => {
                        for _ in 0..rng.random_range(1..6usize) {
                            assert_eq!(cal.pop(), heap.pop(), "seed {seed}");
                        }
                    }
                    _ => {
                        let t = SimTime(cal.now().0 + rng.random_range(0..2_000_000u64));
                        cal.advance_to(t);
                        heap.advance_to(t);
                    }
                }
                assert_eq!(cal.len(), heap.len(), "seed {seed}");
                assert_eq!(cal.now(), heap.now(), "seed {seed}");
            }
            while let Some(expect) = heap.pop() {
                assert_eq!(cal.pop(), Some(expect), "seed {seed} drain");
            }
            assert!(cal.is_empty());
        }
    }

    /// Drives a [`ShardedQueue`] (random shard routing), the single
    /// calendar wheel and the heap reference with identical schedules:
    /// pop order must match the reference exactly and the shadow stats
    /// must match the single wheel byte-for-byte, at every shard count.
    #[test]
    fn sharded_queue_matches_single_wheel_and_heap() {
        for shards in [1usize, 2, 3, 8] {
            for seed in 0..4u64 {
                let mut rng = StdRng::seed_from_u64(0x5AAD_0000 + seed);
                let mut sharded: ShardedQueue<usize> = ShardedQueue::new(shards, 30);
                let mut cal: EventQueue<usize> = EventQueue::new();
                let mut heap: HeapQueue<usize> = HeapQueue::new();
                let mut payload = 0usize;
                for _ in 0..1_500 {
                    match rng.random_range(0..10u32) {
                        0..=5 => {
                            for _ in 0..rng.random_range(1..8usize) {
                                let at = match rng.random_range(0..4u32) {
                                    0 => rng.random_range(0..1_000u64),
                                    1 => cal.now().0 + rng.random_range(0..200u64),
                                    2 => cal.now().0 + rng.random_range(0..500_000u64),
                                    _ => cal.now().0 + rng.random_range(0..20_000_000u64),
                                };
                                let shard = rng.random_range(0..shards);
                                sharded.schedule(SimTime(at), shard, payload);
                                cal.schedule(SimTime(at), payload);
                                heap.schedule(SimTime(at), payload);
                                payload += 1;
                            }
                        }
                        6..=8 => {
                            for _ in 0..rng.random_range(1..6usize) {
                                assert_eq!(
                                    sharded.pop(),
                                    heap.pop(),
                                    "shards {shards} seed {seed}"
                                );
                                cal.pop();
                            }
                        }
                        _ => {
                            let t = SimTime(cal.now().0 + rng.random_range(0..2_000_000u64));
                            sharded.advance_to(t);
                            cal.advance_to(t);
                            heap.advance_to(t);
                        }
                    }
                    assert_eq!(sharded.len(), heap.len());
                    assert_eq!(sharded.now(), heap.now());
                    assert_eq!(
                        sharded.stats(),
                        cal.stats(),
                        "shadow diverged from the single wheel (shards {shards} seed {seed})"
                    );
                }
                while let Some(expect) = heap.pop() {
                    assert_eq!(
                        sharded.pop(),
                        Some(expect),
                        "shards {shards} seed {seed} drain"
                    );
                    cal.pop();
                }
                assert!(sharded.is_empty());
                assert_eq!(sharded.stats(), cal.stats());
            }
        }
    }

    #[test]
    fn single_shard_shadow_equals_its_own_wheel() {
        // With one shard the shadow and the shard classify the same
        // events against the same slot cursor — their stats must agree.
        let mut q: ShardedQueue<u8> = ShardedQueue::new(1, 5);
        q.schedule(SimTime(50), 0, 0);
        q.schedule(SimTime(10_000), 0, 1);
        q.schedule(SimTime(50_000_000), 0, 2);
        while q.pop().is_some() {}
        assert_eq!(q.stats(), q.shards[0].stats());
        assert_eq!(q.stats().cascaded, 1);
    }

    #[test]
    fn lookahead_respecting_streams_never_breach_the_horizon() {
        // Model the simulator's contract: every cross-shard delivery
        // carries at least the minimum link latency. Peek-then-pop each
        // event (as run_until does) and fan deliveries out to other
        // shards at exactly the lookahead and beyond — breaches stay 0
        // and the pop order stays the reference order.
        const LOOKAHEAD: u64 = 30;
        let mut rng = StdRng::seed_from_u64(0x10CA_4EAD);
        let mut q: ShardedQueue<u64> = ShardedQueue::new(4, LOOKAHEAD);
        let mut reference: HeapQueue<u64> = HeapQueue::new();
        for shard in 0..4usize {
            // Seed beyond the lookahead — at t = 0 even the initial events
            // would otherwise sit inside every other shard's horizon.
            q.schedule(SimTime(LOOKAHEAD + shard as u64), shard, shard as u64);
            reference.schedule(SimTime(LOOKAHEAD + shard as u64), shard as u64);
        }
        let mut budget = 4_000u32;
        while let Some(t) = q.peek_time() {
            assert_eq!(reference.peek_time(), Some(t));
            let (at, ev) = q.pop().unwrap();
            assert_eq!(reference.pop(), Some((at, ev)));
            if budget > 0 {
                budget -= 1;
                for _ in 0..rng.random_range(0..3u32) {
                    let delay = LOOKAHEAD + rng.random_range(0..400u64);
                    let shard = rng.random_range(0..4usize);
                    q.schedule_in(delay, shard, ev);
                    reference.schedule_in(delay, ev);
                }
            }
        }
        assert!(reference.is_empty());
        assert_eq!(q.merge_stats().horizon_breaches, 0);
        // The batch cache did its job: most head reads were cache hits.
        let m = q.merge_stats();
        assert!(
            m.fast > m.rescans,
            "merge degenerated: {} fast vs {} rescans",
            m.fast,
            m.rescans
        );
    }

    #[test]
    fn cross_shard_schedule_below_boundary_stays_exact() {
        // Force the degenerate case the boundary shrink exists for: the
        // cached boundary is far away, then a cross-shard event lands
        // under the active head. It must still pop first.
        let mut q: ShardedQueue<&str> = ShardedQueue::new(2, 1_000);
        q.schedule(SimTime(5_000), 0, "active-head");
        q.schedule(SimTime(9_000), 1, "other-head");
        assert_eq!(q.peek_time(), Some(SimTime(5_000))); // batch: active=0, boundary=9_000
        q.schedule(SimTime(100), 1, "undercut");
        assert_eq!(q.pop(), Some((SimTime(100), "undercut")));
        assert_eq!(q.pop(), Some((SimTime(5_000), "active-head")));
        assert_eq!(q.pop(), Some((SimTime(9_000), "other-head")));
        assert!(q.merge_stats().shrinks >= 1);
        assert!(q.merge_stats().horizon_breaches >= 1);
    }

    #[test]
    fn stats_classify_scheduling_paths() {
        let mut q: EventQueue<u8> = EventQueue::new();
        q.schedule(SimTime(50), 0); // slot 0 == current slot → late
        q.schedule(SimTime(10_000), 1); // inside the horizon → wheel
        q.schedule(SimTime(50_000_000), 2); // beyond → overflow
        let s = q.stats();
        assert_eq!(s.scheduled, 3);
        assert_eq!(s.late, 1);
        assert_eq!(s.wheel, 1);
        assert_eq!(s.overflow, 1);
    }

    /// One conservative-window epoch: events below the horizon pop in
    /// exact `(time, seq)` order; an event exactly *on* the horizon
    /// stays in its wheel for the next window.
    #[test]
    fn epoch_pops_below_the_horizon_and_keeps_the_boundary_event() {
        for workers in [1usize, 2, 8] {
            let mut q: ShardedQueue<&str> = ShardedQueue::new(4, 30);
            q.schedule(SimTime(10), 1, "b");
            q.schedule(SimTime(5), 3, "a");
            q.schedule(SimTime(10), 0, "c"); // tie: schedule order wins
            q.schedule(SimTime(35), 2, "on-horizon");
            q.schedule(SimTime(80), 2, "beyond");
            q.begin_epoch(SimTime(35), workers);
            assert_eq!(q.pop(), Some((SimTime(5), "a")));
            assert_eq!(q.pop(), Some((SimTime(10), "b")));
            assert_eq!(q.pop(), Some((SimTime(10), "c")));
            assert!(!q.epoch_pending(), "horizon event leaked into the epoch");
            assert_eq!(q.pop(), None, "epoch exhausted must yield None");
            q.commit_epoch(workers);
            assert_eq!(q.len(), 2);
            assert_eq!(q.pop(), Some((SimTime(35), "on-horizon")));
            assert_eq!(q.pop(), Some((SimTime(80), "beyond")));
            assert_eq!(q.merge_stats().epochs, 1);
        }
    }

    /// Mid-epoch schedules at or beyond the horizon are staged and only
    /// become poppable after the barrier commit; schedules that undercut
    /// the horizon reinject into the live merge (the breach slow path)
    /// and pop in exact order within the same window.
    #[test]
    fn epoch_stages_commits_and_reinjects_in_exact_order() {
        let mut q: ShardedQueue<&str> = ShardedQueue::new(2, 30);
        q.schedule(SimTime(5), 0, "first");
        q.schedule(SimTime(20), 1, "second");
        q.begin_epoch(SimTime(35), 2);
        assert_eq!(q.pop(), Some((SimTime(5), "first")));
        // Handler-style reactions: one lands beyond the horizon
        // (staged), one undercuts it (reinjected breach), one lands
        // exactly between the reinjection and the drained run head.
        q.schedule(SimTime(40), 1, "staged");
        let breaches_before = q.merge_stats().horizon_breaches;
        q.schedule(SimTime(12), 0, "breach");
        assert_eq!(q.merge_stats().horizon_breaches, breaches_before + 1);
        q.schedule(SimTime(12), 1, "breach-tie");
        assert_eq!(q.pop(), Some((SimTime(12), "breach")));
        assert_eq!(q.pop(), Some((SimTime(12), "breach-tie")));
        assert_eq!(q.pop(), Some((SimTime(20), "second")));
        assert_eq!(q.pop(), None, "staged event visible before commit");
        q.commit_epoch(2);
        assert_eq!(q.pop(), Some((SimTime(40), "staged")));
        assert!(q.is_empty());
    }

    /// A burst far above [`SLOT_RETAIN_CAP`] must not leave its capacity
    /// behind after draining: gossip waves land on different ring
    /// offsets every time, so retained mega-buckets accrete across the
    /// whole ring over a long run (gigabytes at a million nodes).
    /// Steady-state-sized buckets keep their allocation.
    #[test]
    fn drained_mega_buckets_release_their_allocation() {
        let mut q: EventQueue<u64> = EventQueue::new();
        // One wave: far more than SLOT_RETAIN_CAP events into one slot.
        let at = SimTime(3 * WHEEL_SLOT_MS);
        for i in 0..(SLOT_RETAIN_CAP as u64 * 4) {
            q.schedule(at, i);
        }
        let slot = (slot_of(at) % SLOT_COUNT) as usize;
        assert!(q.wheel[slot].capacity() > SLOT_RETAIN_CAP);
        // Drain the wave; pops must still come out in schedule order.
        for i in 0..(SLOT_RETAIN_CAP as u64 * 4) {
            assert_eq!(q.pop(), Some((at, i)));
        }
        assert!(q.is_empty());
        assert_eq!(
            q.wheel[slot].capacity(),
            0,
            "mega-bucket capacity retained after drain"
        );
        // The adopting deque was trimmed once it emptied.
        q.schedule(SimTime(q.now().0 + WHEEL_SLOT_MS), 0);
        q.pop();
        assert!(q.active.capacity() <= SLOT_RETAIN_CAP * 2);
        // A bucket at steady-state size keeps its allocation.
        let at2 = SimTime(q.now().0 + 2 * WHEEL_SLOT_MS);
        for i in 0..64u64 {
            q.schedule(at2, i);
        }
        let slot2 = (slot_of(at2) % SLOT_COUNT) as usize;
        let cap_before = q.wheel[slot2].capacity();
        assert!(cap_before > 0 && cap_before <= SLOT_RETAIN_CAP);
        while q.pop().is_some() {}
        assert_eq!(
            q.wheel[slot2].capacity(),
            cap_before,
            "small bucket should keep its allocation for reuse"
        );
    }
}
