//! Per-node chain views.
//!
//! Each simulated node tracks which blocks it knows and which tip it
//! follows, using the shared [`crate::index::BlockIndex`] for metadata.
//! Fork choice is longest-chain (uniform difficulty), first-seen on ties —
//! the same rule as [`bp_chain::ChainStore`] without the per-node UTXO
//! machinery.
//!
//! Views key their state by *dense* block index (see
//! [`crate::index::BlockIndex`]): the known-set is a bit-per-block
//! vector and a membership probe is one bounds-checked load, which
//! matters because block relay consults it on every inv/getdata across
//! ~65 M deliveries in a day-scale simulation.

use crate::fxhash::FxHashMap;
use crate::index::{BlockIndex, BlockMeta, NO_BLOCK};
use bp_chain::{BlockId, Height};

/// The outcome of offering a block to a node's view.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ViewOutcome {
    /// Became the new tip (extension or reorg).
    NewTip {
        /// Blocks abandoned from the previous best chain (0 = extension).
        reorg_depth: u64,
    },
    /// Accepted on a side branch.
    SideBranch,
    /// Already known.
    Duplicate,
    /// Parent unknown — parked; caller should fetch the parent.
    MissingParent(BlockId),
}

/// One node's view of the block tree.
#[derive(Debug, Clone)]
pub struct NodeView {
    /// Known-block bitvec: bit `dense` set — the node has accepted the
    /// block. Word-packed so a million views over a few hundred blocks
    /// cost ~5 words each instead of a byte per block.
    known: Vec<u64>,
    known_count: usize,
    /// Orphans waiting on a parent, by parent dense index.
    orphans: FxHashMap<u32, Vec<u32>>,
    best_tip: BlockId,
    best_dense: u32,
    best_height: Height,
    /// Timestamp (sim seconds) of the best block — BlockAware compares
    /// this with the wall clock.
    best_found_secs: u64,
}

impl NodeView {
    /// Creates a view that knows only genesis.
    pub fn new(index: &BlockIndex) -> Self {
        Self {
            known: vec![1], // genesis bit
            known_count: 1,
            orphans: FxHashMap::default(),
            best_tip: index.genesis(),
            best_dense: 0,
            best_height: Height::GENESIS,
            best_found_secs: 0,
        }
    }

    /// The tip this node follows.
    pub fn best_tip(&self) -> BlockId {
        self.best_tip
    }

    /// Dense index of the followed tip.
    pub fn best_dense(&self) -> u32 {
        self.best_dense
    }

    /// Height of the followed tip.
    pub fn best_height(&self) -> Height {
        self.best_height
    }

    /// Sim-seconds timestamp of the followed tip (for BlockAware).
    pub fn best_found_secs(&self) -> u64 {
        self.best_found_secs
    }

    /// Whether the node knows the block with dense index `dense`.
    #[inline]
    pub fn knows_dense(&self, dense: u32) -> bool {
        let word = self.known.get((dense / 64) as usize).copied().unwrap_or(0);
        word >> (dense % 64) & 1 == 1
    }

    /// Whether the node knows a block by id.
    pub fn knows(&self, index: &BlockIndex, id: &BlockId) -> bool {
        index.dense_of(id).is_some_and(|d| self.knows_dense(d))
    }

    /// Number of known blocks.
    pub fn known_count(&self) -> usize {
        self.known_count
    }

    /// How many blocks this view lags behind `network_best`.
    pub fn lag(&self, network_best: Height) -> u64 {
        self.best_height.behind(network_best)
    }

    /// Offers a block to the view. Orphans are parked and connected
    /// automatically when the parent arrives.
    pub fn offer(&mut self, index: &BlockIndex, id: BlockId) -> ViewOutcome {
        let Some(dense) = index.dense_of(&id) else {
            // Unknown to the global index — cannot happen in a well-formed
            // simulation; treat as missing parent of itself.
            return ViewOutcome::MissingParent(id);
        };
        self.offer_dense(index, dense)
    }

    /// [`Self::offer`] by dense index (the simulator's hot path).
    pub fn offer_dense(&mut self, index: &BlockIndex, dense: u32) -> ViewOutcome {
        if self.knows_dense(dense) {
            return ViewOutcome::Duplicate;
        }
        let meta = *index.meta_at(dense);
        if !self.knows_dense(meta.prev_dense) {
            self.orphans.entry(meta.prev_dense).or_default().push(dense);
            return ViewOutcome::MissingParent(meta.prev);
        }
        let outcome = self.accept(index, meta);
        self.adopt_orphans(index, dense);
        outcome
    }

    fn mark_known(&mut self, dense: u32) {
        let word = (dense / 64) as usize;
        if word >= self.known.len() {
            self.known.resize(word + 1, 0);
        }
        let bit = 1u64 << (dense % 64);
        if self.known[word] & bit == 0 {
            self.known[word] |= bit;
            self.known_count += 1;
        }
    }

    fn accept(&mut self, index: &BlockIndex, meta: BlockMeta) -> ViewOutcome {
        self.mark_known(meta.dense);
        if meta.height > self.best_height {
            let reorg_depth = if meta.prev_dense == self.best_dense {
                0
            } else {
                self.reorg_depth(index, meta.dense)
            };
            self.best_tip = meta.id;
            self.best_dense = meta.dense;
            self.best_height = meta.height;
            self.best_found_secs = meta.found_at.as_secs();
            ViewOutcome::NewTip { reorg_depth }
        } else {
            ViewOutcome::SideBranch
        }
    }

    /// Depth of the reorg switching from the current tip to `new_tip`:
    /// the number of blocks on the old chain above the common ancestor.
    fn reorg_depth(&self, index: &BlockIndex, new_tip: u32) -> u64 {
        // Walk the new chain down to the first block on the old chain.
        let old_tip = self.best_dense;
        let mut cur = *index.meta_at(new_tip);
        loop {
            if index.is_ancestor_dense(cur.dense, old_tip) {
                return self.best_height.0.saturating_sub(cur.height.0);
            }
            if cur.prev_dense == NO_BLOCK {
                return 0;
            }
            cur = *index.meta_at(cur.prev_dense);
        }
    }

    fn adopt_orphans(&mut self, index: &BlockIndex, parent: u32) {
        let mut stack = vec![parent];
        while let Some(p) = stack.pop() {
            if let Some(children) = self.orphans.remove(&p) {
                for child in children {
                    if !self.knows_dense(child) {
                        self.accept(index, *index.meta_at(child));
                        stack.push(child);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::SimTime;

    fn setup() -> (BlockIndex, NodeView) {
        let idx = BlockIndex::new();
        let view = NodeView::new(&idx);
        (idx, view)
    }

    #[test]
    fn extension_is_new_tip_without_reorg() {
        let (mut idx, mut view) = setup();
        let b1 = idx.mine(idx.genesis(), SimTime::from_secs(600), 0, false);
        assert_eq!(
            view.offer(&idx, b1.id),
            ViewOutcome::NewTip { reorg_depth: 0 }
        );
        assert_eq!(view.best_height(), Height(1));
        assert_eq!(view.best_found_secs(), 600);
        assert!(view.knows(&idx, &b1.id));
        assert!(view.knows_dense(b1.dense));
    }

    #[test]
    fn duplicate_detected() {
        let (mut idx, mut view) = setup();
        let b1 = idx.mine(idx.genesis(), SimTime(1), 0, false);
        view.offer(&idx, b1.id);
        assert_eq!(view.offer(&idx, b1.id), ViewOutcome::Duplicate);
    }

    #[test]
    fn side_branch_then_reorg_depth_counted() {
        let (mut idx, mut view) = setup();
        let a1 = idx.mine(idx.genesis(), SimTime(1), 0, false);
        let a2 = idx.mine(a1.id, SimTime(2), 0, false);
        let b1 = idx.mine(idx.genesis(), SimTime(3), 1, false);
        let b2 = idx.mine(b1.id, SimTime(4), 1, false);
        let b3 = idx.mine(b2.id, SimTime(5), 1, false);
        view.offer(&idx, a1.id);
        view.offer(&idx, a2.id);
        assert_eq!(view.offer(&idx, b1.id), ViewOutcome::SideBranch);
        assert_eq!(view.offer(&idx, b2.id), ViewOutcome::SideBranch);
        assert_eq!(
            view.offer(&idx, b3.id),
            ViewOutcome::NewTip { reorg_depth: 2 }
        );
        assert_eq!(view.best_tip(), b3.id);
        assert_eq!(view.best_dense(), b3.dense);
    }

    #[test]
    fn orphans_connect_when_parent_arrives() {
        let (mut idx, mut view) = setup();
        let b1 = idx.mine(idx.genesis(), SimTime(1), 0, false);
        let b2 = idx.mine(b1.id, SimTime(2), 0, false);
        let b3 = idx.mine(b2.id, SimTime(3), 0, false);
        assert_eq!(view.offer(&idx, b3.id), ViewOutcome::MissingParent(b2.id));
        assert_eq!(view.offer(&idx, b2.id), ViewOutcome::MissingParent(b1.id));
        assert_eq!(
            view.offer(&idx, b1.id),
            ViewOutcome::NewTip { reorg_depth: 0 }
        );
        // Orphans were adopted transitively.
        assert_eq!(view.best_height(), Height(3));
        assert_eq!(view.best_tip(), b3.id);
    }

    #[test]
    fn lag_measures_blocks_behind() {
        let (mut idx, mut view) = setup();
        let b1 = idx.mine(idx.genesis(), SimTime(1), 0, false);
        view.offer(&idx, b1.id);
        assert_eq!(view.lag(Height(4)), 3);
        assert_eq!(view.lag(Height(1)), 0);
    }

    #[test]
    fn counterfeit_chain_overtakes_when_longer() {
        // The temporal attack in miniature: a node one block behind
        // accepts a counterfeit chain of greater height.
        let (mut idx, mut view) = setup();
        let honest1 = idx.mine(idx.genesis(), SimTime(1), 0, false);
        view.offer(&idx, honest1.id);
        let fake1 = idx.mine(idx.genesis(), SimTime(2), 99, true);
        let fake2 = idx.mine(fake1.id, SimTime(3), 99, true);
        view.offer(&idx, fake1.id);
        let outcome = view.offer(&idx, fake2.id);
        assert_eq!(outcome, ViewOutcome::NewTip { reorg_depth: 1 });
        assert!(idx.get(&view.best_tip()).unwrap().counterfeit);
    }
}
