//! Per-node chain views.
//!
//! Each simulated node tracks which blocks it knows and which tip it
//! follows, using the shared [`crate::index::BlockIndex`] for metadata.
//! Fork choice is longest-chain (uniform difficulty), first-seen on ties —
//! the same rule as [`bp_chain::ChainStore`] without the per-node UTXO
//! machinery.

use crate::index::{BlockIndex, BlockMeta};
use bp_chain::{BlockId, Height};
use std::collections::{HashMap, HashSet};

/// The outcome of offering a block to a node's view.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ViewOutcome {
    /// Became the new tip (extension or reorg).
    NewTip {
        /// Blocks abandoned from the previous best chain (0 = extension).
        reorg_depth: u64,
    },
    /// Accepted on a side branch.
    SideBranch,
    /// Already known.
    Duplicate,
    /// Parent unknown — parked; caller should fetch the parent.
    MissingParent(BlockId),
}

/// One node's view of the block tree.
#[derive(Debug, Clone)]
pub struct NodeView {
    known: HashSet<BlockId>,
    /// Orphans waiting on a parent, by parent id.
    orphans: HashMap<BlockId, Vec<BlockId>>,
    best_tip: BlockId,
    best_height: Height,
    /// Timestamp (sim seconds) of the best block — BlockAware compares
    /// this with the wall clock.
    best_found_secs: u64,
}

impl NodeView {
    /// Creates a view that knows only genesis.
    pub fn new(index: &BlockIndex) -> Self {
        let mut known = HashSet::new();
        known.insert(index.genesis());
        Self {
            known,
            orphans: HashMap::new(),
            best_tip: index.genesis(),
            best_height: Height::GENESIS,
            best_found_secs: 0,
        }
    }

    /// The tip this node follows.
    pub fn best_tip(&self) -> BlockId {
        self.best_tip
    }

    /// Height of the followed tip.
    pub fn best_height(&self) -> Height {
        self.best_height
    }

    /// Sim-seconds timestamp of the followed tip (for BlockAware).
    pub fn best_found_secs(&self) -> u64 {
        self.best_found_secs
    }

    /// Whether the node knows a block.
    pub fn knows(&self, id: &BlockId) -> bool {
        self.known.contains(id)
    }

    /// Number of known blocks.
    pub fn known_count(&self) -> usize {
        self.known.len()
    }

    /// How many blocks this view lags behind `network_best`.
    pub fn lag(&self, network_best: Height) -> u64 {
        self.best_height.behind(network_best)
    }

    /// Offers a block to the view. Orphans are parked and connected
    /// automatically when the parent arrives.
    pub fn offer(&mut self, index: &BlockIndex, id: BlockId) -> ViewOutcome {
        if self.known.contains(&id) {
            return ViewOutcome::Duplicate;
        }
        let Some(meta) = index.get(&id) else {
            // Unknown to the global index — cannot happen in a well-formed
            // simulation; treat as missing parent of itself.
            return ViewOutcome::MissingParent(id);
        };
        if !self.known.contains(&meta.prev) {
            self.orphans.entry(meta.prev).or_default().push(id);
            return ViewOutcome::MissingParent(meta.prev);
        }
        let outcome = self.accept(index, *meta);
        self.adopt_orphans(index, id);
        outcome
    }

    fn accept(&mut self, index: &BlockIndex, meta: BlockMeta) -> ViewOutcome {
        self.known.insert(meta.id);
        if meta.height > self.best_height {
            let reorg_depth = if meta.prev == self.best_tip {
                0
            } else {
                self.reorg_depth(index, meta.id)
            };
            self.best_tip = meta.id;
            self.best_height = meta.height;
            self.best_found_secs = meta.found_at.as_secs();
            ViewOutcome::NewTip { reorg_depth }
        } else {
            ViewOutcome::SideBranch
        }
    }

    /// Depth of the reorg switching from the current tip to `new_tip`:
    /// the number of blocks on the old chain above the common ancestor.
    fn reorg_depth(&self, index: &BlockIndex, new_tip: BlockId) -> u64 {
        // Walk the new chain down to the first block on the old chain.
        let old_tip = self.best_tip;
        let mut cur = match index.get(&new_tip) {
            Some(m) => *m,
            None => return 0,
        };
        loop {
            if index.is_ancestor(&cur.id, &old_tip) {
                return self.best_height.0.saturating_sub(cur.height.0);
            }
            cur = match index.get(&cur.prev) {
                Some(m) => *m,
                None => return 0,
            };
        }
    }

    fn adopt_orphans(&mut self, index: &BlockIndex, parent: BlockId) {
        let mut stack = vec![parent];
        while let Some(p) = stack.pop() {
            if let Some(children) = self.orphans.remove(&p) {
                for child in children {
                    if !self.known.contains(&child) {
                        if let Some(meta) = index.get(&child) {
                            self.accept(index, *meta);
                            stack.push(child);
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::SimTime;

    fn setup() -> (BlockIndex, NodeView) {
        let idx = BlockIndex::new();
        let view = NodeView::new(&idx);
        (idx, view)
    }

    #[test]
    fn extension_is_new_tip_without_reorg() {
        let (mut idx, mut view) = setup();
        let b1 = idx.mine(idx.genesis(), SimTime::from_secs(600), 0, false);
        assert_eq!(
            view.offer(&idx, b1.id),
            ViewOutcome::NewTip { reorg_depth: 0 }
        );
        assert_eq!(view.best_height(), Height(1));
        assert_eq!(view.best_found_secs(), 600);
    }

    #[test]
    fn duplicate_detected() {
        let (mut idx, mut view) = setup();
        let b1 = idx.mine(idx.genesis(), SimTime(1), 0, false);
        view.offer(&idx, b1.id);
        assert_eq!(view.offer(&idx, b1.id), ViewOutcome::Duplicate);
    }

    #[test]
    fn side_branch_then_reorg_depth_counted() {
        let (mut idx, mut view) = setup();
        let a1 = idx.mine(idx.genesis(), SimTime(1), 0, false);
        let a2 = idx.mine(a1.id, SimTime(2), 0, false);
        let b1 = idx.mine(idx.genesis(), SimTime(3), 1, false);
        let b2 = idx.mine(b1.id, SimTime(4), 1, false);
        let b3 = idx.mine(b2.id, SimTime(5), 1, false);
        view.offer(&idx, a1.id);
        view.offer(&idx, a2.id);
        assert_eq!(view.offer(&idx, b1.id), ViewOutcome::SideBranch);
        assert_eq!(view.offer(&idx, b2.id), ViewOutcome::SideBranch);
        assert_eq!(
            view.offer(&idx, b3.id),
            ViewOutcome::NewTip { reorg_depth: 2 }
        );
        assert_eq!(view.best_tip(), b3.id);
    }

    #[test]
    fn orphans_connect_when_parent_arrives() {
        let (mut idx, mut view) = setup();
        let b1 = idx.mine(idx.genesis(), SimTime(1), 0, false);
        let b2 = idx.mine(b1.id, SimTime(2), 0, false);
        let b3 = idx.mine(b2.id, SimTime(3), 0, false);
        assert_eq!(view.offer(&idx, b3.id), ViewOutcome::MissingParent(b2.id));
        assert_eq!(view.offer(&idx, b2.id), ViewOutcome::MissingParent(b1.id));
        assert_eq!(
            view.offer(&idx, b1.id),
            ViewOutcome::NewTip { reorg_depth: 0 }
        );
        // Orphans were adopted transitively.
        assert_eq!(view.best_height(), Height(3));
        assert_eq!(view.best_tip(), b3.id);
    }

    #[test]
    fn lag_measures_blocks_behind() {
        let (mut idx, mut view) = setup();
        let b1 = idx.mine(idx.genesis(), SimTime(1), 0, false);
        view.offer(&idx, b1.id);
        assert_eq!(view.lag(Height(4)), 3);
        assert_eq!(view.lag(Height(1)), 0);
    }

    #[test]
    fn counterfeit_chain_overtakes_when_longer() {
        // The temporal attack in miniature: a node one block behind
        // accepts a counterfeit chain of greater height.
        let (mut idx, mut view) = setup();
        let honest1 = idx.mine(idx.genesis(), SimTime(1), 0, false);
        view.offer(&idx, honest1.id);
        let fake1 = idx.mine(idx.genesis(), SimTime(2), 99, true);
        let fake2 = idx.mine(fake1.id, SimTime(3), 99, true);
        view.offer(&idx, fake1.id);
        let outcome = view.offer(&idx, fake2.id);
        assert_eq!(outcome, ViewOutcome::NewTip { reorg_depth: 1 });
        assert!(idx.get(&view.best_tip()).unwrap().counterfeit);
    }
}
