//! A deterministic, DoS-irrelevant fast hasher for simulator-internal
//! maps.
//!
//! The simulator performs tens of millions of map operations per
//! day-scale run on keys it generated itself (dense block indices,
//! sequential transaction ids), so SipHash's keyed security buys nothing
//! here while dominating the lookup cost. This is the classic
//! multiply-rotate "Fx" construction used by rustc: fixed multiplier, no
//! per-process random state, so iteration order is stable across runs —
//! which also removes one source of accidental nondeterminism (the
//! artifact pipeline is verified byte-identical across worker counts in
//! CI either way).
//!
//! Not for untrusted input: an adversary who controls keys can collide
//! this hasher at will. Everything keyed with it in this crate is
//! simulator-assigned.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// The rustc-style multiply-rotate hasher.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

/// The golden-ratio-derived odd multiplier used by rustc's FxHasher.
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;
const ROTATE: u32 = 5;

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(ROTATE) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(chunk.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut word = [0u8; 8];
            word[..rest.len()].copy_from_slice(rest);
            self.add_to_hash(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// `BuildHasher` for [`FxHasher`] (no random state).
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` using [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// A `HashSet` using [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_round_trips() {
        let mut m: FxHashMap<u64, u64> = FxHashMap::default();
        for i in 0..1000u64 {
            m.insert(i, i * 3);
        }
        assert_eq!(m.len(), 1000);
        for i in 0..1000u64 {
            assert_eq!(m.get(&i), Some(&(i * 3)));
        }
        assert_eq!(m.remove(&500), Some(1500));
        assert_eq!(m.get(&500), None);
    }

    #[test]
    fn hashing_is_deterministic_across_hasher_instances() {
        let hash = |word: u64| {
            let mut h = FxHasher::default();
            h.write_u64(word);
            h.finish()
        };
        assert_eq!(hash(42), hash(42));
        assert_ne!(hash(42), hash(43));
    }

    #[test]
    fn byte_writes_match_in_any_chunking() {
        // Same logical input split differently must still hash somehow
        // (no panic) and identically for identical splits.
        let mut a = FxHasher::default();
        a.write(&[1, 2, 3, 4, 5, 6, 7, 8, 9]);
        let mut b = FxHasher::default();
        b.write(&[1, 2, 3, 4, 5, 6, 7, 8, 9]);
        assert_eq!(a.finish(), b.finish());
    }
}
