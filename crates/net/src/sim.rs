//! The event-driven Bitcoin P2P network simulation.
//!
//! Models what the paper measures and attacks:
//!
//! * every up node from a [`bp_topology::Snapshot`] becomes a peer with 8
//!   outbound connections ("the default number of Bitcoin peers is 8,
//!   which is used in our simulation", §V-B), chosen uniformly across
//!   ASes;
//! * blocks propagate by *diffusion spreading*: `inv` announcements with
//!   independent exponential per-edge delays (§V-B, Eq. 1), followed by
//!   `getdata`/`block` exchanges subject to link quality and a ~10 %
//!   message-failure rate ("peer communication failure rate is … typically
//!   around 10 percent");
//! * mining pools find blocks as a Poisson process split by hash share and
//!   inject them at gateway nodes inside their stratum ASes — a pool that
//!   is behind mines on its stale tip, creating natural forks;
//! * a fraction of nodes are *zombies* that never fetch blocks (the
//!   paper's "10 % of nodes are forever behind the main blockchain");
//! * churn: nodes with poor uptime indices drop offline and resync later,
//!   producing the wavering 30–40 % the paper observes;
//! * hooks for attacks: group partitions (spatial hijack in effect),
//!   counterfeit block injection (temporal attack), and direct adversary
//!   connections.

use crate::dense::DenseSetPool;
use crate::engine::{ShardedQueue, SimTime};
use crate::fxhash::{FxHashMap, FxHashSet};
use crate::index::{BlockIndex, NO_BLOCK};
use crate::view::{NodeView, ViewOutcome};
use bp_analysis::dist::Exponential;
use bp_chain::{BlockId, Height};
use bp_mining::{ArrivalProcess, PoolCensus};
use bp_obs::{TraceKind, Tracer};
use bp_topology::{NodeId, Snapshot};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashSet;

/// Synthetic producer id for adversary-mined blocks.
pub const ADVERSARY_PRODUCER: u32 = u32::MAX - 1;

/// Block-announcement relay discipline.
///
/// Bitcoin switched from *trickle spreading* to *diffusion spreading* in
/// 2015 (paper §V-B); the simulator supports both so the ablation benches
/// can compare partition windows under each.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RelayMode {
    /// Post-2015 diffusion: each edge gets an independent exponential
    /// delay (mean = `diffusion_mean_ms` / link quality).
    Diffusion,
    /// Pre-2015 trickle: announcements go out in staggered rounds — the
    /// k-th peer hears after `k × interval_ms` (plus jitter), so the
    /// fan-out is deterministic and slower.
    Trickle {
        /// Milliseconds between successive per-peer announcements.
        interval_ms: u64,
    },
}

/// How [`Simulation::new`] samples zombies and peer sets.
///
/// Both modes draw from the same seeded RNG, but the draw *sequences*
/// differ, so they build different (equally valid) networks. The split
/// exists because the legacy sampler's RNG stream is pinned by every
/// committed ground-truth artifact, while its rejection loops degenerate
/// at million-node scale.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SamplingMode {
    /// The original construction: zombie picks rejection-sample into a
    /// `HashSet` (a coupon-collector loop whose expected draws blow up
    /// as the zombie fraction times the population grows) and each
    /// node's peers rejection-sample against a per-node set. Byte-exact
    /// with the pre-arena simulator — every existing scale profile uses
    /// this.
    Rejection,
    /// Million-node construction: zombies come from a partial
    /// Fisher–Yates shuffle (exactly one draw per zombie), and peer
    /// picks reject against the ≤ `out_degree` already-chosen slots by
    /// linear scan instead of hashing. O(n) draws total, no per-node
    /// allocations.
    PartialShuffle,
}

/// Network-simulation parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct NetConfig {
    /// RNG seed.
    pub seed: u64,
    /// Calendar-wheel shards for the event queue (1 = unsharded). Pure
    /// mechanism: results are byte-identical at every shard count; only
    /// the volatile merge counters differ.
    pub shards: usize,
    /// Worker threads for the conservative-window epoch executor
    /// (1 = the classic serial event loop). Pure mechanism, exactly like
    /// `shards`: every observable — results, metrics, traces — is
    /// byte-identical at any thread count; only wall time and the
    /// volatile merge counters vary. Workers drain whole shards, so
    /// threads beyond `shards` idle: pair `net_threads: N` with
    /// `shards >= N`.
    pub net_threads: usize,
    /// Construction sampler (see [`SamplingMode`]).
    pub sampling: SamplingMode,
    /// Outbound peer connections per node (Bitcoin default: 8).
    pub out_degree: usize,
    /// Announcement relay discipline (diffusion vs. trickle).
    pub relay_mode: RelayMode,
    /// Mean of the exponential per-edge announcement delay, in
    /// milliseconds (diffusion spreading).
    pub diffusion_mean_ms: f64,
    /// Floor latency for any message.
    pub min_latency_ms: u64,
    /// Base time to transfer + validate a block.
    pub block_transfer_ms: u64,
    /// Mean of the per-node lazy-fetch delay: how long a node waits after
    /// first hearing of a block before requesting it (models slow
    /// validation, low-powered hosts, and the crawler-visible staleness
    /// the paper measures). Scaled per node by `2 − relay_quality`;
    /// `0.0` disables laziness.
    pub fetch_delay_mean_ms: f64,
    /// Probability that any message is lost.
    pub failure_rate: f64,
    /// Target seconds between blocks at full hash rate.
    pub block_interval_secs: f64,
    /// Fraction of nodes that never update ("forever behind").
    pub zombie_fraction: f64,
    /// Seconds between churn ticks.
    pub churn_period_secs: u64,
    /// Per-tick probability scale for a node to drop offline (multiplied
    /// by `1 − uptime_index`).
    pub churn_off_scale: f64,
    /// Per-tick probability for an offline node to come back.
    pub churn_on_prob: f64,
    /// Blocks below `network_best − finalization_depth` are considered
    /// final: their relay bookkeeping (per-node `seen_invs`, the global
    /// block→tx map) is pruned on churn ticks so long simulations run in
    /// bounded memory. Must exceed any reorg depth the scenario can
    /// produce; `0` disables pruning.
    pub finalization_depth: u64,
}

impl NetConfig {
    /// Defaults calibrated so the crawler reproduces the paper's Figure 6
    /// consensus shape (≈62.7 % of nodes ≥1 block behind 5 minutes after
    /// a block; ~50 % synced in steady state).
    pub fn paper() -> Self {
        Self {
            seed: 0xB17C017,
            shards: 1,
            net_threads: 1,
            sampling: SamplingMode::Rejection,
            out_degree: 8,
            relay_mode: RelayMode::Diffusion,
            diffusion_mean_ms: 6_000.0,
            min_latency_ms: 30,
            block_transfer_ms: 400,
            fetch_delay_mean_ms: 150_000.0,
            failure_rate: 0.10,
            block_interval_secs: 600.0,
            zombie_fraction: 0.10,
            churn_period_secs: 60,
            churn_off_scale: 0.03,
            churn_on_prob: 0.25,
            finalization_depth: 100,
        }
    }

    /// Fast propagation, no loss — for unit tests that need determinism.
    pub fn fast_test() -> Self {
        Self {
            seed: 7,
            shards: 1,
            net_threads: 1,
            sampling: SamplingMode::Rejection,
            out_degree: 8,
            relay_mode: RelayMode::Diffusion,
            diffusion_mean_ms: 200.0,
            min_latency_ms: 5,
            block_transfer_ms: 20,
            fetch_delay_mean_ms: 0.0,
            failure_rate: 0.0,
            block_interval_secs: 600.0,
            zombie_fraction: 0.0,
            churn_period_secs: 60,
            churn_off_scale: 0.0,
            churn_on_prob: 1.0,
            finalization_depth: 100,
        }
    }

    /// Checks every parameter for the ranges the simulation assumes.
    ///
    /// Out-of-range values used to misbehave silently — most nastily,
    /// `zombie_fraction > 1` made zombie sampling loop forever, and a
    /// probability outside `[0, 1]` skewed the loss/churn models without
    /// any error. [`Simulation::new`] calls this and panics on `Err`.
    pub fn validate(&self) -> Result<(), String> {
        fn probability(name: &str, v: f64) -> Result<(), String> {
            if !v.is_finite() || !(0.0..=1.0).contains(&v) {
                return Err(format!("{name} must be a probability in [0, 1], got {v}"));
            }
            Ok(())
        }
        probability("failure_rate", self.failure_rate)?;
        probability("zombie_fraction", self.zombie_fraction)?;
        probability("churn_on_prob", self.churn_on_prob)?;
        if !self.churn_off_scale.is_finite() || self.churn_off_scale < 0.0 {
            return Err(format!(
                "churn_off_scale must be finite and >= 0, got {}",
                self.churn_off_scale
            ));
        }
        if self.out_degree == 0 {
            return Err("out_degree must be >= 1".to_string());
        }
        if !self.diffusion_mean_ms.is_finite() || self.diffusion_mean_ms <= 0.0 {
            return Err(format!(
                "diffusion_mean_ms must be finite and > 0, got {}",
                self.diffusion_mean_ms
            ));
        }
        if !self.fetch_delay_mean_ms.is_finite() || self.fetch_delay_mean_ms < 0.0 {
            return Err(format!(
                "fetch_delay_mean_ms must be finite and >= 0, got {}",
                self.fetch_delay_mean_ms
            ));
        }
        if !self.block_interval_secs.is_finite() || self.block_interval_secs <= 0.0 {
            return Err(format!(
                "block_interval_secs must be finite and > 0, got {}",
                self.block_interval_secs
            ));
        }
        if self.churn_period_secs == 0 {
            return Err("churn_period_secs must be >= 1".to_string());
        }
        if self.shards == 0 || self.shards > 4096 {
            return Err(format!("shards must be in 1..=4096, got {}", self.shards));
        }
        if self.net_threads == 0 || self.net_threads > 4096 {
            return Err(format!(
                "net_threads must be in 1..=4096, got {}",
                self.net_threads
            ));
        }
        Ok(())
    }
}

impl Default for NetConfig {
    fn default() -> Self {
        Self::paper()
    }
}

/// Events carry blocks by *dense* index (see [`BlockIndex`]): a `u32`
/// instead of a 32-byte hash, so the queue moves less memory and every
/// receiver-side membership check is a vector probe.
#[derive(Debug, Clone)]
enum NetEvent {
    Inv {
        from: u32,
        to: u32,
        block: u32,
    },
    GetData {
        from: u32,
        to: u32,
        block: u32,
        retries: u8,
    },
    Block {
        from: u32,
        to: u32,
        block: u32,
        forced: bool,
    },
    /// A relayed transaction (transactions are small; inv/getdata is
    /// collapsed into a single delivery).
    Tx {
        from: u32,
        to: u32,
        tx: u64,
    },
    Mine,
    Churn,
}

/// Per-node simulation state as a struct of arrays.
///
/// The former `Vec<SimNode>` interleaved every node's hot scalars with
/// its cold collections (hash maps, peer vectors), so a million-node
/// population meant a million scattered allocations and a cache line of
/// padding per field touched. Here each field is one flat vector indexed
/// by sim node id, the adjacency is a CSR (`peer_start`/`peer_edges`)
/// over one shared edge array, and the two per-node block sets share
/// generation-stamped [`DenseSetPool`] matrices instead of a heap
/// allocation per node.
#[derive(Debug)]
struct NodeArena {
    /// CSR offsets: peers of node `i` are
    /// `peer_edges[peer_start[i] .. peer_start[i + 1]]`, sorted.
    peer_start: Vec<u32>,
    /// Flattened union of in- and out-edges for all nodes.
    peer_edges: Vec<u32>,
    views: Vec<NodeView>,
    online: Vec<bool>,
    zombie: Vec<bool>,
    relay_quality: Vec<f64>,
    link_factor: Vec<f64>,
    /// Mean lazy-fetch delay per node (ms).
    fetch_mean_ms: Vec<f64>,
    /// Blocks (by dense index) with an outstanding fetch, per node.
    requested: DenseSetPool,
    /// Blocks (by dense index) whose announcements each node has already
    /// forwarded.
    seen_invs: DenseSetPool,
    /// Unconfirmed transactions each node holds.
    mempool: Vec<FxHashSet<u64>>,
    /// First-seen conflict rule: which tx claims each conflict group.
    claimed_groups: Vec<FxHashMap<u64, u64>>,
}

impl NodeArena {
    fn len(&self) -> usize {
        self.online.len()
    }

    #[inline]
    fn peers(&self, node: u32) -> &[u32] {
        let lo = self.peer_start[node as usize] as usize;
        let hi = self.peer_start[node as usize + 1] as usize;
        &self.peer_edges[lo..hi]
    }
}

/// Peer selection: `out_degree` outbound per node, uniform over the
/// population; the adjacency used for relay is the union of in- and
/// out-edges, as in Bitcoin. This is the legacy sampler — its RNG draw
/// sequence is pinned by committed ground-truth artifacts, so it must
/// stay byte-exact (see [`SamplingMode::Rejection`]). Returns sorted CSR
/// rows.
fn adjacency_by_rejection(n: usize, out_degree: usize, rng: &mut StdRng) -> (Vec<u32>, Vec<u32>) {
    let mut adjacency: Vec<HashSet<u32>> = vec![HashSet::new(); n];
    for i in 0..n {
        let mut chosen = HashSet::new();
        while chosen.len() < out_degree.min(n - 1) {
            let peer = rng.random_range(0..n) as u32;
            if peer as usize != i {
                chosen.insert(peer);
            }
        }
        for p in chosen {
            adjacency[i].insert(p);
            adjacency[p as usize].insert(i as u32);
        }
    }
    let mut peer_start = Vec::with_capacity(n + 1);
    peer_start.push(0u32);
    let mut peer_edges = Vec::new();
    for adj in adjacency {
        let row = peer_edges.len();
        peer_edges.extend(adj);
        peer_edges[row..].sort_unstable();
        peer_start.push(u32::try_from(peer_edges.len()).expect("edge count fits u32"));
    }
    (peer_start, peer_edges)
}

/// The million-node peer sampler: same degree distribution in
/// expectation, but each node's picks reject against its ≤ `out_degree`
/// already-chosen slots by linear scan (no hashing, no per-node
/// allocation), and the in/out union is a counting-sort CSR build plus
/// one per-row sort/dedup compaction pass. Returns sorted CSR rows.
fn adjacency_by_partial_shuffle(
    n: usize,
    out_degree: usize,
    rng: &mut StdRng,
) -> (Vec<u32>, Vec<u32>) {
    let deg = out_degree.min(n - 1);
    let mut out_edges = vec![0u32; n * deg];
    for i in 0..n {
        let row = &mut out_edges[i * deg..(i + 1) * deg];
        let mut filled = 0;
        while filled < deg {
            let peer = rng.random_range(0..n) as u32;
            if peer as usize == i || row[..filled].contains(&peer) {
                continue;
            }
            row[filled] = peer;
            filled += 1;
        }
    }
    // Raw row sizes: the node's own picks plus every pick that chose it.
    let mut row_len = vec![deg as u32; n];
    for &p in &out_edges {
        row_len[p as usize] += 1;
    }
    let mut start = vec![0u32; n + 1];
    for i in 0..n {
        start[i + 1] = start[i]
            .checked_add(row_len[i])
            .expect("edge count fits u32");
    }
    let mut raw = vec![0u32; start[n] as usize];
    let mut cursor: Vec<u32> = start[..n].to_vec();
    for i in 0..n {
        for k in 0..deg {
            let p = out_edges[i * deg + k];
            raw[cursor[i] as usize] = p;
            cursor[i] += 1;
            raw[cursor[p as usize] as usize] = i as u32;
            cursor[p as usize] += 1;
        }
    }
    // Sort each row and compact duplicates in place (`write` never
    // overtakes the read cursor — dedup only shrinks).
    let mut peer_start = vec![0u32; n + 1];
    let mut write = 0usize;
    for i in 0..n {
        let (lo, hi) = (start[i] as usize, start[i + 1] as usize);
        raw[lo..hi].sort_unstable();
        let mut prev = u32::MAX;
        for k in lo..hi {
            let v = raw[k];
            if v != prev {
                raw[write] = v;
                write += 1;
                prev = v;
            }
        }
        peer_start[i + 1] = write as u32;
    }
    raw.truncate(write);
    raw.shrink_to_fit();
    (peer_start, raw)
}

/// Aggregate fork statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ForkStats {
    /// Total node-level reorg events.
    pub reorgs: u64,
    /// Deepest node-level reorg observed.
    pub max_depth: u64,
    /// Blocks mined in total (honest + counterfeit).
    pub blocks_mined: u64,
    /// Blocks that were mined on a stale parent (visible forks).
    pub stale_forks: u64,
}

/// Aggregate message-traffic statistics — the bandwidth side of the
/// relay-discipline trade-off (trickle saves announcements, diffusion
/// saves latency).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TrafficStats {
    /// Block announcements delivered.
    pub invs: u64,
    /// Block requests delivered.
    pub getdatas: u64,
    /// Block payloads delivered.
    pub blocks: u64,
    /// Transactions delivered.
    pub txs: u64,
    /// Messages lost to the failure model.
    pub lost: u64,
    /// Messages dropped at a partition boundary.
    pub blocked: u64,
}

impl TrafficStats {
    /// Total messages delivered (excluding lost/blocked).
    pub fn delivered(&self) -> u64 {
        self.invs + self.getdatas + self.blocks + self.txs
    }

    /// A crude bandwidth proxy in bytes, using typical Bitcoin message
    /// sizes (inv ≈ 61 B, getdata ≈ 61 B, block ≈ 1 MB, tx ≈ 400 B).
    pub fn bytes_proxy(&self) -> u64 {
        self.invs * 61 + self.getdatas * 61 + self.blocks * 1_000_000 + self.txs * 400
    }
}

/// Bucket bounds for the reorg-depth histogram (blocks).
pub const REORG_DEPTH_BOUNDS: &[u64] = &[1, 2, 4, 8, 16, 32];

/// Minimum pending-event backlog before the epoch executor opens a
/// threaded window; below it each event takes the classic serial step.
/// A conservative window is only ~tens of milliseconds of simulated
/// time, so during sparse stretches (overnight gaps between gossip
/// waves) an epoch would fan worker threads out for a handful of
/// events. The switch is invisible in every output: both paths pop and
/// handle events in the identical global order.
const EPOCH_MIN_BACKLOG: usize = 1024;

/// Hot-path observability counters, kept as plain integers so recording
/// costs one add and never touches the RNG stream — simulation results
/// are bit-identical whether or not anyone exports these.
#[derive(Debug, Clone, PartialEq)]
pub struct SimMetrics {
    /// `Inv` events popped from the queue.
    pub events_inv: u64,
    /// `GetData` events popped from the queue.
    pub events_getdata: u64,
    /// `Block` events popped from the queue.
    pub events_block: u64,
    /// `Tx` events popped from the queue.
    pub events_tx: u64,
    /// `Mine` events popped from the queue.
    pub events_mine: u64,
    /// `Churn` events popped from the queue.
    pub events_churn: u64,
    /// High-water mark of the event-queue depth.
    pub queue_depth_hwm: usize,
    /// Calls to the announcement fan-out.
    pub announce_calls: u64,
    /// Individual `inv` messages scheduled by the fan-out.
    pub invs_scheduled: u64,
    /// Distribution of node-level reorg depths.
    pub reorg_depth: bp_obs::Histogram,
    /// `seen_invs` entries retired when their node accepted the block
    /// (the entry is dead from that point — relay dedup only consults
    /// `seen_invs` for unknown blocks) plus entries dropped by the
    /// finalization sweep. Zero when `finalization_depth = 0`.
    pub pruned_seen_invs: u64,
    /// Outstanding `requested` entries (in-flight or lost getdatas)
    /// abandoned at churn ticks or dropped by the finalization sweep.
    pub pruned_requested: u64,
    /// Block→tx map entries dropped by finalization pruning.
    pub pruned_block_txs: u64,
}

impl Default for SimMetrics {
    fn default() -> Self {
        Self {
            events_inv: 0,
            events_getdata: 0,
            events_block: 0,
            events_tx: 0,
            events_mine: 0,
            events_churn: 0,
            queue_depth_hwm: 0,
            announce_calls: 0,
            invs_scheduled: 0,
            reorg_depth: bp_obs::Histogram::with_bounds(REORG_DEPTH_BOUNDS),
            pruned_seen_invs: 0,
            pruned_requested: 0,
            pruned_block_txs: 0,
        }
    }
}

/// The network simulation.
///
/// # Examples
///
/// ```
/// use bp_mining::PoolCensus;
/// use bp_net::{NetConfig, Simulation};
/// use bp_topology::{Snapshot, SnapshotConfig};
///
/// let snapshot = Snapshot::generate(SnapshotConfig::test_small());
/// let mut sim = Simulation::new(
///     &snapshot, &PoolCensus::paper_table_iv(), NetConfig::fast_test(),
/// );
/// sim.run_for_secs(1800);
/// assert_eq!(sim.now().as_secs(), 1800);
/// ```
#[derive(Debug)]
pub struct Simulation {
    config: NetConfig,
    queue: ShardedQueue<NetEvent>,
    rng: StdRng,
    index: BlockIndex,
    arena: NodeArena,
    /// Pool gateway node per mining entity.
    gateways: Vec<u32>,
    /// Per-node gateway bit (`gateway_flags[i]` ⇔ `gateways` contains `i`),
    /// so the per-victim `is_gateway` check is O(1) instead of O(pools).
    gateway_flags: Vec<bool>,
    arrivals: ArrivalProcess,
    /// Partition group per node; messages across groups are dropped.
    groups: Vec<u32>,
    partitioned: bool,
    /// Highest honestly-mined height.
    network_best: Height,
    stats: ForkStats,
    traffic: TrafficStats,
    mining_paused: bool,
    /// Topology node id of each sim participant (sim index → NodeId).
    participant_ids: Vec<NodeId>,
    /// Transaction registry: txid → conflict group.
    tx_groups: FxHashMap<u64, u64>,
    /// Transactions included per mined block, keyed by dense index.
    block_txs: FxHashMap<u32, Vec<u64>>,
    /// Transactions on the canonical chain, maintained incrementally as
    /// the canonical tip advances or reorganises (survives pruning of
    /// `block_txs`, and makes `tx_confirmed` O(1) instead of a chain walk).
    confirmed_txs: FxHashSet<u64>,
    /// Canonical (honest best) tip for reversal accounting.
    canonical_tip: BlockId,
    /// Dense index of `canonical_tip`.
    canonical_dense: u32,
    /// Heights strictly below this watermark have already been swept by
    /// finalization pruning (the sweep is skipped until the horizon
    /// advances past it).
    pruned_below: u64,
    /// Reused fan-out buffer so `announce`/`relay_tx` never clone the
    /// peer list on the hot path.
    announce_scratch: Vec<u32>,
    /// User transactions reversed by canonical-chain reorgs.
    reversed_txs: u64,
    /// Node-level reversal events: a (node, transaction) pair where the
    /// node had the transaction confirmed and a reorg removed it.
    node_reversals: u64,
    /// Double-spend relays rejected by the first-seen rule.
    conflicts_rejected: u64,
    /// Next transaction id.
    next_txid: u64,
    /// Hot-path observability counters (always on; exported on demand).
    metrics: SimMetrics,
    /// Optional flight recorder (see [`bp_obs::trace`]). `None` by
    /// default; installing one never perturbs simulation results — every
    /// record derives from values the simulation already computed.
    tracer: Option<Box<Tracer>>,
}

impl Simulation {
    /// Builds a simulation over a snapshot and pool census.
    ///
    /// Only nodes that are up in the snapshot participate; the paper's
    /// 16.5 % down nodes are invisible to the network.
    ///
    /// # Panics
    ///
    /// Panics if the config fails [`NetConfig::validate`] or fewer than
    /// `out_degree + 1` nodes are up.
    pub fn new(snapshot: &Snapshot, census: &PoolCensus, config: NetConfig) -> Self {
        config
            .validate()
            .unwrap_or_else(|e| panic!("invalid NetConfig: {e}"));
        let mut rng = StdRng::seed_from_u64(config.seed);
        let index = BlockIndex::new();

        let participants: Vec<&bp_topology::NodeProfile> =
            snapshot.nodes.iter().filter(|n| n.is_up).collect();
        let participant_ids: Vec<NodeId> = participants.iter().map(|p| p.id).collect();
        assert!(
            participants.len() > config.out_degree,
            "need more than out_degree nodes"
        );
        let n = participants.len();

        // Profile-derived scalars — no RNG, straight into flat arrays.
        let relay_quality: Vec<f64> = participants.iter().map(|p| p.relay_quality()).collect();
        let link_factor: Vec<f64> = participants
            .iter()
            .map(|p| (p.link_speed_mbps / 25.0).clamp(0.2, 5.0))
            .collect();
        let mut fetch_mean_ms: Vec<f64> = relay_quality
            .iter()
            .map(|&q| config.fetch_delay_mean_ms * (2.0 - q))
            .collect();

        // Zombies: sampled uniformly; they receive but never fetch.
        let zombie_count = (n as f64 * config.zombie_fraction).round() as usize;
        let mut zombie = vec![false; n];
        let (peer_start, peer_edges) = match config.sampling {
            SamplingMode::Rejection => {
                let mut zombie_picked = HashSet::new();
                while zombie_picked.len() < zombie_count {
                    zombie_picked.insert(rng.random_range(0..n));
                }
                for idx in &zombie_picked {
                    zombie[*idx] = true;
                }
                adjacency_by_rejection(n, config.out_degree, &mut rng)
            }
            SamplingMode::PartialShuffle => {
                // One draw per zombie: shuffle a prefix of the identity
                // permutation and mark it.
                let mut order: Vec<u32> = (0..n as u32).collect();
                for k in 0..zombie_count.min(n) {
                    let j = rng.random_range(k..n);
                    order.swap(k, j);
                    zombie[order[k] as usize] = true;
                }
                adjacency_by_partial_shuffle(n, config.out_degree, &mut rng)
            }
        };

        // Map each pool to a gateway node inside its primary stratum AS.
        // `participants[i]` corresponds to sim node `i`. Zombies are
        // excluded: a zombie never fetches blocks, so a zombie gateway
        // mined on a view frozen at genesis forever — the contradiction
        // of a node that "never fetches" yet enjoys the pools'
        // zero-delay fetch infrastructure.
        let arrivals = ArrivalProcess::from_census(census);
        let all_zombies = zombie_count >= n;
        let gateways: Vec<u32> = census
            .pools()
            .iter()
            .map(|pool| {
                let asn = pool.stratum[0].asn;
                (0..n)
                    .find(|&i| participants[i].asn == asn && (all_zombies || !zombie[i]))
                    .unwrap_or_else(|| loop {
                        let g = rng.random_range(0..n);
                        if all_zombies || !zombie[g] {
                            break g;
                        }
                    }) as u32
            })
            .collect();

        let mut gateway_flags = vec![false; n];
        for &g in &gateways {
            gateway_flags[g as usize] = true;
        }

        let genesis_tip = index.genesis();
        // Mining pools run dedicated relay infrastructure (the paper's
        // §V-D Falcon discussion): their gateway nodes fetch and process
        // blocks without the lazy delay ordinary nodes exhibit, so the
        // honest chain grows at the full hash rate rather than being
        // dragged by stale-parent mining.
        for &g in &gateways {
            fetch_mean_ms[g as usize] = 0.0;
        }

        let arena = NodeArena {
            peer_start,
            peer_edges,
            views: (0..n).map(|_| NodeView::new(&index)).collect(),
            online: vec![true; n],
            zombie,
            relay_quality,
            link_factor,
            fetch_mean_ms,
            requested: DenseSetPool::new(n),
            seen_invs: DenseSetPool::new(n),
            mempool: vec![FxHashSet::default(); n],
            claimed_groups: vec![FxHashMap::default(); n],
        };

        // Cross-shard deliveries all carry at least the floor latency,
        // so the minimum link latency is a sound merge lookahead.
        let mut queue = ShardedQueue::new(config.shards, config.min_latency_ms);
        queue.schedule(SimTime::ZERO, 0, NetEvent::Churn);
        let groups = vec![0u32; n];
        let mut sim = Self {
            config,
            queue,
            rng,
            index,
            arena,
            gateways,
            gateway_flags,
            arrivals,
            groups,
            partitioned: false,
            network_best: Height::GENESIS,
            stats: ForkStats::default(),
            traffic: TrafficStats::default(),
            mining_paused: false,
            participant_ids,
            tx_groups: FxHashMap::default(),
            block_txs: FxHashMap::default(),
            confirmed_txs: FxHashSet::default(),
            canonical_tip: genesis_tip,
            canonical_dense: 0,
            pruned_below: 0,
            announce_scratch: Vec::new(),
            reversed_txs: 0,
            node_reversals: 0,
            conflicts_rejected: 0,
            next_txid: 1,
            metrics: SimMetrics::default(),
            tracer: None,
        };
        sim.schedule_next_mine();
        sim
    }

    /// Number of participating (up) nodes.
    pub fn node_count(&self) -> usize {
        self.arena.len()
    }

    /// Queue shard owning `node`'s deliveries: contiguous node ranges,
    /// so a shard's wheel holds the traffic of one population slice.
    #[inline]
    fn shard_of(&self, node: u32) -> usize {
        (node as u64 * self.config.shards as u64 / self.arena.len() as u64) as usize
    }

    /// The topology [`NodeId`] behind sim participant `node` — use this to
    /// join simulation state with snapshot attributes (AS, organization).
    pub fn topology_id(&self, node: u32) -> NodeId {
        self.participant_ids[node as usize]
    }

    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.queue.now()
    }

    /// The shared block index.
    pub fn index(&self) -> &BlockIndex {
        &self.index
    }

    /// Highest honestly-mined height (the "main chain" the crawler
    /// compares against).
    pub fn network_best(&self) -> Height {
        self.network_best
    }

    /// Fork statistics so far.
    pub fn stats(&self) -> ForkStats {
        self.stats
    }

    /// Message-traffic statistics so far.
    pub fn traffic(&self) -> TrafficStats {
        self.traffic
    }

    /// Per-node lag behind the network best, in blocks.
    pub fn lags(&self) -> Vec<u64> {
        let mut out = Vec::new();
        self.lags_into(&mut out);
        out
    }

    /// Writes per-node lags into `out` (cleared first) — the
    /// allocation-free form of [`Simulation::lags`] for samplers that
    /// poll in a tight loop (the crawler reuses one buffer across
    /// thousands of samples).
    pub fn lags_into(&self, out: &mut Vec<u64>) {
        out.clear();
        out.extend(self.arena.views.iter().map(|v| v.lag(self.network_best)));
    }

    /// A node's current tip.
    pub fn tip_of(&self, node: u32) -> BlockId {
        self.arena.views[node as usize].best_tip()
    }

    /// A node's current height.
    pub fn height_of(&self, node: u32) -> Height {
        self.arena.views[node as usize].best_height()
    }

    /// Sim-seconds timestamp of a node's tip (BlockAware input).
    pub fn tip_found_secs(&self, node: u32) -> u64 {
        self.arena.views[node as usize].best_found_secs()
    }

    /// Whether a node currently follows a counterfeit (adversary) chain.
    pub fn follows_counterfeit(&self, node: u32) -> bool {
        self.index
            .meta_at(self.arena.views[node as usize].best_dense())
            .counterfeit
    }

    /// Whether a node is online right now.
    pub fn is_online(&self, node: u32) -> bool {
        self.arena.online[node as usize]
    }

    /// Whether a node is a zombie (never fetches blocks).
    pub fn is_zombie(&self, node: u32) -> bool {
        self.arena.zombie[node as usize]
    }

    /// Whether a node is a mining-pool gateway (the stratum-side node a
    /// pool mines through).
    pub fn is_gateway(&self, node: u32) -> bool {
        self.gateway_flags[node as usize]
    }

    /// Peers of a node.
    pub fn peers_of(&self, node: u32) -> &[u32] {
        self.arena.peers(node)
    }

    /// Submits a transaction at `origin`, tagged with a conflict group:
    /// two transactions sharing a group spend the same coin, so
    /// first-seen-wins relay rejects the later one (the double-spend
    /// protection the paper's partitions subvert). Returns the txid, or
    /// `None` if the origin already holds a conflicting transaction.
    pub fn submit_tx(&mut self, origin: u32, conflict_group: u64) -> Option<u64> {
        if let Some(&existing) = self.arena.claimed_groups[origin as usize].get(&conflict_group) {
            if self.arena.mempool[origin as usize].contains(&existing) {
                return None;
            }
        }
        let txid = self.next_txid;
        self.next_txid += 1;
        self.tx_groups.insert(txid, conflict_group);
        self.arena.mempool[origin as usize].insert(txid);
        self.arena.claimed_groups[origin as usize].insert(conflict_group, txid);
        self.relay_tx(origin, txid);
        Some(txid)
    }

    /// Number of unconfirmed transactions a node holds.
    pub fn mempool_size(&self, node: u32) -> usize {
        self.arena.mempool[node as usize].len()
    }

    /// Whether a node's mempool holds the transaction.
    pub fn tx_in_mempool(&self, node: u32, txid: u64) -> bool {
        self.arena.mempool[node as usize].contains(&txid)
    }

    /// Whether a transaction is confirmed on the canonical chain.
    pub fn tx_confirmed(&self, txid: u64) -> bool {
        self.confirmed_txs.contains(&txid)
    }

    /// Reference implementation of [`Simulation::tx_confirmed`]: walks the
    /// whole canonical chain scanning each block's transaction list. Kept
    /// to validate the incremental confirmed-set bookkeeping (tests assert
    /// the two agree); only meaningful while `block_txs` is unpruned, i.e.
    /// with `finalization_depth = 0` or chains shorter than the depth.
    pub fn tx_confirmed_by_walk(&self, txid: u64) -> bool {
        let mut cur = *self.index.meta_at(self.canonical_dense);
        loop {
            if let Some(txs) = self.block_txs.get(&cur.dense) {
                if txs.contains(&txid) {
                    return true;
                }
            }
            if cur.prev_dense == NO_BLOCK {
                return false;
            }
            cur = *self.index.meta_at(cur.prev_dense);
        }
    }

    /// Number of transactions currently confirmed on the canonical chain.
    pub fn confirmed_tx_count(&self) -> usize {
        self.confirmed_txs.len()
    }

    /// Relay-bookkeeping footprint, for memory-bound assertions:
    /// `(total seen_invs entries across nodes, block→tx map entries)`.
    pub fn relay_state_footprint(&self) -> (usize, usize) {
        (self.arena.seen_invs.total_len(), self.block_txs.len())
    }

    /// Hot-path observability counters collected so far.
    pub fn metrics(&self) -> &SimMetrics {
        &self.metrics
    }

    /// Event-queue counters so far — shard-invariant: identical at any
    /// `NetConfig::shards` (the throughput bench reads `scheduled` as
    /// its events figure).
    pub fn queue_stats(&self) -> crate::engine::QueueStats {
        self.queue.stats()
    }

    /// Shard-merge counters of the calendar wheel. Unlike
    /// [`Simulation::queue_stats`] these *do* vary with the shard
    /// count; they are exported as volatile metrics only.
    pub fn merge_stats(&self) -> crate::engine::MergeStats {
        self.queue.merge_stats()
    }

    /// Exports counters, traffic and fork statistics into a metrics
    /// registry under `prefix` (e.g. `net.day`). Read-only: recording
    /// into the registry cannot perturb the simulation.
    pub fn export_metrics(&self, reg: &bp_obs::Registry, prefix: &str) {
        let m = &self.metrics;
        reg.add(&format!("{prefix}.events.inv"), m.events_inv);
        reg.add(&format!("{prefix}.events.getdata"), m.events_getdata);
        reg.add(&format!("{prefix}.events.block"), m.events_block);
        reg.add(&format!("{prefix}.events.tx"), m.events_tx);
        reg.add(&format!("{prefix}.events.mine"), m.events_mine);
        reg.add(&format!("{prefix}.events.churn"), m.events_churn);
        reg.max_gauge(
            &format!("{prefix}.queue.depth_hwm"),
            m.queue_depth_hwm as f64,
        );
        let q = self.queue.stats();
        reg.add(&format!("{prefix}.queue.scheduled"), q.scheduled);
        reg.add(&format!("{prefix}.queue.wheel"), q.wheel);
        reg.add(&format!("{prefix}.queue.late"), q.late);
        reg.add(&format!("{prefix}.queue.overflow"), q.overflow);
        reg.add(&format!("{prefix}.queue.cascaded"), q.cascaded);
        // Shard-merge counters depend on the shard count (results do
        // not), so they are volatile: visible live, excluded from the
        // deterministic exports the byte-identity contract covers.
        let ms = self.queue.merge_stats();
        reg.add_volatile(
            &format!("{prefix}.queue.shards"),
            self.queue.shard_count() as u64,
        );
        reg.add_volatile(&format!("{prefix}.queue.merge.fast"), ms.fast);
        reg.add_volatile(&format!("{prefix}.queue.merge.rescans"), ms.rescans);
        reg.add_volatile(&format!("{prefix}.queue.merge.shrinks"), ms.shrinks);
        reg.add_volatile(
            &format!("{prefix}.queue.merge.horizon_breaches"),
            ms.horizon_breaches,
        );
        reg.add_volatile(&format!("{prefix}.queue.merge.epochs"), ms.epochs);
        reg.add(&format!("{prefix}.relay.announce_calls"), m.announce_calls);
        reg.add(&format!("{prefix}.relay.invs_scheduled"), m.invs_scheduled);
        reg.merge_histogram(&format!("{prefix}.reorg.depth"), &m.reorg_depth);
        reg.add(&format!("{prefix}.prune.seen_invs"), m.pruned_seen_invs);
        reg.add(&format!("{prefix}.prune.requested"), m.pruned_requested);
        reg.add(&format!("{prefix}.prune.block_txs"), m.pruned_block_txs);
        let t = &self.traffic;
        reg.add(&format!("{prefix}.traffic.invs"), t.invs);
        reg.add(&format!("{prefix}.traffic.getdatas"), t.getdatas);
        reg.add(&format!("{prefix}.traffic.blocks"), t.blocks);
        reg.add(&format!("{prefix}.traffic.txs"), t.txs);
        reg.add(&format!("{prefix}.traffic.lost"), t.lost);
        reg.add(&format!("{prefix}.traffic.blocked"), t.blocked);
        let s = &self.stats;
        reg.add(&format!("{prefix}.forks.reorgs"), s.reorgs);
        reg.add(&format!("{prefix}.forks.blocks_mined"), s.blocks_mined);
        reg.add(&format!("{prefix}.forks.stale"), s.stale_forks);
        reg.max_gauge(&format!("{prefix}.forks.max_depth"), s.max_depth as f64);
        reg.add(
            &format!("{prefix}.tx.confirmed"),
            self.confirmed_txs.len() as u64,
        );
        reg.add(&format!("{prefix}.tx.reversed"), self.reversed_txs);
        reg.add(&format!("{prefix}.tx.node_reversals"), self.node_reversals);
        reg.add(
            &format!("{prefix}.tx.conflicts_rejected"),
            self.conflicts_rejected,
        );
    }

    /// Installs a flight recorder. Like the metrics registry, the
    /// recorder is write-only from the simulation's point of view:
    /// emission never touches the RNG or the event queue, so traced and
    /// untraced runs produce bit-identical results.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = Some(Box::new(tracer));
    }

    /// Removes and returns the installed flight recorder, if any.
    pub fn take_tracer(&mut self) -> Option<Tracer> {
        self.tracer.take().map(|b| *b)
    }

    /// The installed flight recorder, if any.
    pub fn tracer(&self) -> Option<&Tracer> {
        self.tracer.as_deref()
    }

    /// Records one trace event at the current simulation time. No-op
    /// without an installed tracer.
    #[inline]
    fn trace(&mut self, kind: TraceKind, node: u32, a: u64, b: u64) {
        if let Some(t) = self.tracer.as_mut() {
            t.record(kind, self.queue.now().0, node, a, b);
        }
    }

    /// Records a crawler sample tick into the flight recorder: total node
    /// count, how many are synced to the network best, and the network
    /// best height. Called by `bp-crawler` on every sample so the trace
    /// alone can reconstruct the published lag series.
    pub fn trace_crawl_sample(&mut self, synced: u64) {
        let nodes = self.arena.len() as u32;
        let best = self.network_best.0;
        self.trace(TraceKind::CrawlSample, nodes, synced, best);
    }

    /// Records one node→AS join into the flight recorder (no-op without
    /// a tracer). Emitted once per node right after a tracer is
    /// installed, so the trace alone carries the crawler's AS slot index
    /// and per-AS consumers (`trace timeline --by-as`, `bp-detect`) need
    /// no out-of-band sidecar.
    pub fn trace_node_as(&mut self, node: u32, asn: u64, slot: u64) {
        self.trace(TraceKind::NodeAs, node, asn, slot);
    }

    /// User transactions reversed by canonical-chain reorgs so far —
    /// the paper's "all transactions belonging to legitimate users in
    /// those blocks will also be reversed".
    pub fn reversed_tx_total(&self) -> u64 {
        self.reversed_txs
    }

    /// Double-spend relays rejected by the first-seen rule so far.
    pub fn conflicts_rejected_total(&self) -> u64 {
        self.conflicts_rejected
    }

    /// Node-level reversal events: how many times some node saw a
    /// transaction it had confirmed disappear in a reorg — each event is
    /// a potential double-spend victim (the merchant of Figure 5).
    pub fn node_reversals_total(&self) -> u64 {
        self.node_reversals
    }

    /// Transactions confirmed on the old branch that are absent from the
    /// new branch, for a reorg from `old_tip` to `new_tip` (dense
    /// indices).
    fn count_reversed(&self, old_tip: u32, new_tip: u32) -> u64 {
        let Some(new_branch) = self.index.ancestry(&self.index.meta_at(new_tip).id) else {
            return 0;
        };
        let new_ids: FxHashSet<u32> = new_branch.iter().map(|m| m.dense).collect();
        let new_txs: FxHashSet<u64> = new_branch
            .iter()
            .filter_map(|m| self.block_txs.get(&m.dense))
            .flatten()
            .copied()
            .collect();
        let mut reversed = 0u64;
        let mut cur = *self.index.meta_at(old_tip);
        while !new_ids.contains(&cur.dense) {
            if let Some(txs) = self.block_txs.get(&cur.dense) {
                reversed += txs.iter().filter(|t| !new_txs.contains(t)).count() as u64;
            }
            if cur.prev_dense == NO_BLOCK {
                break;
            }
            cur = *self.index.meta_at(cur.prev_dense);
        }
        reversed
    }

    /// Imposes a partition: nodes mapped to different groups can no longer
    /// exchange messages (models a BGP-level cut).
    pub fn set_partition<F: Fn(u32) -> u32>(&mut self, assign: F) {
        for (i, g) in self.groups.iter_mut().enumerate() {
            *g = assign(i as u32);
        }
        self.partitioned = true;
        if self.tracer.is_some() {
            // `a` = distinct groups, `b` = largest group size — enough
            // for a trace consumer to judge how lopsided the cut is.
            let mut sizes: std::collections::HashMap<u32, u64> = std::collections::HashMap::new();
            for &g in &self.groups {
                *sizes.entry(g).or_insert(0) += 1;
            }
            let distinct = sizes.len() as u64;
            let largest = sizes.values().copied().max().unwrap_or(0);
            self.trace(TraceKind::PartitionApply, u32::MAX, distinct, largest);
        }
    }

    /// Lifts the partition.
    pub fn clear_partition(&mut self) {
        for g in &mut self.groups {
            *g = 0;
        }
        self.partitioned = false;
        self.trace(TraceKind::PartitionHeal, u32::MAX, 0, 0);
    }

    /// Pauses/resumes honest mining (used by attack scenarios that drive
    /// block production manually).
    pub fn set_mining_paused(&mut self, paused: bool) {
        self.mining_paused = paused;
    }

    /// Scales the honest mining rate by `factor` — models hash power
    /// diverted by a hijack (the captured share mines for the attacker
    /// instead).
    ///
    /// # Panics
    ///
    /// Panics unless `factor` is finite and strictly positive.
    pub fn scale_hash_rate(&mut self, factor: f64) {
        self.arrivals = self.arrivals.scaled(factor);
    }

    /// Mines a counterfeit block on `parent` (the temporal attacker's
    /// block factory). Returns the new block id. The block is *not*
    /// announced; use [`Simulation::push_block`] to feed it to victims.
    pub fn mine_counterfeit(&mut self, parent: BlockId) -> BlockId {
        let meta = self
            .index
            .mine(parent, self.queue.now(), ADVERSARY_PRODUCER, true);
        self.stats.blocks_mined += 1;
        meta.id
    }

    /// Pushes a block directly to a node over an adversary-maintained
    /// connection: bypasses partitions and link failures.
    ///
    /// # Panics
    ///
    /// Panics if `block` is unknown to the index (push something mined
    /// via [`Simulation::mine_counterfeit`] or observed in the network).
    pub fn push_block(&mut self, to: u32, block: BlockId) {
        let dense = self
            .index
            .dense_of(&block)
            .expect("pushed block must exist in the index");
        let delay = self.config.min_latency_ms + 20;
        let shard = self.shard_of(to);
        self.queue.schedule_in(
            delay,
            shard,
            NetEvent::Block {
                from: u32::MAX,
                to,
                block: dense,
                forced: true,
            },
        );
    }

    /// Pushes a whole chain ending at `tip` to a node, oldest block first,
    /// so the victim can connect every block without fetching parents.
    ///
    /// # Panics
    ///
    /// Panics if `tip` is unknown to the index.
    pub fn push_chain(&mut self, to: u32, tip: BlockId) {
        let ancestry = self
            .index
            .ancestry(&tip)
            .expect("tip must exist in the index");
        let shard = self.shard_of(to);
        for (i, meta) in ancestry.iter().rev().enumerate() {
            let delay = self.config.min_latency_ms + 20 + i as u64;
            self.queue.schedule_in(
                delay,
                shard,
                NetEvent::Block {
                    from: u32::MAX,
                    to,
                    block: meta.dense,
                    forced: true,
                },
            );
        }
    }

    /// Runs the simulation until `deadline` (inclusive). The clock ends
    /// exactly at `deadline` even when no event lands on it.
    ///
    /// With `NetConfig::net_threads > 1` the run advances through the
    /// conservative-window epoch executor instead of the classic serial
    /// loop; the two produce byte-identical results (events pop, handlers
    /// fire, and the RNG draws in exactly the same order either way).
    pub fn run_until(&mut self, deadline: SimTime) {
        if self.config.net_threads > 1 {
            self.run_epochs_until(deadline);
        } else {
            while let Some(at) = self.queue.peek_time() {
                if at > deadline {
                    break;
                }
                self.metrics.queue_depth_hwm = self.metrics.queue_depth_hwm.max(self.queue.len());
                let (_, event) = self.queue.pop().expect("peeked event exists");
                self.handle(event);
            }
        }
        self.queue.advance_to(deadline);
    }

    /// The conservative-window epoch executor (`net_threads > 1`).
    ///
    /// Each iteration opens an epoch of width = the wheel's lookahead
    /// (the minimum link latency): worker threads drain every shard's
    /// wheel up to the horizon in parallel — the expensive positioning,
    /// cascade and bucket-sort mechanics — and the logic pass then runs
    /// the handlers serially in the merged global `(time, seq)` order,
    /// so every RNG draw, trace record, metric increment and node
    /// mutation happens exactly as in the serial loop. New schedules are
    /// staged per shard and bulk-committed by the workers at the epoch
    /// barrier; the rare schedule that undercuts the horizon (e.g. a
    /// sub-lookahead mining interval) takes the queue's serialized
    /// reinjection path, which keeps the order exact for any delay
    /// pattern. Byte-identity to the serial loop holds by construction
    /// at every `shards`/`net_threads` combination.
    fn run_epochs_until(&mut self, deadline: SimTime) {
        let workers = self.config.net_threads.min(self.queue.shard_count());
        // `max(1)` keeps zero-lookahead configs progressing: their epoch
        // is a single millisecond and mid-window schedules reinject.
        let width = self.queue.lookahead_ms().max(1);
        while let Some(t0) = self.queue.peek_time() {
            if t0 > deadline {
                break;
            }
            let horizon = SimTime(deadline.0.saturating_add(1).min(t0.0.saturating_add(width)));
            if self.queue.len() < EPOCH_MIN_BACKLOG || horizon <= t0 {
                // Sparse stretch (or a saturated clock): a scoped thread
                // fan-out per window costs more than it saves, so take
                // one classic serial step. The pop/handle order is the
                // same either way.
                self.metrics.queue_depth_hwm = self.metrics.queue_depth_hwm.max(self.queue.len());
                let (_, event) = self.queue.pop().expect("peeked event exists");
                self.handle(event);
                continue;
            }
            self.queue.begin_epoch(horizon, workers);
            while self.queue.epoch_pending() {
                self.metrics.queue_depth_hwm = self.metrics.queue_depth_hwm.max(self.queue.len());
                let (_, event) = self.queue.pop().expect("epoch head pending");
                self.handle(event);
            }
            self.queue.commit_epoch(workers);
        }
    }

    /// Runs for `secs` simulated seconds.
    ///
    /// # Panics
    ///
    /// Panics if the deadline would overflow the `u64` millisecond clock
    /// (`now + secs × 1000`) — failing fast instead of silently wrapping
    /// the deadline into the past and running nothing.
    pub fn run_for_secs(&mut self, secs: u64) {
        let deadline = secs
            .checked_mul(1000)
            .and_then(|ms| self.queue.now().0.checked_add(ms))
            .unwrap_or_else(|| panic!("run_for_secs({secs}) overflows the u64 millisecond clock"));
        self.run_until(SimTime(deadline));
    }

    // ---- internals --------------------------------------------------------

    fn schedule_next_mine(&mut self) {
        let (dt_secs, _) = self.arrivals.next_block(&mut self.rng);
        // Round, don't truncate: truncation shaved up to 1 ms off every
        // inter-block gap, biasing the mining process slightly fast.
        // Global events (Mine, Churn) live on shard 0.
        self.queue
            .schedule_in((dt_secs * 1000.0).round() as u64, 0, NetEvent::Mine);
    }

    fn handle(&mut self, event: NetEvent) {
        match &event {
            NetEvent::Inv { .. } => self.metrics.events_inv += 1,
            NetEvent::GetData { .. } => self.metrics.events_getdata += 1,
            NetEvent::Block { .. } => self.metrics.events_block += 1,
            NetEvent::Tx { .. } => self.metrics.events_tx += 1,
            NetEvent::Mine => self.metrics.events_mine += 1,
            NetEvent::Churn => self.metrics.events_churn += 1,
        }
        match event {
            NetEvent::Tx { from, to, tx } => self.handle_tx(from, to, tx),
            NetEvent::Mine => self.handle_mine(),
            NetEvent::Churn => self.handle_churn(),
            NetEvent::Inv { from, to, block } => self.handle_inv(from, to, block),
            NetEvent::GetData {
                from,
                to,
                block,
                retries,
            } => self.handle_getdata(from, to, block, retries),
            NetEvent::Block {
                from,
                to,
                block,
                forced,
            } => self.handle_block(from, to, block, forced),
        }
    }

    fn blocked(&self, from: u32, to: u32) -> bool {
        if !self.partitioned || from == u32::MAX {
            return false;
        }
        self.groups[from as usize] != self.groups[to as usize]
    }

    fn lossy(&mut self) -> bool {
        self.config.failure_rate > 0.0 && self.rng.random::<f64>() < self.config.failure_rate
    }

    fn handle_mine(&mut self) {
        if !self.mining_paused {
            let (_, pool_idx) = self.arrivals.next_block(&mut self.rng);
            let gateway = self.gateways[pool_idx];
            let parent = self.arena.views[gateway as usize].best_tip();
            let meta = self
                .index
                .mine(parent, self.queue.now(), pool_idx as u32, false);
            self.stats.blocks_mined += 1;
            if meta.height.0 <= self.network_best.0 {
                self.stats.stale_forks += 1;
            }
            self.network_best = self.network_best.max(meta.height);
            // The mining gateway confirms its mempool into the block.
            let included: Vec<u64> = {
                let mempool = &mut self.arena.mempool[gateway as usize];
                let txs: Vec<u64> = mempool.iter().copied().take(2_000).collect();
                for tx in &txs {
                    mempool.remove(tx);
                }
                txs
            };
            if !included.is_empty() {
                self.block_txs.insert(meta.dense, included);
            }
            self.trace(TraceKind::Mine, gateway, meta.dense as u64, meta.height.0);
            self.update_canonical(meta);
            self.accept_block(gateway, meta.dense, None);
        }
        self.schedule_next_mine();
    }

    /// Tracks the canonical chain, counts transactions reversed when it
    /// reorganises, and keeps the incremental confirmed-transaction set
    /// in sync (only blocks between the old and new tip are touched, so
    /// the cost is proportional to the tip movement, not chain length).
    fn update_canonical(&mut self, cand: crate::index::BlockMeta) {
        let cur_meta = *self.index.meta_at(self.canonical_dense);
        if cand.height <= cur_meta.height {
            return;
        }
        if self
            .index
            .is_ancestor_dense(self.canonical_dense, cand.dense)
        {
            // Pure advance: confirm everything from the new tip down to
            // (excluding) the old tip.
            let mut cur = cand;
            while cur.dense != self.canonical_dense {
                if let Some(txs) = self.block_txs.get(&cur.dense) {
                    self.confirmed_txs.extend(txs.iter().copied());
                }
                if cur.prev_dense == NO_BLOCK {
                    break;
                }
                cur = *self.index.meta_at(cur.prev_dense);
            }
        } else {
            // Reorg: transactions confirmed on the abandoned branch but
            // absent from the new one are reversed.
            let old_branch = self.index.ancestry(&self.canonical_tip).unwrap_or_default();
            let new_branch = self.index.ancestry(&cand.id).unwrap_or_default();
            let old_ids: FxHashSet<u32> = old_branch.iter().map(|m| m.dense).collect();
            let new_ids: FxHashSet<u32> = new_branch.iter().map(|m| m.dense).collect();
            let new_txs: FxHashSet<u64> = new_branch
                .iter()
                .filter_map(|m| self.block_txs.get(&m.dense))
                .flatten()
                .copied()
                .collect();
            for meta in &old_branch {
                if new_ids.contains(&meta.dense) {
                    break; // common ancestor reached
                }
                if let Some(txs) = self.block_txs.get(&meta.dense) {
                    for t in txs {
                        if !new_txs.contains(t) {
                            self.reversed_txs += 1;
                            self.confirmed_txs.remove(t);
                        }
                    }
                }
            }
            // Confirm the new branch above the common ancestor (ancestry
            // is tip-first).
            for meta in &new_branch {
                if old_ids.contains(&meta.dense) {
                    break;
                }
                if let Some(txs) = self.block_txs.get(&meta.dense) {
                    self.confirmed_txs.extend(txs.iter().copied());
                }
            }
        }
        self.canonical_tip = cand.id;
        self.canonical_dense = cand.dense;
    }

    fn relay_tx(&mut self, from: u32, tx: u64) {
        let mut scratch = std::mem::take(&mut self.announce_scratch);
        scratch.clear();
        scratch.extend_from_slice(self.arena.peers(from));
        for &to in &scratch {
            let delay = self.edge_delay(from, to);
            let shard = self.shard_of(to);
            self.queue
                .schedule_in(delay, shard, NetEvent::Tx { from, to, tx });
        }
        self.announce_scratch = scratch;
    }

    fn handle_tx(&mut self, from: u32, to: u32, tx: u64) {
        if self.blocked(from, to) {
            self.traffic.blocked += 1;
            return;
        }
        if self.lossy() {
            self.traffic.lost += 1;
            return;
        }
        self.traffic.txs += 1;
        let group = match self.tx_groups.get(&tx) {
            Some(g) => *g,
            None => return,
        };
        if !self.arena.online[to as usize]
            || self.arena.zombie[to as usize]
            || self.arena.mempool[to as usize].contains(&tx)
        {
            return;
        }
        if let Some(&existing) = self.arena.claimed_groups[to as usize].get(&group) {
            if existing != tx {
                // First-seen wins: the double spend is rejected here.
                self.conflicts_rejected += 1;
                return;
            }
        }
        self.arena.mempool[to as usize].insert(tx);
        self.arena.claimed_groups[to as usize].insert(group, tx);
        self.relay_tx(to, tx);
    }

    fn handle_churn(&mut self) {
        let mut went_offline = 0u64;
        let mut came_online = 0u64;
        for i in 0..self.arena.len() {
            // Outstanding fetches are abandoned at each churn tick (the
            // retry budget resets); these are the dropped `requested`
            // entries the prune counters report.
            self.metrics.pruned_requested += self.arena.requested.len_of(i as u32) as u64;
            self.arena.requested.clear(i as u32);
            if self.arena.online[i] {
                let p_off = self.config.churn_off_scale
                    * (1.0 - self.arena.relay_quality[i]).clamp(0.0, 1.0);
                if self.rng.random::<f64>() < p_off {
                    self.arena.online[i] = false;
                    went_offline += 1;
                }
            } else if self.rng.random::<f64>() < self.config.churn_on_prob {
                self.arena.online[i] = true;
                came_online += 1;
                // Resync: a random peer announces its tip to us.
                if let Some(peer) = self.pick_peer(i as u32) {
                    let tip = self.arena.views[peer as usize].best_dense();
                    let delay = self.edge_delay(peer, i as u32);
                    let shard = self.shard_of(i as u32);
                    self.queue.schedule_in(
                        delay,
                        shard,
                        NetEvent::Inv {
                            from: peer,
                            to: i as u32,
                            block: tip,
                        },
                    );
                }
            }
        }
        self.trace(TraceKind::Churn, u32::MAX, went_offline, came_online);
        self.prune_finalized();
        self.queue
            .schedule_in(self.config.churn_period_secs * 1000, 0, NetEvent::Churn);
    }

    /// Drops relay bookkeeping for blocks buried deeper than the
    /// finalization depth. Entries for blocks a node has *accepted* are
    /// already retired at accept time (see [`Simulation::accept_block`]);
    /// this sweep catches what remains — announcements to nodes that
    /// never fetched (zombies, lost getdatas) — so long simulations run
    /// in bounded state. Nothing below the horizon can be re-announced
    /// or reorged away (assuming `finalization_depth` exceeds the
    /// deepest possible reorg), so dropping the entries cannot change
    /// behaviour. The sweep is skipped until the horizon actually
    /// advances, keeping churn ticks cheap.
    fn prune_finalized(&mut self) {
        let depth = self.config.finalization_depth;
        if depth == 0 || self.network_best.0 <= depth {
            return;
        }
        let horizon = self.network_best.0 - depth;
        if horizon <= self.pruned_below {
            return;
        }
        self.pruned_below = horizon;
        let index = &self.index;
        let metrics = &mut self.metrics;
        let keep = |d: u32| index.meta_at(d).height.0 >= horizon;
        let mut swept = 0u64;
        for i in 0..self.arena.online.len() {
            let node = i as u32;
            if self.arena.seen_invs.len_of(node) > 0 {
                let removed = self.arena.seen_invs.retain(node, keep) as u64;
                metrics.pruned_seen_invs += removed;
                swept += removed;
            }
            if self.arena.requested.len_of(node) > 0 {
                let removed = self.arena.requested.retain(node, keep) as u64;
                metrics.pruned_requested += removed;
                swept += removed;
            }
        }
        let before = self.block_txs.len();
        self.block_txs.retain(|&d, _| keep(d));
        let removed = (before - self.block_txs.len()) as u64;
        metrics.pruned_block_txs += removed;
        swept += removed;
        self.trace(TraceKind::PruneSweep, u32::MAX, horizon, swept);
    }

    fn pick_peer(&mut self, node: u32) -> Option<u32> {
        let peers = self.arena.peers(node);
        if peers.is_empty() {
            None
        } else {
            let k = self.rng.random_range(0..peers.len());
            Some(peers[k])
        }
    }

    /// Exponential diffusion delay for an announcement on edge a→b.
    fn edge_delay(&mut self, a: u32, b: u32) -> u64 {
        let qa = self.arena.relay_quality[a as usize];
        let qb = self.arena.relay_quality[b as usize];
        let quality = ((qa + qb) / 2.0).clamp(0.05, 1.0);
        let mean = self.config.diffusion_mean_ms / quality;
        let exp = Exponential::with_mean(mean);
        self.config.min_latency_ms + exp.sample(&mut self.rng) as u64
    }

    /// Block transfer time on edge a→b, scaled by the receiver's link.
    fn transfer_delay(&mut self, to: u32) -> u64 {
        let factor = self.arena.link_factor[to as usize];
        self.config.min_latency_ms + (self.config.block_transfer_ms as f64 / factor) as u64
    }

    /// A node accepted a block locally (mined it or validated it):
    /// update its view and announce to peers on success. `source` is the
    /// peer that sent the block, if any — missing ancestors are fetched
    /// from it, since a relaying peer always holds the full ancestry of
    /// what it relays.
    fn accept_block(&mut self, node: u32, block: u32, source: Option<u32>) {
        let old_tip = self.arena.views[node as usize].best_dense();
        let old_height = self.arena.views[node as usize].best_height().0;
        self.arena.requested.remove(node, block);
        let outcome = self.arena.views[node as usize].offer_dense(&self.index, block);
        // Confirmed transactions leave the mempool.
        if let Some(txs) = self.block_txs.get(&block) {
            let mempool = &mut self.arena.mempool[node as usize];
            for tx in txs {
                mempool.remove(tx);
            }
        }
        // Unless the parent is still missing, the node now holds the
        // block and its relay-dedup entry is dead — `handle_inv` only
        // consults `seen_invs` for unknown blocks — so retire it here
        // instead of carrying it to the finalization sweep. Gated like
        // the sweep so `finalization_depth = 0` keeps the bookkeeping
        // complete for reference runs.
        if self.config.finalization_depth > 0
            && !matches!(outcome, ViewOutcome::MissingParent(_))
            && self.arena.seen_invs.remove(node, block)
        {
            self.metrics.pruned_seen_invs += 1;
        }
        match outcome {
            ViewOutcome::NewTip { reorg_depth } => {
                let new_height = self.arena.views[node as usize].best_height().0;
                if reorg_depth > 0 {
                    self.stats.reorgs += 1;
                    self.stats.max_depth = self.stats.max_depth.max(reorg_depth);
                    self.metrics.reorg_depth.record(reorg_depth);
                    self.trace(TraceKind::ReorgBegin, node, reorg_depth, new_height);
                    // Any transactions this node had confirmed on the
                    // abandoned branch are reversed from its view.
                    let new_tip = self.arena.views[node as usize].best_dense();
                    self.node_reversals += self.count_reversed(old_tip, new_tip);
                }
                self.trace(TraceKind::BlockAccept, node, block as u64, new_height);
                self.announce(node, block);
            }
            ViewOutcome::MissingParent(_) => {
                let parent = self.index.meta_at(block).prev_dense;
                let target = source.or_else(|| self.pick_peer(node));
                if let Some(peer) = target {
                    self.request(node, peer, parent, false);
                }
            }
            ViewOutcome::SideBranch | ViewOutcome::Duplicate => {
                // A side-branch parent can connect parked orphans that
                // silently advance the tip (`NodeView::offer_dense` runs
                // orphan adoption after classifying the offered block).
                // The relay correctly stays quiet — but the flight
                // recorder must still see the height change, or trace
                // timeline reconstruction drifts from the crawler.
                let new_height = self.arena.views[node as usize].best_height().0;
                if new_height != old_height {
                    self.trace(TraceKind::BlockAccept, node, block as u64, new_height);
                }
            }
        }
    }

    fn announce(&mut self, from: u32, block: u32) {
        // Copy the peer list into a reused scratch buffer: `edge_delay`
        // needs `&mut self` (RNG), so we cannot iterate `peers` in place,
        // and a fresh clone per call was a measurable share of the
        // day-sim allocation traffic. The trickle shuffle also permutes
        // the scratch copy, never the node's (sorted) peer list.
        let mut scratch = std::mem::take(&mut self.announce_scratch);
        scratch.clear();
        scratch.extend_from_slice(self.arena.peers(from));
        self.metrics.announce_calls += 1;
        self.metrics.invs_scheduled += scratch.len() as u64;
        self.trace(
            TraceKind::InvRelay,
            from,
            block as u64,
            scratch.len() as u64,
        );
        match self.config.relay_mode {
            RelayMode::Diffusion => {
                for &to in &scratch {
                    let delay = self.edge_delay(from, to);
                    let shard = self.shard_of(to);
                    self.queue
                        .schedule_in(delay, shard, NetEvent::Inv { from, to, block });
                }
            }
            RelayMode::Trickle { interval_ms } => {
                // Staggered rounds in a random per-block peer order.
                for i in (1..scratch.len()).rev() {
                    let j = self.rng.random_range(0..=i);
                    scratch.swap(i, j);
                }
                for (k, &to) in scratch.iter().enumerate() {
                    let jitter = self.rng.random_range(0..interval_ms.max(1));
                    let delay = self.config.min_latency_ms + (k as u64 + 1) * interval_ms + jitter;
                    let shard = self.shard_of(to);
                    self.queue
                        .schedule_in(delay, shard, NetEvent::Inv { from, to, block });
                }
            }
        }
        self.announce_scratch = scratch;
    }

    /// Requests a block from a peer. `lazy` requests model the node's own
    /// processing/poll delay (first-fetch of an announced tip); backfill
    /// requests during catch-up are immediate.
    fn request(&mut self, node: u32, peer: u32, block: u32, lazy: bool) {
        if self.arena.zombie[node as usize] {
            return;
        }
        if !self.arena.requested.insert(node, block) {
            return;
        }
        let mut delay = self.config.min_latency_ms;
        if lazy {
            let mean = self.arena.fetch_mean_ms[node as usize];
            if mean > 0.0 {
                // Uniform on [0, 2·mean]: the bounded tail means a node's
                // behind-runs end within 2·mean of a block, producing the
                // sharp Table V drop between the 5- and 15-minute
                // windows that the paper measures.
                delay += (self.rng.random::<f64>() * 2.0 * mean) as u64;
            }
        }
        let shard = self.shard_of(peer);
        self.queue.schedule_in(
            delay,
            shard,
            NetEvent::GetData {
                from: node,
                to: peer,
                block,
                retries: 0,
            },
        );
    }

    fn handle_inv(&mut self, from: u32, to: u32, block: u32) {
        if self.blocked(from, to) {
            self.traffic.blocked += 1;
            return;
        }
        if self.lossy() {
            self.traffic.lost += 1;
            return;
        }
        self.traffic.invs += 1;
        if !self.arena.online[to as usize]
            || self.arena.zombie[to as usize]
            || self.arena.views[to as usize].knows_dense(block)
        {
            return;
        }
        // Headers-first relay: announcements are forwarded immediately,
        // even before the node has fetched the block itself — this keeps
        // the announcement epidemic fast while each node's *chain view*
        // updates on its own (lazy) schedule, which is exactly the
        // staleness distribution Bitnodes measures.
        if self.arena.seen_invs.insert(to, block) {
            self.announce(to, block);
        }
        self.request(to, from, block, true);
    }

    fn handle_getdata(&mut self, from: u32, to: u32, block: u32, retries: u8) {
        if self.blocked(from, to) {
            self.traffic.blocked += 1;
            return;
        }
        if self.lossy() {
            self.traffic.lost += 1;
            return;
        }
        self.traffic.getdatas += 1;
        if !self.arena.online[to as usize] {
            return;
        }
        if !self.arena.views[to as usize].knows_dense(block) {
            // The holder announced the block (headers-first) but has not
            // fetched it yet; retry shortly, bounded so requests to
            // permanently blockless peers eventually give up.
            if retries < 40 {
                let shard = self.shard_of(to);
                self.queue.schedule_in(
                    30_000,
                    shard,
                    NetEvent::GetData {
                        from,
                        to,
                        block,
                        retries: retries + 1,
                    },
                );
            }
            return;
        }
        self.trace(TraceKind::GetData, from, block as u64, to as u64);
        let delay = self.transfer_delay(from);
        let shard = self.shard_of(from);
        self.queue.schedule_in(
            delay,
            shard,
            NetEvent::Block {
                from: to,
                to: from,
                block,
                forced: false,
            },
        );
    }

    fn handle_block(&mut self, from: u32, to: u32, block: u32, forced: bool) {
        if !forced {
            if self.blocked(from, to) {
                self.traffic.blocked += 1;
                return;
            }
            if self.lossy() {
                self.traffic.lost += 1;
                return;
            }
        }
        self.traffic.blocks += 1;
        if !self.arena.online[to as usize] && !forced {
            return;
        }
        let source = (from != u32::MAX).then_some(from);
        self.accept_block(to, block, source);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bp_topology::SnapshotConfig;

    fn tiny_snapshot() -> Snapshot {
        let config = SnapshotConfig {
            scale: 0.02,
            tail_as_count: 40,
            version_tail: 10,
            up_fraction: 1.0,
            ..SnapshotConfig::paper()
        };
        Snapshot::generate(config)
    }

    fn sim() -> Simulation {
        let snap = tiny_snapshot();
        Simulation::new(&snap, &PoolCensus::paper_table_iv(), NetConfig::fast_test())
    }

    #[test]
    fn blocks_propagate_to_all_nodes() {
        let mut s = sim();
        // Run for 3 block intervals; with fast propagation and no loss
        // everyone should be synced between blocks.
        s.run_for_secs(3 * 600);
        assert!(s.network_best().0 >= 1, "no blocks mined");
        // Give stragglers a moment after the last block.
        s.run_for_secs(120);
        let lags = s.lags();
        let synced = lags.iter().filter(|&&l| l == 0).count();
        assert!(
            synced as f64 / lags.len() as f64 > 0.95,
            "only {synced}/{} synced",
            lags.len()
        );
    }

    #[test]
    fn simulation_is_deterministic() {
        let snap = tiny_snapshot();
        let census = PoolCensus::paper_table_iv();
        let mut a = Simulation::new(&snap, &census, NetConfig::fast_test());
        let mut b = Simulation::new(&snap, &census, NetConfig::fast_test());
        a.run_for_secs(1800);
        b.run_for_secs(1800);
        assert_eq!(a.network_best(), b.network_best());
        assert_eq!(a.lags(), b.lags());
    }

    #[test]
    fn tracing_records_events_without_perturbing_results() {
        let snap = tiny_snapshot();
        let census = PoolCensus::paper_table_iv();
        let mut plain = Simulation::new(&snap, &census, NetConfig::fast_test());
        let mut traced = Simulation::new(&snap, &census, NetConfig::fast_test());
        traced.set_tracer(Tracer::new());
        plain.run_for_secs(1800);
        traced.run_for_secs(1800);
        // Identical results with the recorder on.
        assert_eq!(plain.network_best(), traced.network_best());
        assert_eq!(plain.lags(), traced.lags());
        // And twice-traced runs produce byte-identical streams.
        let mut traced2 = Simulation::new(&snap, &census, NetConfig::fast_test());
        traced2.set_tracer(Tracer::new());
        traced2.run_for_secs(1800);
        let records = traced.take_tracer().unwrap().into_records();
        let records2 = traced2.take_tracer().unwrap().into_records();
        assert_eq!(
            bp_obs::trace::first_divergence(&records, &records2),
            None,
            "same-seed traces diverged"
        );
        // The stream holds the expected net-category kinds.
        let mines = records.iter().filter(|r| r.kind == TraceKind::Mine).count() as u64;
        assert_eq!(mines, traced.stats().blocks_mined);
        assert!(records.iter().any(|r| r.kind == TraceKind::BlockAccept));
        assert!(records.iter().any(|r| r.kind == TraceKind::InvRelay));
        assert!(records.iter().any(|r| r.kind == TraceKind::GetData));
        // Mine records carry heights; the max equals the network best.
        let max_height = records
            .iter()
            .filter(|r| r.kind == TraceKind::Mine)
            .map(|r| r.b)
            .max()
            .unwrap();
        assert_eq!(max_height, traced.network_best().0);
    }

    #[test]
    fn partition_events_reach_the_trace() {
        let mut s = sim();
        s.set_tracer(Tracer::new());
        let n = s.node_count() as u32;
        s.set_partition(move |i| if i < n / 2 { 0 } else { 1 });
        s.run_for_secs(600);
        s.clear_partition();
        let records = s.take_tracer().unwrap().into_records();
        let apply = records
            .iter()
            .find(|r| r.kind == TraceKind::PartitionApply)
            .expect("partition apply not traced");
        assert_eq!(apply.node, u32::MAX);
        assert_eq!(apply.a, 2, "expected two partition groups");
        assert!(records
            .iter()
            .any(|r| r.kind == TraceKind::PartitionHeal && r.node == u32::MAX));
    }

    #[test]
    fn partition_stops_cross_group_propagation() {
        let mut s = sim();
        let n = s.node_count() as u32;
        // Split in half and run long enough for several blocks.
        s.set_partition(move |i| if i < n / 2 { 0 } else { 1 });
        s.run_for_secs(4 * 600);
        // The two halves must have diverged: forks appear because pools'
        // gateways sit in both halves.
        let tips: HashSet<BlockId> = (0..n).map(|i| s.tip_of(i)).collect();
        assert!(tips.len() >= 2, "partition produced no divergence");
        // Lifting the partition reconverges the network.
        s.clear_partition();
        s.run_for_secs(4 * 600);
        s.run_for_secs(120);
        let lags = s.lags();
        let synced = lags.iter().filter(|&&l| l <= 1).count();
        assert!(
            synced as f64 / lags.len() as f64 > 0.9,
            "network failed to reconverge"
        );
    }

    #[test]
    fn zombies_stay_behind() {
        let snap = tiny_snapshot();
        let config = NetConfig {
            zombie_fraction: 0.2,
            ..NetConfig::fast_test()
        };
        let mut s = Simulation::new(&snap, &PoolCensus::paper_table_iv(), config);
        s.run_for_secs(5 * 600);
        let zombie_lags: Vec<u64> = (0..s.node_count() as u32)
            .filter(|&i| s.is_zombie(i))
            .map(|i| s.lags()[i as usize])
            .collect();
        assert!(!zombie_lags.is_empty());
        // Zombies never fetched anything: they sit at genesis.
        assert!(zombie_lags.iter().all(|&l| l == s.network_best().0));
    }

    #[test]
    fn counterfeit_injection_captures_lagging_node() {
        let mut s = sim();
        s.run_for_secs(1200);
        s.run_for_secs(60);
        let victim = 0u32;
        // Build a counterfeit chain 2 blocks longer than the victim's tip.
        let mut parent = s.tip_of(victim);
        for _ in 0..2 {
            parent = s.mine_counterfeit(parent);
        }
        s.push_chain(victim, parent);
        // Process only a short horizon so honest mining cannot outpace it.
        s.run_for_secs(5);
        assert!(
            s.follows_counterfeit(victim),
            "victim did not adopt the counterfeit chain"
        );
    }

    #[test]
    fn fork_stats_accumulate() {
        let snap = tiny_snapshot();
        // Slow diffusion + losses → some forks over many blocks.
        let config = NetConfig {
            seed: 42,
            diffusion_mean_ms: 60_000.0,
            failure_rate: 0.2,
            ..NetConfig::fast_test()
        };
        let mut s = Simulation::new(&snap, &PoolCensus::paper_table_iv(), config);
        s.run_for_secs(40 * 600);
        let stats = s.stats();
        assert!(stats.blocks_mined >= 20);
        assert!(
            stats.stale_forks > 0 || stats.reorgs > 0,
            "slow network produced no forks at all: {stats:?}"
        );
    }

    #[test]
    fn transactions_gossip_to_most_mempools() {
        let mut s = sim();
        s.run_for_secs(60);
        let txid = s.submit_tx(0, 1).unwrap();
        s.run_for_secs(120);
        let holders = (0..s.node_count() as u32)
            .filter(|&i| s.tx_in_mempool(i, txid))
            .count();
        assert!(
            holders as f64 > 0.9 * s.node_count() as f64,
            "tx reached only {holders}/{}",
            s.node_count()
        );
    }

    #[test]
    fn double_spend_rejected_by_first_seen() {
        let mut s = sim();
        s.run_for_secs(60);
        let n = s.node_count() as u32;
        // Two conflicting spends broadcast simultaneously from opposite
        // corners of the network.
        let a = s.submit_tx(0, 7).unwrap();
        let b = s.submit_tx(n - 1, 7).unwrap();
        s.run_for_secs(120);
        assert_ne!(a, b);
        // The floods collided somewhere: rejections were recorded and no
        // node holds both versions.
        assert!(s.conflicts_rejected_total() > 0, "no conflicts detected");
        for i in 0..n {
            assert!(
                !(s.tx_in_mempool(i, a) && s.tx_in_mempool(i, b)),
                "node {i} holds both sides of a double spend"
            );
        }
        // A node that saw one version first refuses the other even when
        // offered directly.
        let holder = (0..n).find(|&i| s.tx_in_mempool(i, a)).unwrap();
        assert!(s.submit_tx(holder, 7).is_none());
    }

    #[test]
    fn partition_enables_double_spend_and_reversal() {
        let mut s = sim();
        let _n = s.node_count() as u32;
        s.run_for_secs(60);
        // Partition by parity so each side keeps some pool gateways
        // (gateway nodes cluster in the low indices), then spend the
        // same coin on both sides.
        s.set_partition(move |i| i % 2);
        let left = s.submit_tx(0, 99).unwrap();
        let right = s.submit_tx(1, 99).unwrap();
        // Run long enough for both sides to confirm their version.
        s.run_for_secs(8 * 600);
        s.clear_partition();
        s.run_for_secs(6 * 600);
        // Exactly one version survives on the canonical chain.
        let left_ok = s.tx_confirmed(left);
        let right_ok = s.tx_confirmed(right);
        assert!(
            left_ok ^ right_ok,
            "double spend not resolved: left={left_ok} right={right_ok}"
        );
        // Somebody's confirmation was reversed — at canonical level if
        // the losing side ever led, and at node level in every case
        // (the weak side's nodes saw their version confirmed before the
        // heal-time reorg removed it).
        assert!(
            s.reversed_tx_total() + s.node_reversals_total() >= 1,
            "no reversal recorded anywhere"
        );
    }

    #[test]
    fn confirmed_tx_leaves_mempools() {
        let mut s = sim();
        s.run_for_secs(60);
        let txid = s.submit_tx(0, 5).unwrap();
        s.run_for_secs(4 * 600);
        s.run_for_secs(120);
        assert!(s.tx_confirmed(txid), "tx never confirmed");
        let holders = (0..s.node_count() as u32)
            .filter(|&i| s.tx_in_mempool(i, txid))
            .count();
        assert!(
            (holders as f64) < 0.2 * s.node_count() as f64,
            "{holders} mempools still hold a confirmed tx"
        );
    }

    #[test]
    fn trickle_relay_propagates_but_slower() {
        let snap = tiny_snapshot();
        let census = PoolCensus::paper_table_iv();
        let trickle = NetConfig {
            relay_mode: RelayMode::Trickle { interval_ms: 5_000 },
            ..NetConfig::fast_test()
        };
        let mut slow = Simulation::new(&snap, &census, trickle);
        let mut fast = Simulation::new(&snap, &census, NetConfig::fast_test());
        slow.run_for_secs(4 * 600);
        fast.run_for_secs(4 * 600);
        // Both deliver blocks eventually…
        assert!(slow.network_best().0 >= 1);
        let synced = |s: &Simulation| {
            let lags = s.lags();
            lags.iter().filter(|&&l| l == 0).count() as f64 / lags.len() as f64
        };
        // …but trickle leaves no larger a synced population than
        // diffusion at the same instant.
        assert!(
            synced(&slow) <= synced(&fast) + 0.05,
            "trickle {} vs diffusion {}",
            synced(&slow),
            synced(&fast)
        );
    }

    #[test]
    fn run_for_secs_advances_wall_clock_exactly() {
        // Regression: the clock must advance by the requested amount even
        // when the event stream is sparse (tiny network, long quiet
        // stretches) — otherwise crawls sample far less simulated time
        // than intended.
        let mut s = sim();
        for _ in 0..100 {
            s.run_for_secs(10);
        }
        assert_eq!(s.now().as_secs(), 1000);
    }

    #[test]
    #[should_panic(expected = "overflows")]
    fn run_for_secs_rejects_overflowing_deadlines() {
        // Regression: `secs * 1000` used to wrap, turning an absurd
        // horizon into a deadline in the past that silently ran nothing.
        let mut s = sim();
        s.run_for_secs(u64::MAX / 500);
    }

    #[test]
    fn queue_counters_are_exported() {
        let mut s = sim();
        s.run_for_secs(1800);
        let reg = bp_obs::Registry::new();
        s.export_metrics(&reg, "net");
        let snap = reg.snapshot();
        let scheduled = snap.counter("net.queue.scheduled");
        assert!(scheduled > 0);
        // Every scheduled event took exactly one of the three paths.
        assert_eq!(
            scheduled,
            snap.counter("net.queue.wheel")
                + snap.counter("net.queue.late")
                + snap.counter("net.queue.overflow")
        );
        // Mining gaps (~600 s) exceed the wheel horizon only rarely; the
        // bulk of diffusion traffic must take the O(1) wheel path.
        assert!(snap.counter("net.queue.wheel") > snap.counter("net.queue.overflow"));
    }

    #[test]
    fn validate_rejects_out_of_range_configs() {
        assert!(NetConfig::paper().validate().is_ok());
        assert!(NetConfig::fast_test().validate().is_ok());
        let bad = [
            NetConfig {
                zombie_fraction: 1.5,
                ..NetConfig::fast_test()
            },
            NetConfig {
                failure_rate: -0.1,
                ..NetConfig::fast_test()
            },
            NetConfig {
                churn_on_prob: f64::NAN,
                ..NetConfig::fast_test()
            },
            NetConfig {
                churn_off_scale: -1.0,
                ..NetConfig::fast_test()
            },
            NetConfig {
                out_degree: 0,
                ..NetConfig::fast_test()
            },
            NetConfig {
                diffusion_mean_ms: 0.0,
                ..NetConfig::fast_test()
            },
            NetConfig {
                fetch_delay_mean_ms: f64::INFINITY,
                ..NetConfig::fast_test()
            },
            NetConfig {
                block_interval_secs: -600.0,
                ..NetConfig::fast_test()
            },
            NetConfig {
                churn_period_secs: 0,
                ..NetConfig::fast_test()
            },
        ];
        for config in bad {
            assert!(config.validate().is_err(), "accepted {config:?}");
        }
    }

    #[test]
    #[should_panic(expected = "invalid NetConfig")]
    fn simulation_rejects_invalid_config() {
        // Pre-validation, zombie_fraction > 1 made the zombie sampler
        // loop forever; now construction fails fast.
        let snap = tiny_snapshot();
        let config = NetConfig {
            zombie_fraction: 1.5,
            ..NetConfig::fast_test()
        };
        let _ = Simulation::new(&snap, &PoolCensus::paper_table_iv(), config);
    }

    #[test]
    fn sharded_runs_are_byte_identical_to_unsharded() {
        // Sharding is pure mechanism: the merged pop order equals the
        // single wheel's, so every observable — results, metrics, the
        // trace stream — must be identical at any shard count.
        let snap = tiny_snapshot();
        let census = PoolCensus::paper_table_iv();
        let config = NetConfig {
            zombie_fraction: 0.1,
            failure_rate: 0.05,
            ..NetConfig::fast_test()
        };
        let mut one = Simulation::new(&snap, &census, config.clone());
        let mut four = Simulation::new(
            &snap,
            &census,
            NetConfig {
                shards: 4,
                ..config
            },
        );
        one.set_tracer(Tracer::new());
        four.set_tracer(Tracer::new());
        one.run_for_secs(1800);
        four.run_for_secs(1800);
        assert_eq!(one.network_best(), four.network_best());
        assert_eq!(one.lags(), four.lags());
        assert_eq!(one.stats(), four.stats());
        assert_eq!(one.traffic(), four.traffic());
        assert_eq!(one.metrics(), four.metrics());
        // Queue stats come from the shard-invariant shadow classifier.
        assert_eq!(one.queue.stats(), four.queue.stats());
        let a = one.take_tracer().unwrap().into_records();
        let b = four.take_tracer().unwrap().into_records();
        assert_eq!(
            bp_obs::trace::first_divergence(&a, &b),
            None,
            "trace diverged across shard counts"
        );
    }

    #[test]
    fn threaded_runs_are_byte_identical_to_serial() {
        // The epoch executor is pure mechanism, exactly like sharding:
        // handlers fire in the identical global (time, seq) order, so
        // every observable — results, metrics (including the queue-depth
        // high-water mark), the trace stream — must match the serial
        // engine at any shards × net_threads combination.
        let snap = tiny_snapshot();
        let census = PoolCensus::paper_table_iv();
        let config = NetConfig {
            zombie_fraction: 0.1,
            failure_rate: 0.05,
            ..NetConfig::fast_test()
        };
        let mut serial = Simulation::new(&snap, &census, config.clone());
        serial.set_tracer(Tracer::new());
        serial.run_for_secs(1800);
        let baseline = serial.take_tracer().unwrap().into_records();
        for (shards, net_threads) in [(1usize, 2usize), (4, 2), (4, 8), (8, 3)] {
            let mut threaded = Simulation::new(
                &snap,
                &census,
                NetConfig {
                    shards,
                    net_threads,
                    ..config.clone()
                },
            );
            threaded.set_tracer(Tracer::new());
            threaded.run_for_secs(1800);
            assert_eq!(serial.network_best(), threaded.network_best());
            assert_eq!(serial.lags(), threaded.lags());
            assert_eq!(serial.stats(), threaded.stats());
            assert_eq!(serial.traffic(), threaded.traffic());
            assert_eq!(serial.metrics(), threaded.metrics());
            assert_eq!(serial.queue_stats(), threaded.queue_stats());
            let records = threaded.take_tracer().unwrap().into_records();
            assert_eq!(
                bp_obs::trace::first_divergence(&baseline, &records),
                None,
                "trace diverged at shards={shards} net_threads={net_threads}"
            );
            // The run was long/dense enough to actually open epochs (the
            // backlog guard serial-steps sparse stretches), so the path
            // under test really ran.
            assert!(
                threaded.merge_stats().epochs > 0,
                "epoch executor never engaged at shards={shards} net_threads={net_threads}"
            );
        }
    }

    #[test]
    fn gateways_are_never_zombies() {
        // Regression: gateway selection used to take the first
        // participant in the pool's stratum AS even when the zombie
        // sampler had hit it, producing a node that "never fetches"
        // blocks yet carries the pools' zero-delay fetch
        // infrastructure — a pool mining on a genesis-frozen view
        // forever. With a 30 % zombie fraction some seed in this range
        // collides with near-certainty.
        let snap = tiny_snapshot();
        let census = PoolCensus::paper_table_iv();
        for seed in 0..10u64 {
            let config = NetConfig {
                seed,
                zombie_fraction: 0.3,
                ..NetConfig::fast_test()
            };
            let s = Simulation::new(&snap, &census, config);
            for &g in &s.gateways {
                assert!(!s.is_zombie(g), "seed {seed}: gateway {g} is a zombie");
            }
        }
    }

    #[test]
    fn partial_shuffle_builder_matches_invariants() {
        // The million-node sampler must build a valid network: exact
        // zombie count, per-node degree >= out_degree, sorted rows, no
        // self-loops, no duplicates, symmetric edges — and be
        // deterministic for a seed.
        let snap = tiny_snapshot();
        let census = PoolCensus::paper_table_iv();
        let config = NetConfig {
            sampling: SamplingMode::PartialShuffle,
            zombie_fraction: 0.1,
            ..NetConfig::fast_test()
        };
        let s = Simulation::new(&snap, &census, config.clone());
        let n = s.node_count() as u32;
        let zombies = (0..n).filter(|&i| s.is_zombie(i)).count();
        assert_eq!(zombies, (n as f64 * 0.1).round() as usize);
        for i in 0..n {
            let peers = s.peers_of(i);
            assert!(peers.len() >= 8, "node {i} degree {}", peers.len());
            assert!(
                peers.windows(2).all(|w| w[0] < w[1]),
                "row {i} unsorted/dup"
            );
            assert!(!peers.contains(&i), "node {i} self-loop");
            for &p in peers {
                assert!(s.peers_of(p).contains(&i), "edge {i}<->{p} not symmetric");
            }
        }
        let t = Simulation::new(&snap, &census, config);
        for i in 0..n {
            assert_eq!(s.peers_of(i), t.peers_of(i), "non-deterministic row {i}");
        }
        // And the network it builds actually works.
        let mut s = s;
        s.run_for_secs(1800);
        assert!(s.network_best().0 >= 1);
    }

    #[test]
    fn gateway_flags_match_gateway_list() {
        let s = sim();
        let mut flagged = 0;
        for i in 0..s.node_count() as u32 {
            assert_eq!(s.is_gateway(i), s.gateways.contains(&i), "node {i}");
            flagged += s.is_gateway(i) as usize;
        }
        assert!(flagged > 0, "no gateway nodes at all");
    }

    #[test]
    fn confirmed_set_agrees_with_chain_walk() {
        // Drive a partition + heal so the canonical chain advances AND
        // reorganises, then check the incremental set against the
        // reference walk for every transaction ever submitted.
        let snap = tiny_snapshot();
        let config = NetConfig {
            finalization_depth: 0, // keep block_txs complete for the walk
            ..NetConfig::fast_test()
        };
        let mut s = Simulation::new(&snap, &PoolCensus::paper_table_iv(), config);
        s.run_for_secs(60);
        let mut txids = Vec::new();
        for g in 0..20u64 {
            if let Some(t) = s.submit_tx((g % 7) as u32, g) {
                txids.push(t);
            }
        }
        s.set_partition(|i| i % 2);
        for g in 100..104u64 {
            txids.extend(s.submit_tx(0, g));
            txids.extend(s.submit_tx(1, g));
        }
        s.run_for_secs(8 * 600);
        s.clear_partition();
        s.run_for_secs(6 * 600);
        assert!(
            txids.iter().any(|&t| s.tx_confirmed(t)),
            "nothing confirmed"
        );
        for &t in &txids {
            assert_eq!(
                s.tx_confirmed(t),
                s.tx_confirmed_by_walk(t),
                "confirmed-set bookkeeping diverged for tx {t}"
            );
        }
    }

    #[test]
    fn pruning_bounds_relay_state_without_changing_results() {
        // A long run so the chain passes the finalization depth many
        // times over (~6 blocks/hour from the census hash rate).
        let snap = tiny_snapshot();
        let census = PoolCensus::paper_table_iv();
        let pruned_cfg = NetConfig {
            finalization_depth: 6,
            ..NetConfig::fast_test()
        };
        let unpruned_cfg = NetConfig {
            finalization_depth: 0,
            ..NetConfig::fast_test()
        };
        let mut pruned = Simulation::new(&snap, &census, pruned_cfg);
        let mut unpruned = Simulation::new(&snap, &census, unpruned_cfg);
        let secs = 8 * 3600;
        pruned.run_for_secs(secs);
        unpruned.run_for_secs(secs);

        // Pruning must not perturb the simulation itself.
        assert_eq!(pruned.network_best(), unpruned.network_best());
        assert_eq!(pruned.lags(), unpruned.lags());
        assert_eq!(pruned.stats(), unpruned.stats());

        // …but it must bound the relay bookkeeping.
        let (seen_p, txs_p) = pruned.relay_state_footprint();
        let (seen_u, txs_u) = unpruned.relay_state_footprint();
        assert!(pruned.metrics().pruned_seen_invs > 0, "nothing pruned");
        assert!(
            seen_p < seen_u,
            "seen_invs not reduced: {seen_p} vs {seen_u}"
        );
        assert!(txs_p <= txs_u);
        let blocks = pruned.stats().blocks_mined;
        let n = pruned.node_count();
        assert!(
            blocks > 20,
            "too few blocks mined ({blocks}) to exercise pruning"
        );
        // Bounded: per-node seen_invs stays near the finalization window
        // (depth 6 plus the blocks mined since the last churn tick), far
        // below the total number of blocks ever relayed.
        assert!(
            seen_p <= n * 20,
            "seen_invs {seen_p} not bounded (n={n}, blocks={blocks})"
        );
    }

    #[test]
    fn metrics_count_events_without_perturbing_results() {
        let snap = tiny_snapshot();
        let census = PoolCensus::paper_table_iv();
        let mut a = Simulation::new(&snap, &census, NetConfig::fast_test());
        let mut b = Simulation::new(&snap, &census, NetConfig::fast_test());
        a.run_for_secs(1800);
        b.run_for_secs(1800);
        // Metrics are as deterministic as the simulation itself…
        assert_eq!(a.metrics(), b.metrics());
        // …and exporting them twice (or not at all) changes nothing.
        let reg = bp_obs::Registry::new();
        a.export_metrics(&reg, "net");
        a.run_for_secs(600);
        b.run_for_secs(600);
        assert_eq!(a.lags(), b.lags());
        assert_eq!(a.metrics(), b.metrics());
        let m = a.metrics();
        assert!(m.events_mine > 0);
        assert!(m.events_inv > 0);
        assert!(m.queue_depth_hwm > 0);
        assert_eq!(
            m.events_churn,
            1 + a.now().as_secs() / a.config.churn_period_secs
        );
        let snap2 = reg.snapshot();
        assert!(snap2.counter("net.events.inv") > 0);
        assert!(snap2.counter("net.traffic.invs") > 0);
    }

    #[test]
    fn out_degree_respected() {
        let s = sim();
        for i in 0..s.node_count() as u32 {
            // Union of in/out edges: at least out_degree, bounded above by
            // a small multiple.
            let d = s.peers_of(i).len();
            assert!(d >= 8, "node {i} has degree {d}");
        }
    }
}
