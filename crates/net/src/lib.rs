//! Event-driven Bitcoin P2P network simulator.
//!
//! Simulates block propagation over the node population of a
//! [`bp_topology::Snapshot`]: diffusion spreading with exponential
//! per-edge delays, 8 outbound peers per node, message loss, churn,
//! zombie nodes, pool-driven mining, partitions and adversary hooks.
//! This is the substrate under the paper's Figure 6 / Figure 8
//! measurements and the temporal-attack experiments.
//!
//! # Examples
//!
//! ```
//! use bp_mining::PoolCensus;
//! use bp_net::{NetConfig, Simulation};
//! use bp_topology::{Snapshot, SnapshotConfig};
//!
//! let snap = Snapshot::generate(SnapshotConfig {
//!     scale: 0.02,
//!     tail_as_count: 40,
//!     version_tail: 10,
//!     ..SnapshotConfig::paper()
//! });
//! let mut sim = Simulation::new(
//!     &snap, &PoolCensus::paper_table_iv(), NetConfig::fast_test(),
//! );
//! sim.run_for_secs(1800); // three expected block intervals
//! assert!(sim.network_best().0 >= 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dense;
pub mod engine;
pub mod fxhash;
pub mod index;
pub mod sim;
pub mod view;

pub use dense::DenseSet;
pub use engine::{
    EventQueue, HeapQueue, MergeStats, QueueStats, ShardedQueue, SimTime, WHEEL_SLOT_MS,
    WHEEL_SPAN_MS,
};
pub use fxhash::{FxBuildHasher, FxHashMap, FxHashSet, FxHasher};
pub use index::{BlockIndex, BlockMeta};
pub use sim::{
    ForkStats, NetConfig, RelayMode, SamplingMode, Simulation, TrafficStats, ADVERSARY_PRODUCER,
};
pub use view::{NodeView, ViewOutcome};
