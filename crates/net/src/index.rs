//! The shared block index.
//!
//! At network scale (13,635 nodes) giving every simulated node a full
//! [`bp_chain::ChainStore`] would duplicate every block thousands of
//! times. Instead the simulation keeps one global [`BlockIndex`] of block
//! *metadata* (id, parent, height, timestamp, producer) and gives each
//! node a lightweight chain view over it (see [`crate::view`]). The
//! full-fidelity `ChainStore` (UTXO, reorg undo, reversed transactions)
//! remains in use for the focused attack simulations in `bp-attacks`.

use crate::engine::SimTime;
use bp_chain::{BlockId, Hash256, Height};
use std::collections::HashMap;

/// Metadata of one simulated block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockMeta {
    /// Block identifier.
    pub id: BlockId,
    /// Parent identifier ([`Hash256::ZERO`] for genesis).
    pub prev: BlockId,
    /// Chain height.
    pub height: Height,
    /// Simulation time at which the block was found.
    pub found_at: SimTime,
    /// Index of the producing mining entity (pool index, or a synthetic
    /// attacker id).
    pub producer: u32,
    /// Whether the block was produced by an adversary (counterfeit chain).
    pub counterfeit: bool,
}

/// The global append-only block index.
#[derive(Debug, Clone)]
pub struct BlockIndex {
    blocks: HashMap<BlockId, BlockMeta>,
    genesis: BlockId,
}

impl BlockIndex {
    /// Creates an index containing only a genesis block found at time 0.
    pub fn new() -> Self {
        let genesis_id = Hash256::digest(b"btcpart-genesis");
        let genesis = BlockMeta {
            id: genesis_id,
            prev: Hash256::ZERO,
            height: Height::GENESIS,
            found_at: SimTime::ZERO,
            producer: u32::MAX,
            counterfeit: false,
        };
        let mut blocks = HashMap::new();
        blocks.insert(genesis_id, genesis);
        Self {
            blocks,
            genesis: genesis_id,
        }
    }

    /// The genesis id.
    pub fn genesis(&self) -> BlockId {
        self.genesis
    }

    /// Number of blocks ever mined (including genesis).
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// Whether only genesis exists. Never empty.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Looks up block metadata.
    pub fn get(&self, id: &BlockId) -> Option<&BlockMeta> {
        self.blocks.get(id)
    }

    /// Mines a new block on `parent`, returning its metadata.
    ///
    /// # Panics
    ///
    /// Panics if `parent` is unknown.
    pub fn mine(
        &mut self,
        parent: BlockId,
        found_at: SimTime,
        producer: u32,
        counterfeit: bool,
    ) -> BlockMeta {
        let parent_meta = *self
            .blocks
            .get(&parent)
            .expect("parent block must exist in the index");
        let height = parent_meta.height.next();
        // Derive a unique id from the block's identity tuple.
        let mut buf = Vec::with_capacity(64);
        buf.extend(parent.as_ref());
        buf.extend(height.0.to_le_bytes());
        buf.extend(found_at.as_millis().to_le_bytes());
        buf.extend(producer.to_le_bytes());
        buf.push(counterfeit as u8);
        let id = Hash256::digest(&buf);
        let meta = BlockMeta {
            id,
            prev: parent,
            height,
            found_at,
            producer,
            counterfeit,
        };
        self.blocks.insert(id, meta);
        meta
    }

    /// Walks from `id` back to genesis, returning the path (`id` first).
    ///
    /// Returns `None` if `id` is unknown.
    pub fn ancestry(&self, id: &BlockId) -> Option<Vec<BlockMeta>> {
        let mut path = Vec::new();
        let mut cur = *self.blocks.get(id)?;
        loop {
            path.push(cur);
            if cur.id == self.genesis {
                return Some(path);
            }
            cur = *self.blocks.get(&cur.prev)?;
        }
    }

    /// Whether `ancestor` lies on the chain ending at `tip`.
    pub fn is_ancestor(&self, ancestor: &BlockId, tip: &BlockId) -> bool {
        let Some(anc) = self.blocks.get(ancestor) else {
            return false;
        };
        let mut cur = match self.blocks.get(tip) {
            Some(m) => *m,
            None => return false,
        };
        loop {
            if cur.id == *ancestor {
                return true;
            }
            if cur.height <= anc.height {
                return false;
            }
            cur = match self.blocks.get(&cur.prev) {
                Some(m) => *m,
                None => return false,
            };
        }
    }
}

impl Default for BlockIndex {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn genesis_exists() {
        let idx = BlockIndex::new();
        let g = idx.get(&idx.genesis()).unwrap();
        assert_eq!(g.height, Height::GENESIS);
        assert_eq!(idx.len(), 1);
    }

    #[test]
    fn mining_extends_height() {
        let mut idx = BlockIndex::new();
        let b1 = idx.mine(idx.genesis(), SimTime::from_secs(600), 0, false);
        let b2 = idx.mine(b1.id, SimTime::from_secs(1200), 1, false);
        assert_eq!(b1.height, Height(1));
        assert_eq!(b2.height, Height(2));
        assert_eq!(idx.len(), 3);
    }

    #[test]
    fn ids_are_unique_across_forks() {
        let mut idx = BlockIndex::new();
        let a = idx.mine(idx.genesis(), SimTime(1), 0, false);
        let b = idx.mine(idx.genesis(), SimTime(1), 1, false);
        let c = idx.mine(idx.genesis(), SimTime(2), 0, false);
        assert_ne!(a.id, b.id);
        assert_ne!(a.id, c.id);
    }

    #[test]
    fn counterfeit_flag_distinguishes_ids() {
        let mut idx = BlockIndex::new();
        let honest = idx.mine(idx.genesis(), SimTime(5), 0, false);
        let fake = idx.mine(idx.genesis(), SimTime(5), 0, true);
        assert_ne!(honest.id, fake.id);
        assert!(fake.counterfeit);
    }

    #[test]
    fn ancestry_walks_to_genesis() {
        let mut idx = BlockIndex::new();
        let mut tip = idx.genesis();
        for i in 0..5 {
            tip = idx.mine(tip, SimTime(i), 0, false).id;
        }
        let path = idx.ancestry(&tip).unwrap();
        assert_eq!(path.len(), 6);
        assert_eq!(path.last().unwrap().id, idx.genesis());
        assert_eq!(path[0].id, tip);
    }

    #[test]
    fn is_ancestor_respects_forks() {
        let mut idx = BlockIndex::new();
        let a = idx.mine(idx.genesis(), SimTime(1), 0, false);
        let a2 = idx.mine(a.id, SimTime(2), 0, false);
        let b = idx.mine(idx.genesis(), SimTime(1), 1, false);
        assert!(idx.is_ancestor(&a.id, &a2.id));
        assert!(idx.is_ancestor(&idx.genesis(), &a2.id));
        assert!(!idx.is_ancestor(&b.id, &a2.id));
        assert!(!idx.is_ancestor(&a2.id, &a.id));
    }

    #[test]
    #[should_panic(expected = "parent block")]
    fn mining_on_unknown_parent_panics() {
        let mut idx = BlockIndex::new();
        idx.mine(Hash256::digest(b"nope"), SimTime(1), 0, false);
    }
}
