//! The shared block index.
//!
//! At network scale (13,635 nodes) giving every simulated node a full
//! [`bp_chain::ChainStore`] would duplicate every block thousands of
//! times. Instead the simulation keeps one global [`BlockIndex`] of block
//! *metadata* (id, parent, height, timestamp, producer) and gives each
//! node a lightweight chain view over it (see [`crate::view`]). The
//! full-fidelity `ChainStore` (UTXO, reorg undo, reversed transactions)
//! remains in use for the focused attack simulations in `bp-attacks`.
//!
//! Blocks are append-only, so each one also gets a small *dense index*
//! (`0` = genesis, then insertion order). The simulator keys its hot
//! per-node relay state by dense index — a `u32` probe into a
//! [`crate::dense::DenseSet`] — instead of hashing 32-byte ids, and the
//! per-height buckets make finalization pruning a range walk instead of
//! a full-map scan.

use crate::engine::SimTime;
use crate::fxhash::FxHashMap;
use bp_chain::{BlockId, Hash256, Height};

/// Sentinel dense index meaning "no such block" (genesis's parent).
pub const NO_BLOCK: u32 = u32::MAX;

/// Metadata of one simulated block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockMeta {
    /// Block identifier.
    pub id: BlockId,
    /// Parent identifier ([`Hash256::ZERO`] for genesis).
    pub prev: BlockId,
    /// Chain height.
    pub height: Height,
    /// Simulation time at which the block was found.
    pub found_at: SimTime,
    /// Index of the producing mining entity (pool index, or a synthetic
    /// attacker id).
    pub producer: u32,
    /// Whether the block was produced by an adversary (counterfeit chain).
    pub counterfeit: bool,
    /// This block's dense index (position in insertion order; genesis
    /// is 0).
    pub dense: u32,
    /// The parent's dense index ([`NO_BLOCK`] for genesis).
    pub prev_dense: u32,
}

/// The global append-only block index.
#[derive(Debug, Clone)]
pub struct BlockIndex {
    /// All blocks in insertion order; `metas[m.dense] == m`.
    metas: Vec<BlockMeta>,
    by_id: FxHashMap<BlockId, u32>,
    /// Dense indices per height (`by_height[h]` holds every block at
    /// height `h`, in insertion order).
    by_height: Vec<Vec<u32>>,
    genesis: BlockId,
}

impl BlockIndex {
    /// Creates an index containing only a genesis block found at time 0.
    pub fn new() -> Self {
        let genesis_id = Hash256::digest(b"btcpart-genesis");
        let genesis = BlockMeta {
            id: genesis_id,
            prev: Hash256::ZERO,
            height: Height::GENESIS,
            found_at: SimTime::ZERO,
            producer: u32::MAX,
            counterfeit: false,
            dense: 0,
            prev_dense: NO_BLOCK,
        };
        let mut by_id = FxHashMap::default();
        by_id.insert(genesis_id, 0);
        Self {
            metas: vec![genesis],
            by_id,
            by_height: vec![vec![0]],
            genesis: genesis_id,
        }
    }

    /// The genesis id.
    pub fn genesis(&self) -> BlockId {
        self.genesis
    }

    /// Number of blocks ever mined (including genesis).
    pub fn len(&self) -> usize {
        self.metas.len()
    }

    /// Whether only genesis exists. Never empty.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Looks up block metadata.
    pub fn get(&self, id: &BlockId) -> Option<&BlockMeta> {
        self.by_id.get(id).map(|&d| &self.metas[d as usize])
    }

    /// The dense index of `id`, if known.
    pub fn dense_of(&self, id: &BlockId) -> Option<u32> {
        self.by_id.get(id).copied()
    }

    /// Metadata by dense index.
    ///
    /// # Panics
    ///
    /// Panics if `dense` was never issued by this index.
    pub fn meta_at(&self, dense: u32) -> &BlockMeta {
        &self.metas[dense as usize]
    }

    /// Dense indices of every block at `height` (empty above the tip).
    pub fn at_height(&self, height: Height) -> &[u32] {
        self.by_height
            .get(height.0 as usize)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Mines a new block on `parent`, returning its metadata.
    ///
    /// # Panics
    ///
    /// Panics if `parent` is unknown.
    pub fn mine(
        &mut self,
        parent: BlockId,
        found_at: SimTime,
        producer: u32,
        counterfeit: bool,
    ) -> BlockMeta {
        let prev_dense = *self
            .by_id
            .get(&parent)
            .expect("parent block must exist in the index");
        let parent_meta = self.metas[prev_dense as usize];
        let height = parent_meta.height.next();
        // Derive a unique id from the block's identity tuple.
        let mut buf = Vec::with_capacity(64);
        buf.extend(parent.as_ref());
        buf.extend(height.0.to_le_bytes());
        buf.extend(found_at.as_millis().to_le_bytes());
        buf.extend(producer.to_le_bytes());
        buf.push(counterfeit as u8);
        let id = Hash256::digest(&buf);
        let dense = self.metas.len() as u32;
        let meta = BlockMeta {
            id,
            prev: parent,
            height,
            found_at,
            producer,
            counterfeit,
            dense,
            prev_dense,
        };
        self.metas.push(meta);
        self.by_id.insert(id, dense);
        let h = height.0 as usize;
        if h >= self.by_height.len() {
            self.by_height.resize_with(h + 1, Vec::new);
        }
        self.by_height[h].push(dense);
        meta
    }

    /// Walks from `id` back to genesis, returning the path (`id` first).
    ///
    /// Returns `None` if `id` is unknown.
    pub fn ancestry(&self, id: &BlockId) -> Option<Vec<BlockMeta>> {
        let mut cur = *self.get(id)?;
        let mut path = Vec::with_capacity(cur.height.0 as usize + 1);
        loop {
            path.push(cur);
            if cur.prev_dense == NO_BLOCK {
                return Some(path);
            }
            cur = self.metas[cur.prev_dense as usize];
        }
    }

    /// Whether `ancestor` lies on the chain ending at `tip`.
    pub fn is_ancestor(&self, ancestor: &BlockId, tip: &BlockId) -> bool {
        let (Some(anc), Some(tip)) = (self.get(ancestor), self.get(tip)) else {
            return false;
        };
        self.is_ancestor_dense(anc.dense, tip.dense)
    }

    /// [`Self::is_ancestor`] over dense indices.
    pub fn is_ancestor_dense(&self, ancestor: u32, tip: u32) -> bool {
        let anc_height = self.metas[ancestor as usize].height;
        let mut cur = self.metas[tip as usize];
        loop {
            if cur.dense == ancestor {
                return true;
            }
            if cur.height <= anc_height || cur.prev_dense == NO_BLOCK {
                return false;
            }
            cur = self.metas[cur.prev_dense as usize];
        }
    }
}

impl Default for BlockIndex {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn genesis_exists() {
        let idx = BlockIndex::new();
        let g = idx.get(&idx.genesis()).unwrap();
        assert_eq!(g.height, Height::GENESIS);
        assert_eq!(g.dense, 0);
        assert_eq!(g.prev_dense, NO_BLOCK);
        assert_eq!(idx.len(), 1);
    }

    #[test]
    fn mining_extends_height() {
        let mut idx = BlockIndex::new();
        let b1 = idx.mine(idx.genesis(), SimTime::from_secs(600), 0, false);
        let b2 = idx.mine(b1.id, SimTime::from_secs(1200), 1, false);
        assert_eq!(b1.height, Height(1));
        assert_eq!(b2.height, Height(2));
        assert_eq!(idx.len(), 3);
    }

    #[test]
    fn dense_indices_follow_insertion_order() {
        let mut idx = BlockIndex::new();
        let b1 = idx.mine(idx.genesis(), SimTime(1), 0, false);
        let b2 = idx.mine(b1.id, SimTime(2), 0, false);
        assert_eq!(b1.dense, 1);
        assert_eq!(b2.dense, 2);
        assert_eq!(b2.prev_dense, b1.dense);
        assert_eq!(idx.dense_of(&b2.id), Some(2));
        assert_eq!(idx.meta_at(1), &b1);
        assert_eq!(idx.at_height(Height(1)), &[1]);
        assert_eq!(idx.at_height(Height(99)), &[] as &[u32]);
    }

    #[test]
    fn ids_are_unique_across_forks() {
        let mut idx = BlockIndex::new();
        let a = idx.mine(idx.genesis(), SimTime(1), 0, false);
        let b = idx.mine(idx.genesis(), SimTime(1), 1, false);
        let c = idx.mine(idx.genesis(), SimTime(2), 0, false);
        assert_ne!(a.id, b.id);
        assert_ne!(a.id, c.id);
        assert_eq!(idx.at_height(Height(1)), &[1, 2, 3]);
    }

    #[test]
    fn counterfeit_flag_distinguishes_ids() {
        let mut idx = BlockIndex::new();
        let honest = idx.mine(idx.genesis(), SimTime(5), 0, false);
        let fake = idx.mine(idx.genesis(), SimTime(5), 0, true);
        assert_ne!(honest.id, fake.id);
        assert!(fake.counterfeit);
    }

    #[test]
    fn ancestry_walks_to_genesis() {
        let mut idx = BlockIndex::new();
        let mut tip = idx.genesis();
        for i in 0..5 {
            tip = idx.mine(tip, SimTime(i), 0, false).id;
        }
        let path = idx.ancestry(&tip).unwrap();
        assert_eq!(path.len(), 6);
        assert_eq!(path.last().unwrap().id, idx.genesis());
        assert_eq!(path[0].id, tip);
    }

    #[test]
    fn is_ancestor_respects_forks() {
        let mut idx = BlockIndex::new();
        let a = idx.mine(idx.genesis(), SimTime(1), 0, false);
        let a2 = idx.mine(a.id, SimTime(2), 0, false);
        let b = idx.mine(idx.genesis(), SimTime(1), 1, false);
        assert!(idx.is_ancestor(&a.id, &a2.id));
        assert!(idx.is_ancestor(&idx.genesis(), &a2.id));
        assert!(!idx.is_ancestor(&b.id, &a2.id));
        assert!(!idx.is_ancestor(&a2.id, &a.id));
    }

    #[test]
    #[should_panic(expected = "parent block")]
    fn mining_on_unknown_parent_panics() {
        let mut idx = BlockIndex::new();
        idx.mine(Hash256::digest(b"nope"), SimTime(1), 0, false);
    }
}
