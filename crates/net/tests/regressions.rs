//! Deterministic re-runs of inputs proptest once shrank to (see
//! `properties.proptest-regressions`), kept as plain tests so they run
//! even when the property suite is skipped.

use bp_mining::PoolCensus;
use bp_net::{NetConfig, Simulation};
use bp_topology::{Snapshot, SnapshotConfig};

fn tiny_snapshot(seed: u64) -> Snapshot {
    Snapshot::generate(SnapshotConfig {
        seed,
        scale: 0.015,
        tail_as_count: 30,
        version_tail: 8,
        up_fraction: 1.0,
        ..SnapshotConfig::paper()
    })
}

/// `partition_heal_reconverges` once failed at `seed = 47, cut = 4`:
/// after healing a 4-way partition, a tail of nodes stayed lagged.
#[test]
fn partition_heal_reconverges_seed_47_cut_4() {
    let (seed, cut) = (47u64, 4u32);
    let snap = tiny_snapshot(seed);
    let config = NetConfig {
        seed,
        ..NetConfig::fast_test()
    };
    let mut sim = Simulation::new(&snap, &PoolCensus::paper_table_iv(), config);
    let n = sim.node_count() as u32;
    sim.run_for_secs(600);
    sim.set_partition(move |i| i % cut);
    sim.run_for_secs(2 * 600);
    sim.clear_partition();
    let healed_at = sim.stats().blocks_mined;
    let mut waited = 0;
    while sim.stats().blocks_mined < healed_at + 3 && waited < 30 {
        sim.run_for_secs(600);
        waited += 1;
    }
    sim.run_for_secs(300);
    let lags = sim.lags();
    let behind = lags.iter().filter(|&&l| l > 1).count();
    assert!(
        (behind as f64) < 0.1 * n as f64,
        "{behind}/{n} nodes stuck after heal"
    );
}
