//! Property-based tests for the network simulator: event-queue ordering,
//! view consistency, and whole-simulation invariants across seeds.

use bp_chain::Height;
use bp_mining::PoolCensus;
use bp_net::{
    BlockIndex, EventQueue, HeapQueue, NetConfig, NodeView, ShardedQueue, SimTime, Simulation,
    WHEEL_SLOT_MS, WHEEL_SPAN_MS,
};
use bp_topology::{Snapshot, SnapshotConfig};
use proptest::prelude::*;

/// One step of the queue-equivalence property: schedule a batch, pop a
/// few, or advance the clock.
#[derive(Debug, Clone)]
enum QueueOp {
    /// Schedule events at `now + delay` for each delay.
    Schedule(Vec<u64>),
    /// Pop up to this many events.
    Pop(u8),
    /// Advance both clocks by this many milliseconds.
    Advance(u64),
}

fn queue_op() -> impl Strategy<Value = QueueOp> {
    prop_oneof![
        // Delay mix mirrors the simulator: short relay delays, ties at
        // zero, and occasional timers far past the wheel horizon.
        proptest::collection::vec(
            prop_oneof![Just(0u64), 0u64..5_000, 900_000u64..3_000_000],
            1..20
        )
        .prop_map(QueueOp::Schedule),
        (1u8..16).prop_map(QueueOp::Pop),
        (0u64..200_000).prop_map(QueueOp::Advance),
    ]
}

proptest! {
    /// The calendar queue is observationally identical to the binary
    /// heap it replaced: same `(time, event)` pop sequence, same length
    /// and clock, under arbitrary schedule/pop/advance interleavings.
    #[test]
    fn calendar_queue_equals_heap_reference(
        ops in proptest::collection::vec(queue_op(), 1..60),
    ) {
        let mut calendar: EventQueue<u64> = EventQueue::new();
        let mut heap: HeapQueue<u64> = HeapQueue::new();
        let mut next_event = 0u64;
        for op in ops {
            match op {
                QueueOp::Schedule(delays) => {
                    for d in delays {
                        let at = SimTime(calendar.now().0 + d);
                        calendar.schedule(at, next_event);
                        heap.schedule(at, next_event);
                        next_event += 1;
                    }
                }
                QueueOp::Pop(count) => {
                    for _ in 0..count {
                        prop_assert_eq!(calendar.pop(), heap.pop());
                    }
                }
                QueueOp::Advance(ms) => {
                    let target = SimTime(calendar.now().0 + ms);
                    calendar.advance_to(target);
                    heap.advance_to(target);
                }
            }
            prop_assert_eq!(calendar.len(), heap.len());
            prop_assert_eq!(calendar.now(), heap.now());
        }
        // Drain: the full remaining order matches.
        loop {
            let (a, b) = (calendar.pop(), heap.pop());
            prop_assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
    }

    /// Events aimed exactly at the calendar wheel's horizon — the
    /// wheel/overflow boundary — and at the current-slot edge — the
    /// late-heap boundary — pop in exactly the heap reference's order.
    /// Interleaved pops advance the clock mid-slot, so the boundary is
    /// probed from arbitrary offsets within a slot.
    #[test]
    fn horizon_boundary_events_pop_in_reference_order(
        start_ms in 0u64..2_000_000,
        deltas in proptest::collection::vec(-3i64..=3, 1..24),
        pops_between in 0u8..4,
    ) {
        let mut calendar: EventQueue<u64> = EventQueue::new();
        let mut heap: HeapQueue<u64> = HeapQueue::new();
        calendar.advance_to(SimTime(start_ms));
        heap.advance_to(SimTime(start_ms));
        for (i, d) in deltas.iter().enumerate() {
            // Alternate between the overflow boundary (now + wheel span)
            // and the late-heap boundary (now + one slot), jittered ±3 ms
            // so both sides of each edge are exercised.
            let base = if i % 2 == 0 { WHEEL_SPAN_MS } else { WHEEL_SLOT_MS };
            let at = (calendar.now().0 + base).saturating_add_signed(*d);
            calendar.schedule(SimTime(at), i as u64);
            heap.schedule(SimTime(at), i as u64);
            for _ in 0..pops_between {
                let (a, b) = (calendar.pop(), heap.pop());
                prop_assert_eq!(a, b);
                prop_assert_eq!(calendar.now(), heap.now());
            }
        }
        loop {
            let (a, b) = (calendar.pop(), heap.pop());
            prop_assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
    }

    /// Events aimed exactly at the shard-merge lookahead boundary pop in
    /// the same `(time, seq)` order as the unsharded queue, at every
    /// shard count. Deliveries are jittered ±3 ms around `now +
    /// lookahead` (the tightest cross-shard arrival the simulator's
    /// contract allows, probed from both sides) and routed to a
    /// pseudo-random shard, with interleaved pops so the boundary is hit
    /// while the batch cache holds different active shards.
    #[test]
    fn shard_lookahead_boundary_matches_unsharded_order(
        shards_ix in 0usize..3,
        lookahead in prop_oneof![Just(1u64), Just(30), Just(501)],
        deltas in proptest::collection::vec(-3i64..=3, 1..32),
        routes in proptest::collection::vec(any::<u8>(), 32),
        pops_between in 0u8..4,
    ) {
        let shards = [1usize, 2, 8][shards_ix];
        let mut sharded: ShardedQueue<u64> = ShardedQueue::new(shards, lookahead);
        let mut single: EventQueue<u64> = EventQueue::new();
        for (i, d) in deltas.iter().enumerate() {
            let at = (sharded.now().0 + lookahead).saturating_add_signed(*d);
            let shard = routes[i % routes.len()] as usize % shards;
            sharded.schedule(SimTime(at), shard, i as u64);
            single.schedule(SimTime(at), i as u64);
            for _ in 0..pops_between {
                prop_assert_eq!(sharded.peek_time(), single.peek_time());
                let (a, b) = (sharded.pop(), single.pop());
                prop_assert_eq!(a, b);
                prop_assert_eq!(sharded.now(), single.now());
            }
        }
        loop {
            let (a, b) = (sharded.pop(), single.pop());
            prop_assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
        // The shadow classifier replayed the same schedule: its counters
        // are those of the unsharded wheel, byte for byte.
        prop_assert_eq!(sharded.stats(), single.stats());
    }

    /// Events always pop in non-decreasing time order, with FIFO order
    /// among simultaneous events.
    #[test]
    fn event_queue_orders_correctly(
        times in proptest::collection::vec(0u64..1000, 1..100),
    ) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(SimTime(t), i);
        }
        let mut last_time = SimTime::ZERO;
        let mut seen_at_time: Vec<usize> = Vec::new();
        let mut current = SimTime::ZERO;
        while let Some((at, idx)) = q.pop() {
            prop_assert!(at >= last_time, "time went backwards");
            if at != current {
                seen_at_time.clear();
                current = at;
            }
            // FIFO within a timestamp: indices increase.
            if let Some(&prev) = seen_at_time.last() {
                prop_assert!(idx > prev, "FIFO violated at {at}");
            }
            seen_at_time.push(idx);
            last_time = at;
        }
    }

    /// A node view accepts any permutation of a mined chain and ends at
    /// the same tip with no stranded orphans.
    #[test]
    fn view_converges_under_any_delivery_order(
        rot in any::<prop::sample::Index>(),
        len in 2usize..12,
    ) {
        let mut index = BlockIndex::new();
        let mut chain = Vec::new();
        let mut parent = index.genesis();
        for i in 0..len {
            let meta = index.mine(parent, SimTime::from_secs(600 * (i as u64 + 1)), 0, false);
            parent = meta.id;
            chain.push(meta.id);
        }
        let r = rot.index(len);
        let mut view = NodeView::new(&index);
        for i in 0..len {
            view.offer(&index, chain[(i + r) % len]);
        }
        prop_assert_eq!(view.best_tip(), *chain.last().unwrap());
        prop_assert_eq!(view.best_height(), Height(len as u64));
        prop_assert_eq!(view.known_count(), len + 1);
    }

    /// Fork choice in the view never decreases the best height.
    #[test]
    fn view_height_is_monotone(ops in proptest::collection::vec(any::<u8>(), 1..40)) {
        let mut index = BlockIndex::new();
        let mut tips = vec![index.genesis()];
        let mut view = NodeView::new(&index);
        let mut best = Height::GENESIS;
        for (i, op) in ops.iter().enumerate() {
            // Mine on a pseudo-random existing tip, offer immediately.
            let parent = tips[(*op as usize) % tips.len()];
            let meta = index.mine(parent, SimTime(i as u64), (*op % 3) as u32, false);
            tips.push(meta.id);
            view.offer(&index, meta.id);
            prop_assert!(view.best_height() >= best);
            best = view.best_height();
        }
    }
}

fn tiny_snapshot(seed: u64) -> Snapshot {
    Snapshot::generate(SnapshotConfig {
        seed,
        scale: 0.015,
        tail_as_count: 30,
        version_tail: 8,
        up_fraction: 1.0,
        ..SnapshotConfig::paper()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Across seeds: no node's view ever exceeds the honest network best,
    /// counterfeit-free runs stay counterfeit-free, and lags are
    /// internally consistent.
    #[test]
    fn simulation_invariants_across_seeds(seed in 0u64..500) {
        let snap = tiny_snapshot(seed);
        let config = NetConfig {
            seed,
            ..NetConfig::fast_test()
        };
        let mut sim = Simulation::new(&snap, &PoolCensus::paper_table_iv(), config);
        sim.run_for_secs(3 * 600);
        let best = sim.network_best();
        let lags = sim.lags();
        prop_assert_eq!(lags.len(), sim.node_count());
        for (i, &lag) in lags.iter().enumerate() {
            let h = sim.height_of(i as u32);
            // Height plus lag reconstructs the network best for nodes on
            // the main chain; side-chain tips may be shorter but lag is
            // measured against the best height either way.
            prop_assert!(h <= best, "node {i} ahead of the network");
            prop_assert_eq!(lag, best.0 - h.0.min(best.0));
            prop_assert!(!sim.follows_counterfeit(i as u32));
        }
        // Fork stats are consistent: stale forks never exceed mined
        // blocks.
        let stats = sim.stats();
        prop_assert!(stats.stale_forks <= stats.blocks_mined);
    }

    /// Partition + heal always reconverges under the lossless profile.
    #[test]
    fn partition_heal_reconverges(seed in 0u64..200, cut in 2u32..5) {
        let snap = tiny_snapshot(seed);
        let config = NetConfig { seed, ..NetConfig::fast_test() };
        let mut sim = Simulation::new(&snap, &PoolCensus::paper_table_iv(), config);
        let n = sim.node_count() as u32;
        sim.run_for_secs(600);
        sim.set_partition(move |i| i % cut);
        sim.run_for_secs(2 * 600);
        sim.clear_partition();
        // Reconvergence is driven by fresh announcements: wait until at
        // least three post-heal blocks exist (bounded), then let the
        // last one settle.
        let healed_at = sim.stats().blocks_mined;
        let mut waited = 0;
        while sim.stats().blocks_mined < healed_at + 3 && waited < 30 {
            sim.run_for_secs(600);
            waited += 1;
        }
        sim.run_for_secs(300);
        let lags = sim.lags();
        let behind = lags.iter().filter(|&&l| l > 1).count();
        prop_assert!(
            (behind as f64) < 0.1 * n as f64,
            "{behind}/{n} nodes stuck after heal (seed {seed})"
        );
    }
}

proptest! {
    // Each case drives two full queue protocols (serial and epoch) with
    // per-epoch scoped thread spawns; a bounded case count keeps the
    // suite's wall time proportionate while still sweeping every
    // shard × worker × lookahead combination.
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The epoch executor's protocol — `begin_epoch` / pop-until-
    /// exhausted / `commit_epoch` at conservative-window horizons —
    /// reproduces the serial engine's exact `(time, seq)` pop order at
    /// 1/2/8 workers, under reactive schedules that land *exactly on*
    /// the horizon boundary (delay == lookahead stays for the next
    /// window) and *below* it (the reinjection breach path pops within
    /// the open window). The shadow's queue stats must match the serial
    /// run byte-for-byte too.
    #[test]
    fn epoch_protocol_matches_serial_pop_order(
        shards_ix in 0usize..3,
        workers_ix in 0usize..3,
        lookahead in prop_oneof![Just(1u64), Just(30), Just(200)],
        initial in proptest::collection::vec((0u64..400, any::<u8>()), 1..24),
        reactions in proptest::collection::vec(
            proptest::collection::vec((any::<u8>(), any::<u64>()), 0..3),
            4,
        ),
        deadline in 400u64..1_200,
    ) {
        let shards = [1usize, 2, 8][shards_ix];
        let workers = [1usize, 2, 8][workers_ix];
        // Reactions stop once this many events exist: the tables can
        // have branching factor > 1, and an uncapped run would grow
        // exponentially until the deadline.
        const EVENT_BUDGET: u64 = 256;

        // Drives one queue to `deadline`: pops trigger deterministic
        // reactions (a pure function of the generated tables), so the
        // serial and epoch runs face identical workloads. Mode splits
        // reactions between arbitrary delays (breaches included) and
        // delays pinned to the horizon boundary ± 3 ms.
        let drive = |epoch_workers: Option<usize>| {
            let mut q: ShardedQueue<u64> = ShardedQueue::new(shards, lookahead);
            let mut payload = 0u64;
            for &(t, route) in &initial {
                q.schedule(SimTime(t), route as usize % shards, payload);
                payload += 1;
            }
            let mut out = Vec::new();
            let react = |q: &mut ShardedQueue<u64>, popped: u64, payload: &mut u64| {
                for &(mode, val) in &reactions[popped as usize % reactions.len()] {
                    if *payload >= EVENT_BUDGET {
                        return;
                    }
                    let delay = if mode % 2 == 0 {
                        val % 400
                    } else {
                        (lookahead + val % 7).saturating_sub(3)
                    };
                    let shard = (val as usize) % shards;
                    q.schedule_in(delay, shard, *payload);
                    *payload += 1;
                }
            };
            match epoch_workers {
                None => {
                    while let Some(t) = q.peek_time() {
                        if t.0 > deadline {
                            break;
                        }
                        let (at, p) = q.pop().unwrap();
                        out.push((at.0, p));
                        react(&mut q, p, &mut payload);
                    }
                }
                Some(w) => {
                    while let Some(t0) = q.peek_time() {
                        if t0.0 > deadline {
                            break;
                        }
                        let horizon = (deadline + 1).min(t0.0 + lookahead.max(1));
                        q.begin_epoch(SimTime(horizon), w);
                        while q.epoch_pending() {
                            let (at, p) = q.pop().unwrap();
                            out.push((at.0, p));
                            react(&mut q, p, &mut payload);
                        }
                        q.commit_epoch(w);
                    }
                }
            }
            // Drain what's left beyond the deadline: the full remaining
            // order must match as well.
            q.advance_to(SimTime(deadline));
            while let Some((at, p)) = q.pop() {
                out.push((at.0, p));
            }
            (out, q.stats())
        };

        let (serial_order, serial_stats) = drive(None);
        let (epoch_order, epoch_stats) = drive(Some(workers));
        prop_assert_eq!(serial_order, epoch_order);
        prop_assert_eq!(serial_stats, epoch_stats);
    }
}
