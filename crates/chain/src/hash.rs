//! A from-scratch SHA-256 implementation and the 256-bit hash newtype used
//! throughout the chain substrate.
//!
//! The paper's own simulator kept "a 64-bit MD5 hash linked chain of values"
//! per node as an internal error check (§V-B); we strengthen that to full
//! SHA-256 so that block identifiers, transaction identifiers and the
//! proof-of-work target comparison behave like Bitcoin's. Implemented here
//! directly (FIPS 180-4) to keep the workspace free of extra dependencies.

use std::fmt;

/// SHA-256 round constants (first 32 bits of the fractional parts of the
/// cube roots of the first 64 primes).
const K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

/// Initial hash state (fractional parts of the square roots of the first 8
/// primes).
const H0: [u32; 8] = [
    0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19,
];

/// An incremental SHA-256 hasher.
///
/// # Examples
///
/// ```
/// use bp_chain::hash::Sha256;
///
/// let mut h = Sha256::new();
/// h.update(b"abc");
/// let digest = h.finalize();
/// assert_eq!(
///     digest.to_hex(),
///     "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
/// );
/// ```
#[derive(Debug, Clone)]
pub struct Sha256 {
    state: [u32; 8],
    buffer: [u8; 64],
    buffered: usize,
    length_bits: u64,
}

impl Default for Sha256 {
    fn default() -> Self {
        Self::new()
    }
}

impl Sha256 {
    /// Creates a fresh hasher.
    pub fn new() -> Self {
        Self {
            state: H0,
            buffer: [0u8; 64],
            buffered: 0,
            length_bits: 0,
        }
    }

    /// Absorbs bytes.
    pub fn update(&mut self, mut data: &[u8]) {
        self.length_bits = self
            .length_bits
            .wrapping_add((data.len() as u64).wrapping_mul(8));
        if self.buffered > 0 {
            let take = (64 - self.buffered).min(data.len());
            self.buffer[self.buffered..self.buffered + take].copy_from_slice(&data[..take]);
            self.buffered += take;
            data = &data[take..];
            if self.buffered == 64 {
                let block = self.buffer;
                self.compress(&block);
                self.buffered = 0;
            }
        }
        while data.len() >= 64 {
            let (block, rest) = data.split_at(64);
            let mut b = [0u8; 64];
            b.copy_from_slice(block);
            self.compress(&b);
            data = rest;
        }
        if !data.is_empty() {
            self.buffer[..data.len()].copy_from_slice(data);
            self.buffered = data.len();
        }
    }

    /// Finishes and returns the digest, consuming the hasher.
    pub fn finalize(mut self) -> Hash256 {
        let length_bits = self.length_bits;
        // Padding: 0x80, zeros, 64-bit big-endian length.
        self.update_padding();
        if self.buffered > 56 {
            for b in &mut self.buffer[self.buffered..] {
                *b = 0;
            }
            let block = self.buffer;
            self.compress(&block);
            self.buffered = 0;
        }
        for b in &mut self.buffer[self.buffered..56] {
            *b = 0;
        }
        self.buffer[56..64].copy_from_slice(&length_bits.to_be_bytes());
        let block = self.buffer;
        self.compress(&block);

        let mut out = [0u8; 32];
        for (i, word) in self.state.iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&word.to_be_bytes());
        }
        Hash256(out)
    }

    /// Appends the 0x80 marker byte (part of finalize).
    fn update_padding(&mut self) {
        self.buffer[self.buffered] = 0x80;
        self.buffered += 1;
        if self.buffered == 64 {
            let block = self.buffer;
            self.compress(&block);
            self.buffered = 0;
        }
    }

    fn compress(&mut self, block: &[u8; 64]) {
        let mut w = [0u32; 64];
        for (i, chunk) in block.chunks_exact(4).enumerate() {
            w[i] = u32::from_be_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        }
        for i in 16..64 {
            let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
            let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
            w[i] = w[i - 16]
                .wrapping_add(s0)
                .wrapping_add(w[i - 7])
                .wrapping_add(s1);
        }

        let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = self.state;
        for i in 0..64 {
            let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
            let ch = (e & f) ^ ((!e) & g);
            let t1 = h
                .wrapping_add(s1)
                .wrapping_add(ch)
                .wrapping_add(K[i])
                .wrapping_add(w[i]);
            let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
            let maj = (a & b) ^ (a & c) ^ (b & c);
            let t2 = s0.wrapping_add(maj);
            h = g;
            g = f;
            f = e;
            e = d.wrapping_add(t1);
            d = c;
            c = b;
            b = a;
            a = t1.wrapping_add(t2);
        }
        self.state[0] = self.state[0].wrapping_add(a);
        self.state[1] = self.state[1].wrapping_add(b);
        self.state[2] = self.state[2].wrapping_add(c);
        self.state[3] = self.state[3].wrapping_add(d);
        self.state[4] = self.state[4].wrapping_add(e);
        self.state[5] = self.state[5].wrapping_add(f);
        self.state[6] = self.state[6].wrapping_add(g);
        self.state[7] = self.state[7].wrapping_add(h);
    }
}

/// A 256-bit digest value (block identifiers, transaction identifiers).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Hash256(pub [u8; 32]);

impl Hash256 {
    /// The all-zero hash, used as the previous-block pointer of the genesis
    /// block.
    pub const ZERO: Hash256 = Hash256([0u8; 32]);

    /// Hashes arbitrary bytes in one call.
    pub fn digest(data: &[u8]) -> Self {
        let mut h = Sha256::new();
        h.update(data);
        h.finalize()
    }

    /// Double-SHA-256 (Bitcoin's block/tx hash construction).
    pub fn double_digest(data: &[u8]) -> Self {
        let first = Self::digest(data);
        Self::digest(&first.0)
    }

    /// Lowercase hex representation.
    pub fn to_hex(&self) -> String {
        let mut s = String::with_capacity(64);
        for b in &self.0 {
            use std::fmt::Write as _;
            let _ = write!(s, "{b:02x}");
        }
        s
    }

    /// Parses a 64-character lowercase/uppercase hex string.
    ///
    /// # Errors
    ///
    /// Returns `ParseHashError` on wrong length or non-hex characters.
    pub fn from_hex(s: &str) -> Result<Self, ParseHashError> {
        if s.len() != 64 {
            return Err(ParseHashError);
        }
        let mut out = [0u8; 32];
        for (i, chunk) in s.as_bytes().chunks_exact(2).enumerate() {
            let hi = (chunk[0] as char).to_digit(16).ok_or(ParseHashError)?;
            let lo = (chunk[1] as char).to_digit(16).ok_or(ParseHashError)?;
            out[i] = ((hi << 4) | lo) as u8;
        }
        Ok(Hash256(out))
    }

    /// Leading 8 bytes as big-endian `u64` — a convenient short identifier.
    pub fn prefix_u64(&self) -> u64 {
        u64::from_be_bytes(self.0[..8].try_into().expect("slice is 8 bytes"))
    }

    /// Whether the digest, interpreted as a big-endian 256-bit integer, is
    /// below the target with `leading_zero_bits` zero bits — a toy
    /// proof-of-work check.
    pub fn meets_difficulty(&self, leading_zero_bits: u32) -> bool {
        let mut remaining = leading_zero_bits;
        for byte in self.0 {
            if remaining == 0 {
                return true;
            }
            if remaining >= 8 {
                if byte != 0 {
                    return false;
                }
                remaining -= 8;
            } else {
                return byte >> (8 - remaining) == 0;
            }
        }
        true
    }
}

impl fmt::Debug for Hash256 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Hash256({}…)", &self.to_hex()[..12])
    }
}

impl fmt::Display for Hash256 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_hex())
    }
}

impl AsRef<[u8]> for Hash256 {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl From<[u8; 32]> for Hash256 {
    fn from(bytes: [u8; 32]) -> Self {
        Hash256(bytes)
    }
}

/// Error parsing a [`Hash256`] from hex.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParseHashError;

impl fmt::Display for ParseHashError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("invalid 256-bit hash hex string")
    }
}

impl std::error::Error for ParseHashError {}

#[cfg(test)]
mod tests {
    use super::*;

    // FIPS 180-4 / NIST test vectors.
    #[test]
    fn nist_vector_empty() {
        assert_eq!(
            Hash256::digest(b"").to_hex(),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
    }

    #[test]
    fn nist_vector_abc() {
        assert_eq!(
            Hash256::digest(b"abc").to_hex(),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
    }

    #[test]
    fn nist_vector_448_bits() {
        assert_eq!(
            Hash256::digest(b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq").to_hex(),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
    }

    #[test]
    fn nist_vector_million_a() {
        let mut h = Sha256::new();
        let chunk = [b'a'; 1000];
        for _ in 0..1000 {
            h.update(&chunk);
        }
        assert_eq!(
            h.finalize().to_hex(),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
        );
    }

    #[test]
    fn incremental_matches_oneshot() {
        let data: Vec<u8> = (0u32..1000).flat_map(|x| x.to_le_bytes()).collect();
        let oneshot = Hash256::digest(&data);
        for split in [0usize, 1, 63, 64, 65, 100, 999] {
            let mut h = Sha256::new();
            h.update(&data[..split]);
            h.update(&data[split..]);
            assert_eq!(h.finalize(), oneshot, "split at {split}");
        }
    }

    #[test]
    fn double_digest_differs_from_single() {
        let single = Hash256::digest(b"block");
        let double = Hash256::double_digest(b"block");
        assert_ne!(single, double);
        assert_eq!(double, Hash256::digest(single.as_ref()));
    }

    #[test]
    fn hex_round_trip() {
        let h = Hash256::digest(b"round trip");
        assert_eq!(Hash256::from_hex(&h.to_hex()).unwrap(), h);
    }

    #[test]
    fn from_hex_rejects_bad_input() {
        assert_eq!(Hash256::from_hex("abc"), Err(ParseHashError));
        let bad = "zz".repeat(32);
        assert_eq!(Hash256::from_hex(&bad), Err(ParseHashError));
    }

    #[test]
    fn meets_difficulty_boundaries() {
        assert!(Hash256::ZERO.meets_difficulty(256));
        let mut one = [0u8; 32];
        one[0] = 0x01; // 7 leading zero bits
        let h = Hash256(one);
        assert!(h.meets_difficulty(7));
        assert!(!h.meets_difficulty(8));
        let all_ones = Hash256([0xFF; 32]);
        assert!(all_ones.meets_difficulty(0));
        assert!(!all_ones.meets_difficulty(1));
    }

    #[test]
    fn prefix_u64_is_big_endian() {
        let mut b = [0u8; 32];
        b[7] = 1;
        assert_eq!(Hash256(b).prefix_u64(), 1);
    }

    #[test]
    fn debug_and_display_are_nonempty() {
        let h = Hash256::digest(b"x");
        assert!(!format!("{h:?}").is_empty());
        assert_eq!(format!("{h}").len(), 64);
    }
}
