//! Difficulty retargeting.
//!
//! The paper's temporal attack exploits the fact that difficulty does not
//! react to a partition within a retarget window: "the isolated nodes
//! naturally assume that block delays are due to network issues. As such,
//! they do not know that new blocks are taking more time to calculate due
//! to the lower hash rate of the attacker" (§V-B). This module implements
//! Bitcoin's epoch-based retargeting so that the interaction can be
//! quantified: how long a partition must last before the difficulty rule
//! would expose it.

/// Bitcoin's retarget epoch length in blocks.
pub const RETARGET_EPOCH: u64 = 2016;

/// Bitcoin's clamp on a single retarget step.
pub const MAX_ADJUSTMENT: f64 = 4.0;

/// A relative difficulty value (1.0 = the difficulty at genesis).
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd)]
pub struct Difficulty(f64);

impl Difficulty {
    /// The genesis difficulty.
    pub const GENESIS: Difficulty = Difficulty(1.0);

    /// Creates a difficulty value.
    ///
    /// # Panics
    ///
    /// Panics unless the value is finite and positive.
    pub fn new(value: f64) -> Self {
        assert!(
            value.is_finite() && value > 0.0,
            "difficulty must be finite and positive"
        );
        Self(value)
    }

    /// The raw relative value.
    pub fn value(self) -> f64 {
        self.0
    }

    /// Bitcoin's retarget rule: scale by `target_timespan /
    /// actual_timespan`, clamped to a factor of [`MAX_ADJUSTMENT`] in
    /// either direction.
    ///
    /// # Panics
    ///
    /// Panics unless both timespans are finite and positive.
    pub fn retarget(self, actual_timespan_secs: f64, target_timespan_secs: f64) -> Difficulty {
        assert!(
            actual_timespan_secs.is_finite() && actual_timespan_secs > 0.0,
            "actual timespan must be positive"
        );
        assert!(
            target_timespan_secs.is_finite() && target_timespan_secs > 0.0,
            "target timespan must be positive"
        );
        let ratio = (target_timespan_secs / actual_timespan_secs)
            .clamp(1.0 / MAX_ADJUSTMENT, MAX_ADJUSTMENT);
        Difficulty(self.0 * ratio)
    }

    /// Expected seconds per block for a miner holding `hash_share` of the
    /// hash rate that set this difficulty at `block_interval_secs`.
    pub fn expected_interval_secs(self, hash_share: f64, block_interval_secs: f64) -> f64 {
        block_interval_secs * self.0 / hash_share.max(f64::MIN_POSITIVE)
    }
}

impl Default for Difficulty {
    fn default() -> Self {
        Self::GENESIS
    }
}

/// Simulates difficulty evolution for a chain that keeps `hash_share` of
/// the original hash rate (e.g. an isolated partition), over `epochs`
/// retarget periods with a `block_interval_secs` target.
///
/// Returns, per epoch, `(difficulty entering the epoch, seconds the epoch
/// took)`. The first epoch runs at the pre-partition difficulty — this is
/// the window in which the paper's temporal attack operates.
pub fn partition_difficulty_timeline(
    hash_share: f64,
    block_interval_secs: f64,
    epochs: usize,
) -> Vec<(Difficulty, f64)> {
    assert!(
        hash_share > 0.0 && hash_share <= 1.0,
        "hash share must lie in (0, 1]"
    );
    let target_timespan = RETARGET_EPOCH as f64 * block_interval_secs;
    let mut difficulty = Difficulty::GENESIS;
    let mut out = Vec::with_capacity(epochs);
    for _ in 0..epochs {
        let epoch_secs = RETARGET_EPOCH as f64
            * difficulty.expected_interval_secs(hash_share, block_interval_secs);
        out.push((difficulty, epoch_secs));
        difficulty = difficulty.retarget(epoch_secs, target_timespan);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stable_hash_rate_keeps_difficulty() {
        let d = Difficulty::GENESIS.retarget(2016.0 * 600.0, 2016.0 * 600.0);
        assert!((d.value() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn slow_epoch_lowers_difficulty() {
        // An epoch that took twice as long halves the difficulty.
        let d = Difficulty::GENESIS.retarget(2.0 * 2016.0 * 600.0, 2016.0 * 600.0);
        assert!((d.value() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn adjustment_is_clamped() {
        let up = Difficulty::GENESIS.retarget(1.0, 2016.0 * 600.0);
        assert!((up.value() - MAX_ADJUSTMENT).abs() < 1e-12);
        let down = Difficulty::GENESIS.retarget(1e12, 2016.0 * 600.0);
        assert!((down.value() - 1.0 / MAX_ADJUSTMENT).abs() < 1e-12);
    }

    #[test]
    fn attacker_interval_stretches_with_difficulty() {
        // A 30% attacker inherits the full-difficulty chain: 2,000 s per
        // block until a retarget.
        let secs = Difficulty::GENESIS.expected_interval_secs(0.30, 600.0);
        assert!((secs - 2000.0).abs() < 1e-9);
    }

    #[test]
    fn partition_timeline_converges_to_target() {
        // A partition keeping 30 % of the hash rate: the first epoch takes
        // 1/0.3 ≈ 3.3× the target (≈46.7 days at 600 s blocks!) — the
        // paper's attack lives entirely inside this window. After a few
        // retargets the epoch time returns to the two-week target.
        let timeline = partition_difficulty_timeline(0.30, 600.0, 5);
        let target = 2016.0 * 600.0;
        assert!((timeline[0].1 - target / 0.3).abs() < 1.0);
        // Monotonically approaching the target.
        for pair in timeline.windows(2) {
            assert!(pair[1].1 <= pair[0].1 + 1e-6);
        }
        let last = timeline.last().unwrap();
        assert!(
            (last.1 - target).abs() / target < 0.05,
            "epoch time {} far from target {target}",
            last.1
        );
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_difficulty_rejected() {
        let _ = Difficulty::new(0.0);
    }
}
