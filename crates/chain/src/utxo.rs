//! The unspent-transaction-output set.
//!
//! The paper notes that recovering from a partition-induced fork "will
//! require a major update on the set of all UTXOs at each node, and a
//! system-wide check on the transactions being reversed" (§V-B,
//! Implications). [`UtxoSet`] supports exactly that: applying a block
//! produces an [`UndoLog`] that can later reverse it during a reorg, and the
//! set reports which transactions a reorg invalidated.

use crate::block::Block;
use crate::tx::{Amount, OutPoint, Transaction, TxId, TxOut};
use std::collections::HashMap;
use std::fmt;

/// Error applying a block or transaction to the UTXO set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum UtxoError {
    /// An input refers to an outpoint that is not unspent (missing or
    /// already spent) — a double spend or an out-of-order apply.
    MissingInput {
        /// The offending outpoint.
        outpoint: OutPoint,
        /// The transaction that tried to spend it.
        spender: TxId,
    },
    /// Outputs exceed inputs on a non-coinbase transaction.
    ValueOverflow {
        /// The offending transaction.
        txid: TxId,
    },
    /// The block is structurally invalid (bad coinbase placement or
    /// commitment).
    MalformedBlock,
}

impl fmt::Display for UtxoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UtxoError::MissingInput { outpoint, spender } => write!(
                f,
                "input {outpoint} unavailable for tx {}",
                &spender.to_hex()[..12]
            ),
            UtxoError::ValueOverflow { txid } => {
                write!(f, "outputs exceed inputs in tx {}", &txid.to_hex()[..12])
            }
            UtxoError::MalformedBlock => f.write_str("malformed block"),
        }
    }
}

impl std::error::Error for UtxoError {}

/// Everything needed to reverse one applied block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UndoLog {
    /// Outpoints created by the block (to delete on undo).
    created: Vec<OutPoint>,
    /// Outpoints spent by the block, with their previous contents (to
    /// restore on undo).
    spent: Vec<(OutPoint, TxOut)>,
    /// Transaction ids of the block's non-coinbase transactions — these are
    /// the user transactions a reorg would reverse.
    reversed_txids: Vec<TxId>,
}

impl UndoLog {
    /// The user (non-coinbase) transactions this block confirmed; when the
    /// block is disconnected these are the transactions "reversed", the
    /// quantity the paper's double-spend implications count.
    pub fn reversed_txids(&self) -> &[TxId] {
        &self.reversed_txids
    }
}

/// An in-memory UTXO set with apply/undo semantics.
#[derive(Debug, Clone, Default)]
pub struct UtxoSet {
    entries: HashMap<OutPoint, TxOut>,
}

impl UtxoSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of unspent outputs.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Looks up an unspent output.
    pub fn get(&self, outpoint: &OutPoint) -> Option<&TxOut> {
        self.entries.get(outpoint)
    }

    /// Whether an outpoint is currently unspent.
    pub fn contains(&self, outpoint: &OutPoint) -> bool {
        self.entries.contains_key(outpoint)
    }

    /// Total value of all unspent outputs.
    pub fn total_value(&self) -> Amount {
        self.entries.values().map(|o| o.value).sum()
    }

    /// Checks whether `tx` could be applied right now (all inputs unspent,
    /// value balanced). Does not mutate the set.
    ///
    /// # Errors
    ///
    /// Returns the same errors as applying would.
    pub fn validate(&self, tx: &Transaction) -> Result<(), UtxoError> {
        if tx.is_coinbase() {
            return Ok(());
        }
        let txid = tx.txid();
        let mut in_value = Amount::ZERO;
        for input in &tx.inputs {
            match self.entries.get(input) {
                Some(out) => {
                    in_value = in_value
                        .checked_add(out.value)
                        .ok_or(UtxoError::ValueOverflow { txid })?;
                }
                None => {
                    return Err(UtxoError::MissingInput {
                        outpoint: *input,
                        spender: txid,
                    })
                }
            }
        }
        if tx.output_value() > in_value {
            return Err(UtxoError::ValueOverflow { txid });
        }
        Ok(())
    }

    /// Applies a whole block, returning the undo log.
    ///
    /// The block's transactions are applied in order, so intra-block chains
    /// (tx B spending tx A's output) are allowed. On error the set is left
    /// unchanged.
    ///
    /// # Errors
    ///
    /// Returns [`UtxoError::MalformedBlock`] for structurally bad blocks and
    /// input/value errors from individual transactions.
    pub fn apply_block(&mut self, block: &Block) -> Result<UndoLog, UtxoError> {
        if !block.is_well_formed() {
            return Err(UtxoError::MalformedBlock);
        }
        let mut undo = UndoLog {
            created: Vec::new(),
            spent: Vec::new(),
            reversed_txids: Vec::new(),
        };
        let result = (|| {
            for tx in &block.transactions {
                self.apply_tx(tx, &mut undo)?;
                if !tx.is_coinbase() {
                    undo.reversed_txids.push(tx.txid());
                }
            }
            Ok(())
        })();
        match result {
            Ok(()) => Ok(undo),
            Err(e) => {
                self.rollback(&undo);
                Err(e)
            }
        }
    }

    /// Reverses a previously applied block given its undo log.
    ///
    /// # Panics
    ///
    /// Panics if the undo log does not correspond to the current state
    /// (created outputs already gone) — that indicates out-of-order undo,
    /// which is a programming error in the caller.
    pub fn undo_block(&mut self, undo: &UndoLog) {
        for outpoint in &undo.created {
            let removed = self.entries.remove(outpoint);
            assert!(
                removed.is_some(),
                "undo out of order: created output {outpoint} missing"
            );
        }
        for (outpoint, out) in &undo.spent {
            self.entries.insert(*outpoint, *out);
        }
    }

    fn apply_tx(&mut self, tx: &Transaction, undo: &mut UndoLog) -> Result<(), UtxoError> {
        let txid = tx.txid();
        if !tx.is_coinbase() {
            let mut in_value = Amount::ZERO;
            // Validate all inputs before mutating, so a failed tx leaves no
            // partial spends behind.
            for input in &tx.inputs {
                let out = self.entries.get(input).ok_or(UtxoError::MissingInput {
                    outpoint: *input,
                    spender: txid,
                })?;
                in_value = in_value
                    .checked_add(out.value)
                    .ok_or(UtxoError::ValueOverflow { txid })?;
            }
            if tx.output_value() > in_value {
                return Err(UtxoError::ValueOverflow { txid });
            }
            for input in &tx.inputs {
                let out = self
                    .entries
                    .remove(input)
                    .expect("validated above; outpoint present");
                undo.spent.push((*input, out));
            }
        }
        for (vout, out) in tx.outputs.iter().enumerate() {
            let outpoint = OutPoint::new(txid, vout as u32);
            self.entries.insert(outpoint, *out);
            undo.created.push(outpoint);
        }
        Ok(())
    }

    /// Partial rollback used when a block fails mid-apply.
    fn rollback(&mut self, undo: &UndoLog) {
        for outpoint in &undo.created {
            self.entries.remove(outpoint);
        }
        for (outpoint, out) in &undo.spent {
            self.entries.insert(*outpoint, *out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::Height;
    use crate::tx::AccountId;

    fn genesis() -> Block {
        Block::genesis(AccountId(0), Amount::COIN)
    }

    fn spend(from: &Transaction, to: AccountId, value: Amount, nonce: u64) -> Transaction {
        Transaction::new(
            vec![from.outpoint(0)],
            vec![TxOut { value, owner: to }],
            nonce,
        )
    }

    #[test]
    fn apply_genesis_creates_coinbase_output() {
        let mut utxo = UtxoSet::new();
        let g = genesis();
        let undo = utxo.apply_block(&g).unwrap();
        assert_eq!(utxo.len(), 1);
        assert_eq!(utxo.total_value(), Amount::COIN);
        assert!(undo.reversed_txids().is_empty());
    }

    #[test]
    fn apply_then_undo_restores_state() {
        let mut utxo = UtxoSet::new();
        let g = genesis();
        let undo_g = utxo.apply_block(&g).unwrap();

        let tx = spend(g.coinbase(), AccountId(5), Amount(10), 1);
        let b1 = Block::build(
            g.id(),
            Height(1),
            600,
            AccountId(0),
            Amount::COIN,
            vec![tx.clone()],
            0,
        );
        let before = utxo.clone().entries;
        let undo_b1 = utxo.apply_block(&b1).unwrap();
        assert_eq!(undo_b1.reversed_txids(), &[tx.txid()]);
        assert!(!utxo.contains(&g.coinbase().outpoint(0)));

        utxo.undo_block(&undo_b1);
        assert_eq!(utxo.entries, before);

        utxo.undo_block(&undo_g);
        assert!(utxo.is_empty());
    }

    #[test]
    fn double_spend_within_block_rejected_atomically() {
        let mut utxo = UtxoSet::new();
        let g = genesis();
        utxo.apply_block(&g).unwrap();
        let before = utxo.entries.clone();

        let a = spend(g.coinbase(), AccountId(5), Amount(10), 1);
        let b = spend(g.coinbase(), AccountId(6), Amount(10), 2);
        let block = Block::build(
            g.id(),
            Height(1),
            600,
            AccountId(0),
            Amount::COIN,
            vec![a, b],
            0,
        );
        let err = utxo.apply_block(&block).unwrap_err();
        assert!(matches!(err, UtxoError::MissingInput { .. }));
        // Atomic: the first tx's effects were rolled back.
        assert_eq!(utxo.entries, before);
    }

    #[test]
    fn intra_block_chain_allowed() {
        let mut utxo = UtxoSet::new();
        let g = genesis();
        utxo.apply_block(&g).unwrap();

        let a = spend(g.coinbase(), AccountId(5), Amount(40), 1);
        let b = Transaction::new(
            vec![a.outpoint(0)],
            vec![TxOut {
                value: Amount(39),
                owner: AccountId(6),
            }],
            2,
        );
        let block = Block::build(
            g.id(),
            Height(1),
            600,
            AccountId(0),
            Amount::COIN,
            vec![a, b.clone()],
            0,
        );
        utxo.apply_block(&block).unwrap();
        assert!(utxo.contains(&b.outpoint(0)));
    }

    #[test]
    fn value_overflow_rejected() {
        let mut utxo = UtxoSet::new();
        let g = genesis();
        utxo.apply_block(&g).unwrap();
        let too_big = Transaction::new(
            vec![g.coinbase().outpoint(0)],
            vec![TxOut {
                value: Amount::COIN.checked_add(Amount(1)).unwrap(),
                owner: AccountId(5),
            }],
            1,
        );
        assert!(matches!(
            utxo.validate(&too_big),
            Err(UtxoError::ValueOverflow { .. })
        ));
    }

    #[test]
    fn validate_does_not_mutate() {
        let mut utxo = UtxoSet::new();
        let g = genesis();
        utxo.apply_block(&g).unwrap();
        let tx = spend(g.coinbase(), AccountId(5), Amount(10), 1);
        utxo.validate(&tx).unwrap();
        assert!(utxo.contains(&g.coinbase().outpoint(0)));
    }

    #[test]
    fn malformed_block_rejected() {
        let mut utxo = UtxoSet::new();
        let g = genesis();
        let mut bad = g.clone();
        bad.header.tx_commitment = crate::hash::Hash256::digest(b"tamper");
        assert_eq!(utxo.apply_block(&bad), Err(UtxoError::MalformedBlock));
    }
}
