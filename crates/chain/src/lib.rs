//! Blockchain substrate for the `btcpart` workspace.
//!
//! Implements the ledger machinery that the paper's partitioning attacks
//! act upon: hashing, blocks, transactions, the UTXO set, a block-tree
//! store with longest-chain fork choice and reorg accounting, and a
//! first-seen mempool.
//!
//! The model is deliberately scoped to what the attack analysis needs —
//! forks, reorg depth, reversed transactions, block timestamps (for
//! BlockAware) — while staying structurally faithful to Bitcoin: double
//! SHA-256 block ids, coinbase-first blocks, outpoint-based spends,
//! first-seen-wins relay.
//!
//! # Examples
//!
//! Building a two-block chain and watching a fork resolve:
//!
//! ```
//! use bp_chain::block::{Block, Height};
//! use bp_chain::store::{ChainStore, ConnectOutcome};
//! use bp_chain::tx::{AccountId, Amount};
//!
//! let genesis = Block::genesis(AccountId(0), Amount::COIN);
//! let mut store = ChainStore::new(genesis.clone());
//!
//! let b1 = Block::build(
//!     genesis.id(), Height(1), 600, AccountId(1), Amount::COIN, vec![], 0,
//! );
//! assert_eq!(store.connect(b1).unwrap(), ConnectOutcome::ExtendedActive);
//! assert_eq!(store.best_height(), Height(1));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod block;
pub mod difficulty;
pub mod hash;
pub mod mempool;
pub mod params;
pub mod store;
pub mod tx;
pub mod utxo;

pub use block::{Block, BlockHeader, BlockId, Height};
pub use difficulty::{partition_difficulty_timeline, Difficulty, RETARGET_EPOCH};
pub use hash::Hash256;
pub use mempool::{Mempool, MempoolError};
pub use params::ChainParams;
pub use store::{ChainStore, ConnectOutcome, ReorgInfo, StoreError};
pub use tx::{AccountId, Amount, OutPoint, Transaction, TxId, TxOut};
pub use utxo::{UndoLog, UtxoError, UtxoSet};
