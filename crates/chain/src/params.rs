//! Consensus parameters.

use crate::tx::Amount;

/// Consensus parameters of the simulated currency.
///
/// Defaults mirror Bitcoin as described in the paper: a 600-second target
/// block interval ("the block time in Bitcoin is fixed at 600 seconds",
/// §VI) and a 12.5 BTC block reward (the subsidy in effect in Feb 2018).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChainParams {
    /// Target seconds between blocks (Bitcoin: 600).
    pub block_interval_secs: u64,
    /// Coinbase subsidy per block.
    pub block_reward: Amount,
    /// Maximum non-coinbase transactions per block (a simulator-scale
    /// stand-in for the weight limit).
    pub max_block_txs: usize,
    /// The staleness threshold used by the BlockAware countermeasure: a
    /// node whose best block's timestamp is more than this many seconds old
    /// considers itself behind (`tc − tl > 600`, §VI).
    pub blockaware_threshold_secs: u64,
}

impl ChainParams {
    /// Bitcoin-like defaults.
    pub fn bitcoin() -> Self {
        Self {
            block_interval_secs: 600,
            block_reward: Amount(1_250_000_000), // 12.5 BTC in satoshis
            max_block_txs: 2_000,
            blockaware_threshold_secs: 600,
        }
    }

    /// A faster chain for quick tests (60 s blocks).
    pub fn fast_test() -> Self {
        Self {
            block_interval_secs: 60,
            block_reward: Amount::COIN,
            max_block_txs: 100,
            blockaware_threshold_secs: 60,
        }
    }
}

impl Default for ChainParams {
    fn default() -> Self {
        Self::bitcoin()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bitcoin_defaults_match_paper() {
        let p = ChainParams::bitcoin();
        assert_eq!(p.block_interval_secs, 600);
        assert_eq!(p.blockaware_threshold_secs, 600);
        assert_eq!(p.block_reward.sats(), 1_250_000_000);
    }

    #[test]
    fn default_is_bitcoin() {
        assert_eq!(ChainParams::default(), ChainParams::bitcoin());
    }
}
