//! Blocks and block headers.

use crate::hash::Hash256;
use crate::tx::{AccountId, Amount, Transaction};
use std::fmt;

/// A block identifier — the double-SHA-256 of the header.
pub type BlockId = Hash256;

/// A 0-based chain height.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Height(pub u64);

impl Height {
    /// Genesis height.
    pub const GENESIS: Height = Height(0);

    /// The next height.
    pub fn next(self) -> Height {
        Height(self.0 + 1)
    }

    /// Saturating distance to another height (how many blocks behind).
    pub fn behind(self, tip: Height) -> u64 {
        tip.0.saturating_sub(self.0)
    }
}

impl fmt::Display for Height {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// A block header: everything needed to identify a block and link chains.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BlockHeader {
    /// Identifier of the parent block ([`Hash256::ZERO`] for genesis).
    pub prev: BlockId,
    /// Merkle-style commitment to the transaction list.
    pub tx_commitment: Hash256,
    /// Height claimed by the miner (validated against the parent on
    /// connect).
    pub height: Height,
    /// Wall-clock timestamp in seconds since the simulation epoch. The
    /// BlockAware countermeasure (§VI) compares this against a node's local
    /// clock.
    pub timestamp_secs: u64,
    /// The mining entity that produced this block.
    pub miner: AccountId,
    /// Proof-of-work nonce (only meaningful when difficulty > 0).
    pub nonce: u64,
}

impl BlockHeader {
    /// Canonical byte serialization for hashing.
    pub fn serialize(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(32 + 32 + 8 * 4);
        out.extend(self.prev.as_ref());
        out.extend(self.tx_commitment.as_ref());
        out.extend(self.height.0.to_le_bytes());
        out.extend(self.timestamp_secs.to_le_bytes());
        out.extend(self.miner.0.to_le_bytes());
        out.extend(self.nonce.to_le_bytes());
        out
    }

    /// The block identifier.
    pub fn id(&self) -> BlockId {
        Hash256::double_digest(&self.serialize())
    }
}

/// A full block: header plus ordered transactions (coinbase first).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Block {
    /// The block header.
    pub header: BlockHeader,
    /// Transactions, with the coinbase at index 0.
    pub transactions: Vec<Transaction>,
}

impl Block {
    /// Assembles a block on top of `prev`, minting `reward` to `miner` and
    /// including `transactions` after the coinbase.
    pub fn build(
        prev: BlockId,
        height: Height,
        timestamp_secs: u64,
        miner: AccountId,
        reward: Amount,
        mut transactions: Vec<Transaction>,
        nonce: u64,
    ) -> Self {
        let coinbase = Transaction::coinbase(miner, reward, height.0);
        let mut txs = Vec::with_capacity(transactions.len() + 1);
        txs.push(coinbase);
        txs.append(&mut transactions);
        let tx_commitment = commit_transactions(&txs);
        Self {
            header: BlockHeader {
                prev,
                tx_commitment,
                height,
                timestamp_secs,
                miner,
                nonce,
            },
            transactions: txs,
        }
    }

    /// The genesis block for a given miner/reward pair at timestamp 0.
    pub fn genesis(miner: AccountId, reward: Amount) -> Self {
        Self::build(
            Hash256::ZERO,
            Height::GENESIS,
            0,
            miner,
            reward,
            Vec::new(),
            0,
        )
    }

    /// The block identifier.
    pub fn id(&self) -> BlockId {
        self.header.id()
    }

    /// The coinbase transaction.
    ///
    /// # Panics
    ///
    /// Panics if the block has no transactions (never produced by
    /// [`Block::build`]).
    pub fn coinbase(&self) -> &Transaction {
        self.transactions.first().expect("block has a coinbase")
    }

    /// Structural validity: commitment matches, exactly one coinbase, and
    /// it is first.
    pub fn is_well_formed(&self) -> bool {
        if self.transactions.is_empty() {
            return false;
        }
        if !self.transactions[0].is_coinbase() {
            return false;
        }
        if self.transactions[1..].iter().any(|t| t.is_coinbase()) {
            return false;
        }
        commit_transactions(&self.transactions) == self.header.tx_commitment
    }
}

/// A sequential commitment to a transaction list (a Merkle root stand-in —
/// order-sensitive and collision-resistant, which is all the simulator
/// needs).
pub fn commit_transactions(txs: &[Transaction]) -> Hash256 {
    let mut acc = Hash256::ZERO;
    for tx in txs {
        let mut buf = Vec::with_capacity(64);
        buf.extend(acc.as_ref());
        buf.extend(tx.txid().as_ref());
        acc = Hash256::digest(&buf);
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tx::TxOut;

    fn genesis() -> Block {
        Block::genesis(AccountId(0), Amount::COIN)
    }

    #[test]
    fn genesis_is_well_formed() {
        let g = genesis();
        assert!(g.is_well_formed());
        assert_eq!(g.header.height, Height::GENESIS);
        assert_eq!(g.header.prev, Hash256::ZERO);
        assert_eq!(g.coinbase().output_value(), Amount::COIN);
    }

    #[test]
    fn block_ids_differ_by_miner() {
        let a = Block::genesis(AccountId(0), Amount::COIN);
        let b = Block::genesis(AccountId(1), Amount::COIN);
        assert_ne!(a.id(), b.id());
    }

    #[test]
    fn commitment_is_order_sensitive() {
        let g = genesis();
        let spend = Transaction::new(
            vec![g.coinbase().outpoint(0)],
            vec![TxOut {
                value: Amount(10),
                owner: AccountId(2),
            }],
            0,
        );
        let spend2 = Transaction::new(
            vec![g.coinbase().outpoint(0)],
            vec![TxOut {
                value: Amount(10),
                owner: AccountId(3),
            }],
            1,
        );
        let ab = commit_transactions(&[spend.clone(), spend2.clone()]);
        let ba = commit_transactions(&[spend2, spend]);
        assert_ne!(ab, ba);
    }

    #[test]
    fn tampered_block_is_malformed() {
        let g = genesis();
        let mut tampered = g.clone();
        tampered
            .transactions
            .push(Transaction::coinbase(AccountId(9), Amount(1), 99));
        // Second coinbase AND stale commitment — both caught.
        assert!(!tampered.is_well_formed());

        let mut wrong_commit = g.clone();
        wrong_commit.header.tx_commitment = Hash256::digest(b"bogus");
        assert!(!wrong_commit.is_well_formed());
    }

    #[test]
    fn height_behind() {
        assert_eq!(Height(5).behind(Height(7)), 2);
        assert_eq!(Height(7).behind(Height(5)), 0);
        assert_eq!(Height::GENESIS.next(), Height(1));
    }

    #[test]
    fn header_id_changes_with_every_field() {
        let base = genesis().header;
        let mut variants = Vec::new();
        let mut v = base;
        v.nonce = 1;
        variants.push(v);
        let mut v = base;
        v.timestamp_secs = 1;
        variants.push(v);
        let mut v = base;
        v.height = Height(1);
        variants.push(v);
        let mut v = base;
        v.prev = Hash256::digest(b"other");
        variants.push(v);
        for variant in variants {
            assert_ne!(variant.id(), base.id());
        }
    }
}
