//! The block-tree store: fork choice, reorgs, and orphan management.
//!
//! Every simulated node owns a [`ChainStore`]. Forks — the central object of
//! the paper's temporal attack (§V-B) — arise naturally when two blocks
//! share a parent; the store tracks every branch, follows the longest
//! (most-work) chain, and reports each reorganisation through
//! [`ReorgInfo`], including the user transactions the reorg reversed (the
//! double-spend accounting of the paper's "Implications" paragraphs).

use crate::block::{Block, BlockId, Height};
use crate::tx::TxId;
use crate::utxo::{UndoLog, UtxoError, UtxoSet};
use std::collections::{HashMap, HashSet};
use std::fmt;

/// Error connecting a block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// The block fails structural or UTXO validation.
    Invalid(UtxoError),
    /// The block's claimed height does not equal parent height + 1.
    BadHeight {
        /// Height in the block header.
        claimed: Height,
        /// Expected height (parent + 1).
        expected: Height,
    },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Invalid(e) => write!(f, "invalid block: {e}"),
            StoreError::BadHeight { claimed, expected } => {
                write!(f, "bad height: claimed {claimed}, expected {expected}")
            }
        }
    }
}

impl std::error::Error for StoreError {}

impl From<UtxoError> for StoreError {
    fn from(e: UtxoError) -> Self {
        StoreError::Invalid(e)
    }
}

/// Details of a chain reorganisation.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ReorgInfo {
    /// Blocks disconnected from the old active chain (tip first).
    pub disconnected: Vec<BlockId>,
    /// Blocks connected on the new active chain (fork point first).
    pub connected: Vec<BlockId>,
    /// User transactions that lost confirmation — they were confirmed on
    /// the old branch and are absent from the new one.
    pub reversed_txids: Vec<TxId>,
}

impl ReorgInfo {
    /// Reorg depth — how many blocks were disconnected.
    pub fn depth(&self) -> usize {
        self.disconnected.len()
    }
}

/// Outcome of [`ChainStore::connect`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConnectOutcome {
    /// Block extended the active chain tip.
    ExtendedActive,
    /// Block joined a side branch without changing the active chain.
    SideChain,
    /// Block caused a reorganisation to a longer branch.
    Reorged(ReorgInfo),
    /// Block was already known.
    Duplicate,
    /// Parent unknown; block stashed until the parent arrives.
    Orphaned,
}

#[derive(Debug, Clone)]
struct StoredBlock {
    block: Block,
    /// Cumulative work; with uniform difficulty this equals height + 1.
    work: u64,
}

/// A block tree with longest-chain fork choice and full reorg support.
///
/// # Examples
///
/// ```
/// use bp_chain::block::Block;
/// use bp_chain::store::ChainStore;
/// use bp_chain::tx::{AccountId, Amount};
///
/// let genesis = Block::genesis(AccountId(0), Amount::COIN);
/// let store = ChainStore::new(genesis.clone());
/// assert_eq!(store.best_tip(), genesis.id());
/// ```
#[derive(Debug, Clone)]
pub struct ChainStore {
    blocks: HashMap<BlockId, StoredBlock>,
    children: HashMap<BlockId, Vec<BlockId>>,
    /// Blocks waiting for a missing parent, keyed by that parent.
    orphans: HashMap<BlockId, Vec<Block>>,
    /// Active chain, genesis first.
    active: Vec<BlockId>,
    /// Undo logs for the blocks on the active chain (same indexing).
    undo: Vec<UndoLog>,
    utxo: UtxoSet,
    genesis: BlockId,
    /// Total user transactions reversed by reorgs over this store's
    /// lifetime.
    total_reversed: u64,
    /// Deepest reorg observed.
    max_reorg_depth: usize,
}

impl ChainStore {
    /// Creates a store rooted at `genesis`.
    ///
    /// # Panics
    ///
    /// Panics if the genesis block is malformed or does not apply cleanly
    /// to an empty UTXO set.
    pub fn new(genesis: Block) -> Self {
        let id = genesis.id();
        let mut utxo = UtxoSet::new();
        let undo = utxo
            .apply_block(&genesis)
            .expect("genesis block must be valid");
        let mut blocks = HashMap::new();
        blocks.insert(
            id,
            StoredBlock {
                block: genesis,
                work: 1,
            },
        );
        Self {
            blocks,
            children: HashMap::new(),
            orphans: HashMap::new(),
            active: vec![id],
            undo: vec![undo],
            utxo,
            genesis: id,
            total_reversed: 0,
            max_reorg_depth: 0,
        }
    }

    /// The genesis block id.
    pub fn genesis_id(&self) -> BlockId {
        self.genesis
    }

    /// The active-chain tip id.
    pub fn best_tip(&self) -> BlockId {
        *self.active.last().expect("active chain is never empty")
    }

    /// The active-chain tip height.
    pub fn best_height(&self) -> Height {
        Height(self.active.len() as u64 - 1)
    }

    /// The UTXO set of the active chain.
    pub fn utxo(&self) -> &UtxoSet {
        &self.utxo
    }

    /// Whether a block id is known (active or side chain; orphans do not
    /// count).
    pub fn contains(&self, id: &BlockId) -> bool {
        self.blocks.contains_key(id)
    }

    /// Fetches a known block.
    pub fn block(&self, id: &BlockId) -> Option<&Block> {
        self.blocks.get(id).map(|s| &s.block)
    }

    /// The block id at `height` on the active chain.
    pub fn active_at(&self, height: Height) -> Option<BlockId> {
        self.active.get(height.0 as usize).copied()
    }

    /// Whether `id` lies on the active chain.
    pub fn is_active(&self, id: &BlockId) -> bool {
        self.blocks
            .get(id)
            .map(|s| self.active_at(s.block.header.height) == Some(*id))
            .unwrap_or(false)
    }

    /// Ids of the active chain, genesis first.
    pub fn active_chain(&self) -> &[BlockId] {
        &self.active
    }

    /// Number of known blocks (active + side chains).
    pub fn block_count(&self) -> usize {
        self.blocks.len()
    }

    /// Number of blocks parked as orphans.
    pub fn orphan_count(&self) -> usize {
        self.orphans.values().map(Vec::len).sum()
    }

    /// All current tips (blocks with no known children), the active tip
    /// included.
    pub fn tips(&self) -> Vec<BlockId> {
        self.blocks
            .keys()
            .filter(|id| !self.children.contains_key(*id))
            .copied()
            .collect()
    }

    /// Total user transactions reversed by reorgs so far.
    pub fn total_reversed_txs(&self) -> u64 {
        self.total_reversed
    }

    /// Deepest reorg observed so far. The paper reports natural Bitcoin
    /// forks up to depth 13.
    pub fn max_reorg_depth(&self) -> usize {
        self.max_reorg_depth
    }

    /// Connects a block, following the longest-chain rule. Orphans are
    /// parked and retried automatically when their parent arrives.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError`] when the block is structurally invalid,
    /// claims a wrong height, or (when it would become part of the active
    /// chain) fails UTXO validation.
    pub fn connect(&mut self, block: Block) -> Result<ConnectOutcome, StoreError> {
        let id = block.id();
        if self.blocks.contains_key(&id) {
            return Ok(ConnectOutcome::Duplicate);
        }
        if !block.is_well_formed() {
            return Err(StoreError::Invalid(UtxoError::MalformedBlock));
        }
        let parent_id = block.header.prev;
        let Some(parent) = self.blocks.get(&parent_id) else {
            self.orphans.entry(parent_id).or_default().push(block);
            return Ok(ConnectOutcome::Orphaned);
        };
        let expected = parent.block.header.height.next();
        if block.header.height != expected {
            return Err(StoreError::BadHeight {
                claimed: block.header.height,
                expected,
            });
        }
        let work = parent.work + 1;
        self.blocks.insert(id, StoredBlock { block, work });
        self.children.entry(parent_id).or_default().push(id);

        let outcome = self.maybe_advance(id, work)?;

        // The new block may unlock parked orphans.
        self.adopt_orphans_of(id)?;
        Ok(outcome)
    }

    /// How many blocks this store's tip is behind another height (0 when
    /// equal or ahead) — the node "block index" the crawler measures.
    pub fn lag_behind(&self, network_best: Height) -> u64 {
        self.best_height().behind(network_best)
    }

    /// Finds the most recent common ancestor of two known blocks.
    ///
    /// Returns `None` if either block is unknown.
    pub fn common_ancestor(&self, a: &BlockId, b: &BlockId) -> Option<BlockId> {
        let mut pa = self.path_to_genesis(a)?;
        let pb: HashSet<BlockId> = self.path_to_genesis(b)?.into_iter().collect();
        pa.retain(|id| pb.contains(id));
        pa.first().copied()
    }

    fn path_to_genesis(&self, from: &BlockId) -> Option<Vec<BlockId>> {
        let mut path = Vec::new();
        let mut cur = *from;
        loop {
            let stored = self.blocks.get(&cur)?;
            path.push(cur);
            if cur == self.genesis {
                return Some(path);
            }
            cur = stored.block.header.prev;
        }
    }

    /// Applies fork choice after inserting `id` with cumulative `work`.
    fn maybe_advance(&mut self, id: BlockId, work: u64) -> Result<ConnectOutcome, StoreError> {
        let best_work = self.active.len() as u64;
        if work <= best_work {
            return Ok(ConnectOutcome::SideChain);
        }
        // The new block has strictly more work. Fast path: direct extension.
        let new_block = &self.blocks[&id].block;
        if new_block.header.prev == self.best_tip() {
            let block = new_block.clone();
            match self.utxo.apply_block(&block) {
                Ok(undo) => {
                    self.active.push(id);
                    self.undo.push(undo);
                    Ok(ConnectOutcome::ExtendedActive)
                }
                Err(e) => {
                    self.remove_invalid(id);
                    Err(StoreError::Invalid(e))
                }
            }
        } else {
            self.reorg_to(id)
        }
    }

    /// Reorganises the active chain to end at `new_tip`.
    fn reorg_to(&mut self, new_tip: BlockId) -> Result<ConnectOutcome, StoreError> {
        // Build the new branch back to a block on the active chain.
        let mut branch = Vec::new();
        let mut cur = new_tip;
        while !self.is_active(&cur) {
            branch.push(cur);
            cur = self.blocks[&cur].block.header.prev;
        }
        branch.reverse();
        let fork_point = cur;
        let fork_height = self.blocks[&fork_point].block.header.height.0 as usize;

        // Disconnect everything above the fork point (tip first).
        let mut disconnected = Vec::new();
        while self.active.len() > fork_height + 1 {
            let tip = self.active.pop().expect("checked length");
            let undo = self.undo.pop().expect("undo parallels active");
            self.utxo.undo_block(&undo);
            disconnected.push(tip);
        }

        // Connect the new branch; on failure restore the old chain.
        let mut connected = Vec::new();
        let mut applied: Vec<(BlockId, UndoLog)> = Vec::new();
        let mut failure: Option<(BlockId, StoreError)> = None;
        for bid in &branch {
            let block = self.blocks[bid].block.clone();
            match self.utxo.apply_block(&block) {
                Ok(undo) => {
                    applied.push((*bid, undo));
                    connected.push(*bid);
                }
                Err(e) => {
                    failure = Some((*bid, StoreError::Invalid(e)));
                    break;
                }
            }
        }

        if let Some((bad_id, err)) = failure {
            // Roll back the partially connected branch...
            for (_, undo) in applied.iter().rev() {
                self.utxo.undo_block(undo);
            }
            // ...restore the original chain by reapplying it (which also
            // regenerates fresh undo logs)...
            for bid in disconnected.iter().rev() {
                let block = self.blocks[bid].block.clone();
                let undo = self
                    .utxo
                    .apply_block(&block)
                    .expect("previously active block must reapply");
                self.active.push(*bid);
                self.undo.push(undo);
            }
            // ...and drop the invalid block and its descendants.
            self.remove_invalid(bad_id);
            return Err(err);
        }

        for (bid, undo) in applied {
            self.active.push(bid);
            self.undo.push(undo);
            let _ = bid;
        }

        // Transactions confirmed on the old branch but not the new one are
        // reversed.
        let new_branch_txids: HashSet<TxId> = branch
            .iter()
            .flat_map(|bid| {
                self.blocks[bid]
                    .block
                    .transactions
                    .iter()
                    .filter(|t| !t.is_coinbase())
                    .map(|t| t.txid())
            })
            .collect();
        let mut reversed = Vec::new();
        for bid in &disconnected {
            for tx in &self.blocks[bid].block.transactions {
                if !tx.is_coinbase() && !new_branch_txids.contains(&tx.txid()) {
                    reversed.push(tx.txid());
                }
            }
        }
        self.total_reversed += reversed.len() as u64;
        self.max_reorg_depth = self.max_reorg_depth.max(disconnected.len());

        Ok(ConnectOutcome::Reorged(ReorgInfo {
            disconnected,
            connected,
            reversed_txids: reversed,
        }))
    }

    /// Removes an invalid block and recursively its descendants/orphans.
    fn remove_invalid(&mut self, id: BlockId) {
        if let Some(stored) = self.blocks.remove(&id) {
            let parent = stored.block.header.prev;
            if let Some(siblings) = self.children.get_mut(&parent) {
                siblings.retain(|c| *c != id);
                if siblings.is_empty() {
                    self.children.remove(&parent);
                }
            }
        }
        if let Some(kids) = self.children.remove(&id) {
            for kid in kids {
                self.remove_invalid(kid);
            }
        }
        self.orphans.remove(&id);
    }

    /// Retries orphans whose parent just arrived.
    fn adopt_orphans_of(&mut self, parent: BlockId) -> Result<(), StoreError> {
        if let Some(waiting) = self.orphans.remove(&parent) {
            for block in waiting {
                // Invalid orphans are dropped silently — the sender was
                // feeding us garbage, which must not poison the store.
                let _ = self.connect(block);
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tx::{AccountId, Amount, Transaction, TxOut};

    fn genesis() -> Block {
        Block::genesis(AccountId(0), Amount::COIN)
    }

    /// Builds `n` blocks on top of `prev`, returning them in order.
    fn extend(prev: &Block, n: usize, miner: u64, t0: u64) -> Vec<Block> {
        let mut blocks = Vec::new();
        let mut prev_id = prev.id();
        let mut height = prev.header.height;
        for i in 0..n {
            height = height.next();
            let b = Block::build(
                prev_id,
                height,
                t0 + (i as u64 + 1) * 600,
                AccountId(miner),
                Amount::COIN,
                vec![],
                i as u64,
            );
            prev_id = b.id();
            blocks.push(b);
        }
        blocks
    }

    #[test]
    fn extends_active_chain() {
        let g = genesis();
        let mut store = ChainStore::new(g.clone());
        for b in extend(&g, 3, 1, 0) {
            assert_eq!(store.connect(b).unwrap(), ConnectOutcome::ExtendedActive);
        }
        assert_eq!(store.best_height(), Height(3));
        assert_eq!(store.block_count(), 4);
    }

    #[test]
    fn duplicate_detected() {
        let g = genesis();
        let mut store = ChainStore::new(g.clone());
        let b = extend(&g, 1, 1, 0).remove(0);
        store.connect(b.clone()).unwrap();
        assert_eq!(store.connect(b).unwrap(), ConnectOutcome::Duplicate);
    }

    #[test]
    fn side_chain_then_reorg() {
        let g = genesis();
        let mut store = ChainStore::new(g.clone());
        // Main: g -> a1 -> a2
        let a = extend(&g, 2, 1, 0);
        for b in &a {
            store.connect(b.clone()).unwrap();
        }
        // Fork: g -> b1 (side), -> b2 (tie, still side), -> b3 (reorg!)
        let b = extend(&g, 3, 2, 10_000);
        assert_eq!(
            store.connect(b[0].clone()).unwrap(),
            ConnectOutcome::SideChain
        );
        assert_eq!(
            store.connect(b[1].clone()).unwrap(),
            ConnectOutcome::SideChain
        );
        let outcome = store.connect(b[2].clone()).unwrap();
        match outcome {
            ConnectOutcome::Reorged(info) => {
                assert_eq!(info.depth(), 2);
                assert_eq!(info.connected.len(), 3);
                assert_eq!(info.disconnected, vec![a[1].id(), a[0].id()]);
            }
            other => panic!("expected reorg, got {other:?}"),
        }
        assert_eq!(store.best_tip(), b[2].id());
        assert_eq!(store.best_height(), Height(3));
        assert_eq!(store.max_reorg_depth(), 2);
    }

    #[test]
    fn reorg_reports_reversed_transactions() {
        let g = genesis();
        let mut store = ChainStore::new(g.clone());
        // Branch A confirms a user transaction.
        let tx = Transaction::new(
            vec![g.coinbase().outpoint(0)],
            vec![TxOut {
                value: Amount(7),
                owner: AccountId(7),
            }],
            0,
        );
        let a1 = Block::build(
            g.id(),
            Height(1),
            600,
            AccountId(1),
            Amount::COIN,
            vec![tx.clone()],
            0,
        );
        store.connect(a1).unwrap();
        // Branch B (longer) does not include it.
        let b = extend(&g, 2, 2, 5_000);
        store.connect(b[0].clone()).unwrap();
        let outcome = store.connect(b[1].clone()).unwrap();
        match outcome {
            ConnectOutcome::Reorged(info) => {
                assert_eq!(info.reversed_txids, vec![tx.txid()]);
            }
            other => panic!("expected reorg, got {other:?}"),
        }
        assert_eq!(store.total_reversed_txs(), 1);
        // The reversed spend's input is unspent again.
        assert!(store.utxo().contains(&g.coinbase().outpoint(0)));
    }

    #[test]
    fn orphans_adopted_when_parent_arrives() {
        let g = genesis();
        let mut store = ChainStore::new(g.clone());
        let chain = extend(&g, 3, 1, 0);
        // Deliver children first.
        assert_eq!(
            store.connect(chain[2].clone()).unwrap(),
            ConnectOutcome::Orphaned
        );
        assert_eq!(
            store.connect(chain[1].clone()).unwrap(),
            ConnectOutcome::Orphaned
        );
        assert_eq!(store.orphan_count(), 2);
        // Parent arrives; whole chain connects.
        store.connect(chain[0].clone()).unwrap();
        assert_eq!(store.best_height(), Height(3));
        assert_eq!(store.orphan_count(), 0);
    }

    #[test]
    fn bad_height_rejected() {
        let g = genesis();
        let mut store = ChainStore::new(g.clone());
        let bad = Block::build(
            g.id(),
            Height(5),
            600,
            AccountId(1),
            Amount::COIN,
            vec![],
            0,
        );
        assert!(matches!(
            store.connect(bad),
            Err(StoreError::BadHeight { .. })
        ));
    }

    #[test]
    fn double_spend_block_rejected_on_extension() {
        let g = genesis();
        let mut store = ChainStore::new(g.clone());
        let out = TxOut {
            value: Amount(1),
            owner: AccountId(3),
        };
        let spend1 = Transaction::new(vec![g.coinbase().outpoint(0)], vec![out], 0);
        let spend2 = Transaction::new(vec![g.coinbase().outpoint(0)], vec![out], 1);
        let b1 = Block::build(
            g.id(),
            Height(1),
            600,
            AccountId(1),
            Amount::COIN,
            vec![spend1],
            0,
        );
        store.connect(b1.clone()).unwrap();
        let b2 = Block::build(
            b1.id(),
            Height(2),
            1200,
            AccountId(1),
            Amount::COIN,
            vec![spend2],
            0,
        );
        assert!(matches!(store.connect(b2), Err(StoreError::Invalid(_))));
        assert_eq!(store.best_height(), Height(1));
    }

    #[test]
    fn common_ancestor_of_forked_tips() {
        let g = genesis();
        let mut store = ChainStore::new(g.clone());
        let a = extend(&g, 2, 1, 0);
        let b = extend(&g, 1, 2, 9_000);
        for blk in a.iter().chain(b.iter()) {
            store.connect(blk.clone()).unwrap();
        }
        assert_eq!(store.common_ancestor(&a[1].id(), &b[0].id()), Some(g.id()));
        assert_eq!(
            store.common_ancestor(&a[1].id(), &a[0].id()),
            Some(a[0].id())
        );
        assert_eq!(store.tips().len(), 2);
    }

    #[test]
    fn lag_behind_measures_block_index() {
        let g = genesis();
        let mut store = ChainStore::new(g.clone());
        for b in extend(&g, 2, 1, 0) {
            store.connect(b).unwrap();
        }
        assert_eq!(store.lag_behind(Height(5)), 3);
        assert_eq!(store.lag_behind(Height(2)), 0);
        assert_eq!(store.lag_behind(Height(0)), 0);
    }
}
