//! The memory pool of unconfirmed transactions.
//!
//! Temporal partitioning splits the mempool view of the network: nodes on
//! the counterfeit branch accept transactions the main chain will reverse.
//! The mempool enforces the two rules that matter for that analysis:
//! inputs must be unspent against the node's current UTXO view, and no two
//! pooled transactions may spend the same outpoint (first-seen wins, as in
//! Bitcoin Core).

use crate::tx::{OutPoint, Transaction, TxId};
use crate::utxo::{UtxoError, UtxoSet};
use std::collections::HashMap;
use std::fmt;

/// Error admitting a transaction to the mempool.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MempoolError {
    /// Already pooled.
    Duplicate,
    /// Conflicts with a pooled transaction (attempted double spend).
    Conflict {
        /// The already-pooled transaction that claims a shared input.
        existing: TxId,
    },
    /// Coinbase transactions cannot be relayed.
    Coinbase,
    /// Failed UTXO validation.
    Utxo(UtxoError),
}

impl fmt::Display for MempoolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MempoolError::Duplicate => f.write_str("transaction already in mempool"),
            MempoolError::Conflict { existing } => {
                write!(f, "conflicts with pooled tx {}", &existing.to_hex()[..12])
            }
            MempoolError::Coinbase => f.write_str("coinbase transactions are not relayable"),
            MempoolError::Utxo(e) => write!(f, "utxo validation failed: {e}"),
        }
    }
}

impl std::error::Error for MempoolError {}

impl From<UtxoError> for MempoolError {
    fn from(e: UtxoError) -> Self {
        MempoolError::Utxo(e)
    }
}

/// A first-seen-wins mempool.
#[derive(Debug, Clone, Default)]
pub struct Mempool {
    txs: HashMap<TxId, Transaction>,
    /// Which pooled transaction spends each outpoint.
    spends: HashMap<OutPoint, TxId>,
}

impl Mempool {
    /// Creates an empty mempool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of pooled transactions.
    pub fn len(&self) -> usize {
        self.txs.len()
    }

    /// Whether the pool is empty.
    pub fn is_empty(&self) -> bool {
        self.txs.is_empty()
    }

    /// Whether a transaction id is pooled.
    pub fn contains(&self, txid: &TxId) -> bool {
        self.txs.contains_key(txid)
    }

    /// Fetches a pooled transaction.
    pub fn get(&self, txid: &TxId) -> Option<&Transaction> {
        self.txs.get(txid)
    }

    /// Attempts to admit `tx`, validating against `utxo`.
    ///
    /// # Errors
    ///
    /// See [`MempoolError`]. First-seen wins: an incoming double spend is
    /// rejected, never replaces the resident transaction.
    pub fn insert(&mut self, tx: Transaction, utxo: &UtxoSet) -> Result<TxId, MempoolError> {
        if tx.is_coinbase() {
            return Err(MempoolError::Coinbase);
        }
        let txid = tx.txid();
        if self.txs.contains_key(&txid) {
            return Err(MempoolError::Duplicate);
        }
        for input in &tx.inputs {
            if let Some(existing) = self.spends.get(input) {
                return Err(MempoolError::Conflict {
                    existing: *existing,
                });
            }
        }
        utxo.validate(&tx)?;
        for input in &tx.inputs {
            self.spends.insert(*input, txid);
        }
        self.txs.insert(txid, tx);
        Ok(txid)
    }

    /// Removes a transaction (e.g. when it confirms in a block).
    ///
    /// Returns the removed transaction, if present.
    pub fn remove(&mut self, txid: &TxId) -> Option<Transaction> {
        let tx = self.txs.remove(txid)?;
        for input in &tx.inputs {
            self.spends.remove(input);
        }
        Some(tx)
    }

    /// Removes every pooled transaction that conflicts with `confirmed`
    /// (spends one of its inputs) — called when a block connects.
    ///
    /// Returns the ids of evicted conflicting transactions.
    pub fn evict_conflicts(&mut self, confirmed: &Transaction) -> Vec<TxId> {
        let mut evicted = Vec::new();
        for input in &confirmed.inputs {
            if let Some(txid) = self.spends.get(input).copied() {
                if self.txs.contains_key(&txid) && txid != confirmed.txid() {
                    self.remove(&txid);
                    evicted.push(txid);
                }
            }
        }
        evicted
    }

    /// Selects up to `max` transactions for block inclusion that are valid
    /// against `utxo` right now (insertion-order agnostic, conflict-free by
    /// construction).
    pub fn select_for_block(&self, utxo: &UtxoSet, max: usize) -> Vec<Transaction> {
        let mut selected = Vec::new();
        for tx in self.txs.values() {
            if selected.len() >= max {
                break;
            }
            if utxo.validate(tx).is_ok() {
                selected.push(tx.clone());
            }
        }
        selected
    }

    /// Iterates over pooled transactions in arbitrary order.
    pub fn iter(&self) -> impl Iterator<Item = &Transaction> {
        self.txs.values()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::Block;
    use crate::tx::{AccountId, Amount, TxOut};

    fn setup() -> (UtxoSet, Block) {
        let g = Block::genesis(AccountId(0), Amount::COIN);
        let mut utxo = UtxoSet::new();
        utxo.apply_block(&g).unwrap();
        (utxo, g)
    }

    fn spend(g: &Block, owner: u64, nonce: u64) -> Transaction {
        Transaction::new(
            vec![g.coinbase().outpoint(0)],
            vec![TxOut {
                value: Amount(10),
                owner: AccountId(owner),
            }],
            nonce,
        )
    }

    #[test]
    fn insert_and_get() {
        let (utxo, g) = setup();
        let mut pool = Mempool::new();
        let tx = spend(&g, 1, 0);
        let txid = pool.insert(tx.clone(), &utxo).unwrap();
        assert!(pool.contains(&txid));
        assert_eq!(pool.get(&txid), Some(&tx));
        assert_eq!(pool.len(), 1);
    }

    #[test]
    fn duplicate_rejected() {
        let (utxo, g) = setup();
        let mut pool = Mempool::new();
        let tx = spend(&g, 1, 0);
        pool.insert(tx.clone(), &utxo).unwrap();
        assert_eq!(pool.insert(tx, &utxo), Err(MempoolError::Duplicate));
    }

    #[test]
    fn first_seen_wins_on_double_spend() {
        let (utxo, g) = setup();
        let mut pool = Mempool::new();
        let first = spend(&g, 1, 0);
        let second = spend(&g, 2, 1);
        let first_id = pool.insert(first, &utxo).unwrap();
        let err = pool.insert(second, &utxo).unwrap_err();
        assert_eq!(err, MempoolError::Conflict { existing: first_id });
        assert_eq!(pool.len(), 1);
    }

    #[test]
    fn coinbase_rejected() {
        let (utxo, _) = setup();
        let mut pool = Mempool::new();
        let cb = Transaction::coinbase(AccountId(1), Amount(50), 0);
        assert_eq!(pool.insert(cb, &utxo), Err(MempoolError::Coinbase));
    }

    #[test]
    fn unknown_input_rejected() {
        let (utxo, _) = setup();
        let mut pool = Mempool::new();
        let phantom = Transaction::coinbase(AccountId(9), Amount(1), 77);
        let tx = Transaction::new(
            vec![phantom.outpoint(0)],
            vec![TxOut {
                value: Amount(1),
                owner: AccountId(1),
            }],
            0,
        );
        assert!(matches!(
            pool.insert(tx, &utxo),
            Err(MempoolError::Utxo(UtxoError::MissingInput { .. }))
        ));
    }

    #[test]
    fn remove_clears_spend_index() {
        let (utxo, g) = setup();
        let mut pool = Mempool::new();
        let first = spend(&g, 1, 0);
        let id = pool.insert(first, &utxo).unwrap();
        pool.remove(&id).unwrap();
        assert!(pool.is_empty());
        // The outpoint is free again.
        let second = spend(&g, 2, 1);
        pool.insert(second, &utxo).unwrap();
    }

    #[test]
    fn evict_conflicts_on_confirmation() {
        let (utxo, g) = setup();
        let mut pool = Mempool::new();
        let pooled = spend(&g, 1, 0);
        let pooled_id = pool.insert(pooled, &utxo).unwrap();
        // A different spend of the same output confirms in a block.
        let confirmed = spend(&g, 2, 1);
        let evicted = pool.evict_conflicts(&confirmed);
        assert_eq!(evicted, vec![pooled_id]);
        assert!(pool.is_empty());
    }

    #[test]
    fn select_for_block_respects_max_and_validity() {
        let (mut utxo, g) = setup();
        let mut pool = Mempool::new();
        let tx = spend(&g, 1, 0);
        pool.insert(tx.clone(), &utxo).unwrap();
        assert_eq!(pool.select_for_block(&utxo, 10).len(), 1);
        assert_eq!(pool.select_for_block(&utxo, 0).len(), 0);
        // Confirm a conflicting spend directly in the UTXO set; the pooled
        // tx is no longer valid and must not be selected.
        let confirmed = spend(&g, 2, 1);
        let block = Block::build(
            g.id(),
            crate::block::Height(1),
            600,
            AccountId(0),
            Amount::COIN,
            vec![confirmed],
            0,
        );
        utxo.apply_block(&block).unwrap();
        assert!(pool.select_for_block(&utxo, 10).is_empty());
    }
}
