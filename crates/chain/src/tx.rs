//! Transactions, outpoints and amounts.
//!
//! The partitioning attacks the paper studies matter because partitioned
//! nodes accept transactions that the main chain later reverses
//! (double-spending, §V-A and §V-B "Implications"). The transaction model
//! here is deliberately simple — value transfer between opaque account keys
//! with explicit input outpoints — but rich enough that the UTXO set, the
//! mempool conflict rules and double-spend bookkeeping all behave like
//! Bitcoin's.

use crate::hash::Hash256;
use std::fmt;

/// An amount in satoshis (the paper values each full node at o(10^7) USD;
/// we only need relative accounting, so plain integer satoshis suffice).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Amount(pub u64);

impl Amount {
    /// Zero satoshis.
    pub const ZERO: Amount = Amount(0);

    /// One whole coin (10^8 satoshis).
    pub const COIN: Amount = Amount(100_000_000);

    /// Checked addition.
    pub fn checked_add(self, other: Amount) -> Option<Amount> {
        self.0.checked_add(other.0).map(Amount)
    }

    /// Checked subtraction.
    pub fn checked_sub(self, other: Amount) -> Option<Amount> {
        self.0.checked_sub(other.0).map(Amount)
    }

    /// The raw satoshi count.
    pub fn sats(self) -> u64 {
        self.0
    }
}

impl fmt::Display for Amount {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}.{:08} BTC",
            self.0 / 100_000_000,
            self.0 % 100_000_000
        )
    }
}

impl std::iter::Sum for Amount {
    fn sum<I: Iterator<Item = Amount>>(iter: I) -> Amount {
        iter.fold(Amount::ZERO, |acc, a| {
            acc.checked_add(a).expect("amount sum overflow")
        })
    }
}

/// An opaque account/script identifier (stands in for a scriptPubKey).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct AccountId(pub u64);

impl fmt::Display for AccountId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "acct{}", self.0)
    }
}

/// A transaction identifier (double-SHA-256 of the serialized body).
pub type TxId = Hash256;

/// A reference to a specific output of a previous transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct OutPoint {
    /// The funding transaction.
    pub txid: TxId,
    /// The output index inside that transaction.
    pub vout: u32,
}

impl OutPoint {
    /// Creates an outpoint.
    pub fn new(txid: TxId, vout: u32) -> Self {
        Self { txid, vout }
    }
}

impl fmt::Display for OutPoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", &self.txid.to_hex()[..12], self.vout)
    }
}

/// A transaction output: an amount locked to an account.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TxOut {
    /// The value carried by this output.
    pub value: Amount,
    /// The account that may spend this output.
    pub owner: AccountId,
}

/// A transaction: a set of input outpoints consumed and outputs created.
///
/// A transaction with no inputs is a *coinbase* and may only appear as the
/// first transaction of a block.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Transaction {
    /// Spent outpoints (empty for coinbase transactions).
    pub inputs: Vec<OutPoint>,
    /// Created outputs.
    pub outputs: Vec<TxOut>,
    /// Distinguishes otherwise-identical transactions (e.g. two coinbases
    /// paying the same miner the same amount at different heights).
    pub nonce: u64,
}

impl Transaction {
    /// Creates a regular (non-coinbase) transaction.
    ///
    /// # Panics
    ///
    /// Panics if `inputs` or `outputs` is empty — a spend must consume and
    /// create at least one output.
    pub fn new(inputs: Vec<OutPoint>, outputs: Vec<TxOut>, nonce: u64) -> Self {
        assert!(!inputs.is_empty(), "non-coinbase tx requires inputs");
        assert!(!outputs.is_empty(), "tx requires outputs");
        Self {
            inputs,
            outputs,
            nonce,
        }
    }

    /// Creates a coinbase transaction minting `reward` to `miner`.
    pub fn coinbase(miner: AccountId, reward: Amount, height_nonce: u64) -> Self {
        Self {
            inputs: Vec::new(),
            outputs: vec![TxOut {
                value: reward,
                owner: miner,
            }],
            nonce: height_nonce,
        }
    }

    /// Whether this transaction mints new coins.
    pub fn is_coinbase(&self) -> bool {
        self.inputs.is_empty()
    }

    /// Total value of the outputs.
    pub fn output_value(&self) -> Amount {
        self.outputs.iter().map(|o| o.value).sum()
    }

    /// Canonical byte serialization (deterministic; used for hashing).
    pub fn serialize(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(16 + self.inputs.len() * 36 + self.outputs.len() * 16);
        out.extend((self.inputs.len() as u32).to_le_bytes());
        for i in &self.inputs {
            out.extend(i.txid.as_ref());
            out.extend(i.vout.to_le_bytes());
        }
        out.extend((self.outputs.len() as u32).to_le_bytes());
        for o in &self.outputs {
            out.extend(o.value.0.to_le_bytes());
            out.extend(o.owner.0.to_le_bytes());
        }
        out.extend(self.nonce.to_le_bytes());
        out
    }

    /// The transaction identifier (double-SHA-256 of the serialization).
    pub fn txid(&self) -> TxId {
        Hash256::double_digest(&self.serialize())
    }

    /// The outpoint of output `vout` of this transaction.
    ///
    /// # Panics
    ///
    /// Panics if `vout` is out of range.
    pub fn outpoint(&self, vout: u32) -> OutPoint {
        assert!(
            (vout as usize) < self.outputs.len(),
            "vout {vout} out of range"
        );
        OutPoint::new(self.txid(), vout)
    }

    /// Whether two transactions conflict (spend at least one common
    /// outpoint) — the primitive behind double-spend detection.
    pub fn conflicts_with(&self, other: &Transaction) -> bool {
        self.inputs.iter().any(|i| other.inputs.contains(i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn funding() -> Transaction {
        Transaction::coinbase(AccountId(1), Amount::COIN, 0)
    }

    #[test]
    fn txid_is_deterministic_and_nonce_sensitive() {
        let a = funding();
        let b = funding();
        assert_eq!(a.txid(), b.txid());
        let c = Transaction::coinbase(AccountId(1), Amount::COIN, 1);
        assert_ne!(a.txid(), c.txid());
    }

    #[test]
    fn coinbase_detection() {
        assert!(funding().is_coinbase());
        let spend = Transaction::new(
            vec![funding().outpoint(0)],
            vec![TxOut {
                value: Amount(1),
                owner: AccountId(2),
            }],
            0,
        );
        assert!(!spend.is_coinbase());
    }

    #[test]
    fn conflict_detection() {
        let f = funding();
        let out = TxOut {
            value: Amount(5),
            owner: AccountId(9),
        };
        let a = Transaction::new(vec![f.outpoint(0)], vec![out], 1);
        let b = Transaction::new(vec![f.outpoint(0)], vec![out], 2);
        assert!(a.conflicts_with(&b));
        assert_ne!(a.txid(), b.txid());

        let other_fund = Transaction::coinbase(AccountId(3), Amount::COIN, 7);
        let c = Transaction::new(vec![other_fund.outpoint(0)], vec![out], 3);
        assert!(!a.conflicts_with(&c));
    }

    #[test]
    fn amount_arithmetic() {
        assert_eq!(Amount(2).checked_add(Amount(3)), Some(Amount(5)));
        assert_eq!(Amount(2).checked_sub(Amount(3)), None);
        assert_eq!(Amount(u64::MAX).checked_add(Amount(1)), None);
        let total: Amount = [Amount(1), Amount(2), Amount(3)].into_iter().sum();
        assert_eq!(total, Amount(6));
    }

    #[test]
    fn amount_display() {
        assert_eq!(format!("{}", Amount::COIN), "1.00000000 BTC");
        assert_eq!(format!("{}", Amount(1)), "0.00000001 BTC");
    }

    #[test]
    #[should_panic(expected = "requires inputs")]
    fn regular_tx_needs_inputs() {
        let _ = Transaction::new(
            vec![],
            vec![TxOut {
                value: Amount(1),
                owner: AccountId(1),
            }],
            0,
        );
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn outpoint_bounds_checked() {
        let _ = funding().outpoint(5);
    }

    #[test]
    fn output_value_sums() {
        let tx = Transaction::coinbase(AccountId(1), Amount(50), 0);
        assert_eq!(tx.output_value(), Amount(50));
    }
}
