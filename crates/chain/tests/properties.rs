//! Property-based tests for the blockchain substrate: hashing, UTXO
//! apply/undo, fork choice and mempool invariants under generated inputs.

use bp_chain::block::{Block, Height};
use bp_chain::hash::{Hash256, Sha256};
use bp_chain::mempool::Mempool;
use bp_chain::store::{ChainStore, ConnectOutcome};
use bp_chain::tx::{AccountId, Amount, Transaction, TxOut};
use bp_chain::utxo::UtxoSet;
use proptest::prelude::*;

proptest! {
    /// Incremental hashing over arbitrary chunk splits equals one-shot.
    #[test]
    fn sha256_incremental_equals_oneshot(
        data in proptest::collection::vec(any::<u8>(), 0..2048),
        splits in proptest::collection::vec(any::<prop::sample::Index>(), 0..5),
    ) {
        let oneshot = Hash256::digest(&data);
        let mut cuts: Vec<usize> = splits.iter().map(|i| i.index(data.len() + 1)).collect();
        cuts.sort_unstable();
        let mut h = Sha256::new();
        let mut prev = 0usize;
        for cut in cuts {
            h.update(&data[prev..cut]);
            prev = cut;
        }
        h.update(&data[prev..]);
        prop_assert_eq!(h.finalize(), oneshot);
    }

    /// Hex round-trips for arbitrary digests.
    #[test]
    fn hash_hex_round_trip(bytes in any::<[u8; 32]>()) {
        let h = Hash256(bytes);
        prop_assert_eq!(Hash256::from_hex(&h.to_hex()).unwrap(), h);
    }

    /// Distinct inputs (very probably) hash differently; same input always
    /// hashes identically.
    #[test]
    fn hashing_is_deterministic(a in proptest::collection::vec(any::<u8>(), 0..256)) {
        prop_assert_eq!(Hash256::digest(&a), Hash256::digest(&a));
        let mut b = a.clone();
        b.push(0x42);
        prop_assert_ne!(Hash256::digest(&a), Hash256::digest(&b));
    }
}

/// Builds a random fan-out of `n` outputs from a genesis coin.
fn fanout(genesis: &Block, n: usize) -> Transaction {
    let outputs: Vec<TxOut> = (0..n)
        .map(|i| TxOut {
            value: Amount(10),
            owner: AccountId(i as u64 + 100),
        })
        .collect();
    Transaction::new(vec![genesis.coinbase().outpoint(0)], outputs, 0)
}

proptest! {
    /// Applying any sequence of valid blocks and then undoing them in
    /// reverse restores the exact UTXO set.
    #[test]
    fn utxo_apply_undo_round_trip(
        spend_counts in proptest::collection::vec(1usize..6, 1..6),
    ) {
        let genesis = Block::genesis(AccountId(0), Amount::COIN);
        let mut utxo = UtxoSet::new();
        let genesis_undo = utxo.apply_block(&genesis).unwrap();
        let fan = fanout(&genesis, 32);
        let fan_block = Block::build(
            genesis.id(), Height(1), 600, AccountId(0), Amount::COIN,
            vec![fan.clone()], 0,
        );
        let fan_undo = utxo.apply_block(&fan_block).unwrap();
        let baseline = utxo.clone();

        // Apply a run of blocks spending consecutive fan outputs.
        let mut undos = Vec::new();
        let mut prev = fan_block.id();
        let mut height = Height(1);
        let mut next_out = 0u32;
        for (i, &count) in spend_counts.iter().enumerate() {
            height = height.next();
            let txs: Vec<Transaction> = (0..count)
                .map(|k| {
                    let vout = next_out + k as u32;
                    Transaction::new(
                        vec![fan.outpoint(vout)],
                        vec![TxOut { value: Amount(9), owner: AccountId(7) }],
                        vout as u64,
                    )
                })
                .collect();
            next_out += count as u32;
            let block = Block::build(
                prev, height, (i as u64 + 2) * 600, AccountId(0), Amount::COIN, txs, 0,
            );
            prev = block.id();
            undos.push(utxo.apply_block(&block).unwrap());
        }
        prop_assert!(next_out <= 32);

        for undo in undos.iter().rev() {
            utxo.undo_block(undo);
        }
        prop_assert_eq!(utxo.len(), baseline.len());
        prop_assert_eq!(utxo.total_value(), baseline.total_value());
        // Total supply conservation down to genesis.
        utxo.undo_block(&fan_undo);
        utxo.undo_block(&genesis_undo);
        prop_assert!(utxo.is_empty());
    }

    /// The chain store always follows a longest chain: after connecting an
    /// arbitrary interleaving of two competing branches, the active height
    /// equals the longest branch's height.
    #[test]
    fn fork_choice_follows_longest(
        len_a in 1usize..8,
        len_b in 1usize..8,
        seed in any::<u64>(),
    ) {
        let genesis = Block::genesis(AccountId(0), Amount::COIN);
        let mut store = ChainStore::new(genesis.clone());

        let build_branch = |miner: u64, len: usize| -> Vec<Block> {
            let mut blocks = Vec::new();
            let mut prev = genesis.id();
            for i in 0..len {
                let b = Block::build(
                    prev, Height(i as u64 + 1), (i as u64 + 1) * 600,
                    AccountId(miner), Amount::COIN, vec![], i as u64,
                );
                prev = b.id();
                blocks.push(b);
            }
            blocks
        };
        let branch_a = build_branch(1, len_a);
        let branch_b = build_branch(2, len_b);

        // Deterministic interleaving from the seed.
        let mut order: Vec<Block> = Vec::new();
        let (mut ia, mut ib) = (0usize, 0usize);
        let mut s = seed;
        while ia < len_a || ib < len_b {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
            let take_a = ib >= len_b || (ia < len_a && s.is_multiple_of(2));
            if take_a {
                order.push(branch_a[ia].clone());
                ia += 1;
            } else {
                order.push(branch_b[ib].clone());
                ib += 1;
            }
        }
        for block in order {
            // Orphans are fine (branches delivered in order here, so none).
            store.connect(block).unwrap();
        }
        prop_assert_eq!(store.best_height().0 as usize, len_a.max(len_b));
        // The tip belongs to (one of) the longest branches.
        let tip = store.best_tip();
        let in_a = branch_a.last().map(|b| b.id()) == Some(tip);
        let in_b = branch_b.last().map(|b| b.id()) == Some(tip);
        prop_assert!(in_a || in_b);
    }

    /// Mempool invariant: no two pooled transactions ever spend the same
    /// outpoint, regardless of the insertion sequence.
    #[test]
    fn mempool_never_holds_conflicts(
        picks in proptest::collection::vec((0u32..16, 0u64..1000), 1..40),
    ) {
        let genesis = Block::genesis(AccountId(0), Amount::COIN);
        let mut utxo = UtxoSet::new();
        utxo.apply_block(&genesis).unwrap();
        let fan = fanout(&genesis, 16);
        let fan_block = Block::build(
            genesis.id(), Height(1), 600, AccountId(0), Amount::COIN,
            vec![fan.clone()], 0,
        );
        utxo.apply_block(&fan_block).unwrap();

        let mut pool = Mempool::new();
        for (vout, nonce) in picks {
            let tx = Transaction::new(
                vec![fan.outpoint(vout)],
                vec![TxOut { value: Amount(1), owner: AccountId(nonce + 1) }],
                nonce,
            );
            let _ = pool.insert(tx, &utxo); // duplicates/conflicts rejected
        }
        // Check pairwise conflict-freedom.
        let txs: Vec<&Transaction> = pool.iter().collect();
        for (i, a) in txs.iter().enumerate() {
            for b in txs.iter().skip(i + 1) {
                prop_assert!(!a.conflicts_with(b));
            }
        }
        // And validity of everything pooled.
        for tx in txs {
            prop_assert!(utxo.validate(tx).is_ok());
        }
    }

    /// Orphan delivery order never changes the final chain state.
    #[test]
    fn delivery_order_is_irrelevant(perm in any::<prop::sample::Index>()) {
        let genesis = Block::genesis(AccountId(0), Amount::COIN);
        let mut chain = Vec::new();
        let mut prev = genesis.id();
        for i in 0..6u64 {
            let b = Block::build(
                prev, Height(i + 1), (i + 1) * 600, AccountId(1), Amount::COIN,
                vec![], i,
            );
            prev = b.id();
            chain.push(b);
        }
        // Rotate the delivery order (every rotation includes orphans).
        let rot = perm.index(chain.len());
        let mut store = ChainStore::new(genesis.clone());
        for i in 0..chain.len() {
            let block = chain[(i + rot) % chain.len()].clone();
            match store.connect(block) {
                Ok(_) => {}
                Err(e) => return Err(TestCaseError::fail(format!("connect failed: {e}"))),
            }
        }
        prop_assert_eq!(store.best_height(), Height(6));
        prop_assert_eq!(store.best_tip(), chain.last().unwrap().id());
        prop_assert_eq!(store.orphan_count(), 0);
    }
}

#[test]
fn reorg_conserves_value() {
    // Deterministic complement to the property tests: a deep reorg must
    // leave total UTXO value consistent with the new chain length.
    let genesis = Block::genesis(AccountId(0), Amount::COIN);
    let mut store = ChainStore::new(genesis.clone());
    let mut prev = genesis.id();
    for i in 0..3u64 {
        let b = Block::build(
            prev,
            Height(i + 1),
            (i + 1) * 600,
            AccountId(1),
            Amount::COIN,
            vec![],
            i,
        );
        prev = b.id();
        store.connect(b).unwrap();
    }
    // Longer competing branch.
    let mut prev = genesis.id();
    for i in 0..5u64 {
        let b = Block::build(
            prev,
            Height(i + 1),
            (i + 1) * 500,
            AccountId(2),
            Amount::COIN,
            vec![],
            100 + i,
        );
        prev = b.id();
        let outcome = store.connect(b).unwrap();
        // The reorg fires as soon as the new branch out-heights the old
        // one (height 4, i.e. i == 3); the final block just extends.
        if i == 3 {
            assert!(matches!(outcome, ConnectOutcome::Reorged(_)));
        }
        if i == 4 {
            assert!(matches!(outcome, ConnectOutcome::ExtendedActive));
        }
    }
    // 5 blocks + genesis, one coinbase each.
    assert_eq!(store.utxo().total_value(), Amount(6 * Amount::COIN.0));
}
