//! # btcpart — Partitioning Attacks on Bitcoin
//!
//! A full Rust reproduction of *Partitioning Attacks on Bitcoin:
//! Colliding Space, Time, and Logic* (Saad, Cook, Nguyen, Thai, Mohaisen —
//! ICDCS 2019): the four partitioning attacks (spatial, temporal,
//! spatio-temporal, logical), the substrates they need (blockchain, P2P
//! network simulator, Internet topology, BGP routing, mining pools,
//! measurement crawler), and the paper's countermeasures.
//!
//! This crate is the facade: it re-exports the workspace crates and adds
//! the [`Scenario`] builder plus the [`experiments`] drivers that
//! regenerate every table and figure in the paper.
//!
//! # Quickstart
//!
//! ```
//! use btcpart::Scenario;
//! use btcpart::experiments::spatial;
//!
//! // A 5%-scale network (fast); use the default scale for paper size.
//! let (snapshot, census) = Scenario::new().scale(0.05).build_static();
//! let table2 = spatial::table2(&snapshot);
//! assert!(table2.body.contains("Hetzner"));
//! let table4 = spatial::table4(&snapshot, &census);
//! assert!(table4.body.contains("BTC.com"));
//! ```
//!
//! # Crate map
//!
//! | Crate | Role |
//! |---|---|
//! | [`analysis`] | statistics, distributions, ECDFs, tables, charts |
//! | [`chain`] | blocks, transactions, UTXO, fork-choice store |
//! | [`topology`] | ASes, organizations, prefixes, calibrated snapshots |
//! | [`bgp`] | AS graph, valley-free routing, hijack engine |
//! | [`mining`] | pool census, stratum placement, block arrivals |
//! | [`net`] | event-driven P2P simulation |
//! | [`crawler`] | Bitnodes-style measurement |
//! | [`attacks`] | the four partitioning attacks + countermeasures |
//! | [`obs`] | deterministic metrics: counters, histograms, span timers |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use bp_analysis as analysis;
pub use bp_attacks as attacks;
pub use bp_bgp as bgp;
pub use bp_chain as chain;
pub use bp_crawler as crawler;
pub use bp_mining as mining;
pub use bp_net as net;
pub use bp_obs as obs;
pub use bp_topology as topology;

pub mod experiments;
pub mod scenario;

pub use experiments::Artifact;
pub use scenario::{Lab, Scenario};
