//! High-level scenario builder: wires the topology snapshot, pool census
//! and network simulation together behind one configuration point.

use bp_mining::PoolCensus;
use bp_net::{NetConfig, Simulation};
use bp_topology::{Snapshot, SnapshotConfig};

/// A builder for complete experiment environments.
///
/// # Examples
///
/// ```
/// use btcpart::Scenario;
///
/// let lab = Scenario::new().scale(0.02).build();
/// assert!(lab.snapshot.node_count() > 100);
/// ```
#[derive(Debug, Clone)]
pub struct Scenario {
    snapshot_config: SnapshotConfig,
    net_config: NetConfig,
}

impl Scenario {
    /// Starts from the paper-scale defaults (13,635 nodes, Feb-28-2018
    /// calibration, paper network parameters).
    pub fn new() -> Self {
        Self {
            snapshot_config: SnapshotConfig::paper(),
            net_config: NetConfig::paper(),
        }
    }

    /// Scales the node population (1.0 = 13,635 nodes). Tail AS and
    /// version counts scale along to keep the generator balanced.
    ///
    /// # Panics
    ///
    /// Panics unless `scale` is in `(0, 1]`.
    pub fn scale(mut self, scale: f64) -> Self {
        assert!(scale > 0.0 && scale <= 1.0, "scale must lie in (0, 1]");
        self.snapshot_config.scale = scale;
        self.snapshot_config.tail_as_count = ((1_647.0 * scale).round() as usize).max(30);
        self.snapshot_config.version_tail = ((283.0 * scale).round() as usize).max(10);
        self
    }

    /// Sets the snapshot seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.snapshot_config.seed = seed;
        self.net_config.seed = seed.wrapping_add(1);
        self
    }

    /// Overrides the full snapshot configuration.
    pub fn snapshot_config(mut self, config: SnapshotConfig) -> Self {
        self.snapshot_config = config;
        self
    }

    /// Overrides the network-simulation configuration.
    pub fn net_config(mut self, config: NetConfig) -> Self {
        self.net_config = config;
        self
    }

    /// Uses the fast, lossless network profile (unit tests).
    pub fn fast_network(mut self) -> Self {
        self.net_config = NetConfig {
            seed: self.net_config.seed,
            ..NetConfig::fast_test()
        };
        self
    }

    /// Builds the environment: snapshot, census, and a ready simulation.
    pub fn build(self) -> Lab {
        let snapshot = Snapshot::generate(self.snapshot_config);
        let census = PoolCensus::paper_table_iv();
        let sim = Simulation::new(&snapshot, &census, self.net_config.clone());
        Lab {
            snapshot,
            census,
            sim,
            net_config: self.net_config,
        }
    }

    /// Builds only the snapshot + census (no simulation) — enough for the
    /// purely spatial analyses.
    pub fn build_static(self) -> (Snapshot, PoolCensus) {
        (
            Snapshot::generate(self.snapshot_config),
            PoolCensus::paper_table_iv(),
        )
    }
}

impl Default for Scenario {
    fn default() -> Self {
        Self::new()
    }
}

/// A complete experiment environment.
#[derive(Debug)]
pub struct Lab {
    /// The calibrated network snapshot.
    pub snapshot: Snapshot,
    /// The Table IV pool census.
    pub census: PoolCensus,
    /// The live network simulation.
    pub sim: Simulation,
    /// The network configuration the simulation was built with.
    pub net_config: NetConfig,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_produces_consistent_lab() {
        let lab = Scenario::new().scale(0.02).fast_network().build();
        assert!(lab.snapshot.node_count() > 200);
        assert_eq!(lab.census.len(), 17);
        assert!(lab.sim.node_count() <= lab.snapshot.node_count());
    }

    #[test]
    fn seeded_scenarios_are_reproducible() {
        let a = Scenario::new().scale(0.02).seed(5).build_static();
        let b = Scenario::new().scale(0.02).seed(5).build_static();
        assert_eq!(a.0.nodes, b.0.nodes);
    }

    #[test]
    #[should_panic(expected = "scale")]
    fn zero_scale_rejected() {
        let _ = Scenario::new().scale(0.0);
    }
}
