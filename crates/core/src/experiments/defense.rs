//! Countermeasure experiments (paper §VI): BlockAware and stratum
//! diversification.

use super::Artifact;
use bp_analysis::table::{num, pct, Align, TextTable};
use bp_attacks::countermeasures::{
    ases_to_isolate_hash, blockaware_tradeoff_one, diversify_stratum, BlockAwareTradeoff,
};
use bp_attacks::temporal::attack::{
    run_temporal_attack, TemporalAttackConfig, TemporalAttackReport,
};
use bp_bgp::{origin_hijack, origin_hijack_with_defense, AsGraph};
use bp_mining::PoolCensus;
use bp_net::Simulation;
use bp_topology::{Asn, Snapshot};
use std::collections::HashSet;

/// The thresholds [`blockaware_sweep`] evaluates, in presentation
/// order. Exposed so the task DAG can fan the sweep out one task per
/// threshold and merge with [`blockaware_sweep_from_rows`].
pub const BLOCKAWARE_SWEEP_THRESHOLDS: [u64; 6] = [150, 300, 600, 1200, 2400, 4800];

/// One cell of the BlockAware threshold sweep, at the paper's 600 s
/// block interval.
pub fn blockaware_sweep_row(threshold_secs: u64) -> BlockAwareTradeoff {
    blockaware_tradeoff_one(threshold_secs, 600.0)
}

/// Renders the sweep artifact from precomputed rows (threshold order).
pub fn blockaware_sweep_from_rows(sweep: &[BlockAwareTradeoff]) -> Artifact {
    let mut t = TextTable::new(
        ["Threshold (s)", "Detection delay (s)", "False-alarm rate"]
            .map(String::from)
            .to_vec(),
    );
    for col in 0..3 {
        t.align(col, Align::Right);
    }
    for row in sweep {
        t.row(vec![
            row.threshold_secs.to_string(),
            row.detection_delay_secs.to_string(),
            num(row.false_alarm_rate, 4),
        ]);
    }
    Artifact::new(
        "blockaware_sweep",
        "BlockAware threshold trade-off (paper §VI)",
        t.render(),
    )
}

/// The BlockAware threshold sweep (detection delay vs. false alarms).
pub fn blockaware_sweep() -> Artifact {
    let rows: Vec<BlockAwareTradeoff> = BLOCKAWARE_SWEEP_THRESHOLDS
        .iter()
        .map(|&t| blockaware_sweep_row(t))
        .collect();
    blockaware_sweep_from_rows(&rows)
}

/// The "with BlockAware" arm of [`blockaware_defense`]: the same attack
/// with the 600 s detector enabled. The two arms run on
/// independently-prepared simulations, so the task DAG executes them
/// concurrently and merges with [`blockaware_defense_from_reports`].
pub fn blockaware_protected_config(attack: TemporalAttackConfig) -> TemporalAttackConfig {
    TemporalAttackConfig {
        blockaware_threshold_secs: Some(600),
        ..attack
    }
}

/// Renders the BlockAware comparison from the two attack reports.
pub fn blockaware_defense_from_reports(
    unprotected: &TemporalAttackReport,
    protected: &TemporalAttackReport,
) -> Artifact {
    let mut t = TextTable::new(
        ["", "Without BlockAware", "With BlockAware"]
            .map(String::from)
            .to_vec(),
    );
    t.align(1, Align::Right);
    t.align(2, Align::Right);
    t.row(vec![
        "victims targeted".into(),
        unprotected.victims.len().to_string(),
        protected.victims.len().to_string(),
    ]);
    t.row(vec![
        "peak captured".into(),
        unprotected.captured_peak.to_string(),
        protected.captured_peak.to_string(),
    ]);
    t.row(vec![
        "captured at attack end".into(),
        unprotected.captured_final.to_string(),
        protected.captured_final.to_string(),
    ]);
    t.row(vec![
        "BlockAware escapes".into(),
        "—".into(),
        protected.blockaware_escapes.to_string(),
    ]);
    Artifact::new(
        "blockaware_defense",
        "BlockAware vs the temporal attack (paper §VI)",
        t.render(),
    )
}

/// Runs the temporal attack twice — without and with BlockAware — on two
/// identically-prepared simulations, and compares captures.
pub fn blockaware_defense(
    sim_unprotected: &mut Simulation,
    sim_protected: &mut Simulation,
    attack: TemporalAttackConfig,
) -> Artifact {
    let unprotected = run_temporal_attack(sim_unprotected, attack);
    let protected = run_temporal_attack(sim_protected, blockaware_protected_config(attack));
    blockaware_defense_from_reports(&unprotected, &protected)
}

/// Stratum diversification: attacker cost to isolate 50 % of the hash
/// rate, before and after pools spread their stratum servers.
pub fn stratum_diversification() -> Artifact {
    let census = PoolCensus::paper_table_iv();
    let hosts: Vec<Asn> = [
        24940u32, 16276, 37963, 16509, 14061, 7922, 4134, 51167, 45102, 58563,
    ]
    .into_iter()
    .map(Asn)
    .collect();

    let mut t = TextTable::new(
        [
            "Stratum spread (ASes/pool)",
            "ASes to isolate 50% hash",
            "AliBaba-sphere share",
        ]
        .map(String::from)
        .to_vec(),
    );
    for col in 0..3 {
        t.align(col, Align::Right);
    }
    let alibaba = [Asn(45102), Asn(37963), Asn(58563)];
    for spread in [1usize, 2, 4, 8] {
        let c = if spread == 1 {
            census.clone()
        } else {
            diversify_stratum(&census, &hosts, spread)
        };
        t.row(vec![
            if spread == 1 {
                "1 (paper status quo)".into()
            } else {
                spread.to_string()
            },
            ases_to_isolate_hash(&c, 0.5).to_string(),
            pct(c.isolated_share(&alibaba)),
        ]);
    }
    Artifact::new(
        "stratum_diversification",
        "Stratum-server diversification raises hijack cost (paper §VI)",
        t.render(),
    )
}

/// Route purging (Zhang et al., §VI) against a same-prefix origin
/// hijack. Models the *reactive* scheme: once the hijack is detected,
/// affected ASes purge the bogus route in adoption waves (largest
/// captured ASes first); each purging AS also stops re-exporting the
/// bogus announcement, shielding its downstream cone.
pub fn route_purging(snapshot: &Snapshot) -> Artifact {
    let graph = AsGraph::synthetic(&snapshot.registry, 11);
    let victim = Asn(24940);
    let attacker = Asn(16509);
    let baseline = origin_hijack(&graph, victim, attacker);

    // Reactive adopters: the ASes the hijack actually captured, in a
    // deterministic order.
    let mut adopters: Vec<Asn> = baseline.captured_ases.clone();
    adopters.sort_unstable();

    let mut t = TextTable::new(
        [
            "Adoption among captured ASes",
            "Captured fraction",
            "Reduction",
        ]
        .map(String::from)
        .to_vec(),
    );
    for col in 0..3 {
        t.align(col, Align::Right);
    }
    t.row(vec![
        "0% (undefended)".into(),
        pct(baseline.captured_fraction),
        "—".into(),
    ]);
    for share in [25usize, 50, 75, 100] {
        let k = adopters.len() * share / 100;
        let defenders: HashSet<Asn> = adopters.iter().take(k).copied().collect();
        let defended = origin_hijack_with_defense(&graph, victim, attacker, &defenders);
        let reduction =
            1.0 - defended.captured_fraction / baseline.captured_fraction.max(f64::MIN_POSITIVE);
        t.row(vec![
            format!("{share}%"),
            pct(defended.captured_fraction),
            pct(reduction),
        ]);
    }
    Artifact::new(
        "route_purging",
        "Reactive bogus-route purging vs a same-prefix hijack (paper §VI)",
        t.render(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::Scenario;
    use bp_net::NetConfig;

    #[test]
    fn route_purging_reduces_capture() {
        let snapshot = Scenario::new().scale(0.05).build_static().0;
        let a = route_purging(&snapshot);
        assert!(a.body.contains("undefended"));
        assert!(a.body.lines().count() >= 6);
    }

    #[test]
    fn sweep_has_600s_row() {
        let a = blockaware_sweep();
        assert!(a.body.contains("600"));
    }

    #[test]
    fn diversification_table_shows_rising_cost() {
        let a = stratum_diversification();
        assert!(a.body.contains("status quo"));
        // First row costs 1 AS; the 8-way spread costs several.
        let rows: Vec<&str> = a.body.lines().skip(2).collect();
        assert!(rows.len() >= 4);
    }

    #[test]
    fn blockaware_defense_renders_comparison() {
        let make = || {
            let mut lab = Scenario::new()
                .scale(0.02)
                .net_config(NetConfig {
                    seed: 3,
                    diffusion_mean_ms: 45_000.0,
                    failure_rate: 0.15,
                    ..NetConfig::paper()
                })
                .build();
            lab.sim.run_for_secs(4 * 600);
            lab
        };
        let mut a_lab = make();
        let mut b_lab = make();
        let artifact = blockaware_defense(
            &mut a_lab.sim,
            &mut b_lab.sim,
            TemporalAttackConfig {
                duration_secs: 1200,
                max_targets: 50,
                ..TemporalAttackConfig::paper()
            },
        );
        assert!(artifact.body.contains("BlockAware escapes"));
        assert!(artifact.body.contains("peak captured"));
    }
}
