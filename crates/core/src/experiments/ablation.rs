//! Behavioural ablations for the design choices DESIGN.md calls out.
//!
//! These complement the Criterion timing benches in `bp-bench`: here the
//! *output* of the system is swept across the parameter, producing the
//! numbers EXPERIMENTS.md reports. All ablations run at reduced scale —
//! they compare configurations against each other, not against the
//! paper.

use super::Artifact;
use bp_analysis::table::{num, pct, Align, TextTable};
use bp_attacks::temporal::grid::{GridConfig, GridSim};
use bp_crawler::{Crawler, LagClass};
use bp_mining::PoolCensus;
use bp_net::{NetConfig, RelayMode, Simulation};
use bp_topology::{Snapshot, SnapshotConfig};

fn ablation_snapshot(seed: u64) -> Snapshot {
    Snapshot::generate(SnapshotConfig {
        seed,
        scale: 0.05,
        tail_as_count: 80,
        version_tail: 15,
        ..SnapshotConfig::paper()
    })
}

fn run_and_measure(snapshot: &Snapshot, config: NetConfig, hours: u64) -> (f64, f64, u64, u64) {
    let census = PoolCensus::paper_table_iv();
    let mut sim = Simulation::new(snapshot, &census, config);
    sim.run_for_secs(1200); // warmup
    let crawl = Crawler::new(60).crawl(&mut sim, snapshot, hours * 3600);
    (
        crawl.series.mean_synced_fraction(),
        crawl.series.peak_fraction_at_least(LagClass::TwoToFour),
        sim.stats().stale_forks,
        sim.traffic().invs,
    )
}

/// Averages [`run_and_measure`] over three network seeds — block-arrival
/// luck dominates any single 2-hour run, so single-seed sweeps are
/// noise.
fn run_averaged(snapshot: &Snapshot, base: &NetConfig, hours: u64) -> (f64, f64, f64, f64) {
    let mut acc = (0.0f64, 0.0f64, 0.0f64, 0.0f64);
    const SEEDS: [u64; 3] = [101, 202, 303];
    for seed in SEEDS {
        let config = NetConfig {
            seed,
            ..base.clone()
        };
        let (synced, peak, forks, invs) = run_and_measure(snapshot, config, hours);
        acc.0 += synced;
        acc.1 += peak;
        acc.2 += forks as f64;
        acc.3 += invs as f64;
    }
    let n = SEEDS.len() as f64;
    (acc.0 / n, acc.1 / n, acc.2 / n, acc.3 / n)
}

/// Diffusion vs. trickle relay (the 2015 protocol switch, §V-B).
pub fn relay_mode(seed: u64) -> Artifact {
    let snapshot = ablation_snapshot(seed);
    let mut t = TextTable::new(
        [
            "Relay",
            "Mean synced",
            "Peak >=2-behind",
            "Stale forks",
            "Invs delivered",
        ]
        .map(String::from)
        .to_vec(),
    );
    for col in 1..5 {
        t.align(col, Align::Right);
    }
    let cases: [(&str, RelayMode); 3] = [
        ("diffusion (post-2015)", RelayMode::Diffusion),
        ("trickle 2s", RelayMode::Trickle { interval_ms: 2_000 }),
        (
            "trickle 10s",
            RelayMode::Trickle {
                interval_ms: 10_000,
            },
        ),
    ];
    let _ = seed;
    for (label, mode) in cases {
        let base = NetConfig {
            relay_mode: mode,
            ..NetConfig::paper()
        };
        let (synced, peak_behind, forks, invs) = run_averaged(&snapshot, &base, 2);
        t.row(vec![
            label.to_string(),
            pct(synced),
            pct(peak_behind),
            num(forks, 1),
            num(invs, 0),
        ]);
    }
    Artifact::new(
        "ablation_relay",
        "Relay-discipline ablation: diffusion vs trickle (paper §V-B)",
        t.render(),
    )
}

/// Peer out-degree sweep: more peers shrink the temporal attack surface.
pub fn out_degree(seed: u64) -> Artifact {
    let snapshot = ablation_snapshot(seed);
    let mut t = TextTable::new(
        [
            "Out-degree",
            "Mean synced",
            "Peak >=2-behind",
            "Stale forks",
        ]
        .map(String::from)
        .to_vec(),
    );
    for col in 0..4 {
        t.align(col, Align::Right);
    }
    let _ = seed;
    for degree in [4usize, 8, 16, 24] {
        let base = NetConfig {
            out_degree: degree,
            ..NetConfig::paper()
        };
        let (synced, peak_behind, forks, _) = run_averaged(&snapshot, &base, 2);
        t.row(vec![
            degree.to_string(),
            pct(synced),
            pct(peak_behind),
            num(forks, 1),
        ]);
    }
    Artifact::new(
        "ablation_degree",
        "Peer out-degree ablation (paper §V-B peer-clustering trade-off)",
        t.render(),
    )
}

/// Span-ratio sweep on the grid simulator: below 1.0 the grid cannot
/// synchronize between blocks and natural forks persist.
pub fn span_ratio(seed: u64) -> Artifact {
    let mut t = TextTable::new(
        ["R_span", "Mean dominant-chain share", "Mean distinct forks"]
            .map(String::from)
            .to_vec(),
    );
    for col in 0..3 {
        t.align(col, Align::Right);
    }
    for r in [0.5f64, 1.0, 2.0, 4.0] {
        // Average the dominant-chain share over time and over seeds; a
        // single final snapshot is dominated by where in the fork cycle
        // it lands.
        let mut dom_sum = 0.0;
        let mut fork_sum = 0.0;
        let mut samples = 0u32;
        for s in [seed, seed + 1, seed + 2] {
            let mut sim = GridSim::new(GridConfig {
                span_ratio: r,
                attack_start_step: u64::MAX, // no attacker: natural forks
                seed: s,
                ..GridConfig::figure7()
            });
            // ~20 blocks per run: steps scale with R_span so every ratio
            // sees the same number of blocks.
            let per_block = 25.0 * r; // steps per block at this ratio
            let total_steps = (per_block * 20.0).max(200.0) as u64;
            let stride = (per_block as u64).max(5);
            let mut step = 0;
            while step < total_steps {
                step += stride;
                sim.run_to(step);
                let fracs = sim.snapshot().fork_fractions();
                dom_sum += fracs.values().cloned().fold(0.0f64, f64::max);
                fork_sum += fracs.len() as f64;
                samples += 1;
            }
        }
        t.row(vec![
            num(r, 1),
            pct(dom_sum / samples as f64),
            num(fork_sum / samples as f64, 2),
        ]);
    }
    Artifact::new(
        "ablation_span",
        "Span-ratio ablation on the grid simulator (paper §V-B)",
        t.render(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_ratio_ablation_shows_sync_threshold() {
        let a = span_ratio(5);
        assert!(a.body.contains("R_span"));
        assert_eq!(a.body.lines().count(), 6);
    }

    #[test]
    fn relay_mode_ablation_renders() {
        let a = relay_mode(5);
        assert!(a.body.contains("diffusion"));
        assert!(a.body.contains("trickle"));
    }

    #[test]
    fn out_degree_ablation_renders() {
        let a = out_degree(5);
        assert!(a.body.contains("Out-degree"));
        assert_eq!(a.body.lines().count(), 6);
    }
}
