//! Behavioural ablations for the design choices DESIGN.md calls out.
//!
//! These complement the Criterion timing benches in `bp-bench`: here the
//! *output* of the system is swept across the parameter, producing the
//! numbers EXPERIMENTS.md reports. All ablations run at reduced scale —
//! they compare configurations against each other, not against the
//! paper.
//!
//! Every sweep is decomposed into independently-seeded **units** (one
//! `(case, seed)` simulation each) plus a pure **merge** that averages
//! and renders. The artifact functions ([`relay_mode`], [`out_degree`],
//! [`span_ratio`]) are thin serial drivers over the same units, so the
//! `bp-bench` task DAG can fan the units out across worker threads and
//! reassemble a byte-identical artifact: units own all the randomness,
//! merges only fold unit outputs in the fixed case-major / seed-minor
//! order (floating-point accumulation order included).

use super::Artifact;
use bp_analysis::table::{num, pct, Align, TextTable};
use bp_attacks::temporal::grid::{GridConfig, GridSim};
use bp_crawler::{Crawler, LagClass};
use bp_mining::PoolCensus;
use bp_net::{NetConfig, RelayMode, Simulation};
use bp_topology::{Snapshot, SnapshotConfig};

/// The network seeds every sweep cell is averaged over — block-arrival
/// luck dominates any single 2-hour run, so single-seed sweeps are
/// noise.
pub const AVERAGING_SEEDS: [u64; 3] = [101, 202, 303];

/// Simulated hours behind each relay / out-degree unit run.
pub const UNIT_HOURS: u64 = 2;

/// One relay-discipline case of the [`relay_mode`] sweep.
#[derive(Debug, Clone, Copy)]
pub struct RelayCase {
    /// Row label in the rendered table.
    pub label: &'static str,
    /// The relay discipline under test.
    pub mode: RelayMode,
}

/// The relay-discipline cases, in presentation order.
pub const RELAY_CASES: [RelayCase; 3] = [
    RelayCase {
        label: "diffusion (post-2015)",
        mode: RelayMode::Diffusion,
    },
    RelayCase {
        label: "trickle 2s",
        mode: RelayMode::Trickle { interval_ms: 2_000 },
    },
    RelayCase {
        label: "trickle 10s",
        mode: RelayMode::Trickle {
            interval_ms: 10_000,
        },
    },
];

/// The peer out-degrees swept by [`out_degree`], in presentation order.
pub const OUT_DEGREES: [usize; 4] = [4, 8, 16, 24];

/// The span ratios swept by [`span_ratio`], in presentation order.
pub const SPAN_RATIOS: [f64; 4] = [0.5, 1.0, 2.0, 4.0];

/// Raw measures of one independently-seeded network unit run:
/// `(mean synced, peak ≥2-behind, stale forks, invs delivered)`.
pub type NetUnit = (f64, f64, u64, u64);

/// Raw samples of one independently-seeded grid unit run: per-sample
/// `(dominant-chain share, distinct forks)` pairs, in sampling order.
/// The merge re-accumulates them sequentially so the folded sums are
/// bit-identical to the historical serial sweep.
pub type SpanUnit = Vec<(f64, f64)>;

fn ablation_snapshot(seed: u64) -> Snapshot {
    Snapshot::generate(SnapshotConfig {
        seed,
        scale: 0.05,
        tail_as_count: 80,
        version_tail: 15,
        ..SnapshotConfig::paper()
    })
}

fn run_and_measure(snapshot: &Snapshot, config: NetConfig, hours: u64) -> NetUnit {
    let census = PoolCensus::paper_table_iv();
    let mut sim = Simulation::new(snapshot, &census, config);
    sim.run_for_secs(1200); // warmup
    let crawl = Crawler::new(60).crawl(&mut sim, snapshot, hours * 3600);
    (
        crawl.series.mean_synced_fraction(),
        crawl.series.peak_fraction_at_least(LagClass::TwoToFour),
        sim.stats().stale_forks,
        sim.traffic().invs,
    )
}

/// Averages the units of one case in [`AVERAGING_SEEDS`] order.
fn average_units(units: &[NetUnit]) -> (f64, f64, f64, f64) {
    let mut acc = (0.0f64, 0.0f64, 0.0f64, 0.0f64);
    for &(synced, peak, forks, invs) in units {
        acc.0 += synced;
        acc.1 += peak;
        acc.2 += forks as f64;
        acc.3 += invs as f64;
    }
    let n = units.len() as f64;
    (acc.0 / n, acc.1 / n, acc.2 / n, acc.3 / n)
}

fn unit_for(snapshot_seed: u64, base: &NetConfig, seed_index: usize) -> NetUnit {
    let snapshot = ablation_snapshot(snapshot_seed);
    let config = NetConfig {
        seed: AVERAGING_SEEDS[seed_index],
        ..base.clone()
    };
    run_and_measure(&snapshot, config, UNIT_HOURS)
}

/// One `(case, seed)` unit of the relay-discipline sweep. Rebuilds the
/// (deterministic) ablation snapshot itself, so units are fully
/// independent tasks.
pub fn relay_unit(snapshot_seed: u64, case_index: usize, seed_index: usize) -> NetUnit {
    let base = NetConfig {
        relay_mode: RELAY_CASES[case_index].mode,
        ..NetConfig::paper()
    };
    unit_for(snapshot_seed, &base, seed_index)
}

/// Renders the relay-discipline artifact from its units, which must be
/// in case-major, seed-minor order
/// (`RELAY_CASES.len() * AVERAGING_SEEDS.len()` entries).
///
/// # Panics
///
/// Panics if `units` has the wrong length.
pub fn relay_mode_from_units(units: &[NetUnit]) -> Artifact {
    assert_eq!(units.len(), RELAY_CASES.len() * AVERAGING_SEEDS.len());
    let mut t = TextTable::new(
        [
            "Relay",
            "Mean synced",
            "Peak >=2-behind",
            "Stale forks",
            "Invs delivered",
        ]
        .map(String::from)
        .to_vec(),
    );
    for col in 1..5 {
        t.align(col, Align::Right);
    }
    for (i, case) in RELAY_CASES.iter().enumerate() {
        let n = AVERAGING_SEEDS.len();
        let (synced, peak_behind, forks, invs) = average_units(&units[i * n..(i + 1) * n]);
        t.row(vec![
            case.label.to_string(),
            pct(synced),
            pct(peak_behind),
            num(forks, 1),
            num(invs, 0),
        ]);
    }
    Artifact::new(
        "ablation_relay",
        "Relay-discipline ablation: diffusion vs trickle (paper §V-B)",
        t.render(),
    )
}

/// Diffusion vs. trickle relay (the 2015 protocol switch, §V-B).
pub fn relay_mode(seed: u64) -> Artifact {
    let units: Vec<NetUnit> = (0..RELAY_CASES.len())
        .flat_map(|case| (0..AVERAGING_SEEDS.len()).map(move |s| (case, s)))
        .map(|(case, s)| relay_unit(seed, case, s))
        .collect();
    relay_mode_from_units(&units)
}

/// One `(degree, seed)` unit of the out-degree sweep.
pub fn degree_unit(snapshot_seed: u64, degree_index: usize, seed_index: usize) -> NetUnit {
    let base = NetConfig {
        out_degree: OUT_DEGREES[degree_index],
        ..NetConfig::paper()
    };
    unit_for(snapshot_seed, &base, seed_index)
}

/// Renders the out-degree artifact from its units (degree-major,
/// seed-minor order).
///
/// # Panics
///
/// Panics if `units` has the wrong length.
pub fn out_degree_from_units(units: &[NetUnit]) -> Artifact {
    assert_eq!(units.len(), OUT_DEGREES.len() * AVERAGING_SEEDS.len());
    let mut t = TextTable::new(
        [
            "Out-degree",
            "Mean synced",
            "Peak >=2-behind",
            "Stale forks",
        ]
        .map(String::from)
        .to_vec(),
    );
    for col in 0..4 {
        t.align(col, Align::Right);
    }
    for (i, degree) in OUT_DEGREES.iter().enumerate() {
        let n = AVERAGING_SEEDS.len();
        let (synced, peak_behind, forks, _) = average_units(&units[i * n..(i + 1) * n]);
        t.row(vec![
            degree.to_string(),
            pct(synced),
            pct(peak_behind),
            num(forks, 1),
        ]);
    }
    Artifact::new(
        "ablation_degree",
        "Peer out-degree ablation (paper §V-B peer-clustering trade-off)",
        t.render(),
    )
}

/// Peer out-degree sweep: more peers shrink the temporal attack surface.
pub fn out_degree(seed: u64) -> Artifact {
    let units: Vec<NetUnit> = (0..OUT_DEGREES.len())
        .flat_map(|d| (0..AVERAGING_SEEDS.len()).map(move |s| (d, s)))
        .map(|(d, s)| degree_unit(seed, d, s))
        .collect();
    out_degree_from_units(&units)
}

/// One `(ratio, seed)` unit of the span-ratio sweep: runs the grid
/// simulator under `SPAN_RATIOS[ratio_index]` with seed
/// `seed + seed_index` and returns the per-sample measures in sampling
/// order.
pub fn span_unit(seed: u64, ratio_index: usize, seed_index: usize) -> SpanUnit {
    let r = SPAN_RATIOS[ratio_index];
    let mut sim = GridSim::new(GridConfig {
        span_ratio: r,
        attack_start_step: u64::MAX, // no attacker: natural forks
        seed: seed + seed_index as u64,
        ..GridConfig::figure7()
    });
    // ~20 blocks per run: steps scale with R_span so every ratio
    // sees the same number of blocks.
    let per_block = 25.0 * r; // steps per block at this ratio
    let total_steps = (per_block * 20.0).max(200.0) as u64;
    let stride = (per_block as u64).max(5);
    let mut samples = Vec::new();
    let mut step = 0;
    while step < total_steps {
        step += stride;
        sim.run_to(step);
        let fracs = sim.snapshot().fork_fractions();
        samples.push((
            fracs.values().cloned().fold(0.0f64, f64::max),
            fracs.len() as f64,
        ));
    }
    samples
}

/// Renders the span-ratio artifact from its units (ratio-major,
/// seed-minor order). The per-ratio sums are re-accumulated sample by
/// sample in the original sequential order, so the rendered averages
/// are bit-identical to a serial sweep.
///
/// # Panics
///
/// Panics if `units` has the wrong length.
pub fn span_ratio_from_units(units: &[SpanUnit]) -> Artifact {
    assert_eq!(units.len(), SPAN_RATIOS.len() * AVERAGING_SEEDS.len());
    let mut t = TextTable::new(
        ["R_span", "Mean dominant-chain share", "Mean distinct forks"]
            .map(String::from)
            .to_vec(),
    );
    for col in 0..3 {
        t.align(col, Align::Right);
    }
    for (i, r) in SPAN_RATIOS.iter().enumerate() {
        // Average the dominant-chain share over time and over seeds; a
        // single final snapshot is dominated by where in the fork cycle
        // it lands.
        let mut dom_sum = 0.0;
        let mut fork_sum = 0.0;
        let mut samples = 0u32;
        let n = AVERAGING_SEEDS.len();
        for unit in &units[i * n..(i + 1) * n] {
            for &(dom, forks) in unit {
                dom_sum += dom;
                fork_sum += forks;
                samples += 1;
            }
        }
        t.row(vec![
            num(*r, 1),
            pct(dom_sum / samples as f64),
            num(fork_sum / samples as f64, 2),
        ]);
    }
    Artifact::new(
        "ablation_span",
        "Span-ratio ablation on the grid simulator (paper §V-B)",
        t.render(),
    )
}

/// Span-ratio sweep on the grid simulator: below 1.0 the grid cannot
/// synchronize between blocks and natural forks persist.
pub fn span_ratio(seed: u64) -> Artifact {
    let units: Vec<SpanUnit> = (0..SPAN_RATIOS.len())
        .flat_map(|r| (0..AVERAGING_SEEDS.len()).map(move |s| (r, s)))
        .map(|(r, s)| span_unit(seed, r, s))
        .collect();
    span_ratio_from_units(&units)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_ratio_ablation_shows_sync_threshold() {
        let a = span_ratio(5);
        assert!(a.body.contains("R_span"));
        assert_eq!(a.body.lines().count(), 6);
    }

    #[test]
    fn relay_mode_ablation_renders() {
        let a = relay_mode(5);
        assert!(a.body.contains("diffusion"));
        assert!(a.body.contains("trickle"));
    }

    #[test]
    fn out_degree_ablation_renders() {
        let a = out_degree(5);
        assert!(a.body.contains("Out-degree"));
        assert_eq!(a.body.lines().count(), 6);
    }

    #[test]
    fn units_recompose_to_the_serial_artifact() {
        // The DAG merge path (units computed out of order, folded in
        // case-major order) must reproduce the serial artifact byte for
        // byte. Compute the units in a scrambled order to prove order
        // independence.
        let seed = 5;
        let mut span_units = vec![Vec::new(); SPAN_RATIOS.len() * AVERAGING_SEEDS.len()];
        let mut order: Vec<usize> = (0..span_units.len()).collect();
        order.reverse();
        for k in order {
            let (r, s) = (k / AVERAGING_SEEDS.len(), k % AVERAGING_SEEDS.len());
            span_units[k] = span_unit(seed, r, s);
        }
        assert_eq!(
            span_ratio_from_units(&span_units).body,
            span_ratio(seed).body
        );
    }
}
