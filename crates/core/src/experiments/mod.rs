//! Experiment drivers: one function per table and figure of the paper.
//!
//! Each driver returns an [`Artifact`] — the rendered text (table or
//! ASCII figure) plus CSV exports of the underlying series — so the
//! `repro` harness, the Criterion benches and the integration tests all
//! share one implementation.

pub mod ablation;
pub mod codec;
pub mod combined;
pub mod defense;
pub mod logical;
pub mod spatial;
pub mod temporal;

use std::fmt;

/// A regenerated paper artifact.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Artifact {
    /// Stable identifier, e.g. `"table1"` or `"fig4"`.
    pub id: String,
    /// Human-readable title.
    pub title: String,
    /// Rendered text body (table or ASCII chart).
    pub body: String,
    /// `(name, contents)` CSV exports of the underlying data.
    pub csv: Vec<(String, String)>,
}

impl Artifact {
    /// Creates an artifact.
    pub fn new(id: impl Into<String>, title: impl Into<String>, body: String) -> Self {
        Self {
            id: id.into(),
            title: title.into(),
            body,
            csv: Vec::new(),
        }
    }

    /// Attaches a CSV export.
    pub fn with_csv(mut self, name: impl Into<String>, contents: String) -> Self {
        self.csv.push((name.into(), contents));
        self
    }
}

impl fmt::Display for Artifact {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "=== {} — {} ===", self.id, self.title)?;
        f.write_str(&self.body)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn artifact_renders_header_and_body() {
        let a = Artifact::new("table1", "Node characteristics", "body\n".into())
            .with_csv("data", "x,y\n1,2\n".into());
        let text = a.to_string();
        assert!(text.contains("table1"));
        assert!(text.contains("body"));
        assert_eq!(a.csv.len(), 1);
    }
}
